// Adam and its mixed-precision variant (Sec 3.1).
//
// Mixed-precision Adam is the memory protagonist of the paper: for Psi
// fp16 parameters it keeps fp32 master parameters, momentum and variance
// — K = 12 bytes per parameter of optimizer state on top of 2 (params)
// + 2 (gradients). MixedPrecisionAdam owns exactly those three fp32
// tensors, allocated on the simulated device so the K multiplier is
// visible to the memory experiments, and updates an fp16 parameter shard
// from an fp16 gradient shard:
//
//     master ops (fp32):  m, v, master-weight update
//     edges (fp16):       grad in (unscaled by loss_scale), param out
//
// In ZeRO, each rank constructs this over its 1/Nd shard — partitioning
// the optimizer *is* constructing a smaller one of these.
#pragma once

#include <cstdint>
#include <span>

#include "alloc/caching_allocator.hpp"
#include "common/half.hpp"
#include "optim/shard_optimizer.hpp"
#include "tensor/tensor.hpp"

namespace zero::optim {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

// Functional fp32 Adam step (t is 1-based). Exposed separately so tests
// can drive reference trajectories without any storage policy attached.
void AdamUpdate(const AdamConfig& cfg, std::int64_t t,
                std::span<float> master, std::span<const float> grad,
                std::span<float> m, std::span<float> v);

class MixedPrecisionAdam final : public ShardOptimizer {
 public:
  // State tensors (fp32 master + m + v, 12 bytes/param) are allocated
  // from `device` when non-null, else on the heap. `init` seeds the
  // master copy (the authoritative weights).
  MixedPrecisionAdam(AdamConfig cfg, alloc::CachingAllocator* device,
                     std::span<const float> init);

  // One update: grad_f16 is divided by `loss_scale`, applied to the
  // master weights, and the updated weights are rounded back into
  // params_f16. Spans must match the shard size.
  void Step(std::span<Half> params_f16, std::span<const Half> grads_f16,
            float loss_scale) override;

  // fp32 path (used when the engine keeps fp32 gradients, e.g. in exact
  // equivalence tests).
  void StepF32(std::span<float> params_out, std::span<const float> grads,
               float grad_scale) override;

  // fp32 gradients (e.g. an accumulation buffer) updating fp16 params.
  void StepFromF32(std::span<Half> params_f16, std::span<const float> grads,
                   float grad_scale) override;

  [[nodiscard]] std::int64_t numel() const override { return numel_; }
  [[nodiscard]] std::int64_t step_count() const override { return t_; }
  [[nodiscard]] std::span<const float> master() const {
    return master_.f32();
  }
  [[nodiscard]] std::span<float> master_mutable() { return master_.f32(); }
  // Momentum / variance access for state checkpointing.
  [[nodiscard]] std::span<const float> momentum() const { return m_.f32(); }
  [[nodiscard]] std::span<float> momentum_mutable() { return m_.f32(); }
  [[nodiscard]] std::span<const float> variance() const { return v_.f32(); }
  [[nodiscard]] std::span<float> variance_mutable() { return v_.f32(); }
  // Restores the bias-correction clock when loading a checkpoint.
  void set_step_count(std::int64_t t) override { t_ = t; }

  void CopyStateOut(OptStateKind kind, std::span<float> out) override;
  void CopyStateIn(OptStateKind kind, std::span<const float> in) override;

  // Bytes of optimizer state per parameter — the paper's K.
  static constexpr double kStateBytesPerParam = 12.0;

 private:
  AdamConfig cfg_;
  std::int64_t numel_;
  std::int64_t t_ = 0;
  tensor::Tensor master_;  // fp32 [numel]
  tensor::Tensor m_;       // fp32 [numel]
  tensor::Tensor v_;       // fp32 [numel]
  std::vector<float> grad_scratch_;
};

}  // namespace zero::optim
