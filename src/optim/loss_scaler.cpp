#include "optim/loss_scaler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace zero::optim {

DynamicLossScaler::DynamicLossScaler(Config config)
    : config_(config), scale_(config.init_scale) {
  ZERO_CHECK(config_.init_scale >= config_.min_scale &&
                 config_.init_scale <= config_.max_scale,
             "init_scale outside [min_scale, max_scale]");
  ZERO_CHECK(config_.growth_factor > 1.0f &&
                 config_.backoff_factor > 0.0f &&
                 config_.backoff_factor < 1.0f,
             "scaler factors must grow/shrink");
}

bool DynamicLossScaler::Update(bool found_overflow) {
  if (found_overflow) {
    scale_ = std::max(config_.min_scale, scale_ * config_.backoff_factor);
    steps_since_backoff_ = 0;
    ++skipped_;
    static obs::Counter& overflows =
        obs::Metrics().counter("loss_scale.overflows");
    overflows.Add();
    return false;
  }
  ++good_;
  if (++steps_since_backoff_ >= config_.growth_interval) {
    scale_ = std::min(config_.max_scale, scale_ * config_.growth_factor);
    steps_since_backoff_ = 0;
    static obs::Counter& growths =
        obs::Metrics().counter("loss_scale.growths");
    growths.Add();
  }
  return true;
}

DynamicLossScaler::State DynamicLossScaler::Export() const {
  return State{scale_, steps_since_backoff_, skipped_, good_};
}

void DynamicLossScaler::Restore(const State& state) {
  ZERO_CHECK(state.steps_since_backoff >= 0 && state.skipped >= 0 &&
                 state.good >= 0,
             "corrupt loss-scaler state");
  scale_ = std::clamp(state.scale, config_.min_scale, config_.max_scale);
  steps_since_backoff_ = state.steps_since_backoff;
  skipped_ = state.skipped;
  good_ = state.good;
}

}  // namespace zero::optim
