// Dynamic loss scaling for mixed-precision training (Sec 3.1's fp16
// regime; the standard companion of an fp32 master copy).
//
// fp16 gradients overflow to inf when the loss scale is too high and
// underflow to zero when it is too low. The dynamic scaler implements
// the usual control loop: halve the scale and skip the step whenever an
// overflow is detected, double it after `growth_interval` consecutive
// clean steps. In ZeRO the overflow verdict must be *global* — every DP
// rank sees only its gradient partition — so the engine all-reduces a
// found-overflow flag before consulting the scaler, keeping the SPMD
// ranks in lockstep.
#pragma once

#include <cstdint>

namespace zero::optim {

class DynamicLossScaler {
 public:
  struct Config {
    float init_scale = 65536.0f;
    float growth_factor = 2.0f;
    float backoff_factor = 0.5f;
    int growth_interval = 100;  // clean steps before growing
    float min_scale = 1.0f;
    float max_scale = 16777216.0f;  // 2^24
  };

  DynamicLossScaler() : DynamicLossScaler(Config()) {}
  explicit DynamicLossScaler(Config config);

  [[nodiscard]] float scale() const { return scale_; }

  // Report the (globally agreed) overflow status of one step. Returns
  // true when the optimizer update should be applied, false when the
  // step must be skipped.
  bool Update(bool found_overflow);

  [[nodiscard]] std::int64_t skipped_steps() const { return skipped_; }
  [[nodiscard]] std::int64_t good_steps() const { return good_; }

  // Full control-loop position, for checkpointing: restoring it resumes
  // the growth countdown exactly where the saved run left off (the
  // scale alone is not enough — a reset growth counter delays the next
  // doubling and diverges the fp16 trajectory).
  struct State {
    float scale = 1.0f;
    int steps_since_backoff = 0;
    std::int64_t skipped = 0;
    std::int64_t good = 0;
  };
  [[nodiscard]] State Export() const;
  // Adopts `state` verbatim (scale clamped into [min_scale, max_scale]).
  void Restore(const State& state);

 private:
  Config config_;
  float scale_;
  int steps_since_backoff_ = 0;
  std::int64_t skipped_ = 0;
  std::int64_t good_ = 0;
};

}  // namespace zero::optim
