#include "optim/adam.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"
#include "tensor/parallel_for.hpp"

namespace zero::optim {

namespace {
// Elementwise kernels below are row-partitioned over the intra-op pool;
// each element is touched by exactly one chunk, so the update is
// bitwise-identical at any worker count.
constexpr std::int64_t kAdamChunk = 1 << 12;
}  // namespace

void AdamUpdate(const AdamConfig& cfg, std::int64_t t,
                std::span<float> master, std::span<const float> grad,
                std::span<float> m, std::span<float> v) {
  ZERO_CHECK(master.size() == grad.size() && grad.size() == m.size() &&
                 m.size() == v.size(),
             "Adam span size mismatch");
  const float b1 = cfg.beta1;
  const float b2 = cfg.beta2;
  const float bc1 =
      1.0f - std::pow(b1, static_cast<float>(t));
  const float bc2 =
      1.0f - std::pow(b2, static_cast<float>(t));
  const float step_size = cfg.lr / bc1;
  tensor::ParallelFor(
      0, static_cast<std::int64_t>(master.size()), kAdamChunk,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          float gi = grad[i];
          if (cfg.weight_decay != 0.0f) gi += cfg.weight_decay * master[i];
          m[i] = b1 * m[i] + (1.0f - b1) * gi;
          v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
          const float denom = std::sqrt(v[i] / bc2) + cfg.eps;
          master[i] -= step_size * m[i] / denom;
        }
      });
}

namespace {
tensor::Tensor MakeState(alloc::CachingAllocator* device, std::int64_t n) {
  using tensor::Tensor;
  Tensor t = device != nullptr
                 ? Tensor::Device(*device, {n}, DType::kF32)
                 : Tensor::Heap({n}, DType::kF32);
  t.FillZero();
  return t;
}
}  // namespace

MixedPrecisionAdam::MixedPrecisionAdam(AdamConfig cfg,
                                       alloc::CachingAllocator* device,
                                       std::span<const float> init)
    : cfg_(cfg),
      numel_(static_cast<std::int64_t>(init.size())),
      master_(MakeState(device, numel_)),
      m_(MakeState(device, numel_)),
      v_(MakeState(device, numel_)) {
  std::memcpy(master_.f32().data(), init.data(), init.size_bytes());
}

void MixedPrecisionAdam::Step(std::span<Half> params_f16,
                              std::span<const Half> grads_f16,
                              float loss_scale) {
  TRACE_SPAN("optim/adam_step");
  ZERO_CHECK(params_f16.size() == static_cast<std::size_t>(numel_) &&
                 grads_f16.size() == static_cast<std::size_t>(numel_),
             "shard size mismatch");
  grad_scratch_.resize(static_cast<std::size_t>(numel_));
  const float inv_scale = 1.0f / loss_scale;
  const float* lut = HalfDecodeTable();
  tensor::ParallelFor(0, numel_, kAdamChunk,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          grad_scratch_[static_cast<std::size_t>(i)] =
                              lut[grads_f16[static_cast<std::size_t>(i)]
                                      .bits()] *
                              inv_scale;
                        }
                      });
  ++t_;
  AdamUpdate(cfg_, t_, master_.f32(), grad_scratch_, m_.f32(), v_.f32());
  tensor::CastFloatToHalf(master_.f32().data(), params_f16.data(), numel_);
}

void MixedPrecisionAdam::StepFromF32(std::span<Half> params_f16,
                                     std::span<const float> grads,
                                     float grad_scale) {
  TRACE_SPAN("optim/adam_step");
  ZERO_CHECK(params_f16.size() == static_cast<std::size_t>(numel_) &&
                 grads.size() == static_cast<std::size_t>(numel_),
             "shard size mismatch");
  grad_scratch_.resize(static_cast<std::size_t>(numel_));
  tensor::ParallelFor(0, numel_, kAdamChunk,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          grad_scratch_[static_cast<std::size_t>(i)] =
                              grads[static_cast<std::size_t>(i)] * grad_scale;
                        }
                      });
  ++t_;
  AdamUpdate(cfg_, t_, master_.f32(), grad_scratch_, m_.f32(), v_.f32());
  tensor::CastFloatToHalf(master_.f32().data(), params_f16.data(), numel_);
}

void MixedPrecisionAdam::StepF32(std::span<float> params_out,
                                 std::span<const float> grads,
                                 float grad_scale) {
  TRACE_SPAN("optim/adam_step");
  ZERO_CHECK(params_out.size() == static_cast<std::size_t>(numel_) &&
                 grads.size() == static_cast<std::size_t>(numel_),
             "shard size mismatch");
  grad_scratch_.resize(static_cast<std::size_t>(numel_));
  tensor::ParallelFor(0, numel_, kAdamChunk,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) {
                          grad_scratch_[static_cast<std::size_t>(i)] =
                              grads[static_cast<std::size_t>(i)] * grad_scale;
                        }
                      });
  ++t_;
  AdamUpdate(cfg_, t_, master_.f32(), grad_scratch_, m_.f32(), v_.f32());
  std::memcpy(params_out.data(), master_.f32().data(),
              params_out.size_bytes());
}

namespace {
std::span<float> StateSpan(OptStateKind kind, tensor::Tensor& master,
                           tensor::Tensor& m, tensor::Tensor& v) {
  switch (kind) {
    case OptStateKind::kMaster:
      return master.f32();
    case OptStateKind::kMomentum:
      return m.f32();
    case OptStateKind::kVariance:
      return v.f32();
  }
  return {};
}
}  // namespace

void MixedPrecisionAdam::CopyStateOut(OptStateKind kind,
                                      std::span<float> out) {
  const std::span<float> src = StateSpan(kind, master_, m_, v_);
  ZERO_CHECK(out.size() == src.size(), "state copy size mismatch");
  std::memcpy(out.data(), src.data(), src.size_bytes());
}

void MixedPrecisionAdam::CopyStateIn(OptStateKind kind,
                                     std::span<const float> in) {
  const std::span<float> dst = StateSpan(kind, master_, m_, v_);
  ZERO_CHECK(in.size() == dst.size(), "state copy size mismatch");
  std::memcpy(dst.data(), in.data(), in.size_bytes());
}

}  // namespace zero::optim
