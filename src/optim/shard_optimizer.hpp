// Storage-agnostic interface over a rank's optimizer-state shard.
//
// The engine drives the fp32 master state through this interface so the
// state can live anywhere: on the device (MixedPrecisionAdam, the
// non-offloaded baseline) or streamed through a storage tier
// (core::OffloadEngine). Every implementation must compute the exact
// same bits for the same inputs — tiering is a placement decision, not
// an arithmetic one — which is why checkpoint access is copy-based
// (CopyStateOut/CopyStateIn): a tier is not required to expose its
// fp32 state as addressable spans.
#pragma once

#include <cstdint>
#include <span>

#include "common/half.hpp"

namespace zero::optim {

enum class OptStateKind : unsigned char {
  kMaster,    // fp32 master weights
  kMomentum,  // Adam first moment
  kVariance,  // Adam second moment
};

class ShardOptimizer {
 public:
  virtual ~ShardOptimizer() = default;

  // One update from fp16 gradients (divided by `loss_scale`) into fp16
  // parameters. Spans must match the shard size.
  virtual void Step(std::span<Half> params_f16,
                    std::span<const Half> grads_f16, float loss_scale) = 0;
  // fp32 gradients (e.g. an accumulation buffer) updating fp16 params.
  virtual void StepFromF32(std::span<Half> params_f16,
                           std::span<const float> grads, float grad_scale) = 0;
  // Pure fp32 path (exact-equivalence configurations).
  virtual void StepF32(std::span<float> params_out,
                       std::span<const float> grads, float grad_scale) = 0;

  [[nodiscard]] virtual std::int64_t numel() const = 0;
  [[nodiscard]] virtual std::int64_t step_count() const = 0;
  // Restores the bias-correction clock when loading a checkpoint.
  virtual void set_step_count(std::int64_t t) = 0;

  // Copies one state tensor out of / into wherever it lives. Spans must
  // be exactly `numel` floats.
  virtual void CopyStateOut(OptStateKind kind, std::span<float> out) = 0;
  virtual void CopyStateIn(OptStateKind kind, std::span<const float> in) = 0;

  // Bytes moved across the storage link on this shard's behalf
  // (0 for device-resident state).
  [[nodiscard]] virtual std::uint64_t transfer_bytes() const { return 0; }

  // Drops gradient bytes staged ahead of an update that will never
  // happen (loss-scale overflow skip, state import). No-op unless the
  // implementation streams gradients eagerly.
  virtual void DiscardStagedGradients() {}
};

}  // namespace zero::optim
