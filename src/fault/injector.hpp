// FaultInjector: the comm::FaultHooks implementation that executes a
// FaultPlan deterministically.
//
// Determinism: each (rule, rank) pair owns an atomic trigger counter
// that only that rank's own thread ever bumps (AtPoint is called with
// the calling rank; OnSend with the sending rank), so the sequence of
// counter values a rule observes on a given rank is independent of
// thread interleaving. Probability draws hash (plan seed, rule index,
// rank, counter value) through splitmix64 — no shared RNG stream, same
// verdicts every run.
//
// The injector outlives the World(s) it is attached to: counters
// persist across recovery attempts, which is what makes an exact-
// occurrence crash rule one-shot (the counter has moved past n when the
// replacement world re-executes the same points).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/fault_hooks.hpp"
#include "fault/fault_plan.hpp"

namespace zero::fault {

class FaultInjector final : public comm::FaultHooks {
 public:
  // `world_size` bounds the per-rank counter arrays; rules naming ranks
  // >= world_size simply never fire.
  FaultInjector(FaultPlan plan, int world_size);

  void AtPoint(int rank, const char* site) override;
  comm::FaultSendVerdict OnSend(int src_rank, int dst_rank,
                                std::uint64_t tag,
                                std::size_t bytes) override;
  void BindWorld(comm::World* world) override { world_ = world; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // ---- injection ledger (for tests and the detection-latency bench) ----
  // Count of faults actually executed, by kind.
  [[nodiscard]] std::uint64_t InjectedCount(FaultKind kind) const;
  // Trace timestamp of the first lethal (crash/hang) injection; 0 until
  // one fires. Detection latency = survivor's error time minus this.
  [[nodiscard]] std::uint64_t FirstLethalNs() const {
    return first_lethal_ns_.load(std::memory_order_acquire);
  }

 private:
  // True (and counts the event) when rule `i` fires for this trigger.
  bool Fires(std::size_t rule_index, const FaultRule& rule, int rank);

  FaultPlan plan_;
  int world_size_;
  // counters_[rule * world_size + rank]
  std::unique_ptr<std::atomic<std::uint64_t>[]> counters_;
  std::atomic<std::uint64_t> injected_by_kind_[6] = {};
  std::atomic<std::uint64_t> first_lethal_ns_{0};
  comm::World* world_ = nullptr;
};

}  // namespace zero::fault
