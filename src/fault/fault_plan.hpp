// Declarative, seeded fault schedules.
//
// A FaultPlan is a list of rules plus a seed, parsed from a compact spec
// string (also accepted via the ZERO_FAULT environment variable):
//
//   spec     := [ "seed=" N ";" ] rule { ";" rule }
//   rule     := kind "@" rank [ ":" site ] [ "#" occurrence ]
//                                [ "%" probability ] [ "=" duration ]
//   kind     := "crash" | "hang" | "slow" | "drop" | "delay" | "dup"
//   site     := "step" | "collective" | "barrier" (point faults only)
//   duration := number [ "ns" | "us" | "ms" | "s" ]   (default ms)
//
// Examples:
//   crash@1:step#6          rank 1 dies the 6th time it reaches a step
//   hang@2:collective#3     rank 2 freezes at its 3rd collective
//   slow@0:step=20ms        rank 0 stalls 20 ms at every step (straggler)
//   drop@3%0.01             1% of rank 3's sends vanish
//   delay@0=2ms%0.5         half of rank 0's sends are delayed 2 ms
//   dup@1#10                rank 1's 10th send is deposited twice
//   seed=7;crash@0:step#3;drop@1%0.02
//
// Occurrence is an exact match (fires on the n-th trigger, not every
// trigger from n on), so after a recovery restart a consumed crash rule
// does not re-fire: the injector's counters persist across attempts and
// have moved past n. occurrence 0 (default) means every match, filtered
// only by probability. Probability draws come from a per-(rule, rank)
// splitmix64 stream seeded from the plan seed, so a schedule replays
// identically for a given seed regardless of thread interleaving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zero::fault {

enum class FaultKind : unsigned char {
  kCrash,  // point: throw InjectedFaultError
  kHang,   // point: block until the world aborts, then unwind
  kSlow,   // point: sleep `duration` (straggler)
  kDrop,   // send: message never deposited
  kDelay,  // send: sender stalls `duration` before depositing
  kDup,    // send: message deposited twice
};

[[nodiscard]] const char* ToString(FaultKind kind);
[[nodiscard]] bool IsPointFault(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kCrash;
  int rank = 0;                  // global rank the rule applies to
  std::string site;              // point faults: "" = any site
  std::uint64_t occurrence = 0;  // exact n-th trigger; 0 = every match
  double probability = 1.0;      // applied after the occurrence filter
  std::uint64_t duration_ns = 0; // slow / delay / hang-release budget

  [[nodiscard]] std::string ToSpec() const;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }
  [[nodiscard]] std::string ToSpec() const;

  // Throws zero::Error on malformed specs. An empty/whitespace spec
  // yields an empty plan.
  static FaultPlan Parse(const std::string& spec);
  // Reads ZERO_FAULT; empty plan when unset.
  static FaultPlan FromEnv();
};

}  // namespace zero::fault
