#include "fault/fault_plan.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace zero::fault {
namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

FaultKind ParseKind(const std::string& name, const std::string& spec) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "hang") return FaultKind::kHang;
  if (name == "slow") return FaultKind::kSlow;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "delay") return FaultKind::kDelay;
  if (name == "dup") return FaultKind::kDup;
  throw Error("ZERO_FAULT: unknown fault kind '" + name + "' in '" + spec +
              "'");
}

std::uint64_t ParseDurationNs(const std::string& text,
                              const std::string& spec) {
  ZERO_CHECK(!text.empty(), "ZERO_FAULT: empty duration in '" + spec + "'");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw Error("ZERO_FAULT: bad duration '" + text + "' in '" + spec + "'");
  }
  const std::string unit = text.substr(pos);
  double scale = 1e6;  // bare numbers are milliseconds
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms" || unit.empty()) {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    throw Error("ZERO_FAULT: bad duration unit '" + unit + "' in '" + spec +
                "'");
  }
  ZERO_CHECK(value >= 0.0, "ZERO_FAULT: negative duration in '" + spec + "'");
  return static_cast<std::uint64_t>(value * scale);
}

FaultRule ParseRule(const std::string& text, const std::string& spec) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) {
    throw Error("ZERO_FAULT: rule '" + text + "' is missing '@rank'");
  }
  FaultRule rule;
  rule.kind = ParseKind(text.substr(0, at), spec);

  // Everything after '@' is rank then optional :site #occ %prob =dur in
  // any order (each introduced by its own marker character).
  std::string rest = text.substr(at + 1);
  // Rank: digits up to the first marker.
  std::size_t pos = 0;
  while (pos < rest.size() && (std::isdigit(rest[pos]) != 0)) ++pos;
  if (pos == 0) {
    throw Error("ZERO_FAULT: rule '" + text + "' has no rank after '@'");
  }
  rule.rank = std::stoi(rest.substr(0, pos));

  while (pos < rest.size()) {
    const char marker = rest[pos];
    std::size_t end = rest.find_first_of(":#%=", pos + 1);
    if (end == std::string::npos) end = rest.size();
    const std::string field = rest.substr(pos + 1, end - pos - 1);
    switch (marker) {
      case ':':
        ZERO_CHECK(IsPointFault(rule.kind),
                   "ZERO_FAULT: site only applies to point faults "
                   "(crash/hang/slow): '" +
                       text + "'");
        rule.site = field;
        break;
      case '#':
        try {
          rule.occurrence = std::stoull(field);
        } catch (const std::exception&) {
          throw Error("ZERO_FAULT: bad occurrence '" + field + "' in '" +
                      text + "'");
        }
        break;
      case '%':
        try {
          rule.probability = std::stod(field);
        } catch (const std::exception&) {
          throw Error("ZERO_FAULT: bad probability '" + field + "' in '" +
                      text + "'");
        }
        ZERO_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0,
                   "ZERO_FAULT: probability must be in [0,1]: '" + text + "'");
        break;
      case '=':
        rule.duration_ns = ParseDurationNs(field, spec);
        break;
      default:
        throw Error("ZERO_FAULT: unexpected '" + std::string(1, marker) +
                    "' in '" + text + "'");
    }
    pos = end;
  }
  return rule;
}

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDup: return "dup";
  }
  return "?";
}

bool IsPointFault(FaultKind kind) {
  return kind == FaultKind::kCrash || kind == FaultKind::kHang ||
         kind == FaultKind::kSlow;
}

std::string FaultRule::ToSpec() const {
  std::ostringstream out;
  out << ToString(kind) << '@' << rank;
  if (!site.empty()) out << ':' << site;
  if (occurrence != 0) out << '#' << occurrence;
  if (probability != 1.0) out << '%' << probability;
  if (duration_ns != 0) out << '=' << duration_ns << "ns";
  return out.str();
}

std::string FaultPlan::ToSpec() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const FaultRule& rule : rules) out << ';' << rule.ToSpec();
  return out.str();
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : SplitOn(spec, ';')) {
    const std::string part = Trim(raw);
    if (part.empty()) continue;
    if (part.rfind("seed=", 0) == 0) {
      try {
        plan.seed = std::stoull(part.substr(5));
      } catch (const std::exception&) {
        throw Error("ZERO_FAULT: bad seed in '" + spec + "'");
      }
      continue;
    }
    plan.rules.push_back(ParseRule(part, spec));
  }
  return plan;
}

FaultPlan FaultPlan::FromEnv() {
  const char* spec = std::getenv("ZERO_FAULT");
  if (spec == nullptr) return {};
  return Parse(spec);
}

}  // namespace zero::fault
