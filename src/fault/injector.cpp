#include "fault/injector.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "comm/world.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zero::fault {
namespace {

// A hang releases when the world aborts (peers detected the silence); the
// cap keeps a misconfigured run (no comm deadline -> nobody detects the
// hang) from deadlocking forever.
constexpr std::uint64_t kDefaultHangCapNs = 60ull * 1000 * 1000 * 1000;

void CountInjected(FaultKind kind) {
  static obs::Counter& injected = obs::Metrics().counter("fault.injected");
  injected.Add();
  (void)kind;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int world_size)
    : plan_(std::move(plan)), world_size_(world_size) {
  ZERO_CHECK(world_size >= 1, "injector needs a positive world size");
  const std::size_t n =
      plan_.rules.size() * static_cast<std::size_t>(world_size);
  counters_.reset(new std::atomic<std::uint64_t>[n > 0 ? n : 1]);
  for (std::size_t i = 0; i < (n > 0 ? n : 1); ++i) {
    counters_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint64_t FaultInjector::InjectedCount(FaultKind kind) const {
  return injected_by_kind_[static_cast<std::size_t>(kind)].load(
      std::memory_order_acquire);
}

bool FaultInjector::Fires(std::size_t rule_index, const FaultRule& rule,
                          int rank) {
  const std::size_t idx =
      rule_index * static_cast<std::size_t>(world_size_) +
      static_cast<std::size_t>(rank);
  const std::uint64_t count =
      counters_[idx].fetch_add(1, std::memory_order_relaxed) + 1;
  if (rule.occurrence != 0 && count != rule.occurrence) return false;
  if (rule.probability < 1.0) {
    // Stateless deterministic draw: same (seed, rule, rank, count) ->
    // same verdict, independent of scheduling.
    Rng draw(plan_.seed ^ (0x9E3779B97F4A7C15ull * (rule_index + 1)) ^
             (0xC2B2AE3D27D4EB4Full * static_cast<std::uint64_t>(rank + 1)) ^
             count);
    if (draw.NextDouble() >= rule.probability) return false;
  }
  injected_by_kind_[static_cast<std::size_t>(rule.kind)].fetch_add(
      1, std::memory_order_acq_rel);
  CountInjected(rule.kind);
  return true;
}

void FaultInjector::AtPoint(int rank, const char* site) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (!IsPointFault(rule.kind)) continue;
    if (rule.rank != rank || rank >= world_size_) continue;
    if (!rule.site.empty() && rule.site != site) continue;
    if (!Fires(i, rule, rank)) continue;

    switch (rule.kind) {
      case FaultKind::kCrash: {
        std::uint64_t expected = 0;
        first_lethal_ns_.compare_exchange_strong(expected, obs::TraceNowNs(),
                                                 std::memory_order_acq_rel);
        ZLOG_WARN << "injected crash on rank " << rank << " at '" << site
                  << "'";
        throw InjectedFaultError("injected crash on rank " +
                                 std::to_string(rank) + " at '" + site + "'");
      }
      case FaultKind::kHang: {
        std::uint64_t expected = 0;
        first_lethal_ns_.compare_exchange_strong(expected, obs::TraceNowNs(),
                                                 std::memory_order_acq_rel);
        ZLOG_WARN << "injected hang on rank " << rank << " at '" << site
                  << "'";
        const std::uint64_t cap =
            rule.duration_ns != 0 ? rule.duration_ns : kDefaultHangCapNs;
        const std::uint64_t start = obs::TraceNowNs();
        while (obs::TraceNowNs() - start < cap) {
          if (world_ != nullptr && world_->health().AbortRequested()) break;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        // The hung rank is gone as far as the step is concerned; unwind
        // with the root-cause type so recovery attributes it correctly.
        throw InjectedFaultError("injected hang on rank " +
                                 std::to_string(rank) + " at '" + site + "'");
      }
      case FaultKind::kSlow:
        if (rule.duration_ns != 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(rule.duration_ns));
        }
        break;
      default:
        break;
    }
  }
}

comm::FaultSendVerdict FaultInjector::OnSend(int src_rank, int /*dst_rank*/,
                                             std::uint64_t /*tag*/,
                                             std::size_t /*bytes*/) {
  comm::FaultSendVerdict verdict;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (IsPointFault(rule.kind)) continue;
    if (rule.rank != src_rank || src_rank >= world_size_) continue;
    if (!Fires(i, rule, src_rank)) continue;

    switch (rule.kind) {
      case FaultKind::kDrop:
        verdict.drop = true;
        break;
      case FaultKind::kDelay:
        verdict.delay_ns += rule.duration_ns;
        break;
      case FaultKind::kDup:
        verdict.duplicates += 1;
        break;
      default:
        break;
    }
  }
  return verdict;
}

}  // namespace zero::fault
