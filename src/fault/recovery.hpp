// Elastic checkpoint-based recovery (the third leg of the fault
// subsystem, after injection and detection).
//
// The model is fail-stop with whole-step abort: once any rank is dead,
// the in-flight synchronous step cannot complete, every survivor unwinds
// with a typed CommError, and World::TryRun returns the per-rank
// outcomes. The RecoveryCoordinator then runs the world-per-attempt
// loop:
//
//   1. run an attempt on a fresh World (ranks are threads, so a "node
//      replacement" is just a new thread set);
//   2. on failure, classify ranks: genuinely failed (root-cause error,
//      e.g. InjectedFaultError) vs collateral (StepAborted/PeerFailed/
//      CommTimeout survivors);
//   3. choose the next world size by policy — kRestartRank keeps Nd (the
//      failed rank is "replaced", trajectory stays bit-exact), kShrink
//      drops to the survivor count Nd' (elastic: the Nd-independent
//      TrainingState re-partitions onto fewer ranks; the data schedule
//      changes, so the trajectory is equivalent-but-not-identical);
//   4. resume from the CheckpointVault's latest state (or from scratch
//      when no checkpoint was ever stored) and repeat until a clean run
//      or the attempt budget is spent.
//
// The coordinator is deliberately engine-agnostic: the caller's RankBody
// builds whatever engine it wants, imports `resume_state` when present,
// skips the already-consumed part of its data schedule, and offers
// checkpoints back through the vault.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "comm/fault_hooks.hpp"
#include "comm/world.hpp"

namespace zero::fault {

// Latest-wins store of one serialized TrainingState. Thread-safe: during
// a step all ranks export collectively but only one deposits.
class CheckpointVault {
 public:
  void Store(std::int64_t step, std::vector<std::byte> bytes);
  [[nodiscard]] bool HasCheckpoint() const;
  // -1 when empty; otherwise the number of completed steps the stored
  // state reflects.
  [[nodiscard]] std::int64_t LatestStep() const;
  [[nodiscard]] std::vector<std::byte> LatestBytes() const;

 private:
  mutable std::mutex mutex_;
  std::int64_t step_ = -1;
  std::vector<std::byte> bytes_;
};

enum class RestartPolicy : unsigned char {
  kRestartRank,        // replace the dead rank; same Nd, bit-exact replay
  kShrinkToSurvivors,  // continue at Nd' = survivors (elastic)
};

struct RecoveryOptions {
  int world_size = 2;
  int max_attempts = 4;
  RestartPolicy policy = RestartPolicy::kRestartRank;
  int min_world_size = 1;  // shrink policy gives up below this
  // Passed to World::SetCommDeadline each attempt (0 disables heartbeat
  // detection — only thrown exceptions then surface failures).
  std::chrono::nanoseconds comm_deadline = std::chrono::milliseconds(100);
  // Optional injection hooks, attached to every attempt's world. The
  // injector's counters persist across attempts, so exact-occurrence
  // rules fire once (see injector.hpp).
  comm::FaultHooks* hooks = nullptr;
};

// What one attempt saw. `failed_ranks` holds only root-cause failures;
// survivors that unwound with collateral StepAborted/PeerFailed errors
// are not listed.
struct AttemptInfo {
  int world_size = 0;
  std::int64_t resume_step = 0;
  bool ok = false;
  std::string error;
  std::vector<int> failed_ranks;
  // Flight-recorder bundle for this attempt (under attempt-<k>/ below
  // the recorder's root); "" when the recorder was disarmed.
  std::string postmortem_dir;
};

struct RecoveryReport {
  bool succeeded = false;
  int attempts = 0;
  int final_world_size = 0;
  std::vector<AttemptInfo> history;

  // Convenience for tests: total distinct failures recovered from.
  [[nodiscard]] int failures() const {
    int n = 0;
    for (const AttemptInfo& a : history) n += a.ok ? 0 : 1;
    return n;
  }
};

// Per-attempt inputs handed to the rank body.
struct AttemptContext {
  int index = 0;       // 0-based attempt number
  int world_size = 0;  // this attempt's Nd
  std::int64_t resume_step = 0;  // completed steps in resume_state
  // Serialized TrainingState to import, null on a from-scratch start.
  const std::vector<std::byte>* resume_state = nullptr;
};

class RecoveryCoordinator {
 public:
  explicit RecoveryCoordinator(RecoveryOptions options);

  using RankBody =
      std::function<void(comm::RankContext&, const AttemptContext&)>;

  // Runs attempts until one completes cleanly or the budget is spent.
  RecoveryReport Train(const RankBody& body);

  [[nodiscard]] CheckpointVault& vault() { return vault_; }
  [[nodiscard]] const RecoveryOptions& options() const { return opts_; }

 private:
  RecoveryOptions opts_;
  CheckpointVault vault_;
};

}  // namespace zero::fault
