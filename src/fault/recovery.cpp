#include "fault/recovery.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace zero::fault {

void CheckpointVault::Store(std::int64_t step, std::vector<std::byte> bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (step <= step_) return;  // stale offer (e.g. replayed step)
  step_ = step;
  bytes_ = std::move(bytes);
}

bool CheckpointVault::HasCheckpoint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return step_ >= 0;
}

std::int64_t CheckpointVault::LatestStep() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return step_;
}

std::vector<std::byte> CheckpointVault::LatestBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

RecoveryCoordinator::RecoveryCoordinator(RecoveryOptions options)
    : opts_(options) {
  ZERO_CHECK(opts_.world_size >= 1, "recovery needs a positive world size");
  ZERO_CHECK(opts_.max_attempts >= 1, "recovery needs at least one attempt");
  ZERO_CHECK(opts_.min_world_size >= 1, "min world size must be positive");
}

RecoveryReport RecoveryCoordinator::Train(const RankBody& body) {
  RecoveryReport report;
  int world_size = opts_.world_size;

  for (int attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    ++report.attempts;
    AttemptInfo info;
    info.world_size = world_size;

    // Snapshot the resume point before launching: a checkpoint stored
    // mid-attempt must not retroactively change this attempt's schedule.
    std::vector<std::byte> resume_bytes;
    if (vault_.HasCheckpoint()) {
      info.resume_step = vault_.LatestStep();
      resume_bytes = vault_.LatestBytes();
    }

    comm::World world(world_size);
    world.SetCommDeadline(opts_.comm_deadline);
    if (opts_.hooks != nullptr) world.SetFaultHooks(opts_.hooks);

    AttemptContext actx;
    actx.index = attempt;
    actx.world_size = world_size;
    actx.resume_step = info.resume_step;
    actx.resume_state = resume_bytes.empty() ? nullptr : &resume_bytes;

    const comm::World::RunReport run = world.TryRun(
        [&](comm::RankContext& ctx) { body(ctx, actx); });

    if (run.ok()) {
      info.ok = true;
      report.history.push_back(std::move(info));
      report.succeeded = true;
      break;
    }

    static obs::Counter& recoveries =
        obs::Metrics().counter("fault.recovery_attempts");
    recoveries.Add();

    for (std::size_t r = 0; r < run.errors.size(); ++r) {
      if (run.errors[r] && !comm::IsSecondaryFault(run.errors[r])) {
        info.failed_ranks.push_back(static_cast<int>(r));
      }
    }
    if (std::exception_ptr root = run.RootCause()) {
      try {
        std::rethrow_exception(root);
      } catch (const std::exception& e) {
        info.error = e.what();
      } catch (...) {
        info.error = "unknown error";
      }
    }
    // The attempt's world has joined, so the trace rings are stable:
    // flush the black box into a per-attempt bundle before the next
    // world starts recording over it.
    if (obs::FlightRecorderEnabled()) {
      info.postmortem_dir = obs::FlushFlightRecorder(
          info.error, "attempt-" + std::to_string(attempt));
    }
    ZLOG_WARN << "attempt " << attempt << " failed (" << info.error
              << "), resuming from step "
              << (vault_.HasCheckpoint() ? vault_.LatestStep() : 0);
    report.history.push_back(info);

    if (opts_.policy == RestartPolicy::kShrinkToSurvivors) {
      const int lost =
          info.failed_ranks.empty() ? 1
                                    : static_cast<int>(info.failed_ranks.size());
      world_size -= lost;
      if (world_size < opts_.min_world_size) break;
    }
    // kRestartRank: same Nd; the dead thread is simply re-launched as
    // part of the fresh world.
  }

  report.final_world_size = world_size;
  return report;
}

}  // namespace zero::fault
