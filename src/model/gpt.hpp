// GPT-2-style transformer with manual backpropagation and optional
// Megatron-LM tensor model parallelism.
//
// This is the runnable counterpart of TransformerSpec: embedding (+
// positional), L pre-norm blocks (causal multi-head attention + GELU
// MLP, residual connections), final layer norm, tied output embedding,
// cross-entropy loss. All forward and backward math is implemented here
// against the fp32 kernels in tensor/kernels.hpp.
//
// Model parallelism follows Megatron's column/row split (Sec 8's
// baseline): Wqkv and Wfc are column-parallel (each MP rank owns a head
// slice / inner slice), Wattn_out and Wproj are row-parallel, and each
// block performs exactly two all-reduces in forward, two in backward,
// and two more when recomputing under activation checkpointing — the
// communication pattern the paper's Sec 8 analysis counts.
//
// As a FlatParamModel, the *local* parameter shard is one flat vector
// with units {embedding, block 1, ..., block L, final norm}; ZeRO-DP
// engines partition that vector across the data-parallel group.
#pragma once

#include <memory>
#include <optional>

#include "alloc/caching_allocator.hpp"
#include "comm/communicator.hpp"
#include "model/checkpoint_store.hpp"
#include "model/flat_model.hpp"
#include "tensor/tensor.hpp"

namespace zero::model {

class ServingWeights;   // model/serving_weights.hpp
class DecodeParamAccess;  // internal decode parameter seam (gpt.cpp)

struct GptConfig {
  std::int64_t vocab = 64;
  std::int64_t seq = 16;
  std::int64_t hidden = 32;
  std::int64_t layers = 2;
  std::int64_t heads = 2;
  float ln_eps = 1e-5f;
  bool activation_checkpointing = false;

  [[nodiscard]] std::int64_t inner() const { return 4 * hidden; }
};

// Per-rank execution resources. All optional: a null device means heap
// tensors (reference/single-process runs); a null mp communicator means
// MP degree 1.
struct GptSession {
  alloc::CachingAllocator* device = nullptr;
  CheckpointStore* checkpoints = nullptr;  // required when checkpointing
  comm::Communicator* mp = nullptr;
};

// One token of a packed serving step. Tokens for the same sequence must
// be contiguous in the span with consecutive positions; the serve
// scheduler packs any mix of prefill chunks (many tokens per sequence)
// and decode steps (one token per sequence) into a single span.
struct DecodeToken {
  std::int32_t token = 0;
  std::int32_t slot = 0;    // KV-cache sequence slot (serve-layer handle)
  std::int64_t pos = 0;     // absolute position within the sequence
};

// Paged per-sequence K/V storage, provided by the serve layer. Rows hold
// this rank's local heads only (hidden / mp floats, head-major — the
// same column order as a qkv projection row), so an MP-sharded engine
// caches exactly its slice. Row pointers need not be contiguous across
// positions: the serve pool hands out block-granular storage.
class KvCache {
 public:
  virtual ~KvCache() = default;
  virtual float* KRow(std::int32_t slot, std::int64_t layer,
                      std::int64_t pos) = 0;
  virtual float* VRow(std::int32_t slot, std::int64_t layer,
                      std::int64_t pos) = 0;
};

class GptModel final : public FlatParamModel {
 public:
  GptModel(GptConfig config, GptSession session);

  [[nodiscard]] const ParamLayout& layout() const override {
    return layout_;
  }

  // Initializes this rank's *shard* such that the implied global model is
  // identical for every MP degree (row streams are seeded by global row
  // index, and row-parallel shards slice the global row) — this is what
  // lets tests compare MP=1 against MP=2 losses exactly.
  void InitParameters(std::span<float> flat,
                      std::uint64_t seed) const override;

  float Step(const Batch& batch, ParamProvider& params,
             GradSink& grads) override;

  // Forward-only pass over full sequences: fills `logits_out` ([rows*seq,
  // vocab]) and returns the mean cross-entropy loss when targets are
  // present (0 otherwise). Runs the exact same kernel sequence as Step's
  // forward half, so its logits are the bitwise reference the serving
  // regression tests compare incremental decode against.
  float EvalForwardLogits(const Batch& batch, ParamProvider& params,
                          std::span<float> logits_out);

  // Packed incremental decode: one batched block forward over all tokens
  // of a serving step. Appends every token's K/V rows to `kv`, attends
  // against the cached prefix, and writes logits for the *last* token of
  // each sequence group into consecutive rows of `logits_out` (group
  // order). Returns the number of groups. Attention uses serial
  // accumulation in cached-key order, which keeps greedy-decode logits
  // bit-exact vs EvalForwardLogits whenever the projection GEMMs take
  // per-element-identical paths (see DESIGN.md §16).
  int DecodeForward(std::span<const DecodeToken> tokens,
                    ParamProvider& params, KvCache& kv,
                    std::span<float> logits_out);

  // Same forward over engine-resident packed weights (a GEMM-backend
  // encoding of the local shard). The "fp32" backend runs the identical
  // kernels on identical floats, so this overload is memcmp-bit-exact
  // with the provider one; reduced-precision backends keep greedy decode
  // equivalent within the bounded logit error DESIGN.md §16 documents.
  int DecodeForward(std::span<const DecodeToken> tokens,
                    const ServingWeights& weights, KvCache& kv,
                    std::span<float> logits_out);

  // Floats per cached K (or V) row on this rank: hidden / mp.
  [[nodiscard]] std::int64_t kv_row_floats() const {
    return config_.hidden / mp_size();
  }

  // Maps a full (MP-degree-1 layout) flat parameter vector — what the
  // trainer checkpoints under mp=1 — onto this rank's local shard,
  // applying the Megatron column/row slicing rules per matrix.
  void ImportFullParams(std::span<const float> full,
                        std::span<float> local) const;

  // Parameter count of the mp=1 layout for `config` (checkpoint size).
  [[nodiscard]] static std::int64_t FullParamNumel(const GptConfig& config);

  [[nodiscard]] const GptConfig& config() const { return config_; }
  [[nodiscard]] int mp_size() const;
  [[nodiscard]] int mp_rank() const;

 private:
  // Internal seam the two DecodeForward overloads share: parameter
  // access abstracted to vector pointers, weight GEMMs and embedding-row
  // decodes, so the forward body is written once and the provider path
  // stays bitwise what it was before packed weights existed.
  int DecodeForwardImpl(std::span<const DecodeToken> tokens,
                        DecodeParamAccess& access, KvCache& kv,
                        std::span<float> logits_out);

  struct LayerOffsets {
    std::int64_t ln1_g, ln1_b;
    std::int64_t w_qkv, b_qkv;  // column-parallel: [3*H/m, H], [3*H/m]
    std::int64_t w_o, b_o;      // row-parallel: [H, H/m], bias [H] replicated
    std::int64_t ln2_g, ln2_b;
    std::int64_t w_fc, b_fc;    // column-parallel: [I/m, H], [I/m]
    std::int64_t w_pr, b_pr;    // row-parallel: [H, I/m], bias [H] replicated
  };

  // Everything backward needs from one block's forward.
  struct LayerStash {
    tensor::Tensor x_in;   // [BS, H] block input (or checkpoint handle)
    std::int64_t ckpt_handle = -1;
    tensor::Tensor ln1_mean, ln1_rstd;  // [BS]
    tensor::Tensor a;      // [BS, H] ln1 output
    tensor::Tensor q, k, v;  // [B*lh, S, hd]
    tensor::Tensor att;    // [B*lh, S, S] softmax probabilities
    tensor::Tensor ctx;    // [BS, H/m]
    tensor::Tensor x_mid;  // [BS, H] after first residual
    tensor::Tensor ln2_mean, ln2_rstd;
    tensor::Tensor b2;     // [BS, H] ln2 output
    tensor::Tensor h1;     // [BS, I/m] pre-GELU
    tensor::Tensor f;      // [BS, I/m] GELU output
    void DropAll();
  };

  [[nodiscard]] tensor::Tensor NewAct(tensor::Shape shape) const;
  [[nodiscard]] std::int64_t LocalHeads() const;

  // Forward one block: consumes x_in ([BS, H]), produces x_out, filling
  // `st`. `unit_params` is the block's local parameter span.
  void BlockForward(std::span<const float> unit_params, const float* x_in,
                    float* x_out, std::int64_t bs, LayerStash& st) const;

  // Backward one block given d_out; produces d_in (may alias d_out) and
  // accumulates the block's parameter gradients into `ugrad`.
  void BlockBackward(std::span<const float> unit_params, const LayerStash& st,
                     const float* x_in, const float* d_out, float* d_in,
                     std::int64_t bs, std::span<float> ugrad) const;

  void MpAllReduce(float* data, std::int64_t n) const;

  GptConfig config_;
  GptSession session_;
  ParamLayout layout_;
  LayerOffsets lo_;               // offsets within a block unit
  std::int64_t off_wte_ = 0;      // within unit 0
  std::int64_t off_wpe_ = 0;
  std::int64_t off_lnf_g_ = 0;    // within unit L+1
  std::int64_t off_lnf_b_ = 0;
};

}  // namespace zero::model
