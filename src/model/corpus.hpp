// Synthetic text corpus for the convergence experiment (Figure 5).
//
// The paper trained Turing-NLG on a private web corpus and reported
// WebText-103 validation perplexity. We cannot ship that data; what the
// figure actually demonstrates is "the larger model ZeRO enables reaches
// lower perplexity over training". Any learnable, non-trivially-entropic
// sequence distribution exercises the same code path, so we generate one:
// a character-level order-2 Markov chain whose transition table is built
// from a deterministic seed. Its entropy sits between "memorizable" and
// "random", so model capacity shows up as measurably lower perplexity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "model/flat_model.hpp"

namespace zero::model {

class MarkovCorpus {
 public:
  // vocab symbols; larger `branching` -> higher entropy -> harder task.
  // `table_seed` fixes the language (the transition table); `stream_seed`
  // fixes which samples this reader draws from it. Data-parallel ranks
  // must share table_seed (same distribution) and differ in stream_seed
  // (disjoint shards), exactly like sharding one dataset.
  MarkovCorpus(std::int64_t vocab, int branching, std::uint64_t table_seed,
               std::uint64_t stream_seed = 0);

  // Generates `count` tokens continuing the internal state.
  [[nodiscard]] std::vector<std::int32_t> Sample(std::int64_t count);

  // A language-modeling batch: inputs are tokens, targets the next token.
  [[nodiscard]] Batch NextBatch(std::int64_t batch, std::int64_t seq);

  [[nodiscard]] std::int64_t vocab() const { return vocab_; }

 private:
  std::int32_t NextToken();

  std::int64_t vocab_;
  int branching_;
  Rng rng_;
  std::vector<std::int32_t> successors_;  // [vocab*vocab, branching] table
  std::int32_t prev1_ = 0;
  std::int32_t prev2_ = 0;
};

}  // namespace zero::model
