#include "model/mlp.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/kernels.hpp"

namespace zero::model {

MlpModel::MlpModel(MlpConfig config) : config_(config) {
  const auto& c = config_;
  ZERO_CHECK(c.vocab >= 2 && c.embed >= 1 && c.hidden >= 1 && c.classes >= 2,
             "degenerate MLP config");
  off_embed_ = layout_.Add("embed", c.vocab * c.embed, 0);
  const std::int64_t base1 = layout_.total_numel();
  off_w1_ = layout_.Add("w1", c.hidden * c.embed, 1) - base1;
  off_b1_ = layout_.Add("b1", c.hidden, 1) - base1;
  const std::int64_t base2 = layout_.total_numel();
  off_w2_ = layout_.Add("w2", c.classes * c.hidden, 2) - base2;
  off_b2_ = layout_.Add("b2", c.classes, 2) - base2;
}

void MlpModel::InitParameters(std::span<float> flat,
                              std::uint64_t seed) const {
  ZERO_CHECK(flat.size() == static_cast<std::size_t>(layout_.total_numel()),
             "init buffer size mismatch");
  Rng rng(seed);
  const auto [e_begin, e_end] = layout_.UnitRange(0);
  const auto [h_begin, h_end] = layout_.UnitRange(1);
  const auto [c_begin, c_end] = layout_.UnitRange(2);
  for (std::int64_t i = e_begin; i < e_end; ++i) {
    flat[static_cast<std::size_t>(i)] = rng.NextGaussian() * 0.2f;
  }
  // Weights: He-style init; biases zero (they are the tail of each unit).
  for (std::int64_t i = h_begin; i < h_begin + config_.hidden * config_.embed;
       ++i) {
    flat[static_cast<std::size_t>(i)] =
        rng.NextGaussian() *
        std::sqrt(2.0f / static_cast<float>(config_.embed));
  }
  for (std::int64_t i = h_begin + config_.hidden * config_.embed; i < h_end;
       ++i) {
    flat[static_cast<std::size_t>(i)] = 0.0f;
  }
  for (std::int64_t i = c_begin;
       i < c_begin + config_.classes * config_.hidden; ++i) {
    flat[static_cast<std::size_t>(i)] =
        rng.NextGaussian() *
        std::sqrt(2.0f / static_cast<float>(config_.hidden));
  }
  for (std::int64_t i = c_begin + config_.classes * config_.hidden; i < c_end;
       ++i) {
    flat[static_cast<std::size_t>(i)] = 0.0f;
  }
}

float MlpModel::Step(const Batch& batch, ParamProvider& params,
                     GradSink& grads) {
  namespace K = tensor;
  const auto& c = config_;
  const std::int64_t rows = batch.rows;
  const std::int64_t feats = batch.cols;
  ZERO_CHECK(rows >= 1 && feats >= 1, "empty batch");
  ZERO_CHECK(batch.inputs.size() ==
                 static_cast<std::size_t>(rows * feats),
             "batch inputs size mismatch");
  ZERO_CHECK(batch.targets.size() >= static_cast<std::size_t>(rows),
             "batch targets too small");

  // ---- forward ----
  // h0[r] = mean of embeddings of row r's features.
  std::vector<float> h0(static_cast<std::size_t>(rows * c.embed), 0.0f);
  {
    std::span<const float> e = params.AcquireUnit(0, Phase::kForward);
    const float* table = e.data() + off_embed_;
    const float inv = 1.0f / static_cast<float>(feats);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t f = 0; f < feats; ++f) {
        const std::int32_t id =
            batch.inputs[static_cast<std::size_t>(r * feats + f)];
        ZERO_CHECK(id >= 0 && id < c.vocab, "feature id out of range");
        const float* row = table + static_cast<std::int64_t>(id) * c.embed;
        float* dst = h0.data() + r * c.embed;
        for (std::int64_t d = 0; d < c.embed; ++d) dst[d] += row[d] * inv;
      }
    }
    params.ReleaseUnit(0, Phase::kForward);
  }

  std::vector<float> z1(static_cast<std::size_t>(rows * c.hidden));
  std::vector<float> h1(z1.size());
  {
    std::span<const float> u = params.AcquireUnit(1, Phase::kForward);
    K::Gemm(false, true, rows, c.hidden, c.embed, 1.0f, h0.data(),
            u.data() + off_w1_, 0.0f, z1.data());
    // Fused bias + ReLU; z1 keeps the pre-activation for backward.
    K::BiasReluForward(z1.data(), u.data() + off_b1_, z1.data(), h1.data(),
                       rows, c.hidden);
    params.ReleaseUnit(1, Phase::kForward);
  }

  std::vector<float> logits(static_cast<std::size_t>(rows * c.classes));
  std::vector<float> dlogits(logits.size());
  std::vector<std::int32_t> labels(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int32_t label =
        batch.targets[static_cast<std::size_t>(r * feats)];
    ZERO_CHECK(label >= 0 && label < c.classes, "label out of range");
    labels[static_cast<std::size_t>(r)] = label;
  }
  float loss;
  {
    std::span<const float> u = params.AcquireUnit(2, Phase::kForward);
    K::Gemm(false, true, rows, c.classes, c.hidden, 1.0f, h1.data(),
            u.data() + off_w2_, 0.0f, logits.data());
    K::AddBiasRows(logits.data(), u.data() + off_b2_, rows, c.classes);
    loss = K::CrossEntropyLoss(logits.data(), labels.data(), rows, c.classes,
                               dlogits.data());
    params.ReleaseUnit(2, Phase::kForward);
  }

  // ---- backward (reverse unit order) ----
  std::vector<float> dh1(h1.size());
  {
    std::span<const float> u = params.AcquireUnit(2, Phase::kBackward);
    std::vector<float> g2(
        static_cast<std::size_t>(layout_.UnitNumel(2)), 0.0f);
    K::Gemm(true, false, c.classes, c.hidden, rows, 1.0f, dlogits.data(),
            h1.data(), 1.0f, g2.data() + off_w2_);
    K::BiasGradFromRows(dlogits.data(), g2.data() + off_b2_, rows,
                        c.classes);
    K::Gemm(false, false, rows, c.hidden, c.classes, 1.0f, dlogits.data(),
            u.data() + off_w2_, 0.0f, dh1.data());
    params.ReleaseUnit(2, Phase::kBackward);
    grads.EmitUnitGrad(2, g2);
  }

  std::vector<float> dh0(h0.size());
  {
    std::span<const float> u = params.AcquireUnit(1, Phase::kBackward);
    std::vector<float> g1(
        static_cast<std::size_t>(layout_.UnitNumel(1)), 0.0f);
    // Fused ReLU backward (in place on dh1) + bias grad.
    K::BiasReluBackward(z1.data(), dh1.data(), dh1.data(),
                        g1.data() + off_b1_, rows, c.hidden);
    K::Gemm(true, false, c.hidden, c.embed, rows, 1.0f, dh1.data(),
            h0.data(), 1.0f, g1.data() + off_w1_);
    K::Gemm(false, false, rows, c.embed, c.hidden, 1.0f, dh1.data(),
            u.data() + off_w1_, 0.0f, dh0.data());
    params.ReleaseUnit(1, Phase::kBackward);
    grads.EmitUnitGrad(1, g1);
  }

  {
    std::vector<float> g0(
        static_cast<std::size_t>(layout_.UnitNumel(0)), 0.0f);
    const float inv = 1.0f / static_cast<float>(feats);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t f = 0; f < feats; ++f) {
        const std::int32_t id =
            batch.inputs[static_cast<std::size_t>(r * feats + f)];
        float* dst =
            g0.data() + off_embed_ + static_cast<std::int64_t>(id) * c.embed;
        const float* src = dh0.data() + r * c.embed;
        for (std::int64_t d = 0; d < c.embed; ++d) dst[d] += src[d] * inv;
      }
    }
    grads.EmitUnitGrad(0, g0);
  }
  return loss;
}

Batch MakeClassificationBatch(const MlpConfig& config, std::int64_t rows,
                              std::int64_t features_per_row,
                              std::uint64_t task_seed,
                              std::uint64_t batch_seed) {
  Batch b;
  b.rows = rows;
  b.cols = features_per_row;
  Rng data_rng = Rng(batch_seed).Split(7);
  // The task: each feature id carries a fixed (task-seeded) class vote;
  // the row's label is the plurality vote. Deterministic and learnable.
  Rng task_rng = Rng(task_seed).Split(3);
  std::vector<std::int32_t> votes(static_cast<std::size_t>(config.vocab));
  for (auto& v : votes) {
    v = static_cast<std::int32_t>(
        task_rng.NextBelow(static_cast<std::uint64_t>(config.classes)));
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    std::vector<std::int32_t> counts(static_cast<std::size_t>(config.classes),
                                     0);
    for (std::int64_t f = 0; f < features_per_row; ++f) {
      const auto id = static_cast<std::int32_t>(
          data_rng.NextBelow(static_cast<std::uint64_t>(config.vocab)));
      b.inputs.push_back(id);
      ++counts[static_cast<std::size_t>(votes[static_cast<std::size_t>(id)])];
    }
    std::int32_t label = 0;
    for (std::int32_t k = 1; k < config.classes; ++k) {
      if (counts[static_cast<std::size_t>(k)] >
          counts[static_cast<std::size_t>(label)]) {
        label = k;
      }
    }
    for (std::int64_t f = 0; f < features_per_row; ++f) {
      b.targets.push_back(label);
    }
  }
  return b;
}

}  // namespace zero::model
