// QuadModel: the smallest possible FlatParamModel, used to verify the
// ZeRO-DP engine mechanics exactly.
//
// Loss = 0.5 * || p - t(batch) ||^2 where t is a deterministic target
// derived from the batch contents, so grad = p - t elementwise. Gradients
// and the optimizer trajectory are exactly computable, which lets engine
// tests assert bitwise agreement between stages at fp32 and check the
// Acquire/Release/Emit protocol (ordering, single-emission, nesting)
// without transformer numerics in the way.
#pragma once

#include "model/flat_model.hpp"

namespace zero::model {

class QuadModel final : public FlatParamModel {
 public:
  // `numel` parameters split into `units` roughly equal contiguous units.
  QuadModel(std::int64_t numel, int units);

  [[nodiscard]] const ParamLayout& layout() const override {
    return layout_;
  }
  void InitParameters(std::span<float> flat,
                      std::uint64_t seed) const override;
  float Step(const Batch& batch, ParamProvider& params,
             GradSink& grads) override;

  // The target vector a given batch induces (exposed for exact tests).
  [[nodiscard]] std::vector<float> TargetFor(const Batch& batch) const;

 private:
  ParamLayout layout_;
};

}  // namespace zero::model
