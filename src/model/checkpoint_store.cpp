#include "model/checkpoint_store.hpp"

#include <cstring>

#include "common/error.hpp"

namespace zero::model {

std::int64_t DeviceCheckpointStore::Save(int layer,
                                         std::span<const float> data) {
  (void)layer;
  Entry e;
  e.numel = data.size();
  if (device_ != nullptr) {
    e.block = device_->Malloc(data.size_bytes());
    std::memcpy(e.block.data(), data.data(), data.size_bytes());
  } else {
    e.heap.assign(data.begin(), data.end());
  }
  entries_.push_back(std::move(e));
  return static_cast<std::int64_t>(entries_.size()) - 1;
}

void DeviceCheckpointStore::Load(std::int64_t handle, std::span<float> out) {
  auto& e = entries_.at(static_cast<std::size_t>(handle));
  ZERO_CHECK(e.numel == out.size(), "checkpoint size mismatch");
  ZERO_CHECK(e.numel > 0, "checkpoint already consumed");
  if (device_ != nullptr) {
    std::memcpy(out.data(), e.block.data(), out.size_bytes());
    e.block.Release();
  } else {
    std::memcpy(out.data(), e.heap.data(), out.size_bytes());
    e.heap.clear();
    e.heap.shrink_to_fit();
  }
  e.numel = 0;
}

void DeviceCheckpointStore::Reset() { entries_.clear(); }

}  // namespace zero::model
