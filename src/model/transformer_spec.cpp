#include "model/transformer_spec.hpp"

namespace zero::model {

std::int64_t TransformerSpec::NumParameters() const {
  const std::int64_t h = hidden;
  // Per block: qkv (3h^2 + 3h), attn out (h^2 + h), fc (4h^2 + 4h),
  // proj (4h^2 + h), two layer norms (4h)  => 12h^2 + 13h.
  const std::int64_t per_block = 12 * h * h + 13 * h;
  const std::int64_t embeddings = (vocab + seq) * h;
  const std::int64_t final_ln = 2 * h;
  return layers * per_block + embeddings + final_ln;
}

double TransformerSpec::ActivationElements(std::int64_t batch) const {
  // Footnote 3: ~12 * hidden * batch * seq * layers elements total.
  return 12.0 * static_cast<double>(hidden) * static_cast<double>(batch) *
         static_cast<double>(seq) * static_cast<double>(layers);
}

double TransformerSpec::ActivationBytes(std::int64_t batch) const {
  return 2.0 * ActivationElements(batch);  // fp16
}

double TransformerSpec::CheckpointBytes(std::int64_t batch) const {
  return 2.0 * static_cast<double>(batch) * static_cast<double>(seq) *
         static_cast<double>(hidden) * static_cast<double>(layers);
}

double TransformerSpec::ForwardFlops(std::int64_t batch) const {
  const double b = static_cast<double>(batch);
  const double s = static_cast<double>(seq);
  const double l = static_cast<double>(layers);
  const double h = static_cast<double>(hidden);
  const double v = static_cast<double>(vocab);
  // Dense GEMMs per block: qkv 6bsh^2, attn-out 2bsh^2, MLP 16bsh^2.
  const double dense = 24.0 * b * s * l * h * h;
  // Attention scores + context: 2 * (2 b s^2 h) per block plus softmax
  // (small) — 12 b s^2 l h covers q.k^T, att.v and overheads.
  const double attn = 12.0 * b * s * s * l * h;
  const double logits = 2.0 * b * s * h * v;
  return dense + attn + logits;
}

double TransformerSpec::StepFlops(std::int64_t batch,
                                  bool activation_checkpointing) const {
  const double fwd = ForwardFlops(batch);
  // backward ~= 2x forward; checkpointing adds one extra forward.
  return fwd * (activation_checkpointing ? 4.0 : 3.0);
}

ModelStateBytes PerDeviceModelStates(double psi, ZeroStage stage, int nd,
                                     double k) {
  ModelStateBytes m;
  const double d = static_cast<double>(nd);
  switch (stage) {
    case ZeroStage::kNone:
      m.parameters = 2.0 * psi;
      m.gradients = 2.0 * psi;
      m.optimizer = k * psi;
      break;
    case ZeroStage::kOs:
      m.parameters = 2.0 * psi;
      m.gradients = 2.0 * psi;
      m.optimizer = k * psi / d;
      break;
    case ZeroStage::kOsG:
      m.parameters = 2.0 * psi;
      m.gradients = 2.0 * psi / d;
      m.optimizer = k * psi / d;
      break;
    case ZeroStage::kOsGP:
      m.parameters = 2.0 * psi / d;
      m.gradients = 2.0 * psi / d;
      m.optimizer = k * psi / d;
      break;
  }
  return m;
}

}  // namespace zero::model
