// Activation-checkpoint storage interface.
//
// With activation checkpointing (Sec 3.2 / [7]) the model stores one
// tensor per transformer block — the block input — and recomputes
// everything else during backward. *Where* that checkpoint lives is
// exactly the design space of ZeRO-R (Sec 6.1/6.3):
//   - DeviceCheckpointStore: plain device allocation (the baseline);
//   - core::ArenaCheckpointStore: pre-allocated contiguous arena (MD);
//   - core::PartitionedCheckpointStore: 1/Nm slice per MP rank, gathered
//     on demand (Pa), optionally offloaded to host memory (Pa+cpu).
// The model only sees Save/Load; the policies live behind this interface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/caching_allocator.hpp"

namespace zero::model {

class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  // Stores a copy of `data` for layer `layer`; returns a handle.
  virtual std::int64_t Save(int layer, std::span<const float> data) = 0;

  // Fills `out` (same length as saved) and releases the stored copy.
  virtual void Load(std::int64_t handle, std::span<float> out) = 0;

  // Drops anything still stored (end of step).
  virtual void Reset() = 0;
};

// Baseline: each checkpoint is an ordinary device (or heap) allocation.
class DeviceCheckpointStore final : public CheckpointStore {
 public:
  // `device` may be null, in which case checkpoints live on the heap.
  explicit DeviceCheckpointStore(alloc::CachingAllocator* device)
      : device_(device) {}

  std::int64_t Save(int layer, std::span<const float> data) override;
  void Load(std::int64_t handle, std::span<float> out) override;
  void Reset() override;

 private:
  struct Entry {
    alloc::CachedBlock block;      // when device-backed
    std::vector<float> heap;       // when heap-backed
    std::size_t numel = 0;
  };
  alloc::CachingAllocator* device_;
  std::vector<Entry> entries_;
};

}  // namespace zero::model
