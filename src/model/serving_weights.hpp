// Engine-resident serving weights, packed per layout entry in a GEMM
// backend's native precision (tensor/gemm_backend.hpp).
//
// The trainer keeps everything fp32; the serving path re-encodes the
// local shard once at engine-load time. Matrix entries (the token
// embedding and every projection weight) are stored backend-native and
// consumed through the backend's fused GemmWeightT — no fp32 copy of a
// weight matrix is ever materialized after packing. Entries whose
// layout registered a [rows, cols] shape use the backend's shape-aware
// Matrix* encoding, which lets fp16 pre-pack weights into the GEMM's
// micro-panel layout once at load (bitwise-equal results, the strided
// per-call pack replaced by one contiguous bulk decode). Vector-class
// entries (biases, layer-norm gains, the positional table) stay fp32 in
// a sidecar: they are O(hidden) each, consumed by elementwise kernels,
// and keeping them exact means the "fp32" backend makes the whole
// serving forward memcmp-bit-exact with the provider-backed one.
//
// Lookups are keyed by (unit, unit-relative offset) — the coordinates
// GptModel::DecodeForward already uses for every parameter access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/flat_model.hpp"
#include "tensor/gemm_backend.hpp"

namespace zero::model {

class ServingWeights {
 public:
  ServingWeights() = default;

  // Packs this rank's local flat shard (`local.size() ==
  // layout.total_numel()`). The backend reference must outlive this
  // object (registry-owned backends always do).
  ServingWeights(const ParamLayout& layout, std::span<const float> local,
                 const tensor::GemmBackend& backend);

  [[nodiscard]] bool loaded() const { return backend_ != nullptr; }
  [[nodiscard]] const tensor::GemmBackend& backend() const;

  // Bytes held: packed matrices + fp32 sidecar.
  [[nodiscard]] std::size_t weight_bytes() const {
    return packed_.size() + f32_.size() * sizeof(float);
  }

  // fp32 pointer to the start of a vector-class entry; indexable across
  // the whole entry (the positional table is gathered by row offset).
  [[nodiscard]] const float* Vec(int unit, std::int64_t off) const;

  // C[m,n] = alpha * A[m,k] * W[n,k]^T + beta * C for the matrix entry
  // at (unit, off).
  void GemmWeightT(int unit, std::int64_t off, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha,
                   const float* a, float beta, float* c) const;

  // Decodes row `row` of the [rows, cols] matrix entry at (unit, off)
  // to fp32 (embedding gathers, equivalence tests).
  void DecodeRow(int unit, std::int64_t off, std::int64_t row,
                 std::int64_t cols, float* dst) const;

  // Storage class of a layout entry: matrices go backend-native,
  // everything else stays fp32.
  [[nodiscard]] static bool IsMatrixEntry(std::string_view name);

 private:
  struct Entry {
    std::int64_t numel = 0;
    bool matrix = false;
    // Matrix shape from the layout ([rows, cols], rows * cols == numel);
    // 0/0 when the layout registered no shape. Shaped entries go through
    // the backend's shape-aware Matrix* encoding (fp16 pre-packs GEMM
    // micro-panels at load), unshaped ones through the flat encoding.
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::size_t pos = 0;  // byte offset in packed_ / float offset in f32_
  };

  [[nodiscard]] const Entry& Lookup(int unit, std::int64_t off,
                                    bool want_matrix) const;

  const tensor::GemmBackend* backend_ = nullptr;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::vector<std::byte> packed_;  // matrix entries, 64-byte-aligned each
  std::vector<float> f32_;         // vector entries, contiguous
};

}  // namespace zero::model
