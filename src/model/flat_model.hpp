// The seam between models and ZeRO-DP engines.
//
// A FlatParamModel exposes its trainable state as one flat fp32 vector
// divided into *units* — contiguous ranges that are needed together
// (for the GPT model: the embedding tables, each transformer block, and
// the final norm). The training engine owns parameter storage; the model
// asks for a unit's parameters right before using them (AcquireUnit) and
// returns them right after (ReleaseUnit), and hands each unit's gradient
// to the engine the moment backward finishes producing it (EmitUnitGrad).
//
// This contract is exactly the "dynamic communication schedule" of
// Sec 4.1/7.2:
//   - stage 1/2 providers keep a full parameter copy, so Acquire is a
//     pointer lookup;
//   - the stage 3 provider stores only this rank's partition and
//     materializes a unit via broadcast/all-gather on Acquire, freeing it
//     on Release ("parameters can be discarded once used");
//   - the stage 2 sink reduce-scatters gradient buckets as they appear
//     during backward and releases the bucket memory afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace zero::model {

enum class Phase : unsigned char { kForward, kBackward, kRecompute };

struct ParamEntry {
  std::string name;
  std::int64_t offset = 0;  // into the flat vector
  std::int64_t numel = 0;
  int unit = 0;
  // Matrix shape ([rows, cols] row-major, rows * cols == numel) for
  // parameters consumed as GEMM operands; 0/0 for everything else.
  // Serving uses this to re-encode weight matrices into layouts that
  // need the shape at pack time (pre-packed fp16 GEMM panels).
  std::int64_t rows = 0;
  std::int64_t cols = 0;
};

class ParamLayout {
 public:
  // Registers a parameter in `unit`; units must be appended in
  // nondecreasing order so each unit is one contiguous range. Matrix
  // parameters pass their row-major [rows, cols] shape; vectors leave
  // the defaults.
  std::int64_t Add(std::string name, std::int64_t numel, int unit,
                   std::int64_t rows = 0, std::int64_t cols = 0);

  [[nodiscard]] std::int64_t total_numel() const { return total_; }
  [[nodiscard]] int num_units() const {
    return static_cast<int>(unit_ranges_.size());
  }
  [[nodiscard]] const std::vector<ParamEntry>& entries() const {
    return entries_;
  }
  // [begin, end) offsets of a unit in the flat vector.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> UnitRange(int u) const;
  [[nodiscard]] std::int64_t UnitNumel(int u) const {
    auto [b, e] = UnitRange(u);
    return e - b;
  }
  // Entry lookup by name (test convenience); throws if absent.
  [[nodiscard]] const ParamEntry& Find(const std::string& name) const;

 private:
  std::vector<ParamEntry> entries_;
  std::vector<std::pair<std::int64_t, std::int64_t>> unit_ranges_;
  std::int64_t total_ = 0;
};

// Supplied by the engine; used by the model during Step().
class ParamProvider {
 public:
  virtual ~ParamProvider() = default;
  // Returns unit `u`'s parameters; the span stays valid until the
  // matching ReleaseUnit. Acquire/Release must nest per unit.
  virtual std::span<const float> AcquireUnit(int u, Phase phase) = 0;
  virtual void ReleaseUnit(int u, Phase phase) = 0;
};

class GradSink {
 public:
  virtual ~GradSink() = default;
  // Called exactly once per unit per step, in the order backward
  // completes units (highest unit first for sequential models; the
  // embedding unit, if its gradient accumulates across the whole
  // backward, arrives last).
  virtual void EmitUnitGrad(int u, std::span<const float> grad) = 0;
};

// A training batch: integer inputs/targets of shape [rows, cols]
// (tokens/next-tokens for GPT; arbitrary categorical data otherwise).
struct Batch {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int32_t> inputs;
  std::vector<std::int32_t> targets;
};

class FlatParamModel {
 public:
  virtual ~FlatParamModel() = default;
  [[nodiscard]] virtual const ParamLayout& layout() const = 0;
  // Writes a deterministic initialization of the full flat vector.
  virtual void InitParameters(std::span<float> flat,
                              std::uint64_t seed) const = 0;
  // Runs forward+backward on `batch`, pulling parameters from `params`
  // and emitting per-unit gradients into `grads`. Returns the mean loss.
  virtual float Step(const Batch& batch, ParamProvider& params,
                     GradSink& grads) = 0;
};

// Trivial provider/sink pair over caller-owned flat buffers; used by
// tests and by single-process reference training.
class DirectParamProvider final : public ParamProvider {
 public:
  DirectParamProvider(const ParamLayout& layout, std::span<const float> flat)
      : layout_(&layout), flat_(flat) {}
  std::span<const float> AcquireUnit(int u, Phase) override {
    auto [b, e] = layout_->UnitRange(u);
    return flat_.subspan(static_cast<std::size_t>(b),
                         static_cast<std::size_t>(e - b));
  }
  void ReleaseUnit(int, Phase) override {}

 private:
  const ParamLayout* layout_;
  std::span<const float> flat_;
};

class AccumulatingGradSink final : public GradSink {
 public:
  AccumulatingGradSink(const ParamLayout& layout, std::span<float> flat)
      : layout_(&layout), flat_(flat) {}
  void EmitUnitGrad(int u, std::span<const float> grad) override {
    auto [b, e] = layout_->UnitRange(u);
    (void)e;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      flat_[static_cast<std::size_t>(b) + i] += grad[i];
    }
  }

 private:
  const ParamLayout* layout_;
  std::span<float> flat_;
};

}  // namespace zero::model
