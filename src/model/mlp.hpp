// MlpModel: a bag-of-features MLP classifier — the second real
// FlatParamModel after the GPT, demonstrating that the ZeRO engines are
// model-agnostic (the paper's "compatible with any torch.nn.module"
// claim, Sec 10.1): different unit structure, different compute graph,
// same Acquire/Release/Emit protocol.
//
// Architecture: categorical features are embedded and mean-pooled, then
// two ReLU layers feed a softmax classifier:
//   h0 = mean_i E[x_i]           (embedding unit)
//   h1 = relu(W1 h0 + b1)        (hidden unit)
//   p  = softmax(W2 h1 + b2)     (classifier unit)
// The label of each row is its first target token.
#pragma once

#include "model/flat_model.hpp"

namespace zero::model {

struct MlpConfig {
  std::int64_t vocab = 32;    // feature id space
  std::int64_t embed = 16;    // embedding / input width
  std::int64_t hidden = 32;   // hidden layer width
  std::int64_t classes = 8;   // output classes
};

class MlpModel final : public FlatParamModel {
 public:
  explicit MlpModel(MlpConfig config);

  [[nodiscard]] const ParamLayout& layout() const override {
    return layout_;
  }
  void InitParameters(std::span<float> flat,
                      std::uint64_t seed) const override;
  float Step(const Batch& batch, ParamProvider& params,
             GradSink& grads) override;

  [[nodiscard]] const MlpConfig& config() const { return config_; }

 private:
  MlpConfig config_;
  ParamLayout layout_;
  std::int64_t off_embed_ = 0;           // unit 0
  std::int64_t off_w1_ = 0, off_b1_ = 0;  // unit 1 (relative)
  std::int64_t off_w2_ = 0, off_b2_ = 0;  // unit 2 (relative)
};

// Deterministic synthetic classification data: the label is a fixed
// (seeded) function of the feature multiset, so the task is exactly
// learnable and loss floors near zero.
Batch MakeClassificationBatch(const MlpConfig& config, std::int64_t rows,
                              std::int64_t features_per_row,
                              std::uint64_t task_seed,
                              std::uint64_t batch_seed);

}  // namespace zero::model
