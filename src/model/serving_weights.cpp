#include "model/serving_weights.hpp"

#include <string>

#include "common/error.hpp"

namespace zero::model {

namespace {

constexpr std::size_t kEntryAlign = 64;

// (unit, unit-relative offset) -> map key. Offsets are bounded by a
// unit's numel, far below 2^40 for any model this runtime hosts.
std::uint64_t Key(int unit, std::int64_t off) {
  ZERO_CHECK(unit >= 0 && off >= 0 && off < (std::int64_t{1} << 40),
             "serving weight key out of range");
  return (static_cast<std::uint64_t>(unit) << 40) |
         static_cast<std::uint64_t>(off);
}

}  // namespace

bool ServingWeights::IsMatrixEntry(std::string_view name) {
  return name == "wte" || name.find(".w_") != std::string_view::npos;
}

ServingWeights::ServingWeights(const ParamLayout& layout,
                               std::span<const float> local,
                               const tensor::GemmBackend& backend)
    : backend_(&backend) {
  ZERO_CHECK(local.size() ==
                 static_cast<std::size_t>(layout.total_numel()),
             "serving weights need the full local shard");

  // Pass 1: assign positions (matrix entries 64-byte-aligned in the
  // packed arena, vector entries packed tight in the fp32 sidecar).
  std::size_t packed_bytes = 0;
  std::size_t f32_floats = 0;
  for (const ParamEntry& e : layout.entries()) {
    const auto [ubegin, uend] = layout.UnitRange(e.unit);
    (void)uend;
    Entry ent;
    ent.numel = e.numel;
    ent.matrix = IsMatrixEntry(e.name);
    if (ent.matrix) {
      ent.rows = e.rows;
      ent.cols = e.cols;
      packed_bytes = (packed_bytes + kEntryAlign - 1) / kEntryAlign *
                     kEntryAlign;
      ent.pos = packed_bytes;
      packed_bytes += ent.rows > 0
                          ? backend.PackedMatrixBytes(ent.rows, ent.cols)
                          : backend.PackedBytes(e.numel);
    } else {
      ent.pos = f32_floats;
      f32_floats += static_cast<std::size_t>(e.numel);
    }
    entries_.emplace(Key(e.unit, e.offset - ubegin), ent);
  }
  packed_.resize(packed_bytes);
  f32_.resize(f32_floats);

  // Pass 2: encode.
  for (const ParamEntry& e : layout.entries()) {
    const auto [ubegin, uend] = layout.UnitRange(e.unit);
    (void)uend;
    const Entry& ent = entries_.at(Key(e.unit, e.offset - ubegin));
    const float* src = local.data() + e.offset;
    if (ent.matrix) {
      if (ent.rows > 0) {
        backend.PackMatrix(src, ent.rows, ent.cols, packed_.data() + ent.pos);
      } else {
        backend.Pack(src, e.numel, packed_.data() + ent.pos);
      }
    } else {
      std::copy(src, src + e.numel, f32_.data() + ent.pos);
    }
  }
}

const tensor::GemmBackend& ServingWeights::backend() const {
  ZERO_CHECK(backend_ != nullptr, "serving weights not loaded");
  return *backend_;
}

const ServingWeights::Entry& ServingWeights::Lookup(int unit,
                                                    std::int64_t off,
                                                    bool want_matrix) const {
  ZERO_CHECK(backend_ != nullptr, "serving weights not loaded");
  auto it = entries_.find(Key(unit, off));
  ZERO_CHECK(it != entries_.end(),
             "no serving weight entry at unit " + std::to_string(unit) +
                 " offset " + std::to_string(off));
  ZERO_CHECK(it->second.matrix == want_matrix,
             "serving weight entry storage class mismatch");
  return it->second;
}

const float* ServingWeights::Vec(int unit, std::int64_t off) const {
  return f32_.data() + Lookup(unit, off, /*want_matrix=*/false).pos;
}

void ServingWeights::GemmWeightT(int unit, std::int64_t off, std::int64_t m,
                                 std::int64_t n, std::int64_t k, float alpha,
                                 const float* a, float beta, float* c) const {
  const Entry& ent = Lookup(unit, off, /*want_matrix=*/true);
  ZERO_CHECK(n * k == ent.numel, "serving weight GEMM shape mismatch");
  if (ent.rows > 0) {
    ZERO_CHECK(n == ent.rows && k == ent.cols,
               "serving weight GEMM shape disagrees with the layout");
    backend_->MatrixGemmWeightT(m, n, k, alpha, a, packed_.data() + ent.pos,
                                beta, c);
  } else {
    backend_->GemmWeightT(m, n, k, alpha, a, packed_.data() + ent.pos,
                          /*off=*/0, beta, c);
  }
}

void ServingWeights::DecodeRow(int unit, std::int64_t off, std::int64_t row,
                               std::int64_t cols, float* dst) const {
  const Entry& ent = Lookup(unit, off, /*want_matrix=*/true);
  ZERO_CHECK(row >= 0 && (row + 1) * cols <= ent.numel,
             "serving weight row decode out of range");
  if (ent.rows > 0) {
    ZERO_CHECK(cols == ent.cols,
               "serving weight row decode disagrees with the layout");
    backend_->DecodeMatrixRow(packed_.data() + ent.pos, ent.rows, ent.cols,
                              row, dst);
  } else {
    backend_->Decode(packed_.data() + ent.pos, row * cols, cols, dst);
  }
}

}  // namespace zero::model
