// Analytic description of a GPT-2-like transformer — the formulas the
// paper's memory and throughput analysis is built on (Sec 3, Sec 6.1
// footnote 3, Sec 8). zero::sim consumes these to regenerate Tables 1-2
// and Figures 1-8 at paper scale; the runtime GPT (gpt.hpp) instantiates
// small versions of the same architecture for real execution.
#pragma once

#include <cstdint>

namespace zero::model {

struct TransformerSpec {
  std::int64_t layers = 0;
  std::int64_t hidden = 0;
  std::int64_t heads = 0;
  std::int64_t vocab = 50257;  // GPT-2 BPE vocabulary
  std::int64_t seq = 1024;

  // Parameter count. Dominated by 12*l*h^2 (each block: 4h^2 attention +
  // 8h^2 MLP) plus embeddings and biases/norms; this matches the paper's
  // configs (48 layers x 1600 hidden ~= 1.5B, 125 x 8192 ~= 100B).
  [[nodiscard]] std::int64_t NumParameters() const;

  // Elements of activation kept per transformer block for one sample
  // position, following footnote 3: total activations ~= 12 * hidden *
  // seq * batch * layers (elements; x2 bytes in fp16).
  [[nodiscard]] double ActivationElements(std::int64_t batch) const;
  [[nodiscard]] double ActivationBytes(std::int64_t batch) const;

  // One activation checkpoint per block = its input, batch*seq*hidden
  // elements (fp16 bytes). This is the footprint Pa divides by the MP
  // degree (Sec 6.1).
  [[nodiscard]] double CheckpointBytes(std::int64_t batch) const;

  // Flops for one forward pass over `batch` sequences: dense 24*B*s*l*h^2
  // plus attention 12*B*s^2*l*h, and the vocabulary projection.
  [[nodiscard]] double ForwardFlops(std::int64_t batch) const;
  // Full training step: forward + 2x backward (+1x recompute when
  // activation checkpointing is on — the paper's "33% overhead").
  [[nodiscard]] double StepFlops(std::int64_t batch,
                                 bool activation_checkpointing) const;
};

// Mixed-precision Adam model-state accounting (Sec 3.1): 2 bytes fp16
// parameters + 2 bytes fp16 gradients + K=12 bytes of optimizer state
// (fp32 master params, momentum, variance) per parameter.
struct ModelStateBytes {
  double parameters = 0;  // fp16
  double gradients = 0;   // fp16
  double optimizer = 0;   // fp32 master + m + v
  [[nodiscard]] double total() const {
    return parameters + gradients + optimizer;
  }
};

enum class ZeroStage : int {
  kNone = 0,   // baseline DP: everything replicated
  kOs = 1,     // Pos: optimizer states partitioned
  kOsG = 2,    // Pos+g: + gradients partitioned
  kOsGP = 3,   // Pos+g+p: + parameters partitioned
};

inline constexpr double kOptimizerMultiplierK = 12.0;

// Per-device model-state bytes for Psi parameters under a ZeRO-DP stage
// with DP degree Nd — the Figure 1 / Table 1 equations:
//   baseline: (2 + 2 + K) * Psi
//   Pos:      2*Psi + 2*Psi + K*Psi/Nd
//   Pos+g:    2*Psi + (2 + K)*Psi/Nd
//   Pos+g+p:  (2 + 2 + K)*Psi/Nd
ModelStateBytes PerDeviceModelStates(double psi, ZeroStage stage, int nd,
                                     double k = kOptimizerMultiplierK);

}  // namespace zero::model
