#include "model/quad_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace zero::model {

QuadModel::QuadModel(std::int64_t numel, int units) {
  ZERO_CHECK(numel >= units && units >= 1, "need at least one param per unit");
  const std::int64_t base = numel / units;
  const std::int64_t rem = numel % units;
  for (int u = 0; u < units; ++u) {
    const std::int64_t n = base + (u < rem ? 1 : 0);
    layout_.Add("unit" + std::to_string(u), n, u);
  }
}

void QuadModel::InitParameters(std::span<float> flat,
                               std::uint64_t seed) const {
  Rng rng(seed);
  for (float& x : flat) x = rng.NextGaussian();
}

std::vector<float> QuadModel::TargetFor(const Batch& batch) const {
  // A smooth deterministic function of the batch contents, different per
  // coordinate, so different microbatches pull parameters differently
  // (the way real per-sample gradients do).
  double h = 1.0;
  for (std::int32_t v : batch.inputs) {
    h = std::fmod(h * 1.000117 + static_cast<double>(v) * 0.013, 4.0);
  }
  std::vector<float> t(static_cast<std::size_t>(layout_.total_numel()));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(
        std::sin(h + 0.05 * static_cast<double>(i)));
  }
  return t;
}

float QuadModel::Step(const Batch& batch, ParamProvider& params,
                      GradSink& grads) {
  const std::vector<float> target = TargetFor(batch);
  double loss = 0.0;
  std::vector<float> unit_grad;
  // Forward over units in order, backward in reverse — mirrors the
  // schedule a layered model follows so provider implementations see the
  // same access pattern.
  const int units = layout_.num_units();
  for (int u = 0; u < units; ++u) {
    std::span<const float> p = params.AcquireUnit(u, Phase::kForward);
    auto [b, e] = layout_.UnitRange(u);
    for (std::int64_t i = 0; i < e - b; ++i) {
      const double d = static_cast<double>(p[static_cast<std::size_t>(i)]) -
                       target[static_cast<std::size_t>(b + i)];
      loss += 0.5 * d * d;
    }
    params.ReleaseUnit(u, Phase::kForward);
  }
  for (int u = units - 1; u >= 0; --u) {
    std::span<const float> p = params.AcquireUnit(u, Phase::kBackward);
    auto [b, e] = layout_.UnitRange(u);
    unit_grad.resize(static_cast<std::size_t>(e - b));
    for (std::int64_t i = 0; i < e - b; ++i) {
      unit_grad[static_cast<std::size_t>(i)] =
          p[static_cast<std::size_t>(i)] -
          target[static_cast<std::size_t>(b + i)];
    }
    params.ReleaseUnit(u, Phase::kBackward);
    grads.EmitUnitGrad(u, unit_grad);
  }
  return static_cast<float>(loss);
}

}  // namespace zero::model
