#include "model/corpus.hpp"

#include "common/error.hpp"

namespace zero::model {

MarkovCorpus::MarkovCorpus(std::int64_t vocab, int branching,
                           std::uint64_t table_seed,
                           std::uint64_t stream_seed)
    : vocab_(vocab),
      branching_(branching),
      rng_(Rng(table_seed).Split(1 + stream_seed)) {
  ZERO_CHECK(vocab >= 2, "vocab must be at least 2");
  ZERO_CHECK(branching >= 1 && branching <= vocab,
             "branching must be in [1, vocab]");
  // For each (prev2, prev1) context, a small set of allowed successors.
  successors_.resize(static_cast<std::size_t>(vocab * vocab) *
                     static_cast<std::size_t>(branching));
  Rng table_rng = Rng(table_seed).Split(0xC0);
  for (std::size_t i = 0; i < successors_.size(); ++i) {
    successors_[i] =
        static_cast<std::int32_t>(table_rng.NextBelow(
            static_cast<std::uint64_t>(vocab)));
  }
}

std::int32_t MarkovCorpus::NextToken() {
  const std::size_t ctx = static_cast<std::size_t>(prev2_) *
                              static_cast<std::size_t>(vocab_) +
                          static_cast<std::size_t>(prev1_);
  const std::size_t pick =
      static_cast<std::size_t>(rng_.NextBelow(
          static_cast<std::uint64_t>(branching_)));
  const std::int32_t next =
      successors_[ctx * static_cast<std::size_t>(branching_) + pick];
  prev2_ = prev1_;
  prev1_ = next;
  return next;
}

std::vector<std::int32_t> MarkovCorpus::Sample(std::int64_t count) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(count));
  for (auto& t : out) t = NextToken();
  return out;
}

Batch MarkovCorpus::NextBatch(std::int64_t batch, std::int64_t seq) {
  Batch b;
  b.rows = batch;
  b.cols = seq;
  b.inputs.reserve(static_cast<std::size_t>(batch * seq));
  b.targets.reserve(static_cast<std::size_t>(batch * seq));
  for (std::int64_t r = 0; r < batch; ++r) {
    std::vector<std::int32_t> run = Sample(seq + 1);
    b.inputs.insert(b.inputs.end(), run.begin(), run.end() - 1);
    b.targets.insert(b.targets.end(), run.begin() + 1, run.end());
  }
  return b;
}

}  // namespace zero::model
