#include "model/gpt.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "comm/nonblocking_collectives.hpp"
#include "common/error.hpp"
#include "model/serving_weights.hpp"
#include "tensor/kernels.hpp"

namespace zero::model {

using tensor::Tensor;

// Parameter-access seam the two DecodeForward overloads share (declared
// in gpt.hpp, implemented below for the provider and the packed store).
// Offsets are unit-relative — the same coordinates LayerOffsets holds.
class DecodeParamAccess {
 public:
  virtual ~DecodeParamAccess() = default;
  // Bracket every parameter touch of `unit`; Vec pointers stay valid
  // until the matching EndUnit.
  virtual void BeginUnit(int unit) = 0;
  virtual void EndUnit(int unit) = 0;
  // fp32 pointer to the start of a vector-class entry (bias, LN, wpe).
  virtual const float* Vec(int unit, std::int64_t off) = 0;
  // C[m,n] = alpha * A[m,k] * W[n,k]^T + beta * C for the weight matrix
  // entry at (unit, off).
  virtual void WeightGemm(int unit, std::int64_t off, std::int64_t m,
                          std::int64_t n, std::int64_t k, float alpha,
                          const float* a, float beta, float* c) = 0;
  // dst[0..cols) = fp32 row `row` of the [rows, cols] matrix at
  // (unit, off) — embedding gathers.
  virtual void WeightRow(int unit, std::int64_t off, std::int64_t row,
                         std::int64_t cols, float* dst) = 0;
};

namespace {

// Parameter codes for deterministic per-row init streams.
enum ParamCode : std::uint64_t {
  kWte = 1,
  kWpe = 2,
  kWq = 3,
  kWk = 4,
  kWv = 5,
  kWo = 6,
  kWfc = 7,
  kWpr = 8,
};

// Fills one global row of a weight matrix from its dedicated stream; for
// column-sliced (row-parallel) shards, skips `col_begin` samples first so
// every MP degree sees the same global matrix.
void FillRowSlice(Rng stream, float stddev, std::int64_t col_begin,
                  std::span<float> out) {
  for (std::int64_t i = 0; i < col_begin; ++i) stream.NextGaussian();
  for (float& x : out) x = stream.NextGaussian() * stddev;
}

Rng RowStream(std::uint64_t seed, ParamCode code, std::int64_t layer,
              std::int64_t global_row) {
  return Rng(seed).Split((static_cast<std::uint64_t>(code) << 48) ^
                         (static_cast<std::uint64_t>(layer) << 32) ^
                         static_cast<std::uint64_t>(global_row));
}

// Copy head-sliced columns [col0, col0+lh*hd) of src [B*S, row_width]
// into dst laid out as [B*lh, S, hd] with contiguous (S, hd) per head.
void SplitHeads(const float* src, std::int64_t row_width, std::int64_t col0,
                float* dst, std::int64_t b_count, std::int64_t s_count,
                std::int64_t lh, std::int64_t hd) {
  for (std::int64_t b = 0; b < b_count; ++b) {
    for (std::int64_t h = 0; h < lh; ++h) {
      for (std::int64_t s = 0; s < s_count; ++s) {
        const float* from = src + (b * s_count + s) * row_width + col0 + h * hd;
        float* to = dst + ((b * lh + h) * s_count + s) * hd;
        std::memcpy(to, from, static_cast<std::size_t>(hd) * sizeof(float));
      }
    }
  }
}

// Inverse of SplitHeads (writes into the given column range of dst rows).
void MergeHeads(const float* src, float* dst, std::int64_t row_width,
                std::int64_t col0, std::int64_t b_count, std::int64_t s_count,
                std::int64_t lh, std::int64_t hd) {
  for (std::int64_t b = 0; b < b_count; ++b) {
    for (std::int64_t h = 0; h < lh; ++h) {
      for (std::int64_t s = 0; s < s_count; ++s) {
        const float* from = src + ((b * lh + h) * s_count + s) * hd;
        float* to = dst + (b * s_count + s) * row_width + col0 + h * hd;
        std::memcpy(to, from, static_cast<std::size_t>(hd) * sizeof(float));
      }
    }
  }
}

}  // namespace

void GptModel::LayerStash::DropAll() {
  x_in = Tensor();
  ln1_mean = Tensor();
  ln1_rstd = Tensor();
  a = Tensor();
  q = Tensor();
  k = Tensor();
  v = Tensor();
  att = Tensor();
  ctx = Tensor();
  x_mid = Tensor();
  ln2_mean = Tensor();
  ln2_rstd = Tensor();
  b2 = Tensor();
  h1 = Tensor();
  f = Tensor();
}

GptModel::GptModel(GptConfig config, GptSession session)
    : config_(config), session_(session) {
  const std::int64_t h = config_.hidden;
  const std::int64_t i_total = config_.inner();
  const int m = mp_size();
  ZERO_CHECK(config_.heads % m == 0, "heads must divide by MP degree");
  ZERO_CHECK(config_.hidden % config_.heads == 0,
             "hidden must divide by heads");
  ZERO_CHECK(i_total % m == 0, "inner dim must divide by MP degree");
  ZERO_CHECK(!config_.activation_checkpointing ||
                 session_.checkpoints != nullptr,
             "activation checkpointing requires a CheckpointStore");
  const std::int64_t hm = h / m;       // local attention width
  const std::int64_t im = i_total / m; // local MLP inner width

  // Unit 0: embeddings (replicated across MP). Unit 0 starts at flat
  // offset 0, so absolute offsets are already unit-relative.
  off_wte_ = layout_.Add("wte", config_.vocab * h, 0, config_.vocab, h);
  off_wpe_ = layout_.Add("wpe", config_.seq * h, 0);

  // Units 1..L: one per transformer block. Offsets are identical for all
  // blocks relative to the block's unit start, so compute once.
  bool offsets_done = false;
  for (std::int64_t l = 0; l < config_.layers; ++l) {
    const int unit = static_cast<int>(l) + 1;
    const std::string p = "h" + std::to_string(l) + ".";
    const std::int64_t base = layout_.total_numel();
    LayerOffsets off;
    off.ln1_g = layout_.Add(p + "ln1.g", h, unit) - base;
    off.ln1_b = layout_.Add(p + "ln1.b", h, unit) - base;
    off.w_qkv =
        layout_.Add(p + "attn.w_qkv", 3 * hm * h, unit, 3 * hm, h) - base;
    off.b_qkv = layout_.Add(p + "attn.b_qkv", 3 * hm, unit) - base;
    off.w_o = layout_.Add(p + "attn.w_o", h * hm, unit, h, hm) - base;
    off.b_o = layout_.Add(p + "attn.b_o", h, unit) - base;
    off.ln2_g = layout_.Add(p + "ln2.g", h, unit) - base;
    off.ln2_b = layout_.Add(p + "ln2.b", h, unit) - base;
    off.w_fc = layout_.Add(p + "mlp.w_fc", im * h, unit, im, h) - base;
    off.b_fc = layout_.Add(p + "mlp.b_fc", im, unit) - base;
    off.w_pr = layout_.Add(p + "mlp.w_pr", h * im, unit, h, im) - base;
    off.b_pr = layout_.Add(p + "mlp.b_pr", h, unit) - base;
    if (!offsets_done) {
      lo_ = off;
      offsets_done = true;
    }
  }

  // Final unit: closing layer norm.
  const int unit_f = static_cast<int>(config_.layers) + 1;
  const std::int64_t basef = layout_.total_numel();
  off_lnf_g_ = layout_.Add("lnf.g", h, unit_f) - basef;
  off_lnf_b_ = layout_.Add("lnf.b", h, unit_f) - basef;
}

int GptModel::mp_size() const {
  return session_.mp != nullptr ? session_.mp->size() : 1;
}

int GptModel::mp_rank() const {
  return session_.mp != nullptr ? session_.mp->rank() : 0;
}

std::int64_t GptModel::LocalHeads() const {
  return config_.heads / mp_size();
}

Tensor GptModel::NewAct(tensor::Shape shape) const {
  if (session_.device != nullptr) {
    return Tensor::Device(*session_.device, std::move(shape), DType::kF32);
  }
  return Tensor::Heap(std::move(shape), DType::kF32);
}

void GptModel::MpAllReduce(float* data, std::int64_t n) const {
  if (session_.mp != nullptr && session_.mp->size() > 1) {
    session_.mp->AllReduce(
        std::span<float>(data, static_cast<std::size_t>(n)),
        comm::ReduceOp::kSum);
  }
}

void GptModel::InitParameters(std::span<float> flat,
                              std::uint64_t seed) const {
  ZERO_CHECK(flat.size() == static_cast<std::size_t>(layout_.total_numel()),
             "init buffer size mismatch");
  std::fill(flat.begin(), flat.end(), 0.0f);

  const std::int64_t h = config_.hidden;
  const std::int64_t im = config_.inner() / mp_size();
  const std::int64_t hm = h / mp_size();
  const int m_rank = mp_rank();
  const float std_w = 0.02f;
  const float std_proj =
      0.02f / std::sqrt(2.0f * static_cast<float>(config_.layers));

  auto unit_span = [&](int u) {
    auto [b, e] = layout_.UnitRange(u);
    return flat.subspan(static_cast<std::size_t>(b),
                        static_cast<std::size_t>(e - b));
  };

  // Embeddings (replicated; same stream on every MP rank).
  auto u0 = unit_span(0);
  for (std::int64_t r = 0; r < config_.vocab; ++r) {
    FillRowSlice(RowStream(seed, kWte, 0, r), std_w, 0,
                 u0.subspan(static_cast<std::size_t>(off_wte_ + r * h),
                            static_cast<std::size_t>(h)));
  }
  for (std::int64_t r = 0; r < config_.seq; ++r) {
    FillRowSlice(RowStream(seed, kWpe, 0, r), std_w, 0,
                 u0.subspan(static_cast<std::size_t>(off_wpe_ + r * h),
                            static_cast<std::size_t>(h)));
  }

  for (std::int64_t l = 0; l < config_.layers; ++l) {
    auto u = unit_span(static_cast<int>(l) + 1);
    // Layer norms: gamma = 1, beta = 0.
    for (std::int64_t c = 0; c < h; ++c) {
      u[static_cast<std::size_t>(lo_.ln1_g + c)] = 1.0f;
      u[static_cast<std::size_t>(lo_.ln2_g + c)] = 1.0f;
    }
    // Column-parallel qkv: local q rows are global q rows
    // [m_rank*hm, (m_rank+1)*hm), ditto k and v; full row width h.
    for (std::int64_t r = 0; r < hm; ++r) {
      const std::int64_t gr = m_rank * hm + r;
      FillRowSlice(RowStream(seed, kWq, l, gr), std_w, 0,
                   u.subspan(static_cast<std::size_t>(lo_.w_qkv + r * h),
                             static_cast<std::size_t>(h)));
      FillRowSlice(
          RowStream(seed, kWk, l, gr), std_w, 0,
          u.subspan(static_cast<std::size_t>(lo_.w_qkv + (hm + r) * h),
                    static_cast<std::size_t>(h)));
      FillRowSlice(
          RowStream(seed, kWv, l, gr), std_w, 0,
          u.subspan(static_cast<std::size_t>(lo_.w_qkv + (2 * hm + r) * h),
                    static_cast<std::size_t>(h)));
    }
    // Row-parallel attn out: global [h, h]; local keeps columns
    // [m_rank*hm, ...), every global row.
    for (std::int64_t r = 0; r < h; ++r) {
      FillRowSlice(RowStream(seed, kWo, l, r), std_proj, m_rank * hm,
                   u.subspan(static_cast<std::size_t>(lo_.w_o + r * hm),
                             static_cast<std::size_t>(hm)));
    }
    // Column-parallel fc: local rows are global rows [m_rank*im, ...).
    for (std::int64_t r = 0; r < im; ++r) {
      FillRowSlice(RowStream(seed, kWfc, l, m_rank * im + r), std_w, 0,
                   u.subspan(static_cast<std::size_t>(lo_.w_fc + r * h),
                             static_cast<std::size_t>(h)));
    }
    // Row-parallel proj: global [h, 4h]; local keeps columns
    // [m_rank*im, ...).
    for (std::int64_t r = 0; r < h; ++r) {
      FillRowSlice(RowStream(seed, kWpr, l, r), std_proj, m_rank * im,
                   u.subspan(static_cast<std::size_t>(lo_.w_pr + r * im),
                             static_cast<std::size_t>(im)));
    }
  }

  auto uf = unit_span(static_cast<int>(config_.layers) + 1);
  for (std::int64_t c = 0; c < h; ++c) {
    uf[static_cast<std::size_t>(off_lnf_g_ + c)] = 1.0f;
  }
}

void GptModel::BlockForward(std::span<const float> up, const float* x_in,
                            float* x_out, std::int64_t bs,
                            LayerStash& st) const {
  namespace K = tensor;
  const std::int64_t h = config_.hidden;
  const std::int64_t m = mp_size();
  const std::int64_t hm = h / m;
  const std::int64_t im = config_.inner() / m;
  const std::int64_t lh = LocalHeads();
  const std::int64_t hd = h / config_.heads;
  const std::int64_t b_count = bs / config_.seq;
  const std::int64_t s_count = config_.seq;

  st.ln1_mean = NewAct({bs});
  st.ln1_rstd = NewAct({bs});
  st.a = NewAct({bs, h});
  K::LayerNormForward(x_in, up.data() + lo_.ln1_g, up.data() + lo_.ln1_b,
                      st.a.f32().data(), st.ln1_mean.f32().data(),
                      st.ln1_rstd.f32().data(), bs, h, config_.ln_eps);

  // qkv projection (column-parallel), then split per local head.
  {
    Tensor qkv = NewAct({bs, 3 * hm});
    K::Gemm(false, true, bs, 3 * hm, h, 1.0f, st.a.f32().data(),
            up.data() + lo_.w_qkv, 0.0f, qkv.f32().data());
    K::AddBiasRows(qkv.f32().data(), up.data() + lo_.b_qkv, bs, 3 * hm);
    st.q = NewAct({b_count * lh, s_count, hd});
    st.k = NewAct({b_count * lh, s_count, hd});
    st.v = NewAct({b_count * lh, s_count, hd});
    SplitHeads(qkv.f32().data(), 3 * hm, 0, st.q.f32().data(), b_count,
               s_count, lh, hd);
    SplitHeads(qkv.f32().data(), 3 * hm, hm, st.k.f32().data(), b_count,
               s_count, lh, hd);
    SplitHeads(qkv.f32().data(), 3 * hm, 2 * hm, st.v.f32().data(), b_count,
               s_count, lh, hd);
  }

  // Scaled dot-product attention with causal mask, per (batch, head).
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  st.att = NewAct({b_count * lh, s_count, s_count});
  for (std::int64_t bh = 0; bh < b_count * lh; ++bh) {
    K::Gemm(false, true, s_count, s_count, hd, scale,
            st.q.f32().data() + bh * s_count * hd,
            st.k.f32().data() + bh * s_count * hd, 0.0f,
            st.att.f32().data() + bh * s_count * s_count);
  }
  K::CausalMaskedSoftmax(st.att.f32().data(), b_count * lh, s_count, s_count);

  st.ctx = NewAct({bs, hm});
  {
    Tensor ctx_heads = NewAct({b_count * lh, s_count, hd});
    for (std::int64_t bh = 0; bh < b_count * lh; ++bh) {
      K::Gemm(false, false, s_count, hd, s_count, 1.0f,
              st.att.f32().data() + bh * s_count * s_count,
              st.v.f32().data() + bh * s_count * hd, 0.0f,
              ctx_heads.f32().data() + bh * s_count * hd);
    }
    MergeHeads(ctx_heads.f32().data(), st.ctx.f32().data(), hm, 0, b_count,
               s_count, lh, hd);
  }

  // Attention output projection (row-parallel): partial matmul, then
  // MP all-reduce #1, then the replicated bias.
  st.x_mid = NewAct({bs, h});
  {
    Tensor o = NewAct({bs, h});
    K::Gemm(false, true, bs, h, hm, 1.0f, st.ctx.f32().data(),
            up.data() + lo_.w_o, 0.0f, o.f32().data());
    MpAllReduce(o.f32().data(), bs * h);
    K::AddBiasRows(o.f32().data(), up.data() + lo_.b_o, bs, h);
    const float* ov = o.f32().data();
    float* xm = st.x_mid.f32().data();
    for (std::int64_t i = 0; i < bs * h; ++i) xm[i] = x_in[i] + ov[i];
  }

  st.ln2_mean = NewAct({bs});
  st.ln2_rstd = NewAct({bs});
  st.b2 = NewAct({bs, h});
  K::LayerNormForward(st.x_mid.f32().data(), up.data() + lo_.ln2_g,
                      up.data() + lo_.ln2_b, st.b2.f32().data(),
                      st.ln2_mean.f32().data(), st.ln2_rstd.f32().data(), bs,
                      h, config_.ln_eps);

  st.h1 = NewAct({bs, im});
  K::Gemm(false, true, bs, im, h, 1.0f, st.b2.f32().data(),
          up.data() + lo_.w_fc, 0.0f, st.h1.f32().data());

  // Fused epilogue: st.h1 becomes z = fc_out + bias (stashed for
  // backward), st.f the activation.
  st.f = NewAct({bs, im});
  K::BiasGeluForward(st.h1.f32().data(), up.data() + lo_.b_fc,
                     st.h1.f32().data(), st.f.f32().data(), bs, im);

  // MLP output projection (row-parallel): MP all-reduce #2.
  {
    Tensor p = NewAct({bs, h});
    K::Gemm(false, true, bs, h, im, 1.0f, st.f.f32().data(),
            up.data() + lo_.w_pr, 0.0f, p.f32().data());
    MpAllReduce(p.f32().data(), bs * h);
    K::AddBiasRows(p.f32().data(), up.data() + lo_.b_pr, bs, h);
    const float* pv = p.f32().data();
    const float* xm = st.x_mid.f32().data();
    for (std::int64_t i = 0; i < bs * h; ++i) x_out[i] = xm[i] + pv[i];
  }
}

void GptModel::BlockBackward(std::span<const float> up, const LayerStash& st,
                             const float* x_in, const float* d_out,
                             float* d_in, std::int64_t bs,
                             std::span<float> ugrad) const {
  namespace K = tensor;
  const std::int64_t h = config_.hidden;
  const std::int64_t m = mp_size();
  const std::int64_t hm = h / m;
  const std::int64_t im = config_.inner() / m;
  const std::int64_t lh = LocalHeads();
  const std::int64_t hd = h / config_.heads;
  const std::int64_t b_count = bs / config_.seq;
  const std::int64_t s_count = config_.seq;
  float* g = ugrad.data();

  // ---- MLP branch ----
  Tensor dx_mid_t = NewAct({bs, h});
  float* dx_mid = dx_mid_t.f32().data();
  std::memcpy(dx_mid, d_out, static_cast<std::size_t>(bs * h) * sizeof(float));

  K::BiasGradFromRows(d_out, g + lo_.b_pr, bs, h);
  Tensor df_t = NewAct({bs, im});
  K::Gemm(false, false, bs, im, h, 1.0f, d_out, up.data() + lo_.w_pr, 0.0f,
          df_t.f32().data());
  K::Gemm(true, false, h, im, bs, 1.0f, d_out, st.f.f32().data(), 1.0f,
          g + lo_.w_pr);

  Tensor dh1_t = NewAct({bs, im});
  K::BiasGeluBackward(st.h1.f32().data(), df_t.f32().data(),
                      dh1_t.f32().data(), g + lo_.b_fc, bs, im);
  df_t = Tensor();

  K::Gemm(true, false, im, h, bs, 1.0f, dh1_t.f32().data(),
          st.b2.f32().data(), 1.0f, g + lo_.w_fc);

  Tensor db2_t = NewAct({bs, h});
  K::Gemm(false, false, bs, h, im, 1.0f, dh1_t.f32().data(),
          up.data() + lo_.w_fc, 0.0f, db2_t.f32().data());
  dh1_t = Tensor();
  // MP backward all-reduce #1 (input grad of the column-parallel fc).
  MpAllReduce(db2_t.f32().data(), bs * h);

  {
    Tensor dxt = NewAct({bs, h});
    K::LayerNormBackward(st.x_mid.f32().data(), up.data() + lo_.ln2_g,
                         st.ln2_mean.f32().data(), st.ln2_rstd.f32().data(),
                         db2_t.f32().data(), dxt.f32().data(), g + lo_.ln2_g,
                         g + lo_.ln2_b, bs, h);
    K::Axpy(1.0f, dxt.f32().data(), dx_mid, bs * h);
  }
  db2_t = Tensor();

  // ---- attention branch (gradient at x_mid is now complete) ----
  K::BiasGradFromRows(dx_mid, g + lo_.b_o, bs, h);
  Tensor dctx_t = NewAct({bs, hm});
  K::Gemm(false, false, bs, hm, h, 1.0f, dx_mid, up.data() + lo_.w_o, 0.0f,
          dctx_t.f32().data());
  K::Gemm(true, false, h, hm, bs, 1.0f, dx_mid, st.ctx.f32().data(), 1.0f,
          g + lo_.w_o);

  Tensor dctxh_t = NewAct({b_count * lh, s_count, hd});
  SplitHeads(dctx_t.f32().data(), hm, 0, dctxh_t.f32().data(), b_count,
             s_count, lh, hd);
  dctx_t = Tensor();

  Tensor datt_t = NewAct({b_count * lh, s_count, s_count});
  Tensor dv_t = NewAct({b_count * lh, s_count, hd});
  for (std::int64_t bh = 0; bh < b_count * lh; ++bh) {
    K::Gemm(false, true, s_count, s_count, hd, 1.0f,
            dctxh_t.f32().data() + bh * s_count * hd,
            st.v.f32().data() + bh * s_count * hd, 0.0f,
            datt_t.f32().data() + bh * s_count * s_count);
    K::Gemm(true, false, s_count, hd, s_count, 1.0f,
            st.att.f32().data() + bh * s_count * s_count,
            dctxh_t.f32().data() + bh * s_count * hd, 0.0f,
            dv_t.f32().data() + bh * s_count * hd);
  }
  dctxh_t = Tensor();

  // Softmax backward (masked entries have probability 0, so their
  // gradient vanishes automatically).
  K::SoftmaxBackwardRows(st.att.f32().data(), datt_t.f32().data(),
                         datt_t.f32().data(), b_count * lh * s_count,
                         s_count);

  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  Tensor dq_t = NewAct({b_count * lh, s_count, hd});
  Tensor dk_t = NewAct({b_count * lh, s_count, hd});
  for (std::int64_t bh = 0; bh < b_count * lh; ++bh) {
    K::Gemm(false, false, s_count, hd, s_count, scale,
            datt_t.f32().data() + bh * s_count * s_count,
            st.k.f32().data() + bh * s_count * hd, 0.0f,
            dq_t.f32().data() + bh * s_count * hd);
    K::Gemm(true, false, s_count, hd, s_count, scale,
            datt_t.f32().data() + bh * s_count * s_count,
            st.q.f32().data() + bh * s_count * hd, 0.0f,
            dk_t.f32().data() + bh * s_count * hd);
  }
  datt_t = Tensor();

  Tensor dqkv_t = NewAct({bs, 3 * hm});
  MergeHeads(dq_t.f32().data(), dqkv_t.f32().data(), 3 * hm, 0, b_count,
             s_count, lh, hd);
  MergeHeads(dk_t.f32().data(), dqkv_t.f32().data(), 3 * hm, hm, b_count,
             s_count, lh, hd);
  MergeHeads(dv_t.f32().data(), dqkv_t.f32().data(), 3 * hm, 2 * hm, b_count,
             s_count, lh, hd);
  dq_t = Tensor();
  dk_t = Tensor();
  dv_t = Tensor();

  K::BiasGradFromRows(dqkv_t.f32().data(), g + lo_.b_qkv, bs, 3 * hm);
  K::Gemm(true, false, 3 * hm, h, bs, 1.0f, dqkv_t.f32().data(),
          st.a.f32().data(), 1.0f, g + lo_.w_qkv);

  Tensor da_t = NewAct({bs, h});
  K::Gemm(false, false, bs, h, 3 * hm, 1.0f, dqkv_t.f32().data(),
          up.data() + lo_.w_qkv, 0.0f, da_t.f32().data());
  dqkv_t = Tensor();
  // MP backward all-reduce #2 (input grad of the column-parallel qkv).
  MpAllReduce(da_t.f32().data(), bs * h);

  {
    Tensor dxt = NewAct({bs, h});
    K::LayerNormBackward(x_in, up.data() + lo_.ln1_g,
                         st.ln1_mean.f32().data(), st.ln1_rstd.f32().data(),
                         da_t.f32().data(), dxt.f32().data(), g + lo_.ln1_g,
                         g + lo_.ln1_b, bs, h);
    const float* dxtp = dxt.f32().data();
    for (std::int64_t i = 0; i < bs * h; ++i) d_in[i] = dx_mid[i] + dxtp[i];
  }
}

float GptModel::EvalForwardLogits(const Batch& batch, ParamProvider& params,
                                  std::span<float> logits_out) {
  namespace K = tensor;
  const std::int64_t b_count = batch.rows;
  const std::int64_t s_count = batch.cols;
  ZERO_CHECK(s_count == config_.seq, "batch seq length must match config");
  const std::int64_t bs = b_count * s_count;
  const std::int64_t h = config_.hidden;
  const std::int64_t v = config_.vocab;
  const int layers = static_cast<int>(config_.layers);
  ZERO_CHECK(batch.inputs.size() == static_cast<std::size_t>(bs),
             "batch token count mismatch");
  ZERO_CHECK(logits_out.size() >= static_cast<std::size_t>(bs * v),
             "logits buffer too small");

  Tensor x = NewAct({bs, h});
  {
    std::span<const float> u0 = params.AcquireUnit(0, Phase::kForward);
    const float* wte = u0.data() + off_wte_;
    const float* wpe = u0.data() + off_wpe_;
    float* xp = x.f32().data();
    for (std::int64_t i = 0; i < bs; ++i) {
      const std::int64_t id = batch.inputs[static_cast<std::size_t>(i)];
      ZERO_CHECK(id >= 0 && id < v, "token id out of range");
      const std::int64_t pos = i % s_count;
      const float* te = wte + id * h;
      const float* pe = wpe + pos * h;
      float* row = xp + i * h;
      for (std::int64_t c = 0; c < h; ++c) row[c] = te[c] + pe[c];
    }
    params.ReleaseUnit(0, Phase::kForward);
  }

  LayerStash st;
  for (int l = 0; l < layers; ++l) {
    std::span<const float> up = params.AcquireUnit(l + 1, Phase::kForward);
    Tensor x_next = NewAct({bs, h});
    BlockForward(up, x.f32().data(), x_next.f32().data(), bs, st);
    params.ReleaseUnit(l + 1, Phase::kForward);
    st.DropAll();
    x = std::move(x_next);
  }

  const int unit_f = layers + 1;
  Tensor lnf_mean = NewAct({bs});
  Tensor lnf_rstd = NewAct({bs});
  Tensor y = NewAct({bs, h});
  {
    std::span<const float> uf = params.AcquireUnit(unit_f, Phase::kForward);
    K::LayerNormForward(x.f32().data(), uf.data() + off_lnf_g_,
                        uf.data() + off_lnf_b_, y.f32().data(),
                        lnf_mean.f32().data(), lnf_rstd.f32().data(), bs, h,
                        config_.ln_eps);
    params.ReleaseUnit(unit_f, Phase::kForward);
  }

  float loss = 0.0f;
  {
    std::span<const float> u0 = params.AcquireUnit(0, Phase::kForward);
    K::Gemm(false, true, bs, v, h, 1.0f, y.f32().data(),
            u0.data() + off_wte_, 0.0f, logits_out.data());
    if (batch.targets.size() == static_cast<std::size_t>(bs)) {
      Tensor dlogits = NewAct({bs, v});
      loss = K::CrossEntropyLoss(logits_out.data(), batch.targets.data(), bs,
                                 v, dlogits.f32().data());
    }
    params.ReleaseUnit(0, Phase::kForward);
  }
  return loss;
}

namespace {

// Provider-backed access: identical pointers through the identical
// tensor::Gemm calls the pre-seam DecodeForward made, so this path is
// bitwise what it always was.
class ProviderDecodeAccess final : public DecodeParamAccess {
 public:
  explicit ProviderDecodeAccess(ParamProvider& params) : params_(params) {}
  void BeginUnit(int unit) override {
    cur_ = params_.AcquireUnit(unit, Phase::kForward);
  }
  void EndUnit(int unit) override {
    params_.ReleaseUnit(unit, Phase::kForward);
    cur_ = {};
  }
  const float* Vec(int, std::int64_t off) override {
    return cur_.data() + off;
  }
  void WeightGemm(int, std::int64_t off, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a, float beta,
                  float* c) override {
    tensor::Gemm(false, true, m, n, k, alpha, a, cur_.data() + off, beta, c);
  }
  void WeightRow(int, std::int64_t off, std::int64_t row, std::int64_t cols,
                 float* dst) override {
    std::memcpy(dst, cur_.data() + off + row * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }

 private:
  ParamProvider& params_;
  std::span<const float> cur_;
};

// Packed-store access: weights live engine-side in a GEMM backend's
// native precision; units are always resident, so Begin/End are no-ops.
class PackedDecodeAccess final : public DecodeParamAccess {
 public:
  explicit PackedDecodeAccess(const ServingWeights& weights)
      : weights_(weights) {}
  void BeginUnit(int) override {}
  void EndUnit(int) override {}
  const float* Vec(int unit, std::int64_t off) override {
    return weights_.Vec(unit, off);
  }
  void WeightGemm(int unit, std::int64_t off, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a, float beta,
                  float* c) override {
    weights_.GemmWeightT(unit, off, m, n, k, alpha, a, beta, c);
  }
  void WeightRow(int unit, std::int64_t off, std::int64_t row,
                 std::int64_t cols, float* dst) override {
    weights_.DecodeRow(unit, off, row, cols, dst);
  }

 private:
  const ServingWeights& weights_;
};

}  // namespace

int GptModel::DecodeForward(std::span<const DecodeToken> tokens,
                            ParamProvider& params, KvCache& kv,
                            std::span<float> logits_out) {
  ProviderDecodeAccess access(params);
  return DecodeForwardImpl(tokens, access, kv, logits_out);
}

int GptModel::DecodeForward(std::span<const DecodeToken> tokens,
                            const ServingWeights& weights, KvCache& kv,
                            std::span<float> logits_out) {
  PackedDecodeAccess access(weights);
  return DecodeForwardImpl(tokens, access, kv, logits_out);
}

int GptModel::DecodeForwardImpl(std::span<const DecodeToken> tokens,
                                DecodeParamAccess& access, KvCache& kv,
                                std::span<float> logits_out) {
  namespace K = tensor;
  const std::int64_t n = static_cast<std::int64_t>(tokens.size());
  ZERO_CHECK(n > 0, "empty decode step");
  const std::int64_t h = config_.hidden;
  const std::int64_t v = config_.vocab;
  const std::int64_t hm = h / mp_size();
  const std::int64_t im = config_.inner() / mp_size();
  const std::int64_t lh = LocalHeads();
  const std::int64_t hd = h / config_.heads;
  const int layers = static_cast<int>(config_.layers);

  // Group boundaries: contiguous runs of one slot, consecutive positions.
  struct Group {
    std::int64_t begin, end;
  };
  std::vector<Group> groups;
  for (std::int64_t i = 0; i < n; ++i) {
    ZERO_CHECK(tokens[static_cast<std::size_t>(i)].pos >= 0 &&
                   tokens[static_cast<std::size_t>(i)].pos < config_.seq,
               "decode position out of range");
    if (i == 0 ||
        tokens[static_cast<std::size_t>(i)].slot !=
            tokens[static_cast<std::size_t>(i - 1)].slot) {
      groups.push_back({i, i + 1});
    } else {
      ZERO_CHECK(tokens[static_cast<std::size_t>(i)].pos ==
                     tokens[static_cast<std::size_t>(i - 1)].pos + 1,
                 "group positions must be consecutive");
      groups.back().end = i + 1;
    }
  }
  ZERO_CHECK(logits_out.size() >=
                 groups.size() * static_cast<std::size_t>(v),
             "logits buffer too small");

  // ---- embedding ----
  Tensor x = NewAct({n, h});
  {
    access.BeginUnit(0);
    const float* wpe = access.Vec(0, off_wpe_);
    std::vector<float> te(static_cast<std::size_t>(h));
    float* xp = x.f32().data();
    for (std::int64_t i = 0; i < n; ++i) {
      const DecodeToken& t = tokens[static_cast<std::size_t>(i)];
      ZERO_CHECK(t.token >= 0 && t.token < v, "token id out of range");
      access.WeightRow(0, off_wte_, t.token, h, te.data());
      const float* pe = wpe + t.pos * h;
      float* row = xp + i * h;
      for (std::int64_t c = 0; c < h; ++c) row[c] = te[c] + pe[c];
    }
    access.EndUnit(0);
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  // Per-(group, head) scratch, packed contiguous so attention runs
  // through the same Gemm kernel as BlockForward (see the bit-exactness
  // note below).
  std::vector<float> q_pack, k_pack, v_pack, scores, att_pad, ctx_head;

  for (int l = 0; l < layers; ++l) {
    const int unit = l + 1;
    access.BeginUnit(unit);

    Tensor ln1_mean = NewAct({n});
    Tensor ln1_rstd = NewAct({n});
    Tensor a = NewAct({n, h});
    K::LayerNormForward(x.f32().data(), access.Vec(unit, lo_.ln1_g),
                        access.Vec(unit, lo_.ln1_b), a.f32().data(),
                        ln1_mean.f32().data(), ln1_rstd.f32().data(), n, h,
                        config_.ln_eps);

    Tensor qkv = NewAct({n, 3 * hm});
    access.WeightGemm(unit, lo_.w_qkv, n, 3 * hm, h, 1.0f, a.f32().data(),
                      0.0f, qkv.f32().data());
    K::AddBiasRows(qkv.f32().data(), access.Vec(unit, lo_.b_qkv), n, 3 * hm);

    // Append this step's K/V rows to the cache before attending, so
    // tokens later in a prefill chunk see earlier ones.
    const float* qkvp = qkv.f32().data();
    for (std::int64_t i = 0; i < n; ++i) {
      const DecodeToken& t = tokens[static_cast<std::size_t>(i)];
      std::memcpy(kv.KRow(t.slot, l, t.pos), qkvp + i * 3 * hm + hm,
                  static_cast<std::size_t>(hm) * sizeof(float));
      std::memcpy(kv.VRow(t.slot, l, t.pos), qkvp + i * 3 * hm + 2 * hm,
                  static_cast<std::size_t>(hm) * sizeof(float));
    }

    // Paged causal attention against the cached prefix. Q and the
    // cached K/V prefix are packed contiguous per (group, head) and fed
    // through K::Gemm — the same compiled kernel BlockForward's
    // attention uses. The context GEMM is zero-padded out to k = seq so
    // its reduction length matches the full forward exactly: with
    // -ffp-contract the kernel's unrolled body and remainder path can
    // round mul+add differently, so the same values summed over k_len
    // versus seq terms may differ in the last bit. Padded terms multiply
    // a +0 attention weight and leave the accumulator bitwise unchanged,
    // which keeps decode logits bit-exact vs the full forward.
    const std::int64_t s_full = config_.seq;
    Tensor ctx = NewAct({n, hm});
    float* ctxp = ctx.f32().data();
    for (const Group& g : groups) {
      const std::int64_t q_len = g.end - g.begin;
      const DecodeToken& first = tokens[static_cast<std::size_t>(g.begin)];
      const std::int64_t k_len =
          tokens[static_cast<std::size_t>(g.end - 1)].pos + 1;
      const std::int32_t slot = first.slot;
      for (std::int64_t head = 0; head < lh; ++head) {
        q_pack.resize(static_cast<std::size_t>(q_len * hd));
        k_pack.resize(static_cast<std::size_t>(k_len * hd));
        v_pack.assign(static_cast<std::size_t>(s_full * hd), 0.0f);
        for (std::int64_t qi = 0; qi < q_len; ++qi) {
          std::memcpy(q_pack.data() + qi * hd,
                      qkvp + (g.begin + qi) * 3 * hm + head * hd,
                      static_cast<std::size_t>(hd) * sizeof(float));
        }
        for (std::int64_t j = 0; j < k_len; ++j) {
          std::memcpy(k_pack.data() + j * hd,
                      kv.KRow(slot, l, j) + head * hd,
                      static_cast<std::size_t>(hd) * sizeof(float));
          std::memcpy(v_pack.data() + j * hd,
                      kv.VRow(slot, l, j) + head * hd,
                      static_cast<std::size_t>(hd) * sizeof(float));
        }
        // Scores reduce over hd (a fixed length), so no padding needed.
        scores.resize(static_cast<std::size_t>(q_len * k_len));
        K::Gemm(false, true, q_len, k_len, hd, scale, q_pack.data(),
                k_pack.data(), 0.0f, scores.data());
        K::CausalMaskedSoftmax(scores.data(), 1, q_len, k_len);
        att_pad.assign(static_cast<std::size_t>(q_len * s_full), 0.0f);
        for (std::int64_t qi = 0; qi < q_len; ++qi) {
          std::memcpy(att_pad.data() + qi * s_full,
                      scores.data() + qi * k_len,
                      static_cast<std::size_t>(k_len) * sizeof(float));
        }
        ctx_head.resize(static_cast<std::size_t>(q_len * hd));
        K::Gemm(false, false, q_len, hd, s_full, 1.0f, att_pad.data(),
                v_pack.data(), 0.0f, ctx_head.data());
        for (std::int64_t qi = 0; qi < q_len; ++qi) {
          std::memcpy(ctxp + (g.begin + qi) * hm + head * hd,
                      ctx_head.data() + qi * hd,
                      static_cast<std::size_t>(hd) * sizeof(float));
        }
      }
    }

    // Attention output projection (row-parallel) + MP all-reduce #1. The
    // nonblocking launcher is bit-identical to the blocking twin.
    Tensor x_mid = NewAct({n, h});
    {
      Tensor o = NewAct({n, h});
      access.WeightGemm(unit, lo_.w_o, n, h, hm, 1.0f, ctxp, 0.0f,
                        o.f32().data());
      if (session_.mp != nullptr && session_.mp->size() > 1) {
        comm::IAllReduce(*session_.mp, o.f32(), comm::ReduceOp::kSum).Wait();
      }
      K::AddBiasRows(o.f32().data(), access.Vec(unit, lo_.b_o), n, h);
      const float* ov = o.f32().data();
      const float* xp = x.f32().data();
      float* xm = x_mid.f32().data();
      for (std::int64_t i = 0; i < n * h; ++i) xm[i] = xp[i] + ov[i];
    }

    Tensor ln2_mean = NewAct({n});
    Tensor ln2_rstd = NewAct({n});
    Tensor b2 = NewAct({n, h});
    K::LayerNormForward(x_mid.f32().data(), access.Vec(unit, lo_.ln2_g),
                        access.Vec(unit, lo_.ln2_b), b2.f32().data(),
                        ln2_mean.f32().data(), ln2_rstd.f32().data(), n, h,
                        config_.ln_eps);

    Tensor h1 = NewAct({n, im});
    access.WeightGemm(unit, lo_.w_fc, n, im, h, 1.0f, b2.f32().data(), 0.0f,
                      h1.f32().data());
    Tensor f = NewAct({n, im});
    K::BiasGeluForward(h1.f32().data(), access.Vec(unit, lo_.b_fc),
                       h1.f32().data(), f.f32().data(), n, im);

    // MLP output projection (row-parallel) + MP all-reduce #2.
    Tensor x_next = NewAct({n, h});
    {
      Tensor p = NewAct({n, h});
      access.WeightGemm(unit, lo_.w_pr, n, h, im, 1.0f, f.f32().data(), 0.0f,
                        p.f32().data());
      if (session_.mp != nullptr && session_.mp->size() > 1) {
        comm::IAllReduce(*session_.mp, p.f32(), comm::ReduceOp::kSum).Wait();
      }
      K::AddBiasRows(p.f32().data(), access.Vec(unit, lo_.b_pr), n, h);
      const float* pv = p.f32().data();
      const float* xm = x_mid.f32().data();
      float* xo = x_next.f32().data();
      for (std::int64_t i = 0; i < n * h; ++i) xo[i] = xm[i] + pv[i];
    }
    access.EndUnit(unit);
    x = std::move(x_next);
  }

  // ---- final norm + logits for each group's last row ----
  const std::int64_t n_groups = static_cast<std::int64_t>(groups.size());
  Tensor last = NewAct({n_groups, h});
  {
    float* lp = last.f32().data();
    const float* xp = x.f32().data();
    for (std::int64_t g = 0; g < n_groups; ++g) {
      std::memcpy(lp + g * h,
                  xp + (groups[static_cast<std::size_t>(g)].end - 1) * h,
                  static_cast<std::size_t>(h) * sizeof(float));
    }
  }
  const int unit_f = layers + 1;
  Tensor lnf_mean = NewAct({n_groups});
  Tensor lnf_rstd = NewAct({n_groups});
  Tensor y = NewAct({n_groups, h});
  {
    access.BeginUnit(unit_f);
    K::LayerNormForward(last.f32().data(), access.Vec(unit_f, off_lnf_g_),
                        access.Vec(unit_f, off_lnf_b_), y.f32().data(),
                        lnf_mean.f32().data(), lnf_rstd.f32().data(),
                        n_groups, h, config_.ln_eps);
    access.EndUnit(unit_f);
  }
  {
    access.BeginUnit(0);
    access.WeightGemm(0, off_wte_, n_groups, v, h, 1.0f, y.f32().data(),
                      0.0f, logits_out.data());
    access.EndUnit(0);
  }
  return static_cast<int>(n_groups);
}

std::int64_t GptModel::FullParamNumel(const GptConfig& c) {
  const std::int64_t h = c.hidden;
  const std::int64_t i = c.inner();
  const std::int64_t block =
      2 * h + (3 * h * h + 3 * h) + (h * h + h) + 2 * h + (i * h + i) +
      (h * i + h);
  return (c.vocab + c.seq) * h + c.layers * block + 2 * h;
}

void GptModel::ImportFullParams(std::span<const float> full,
                                std::span<float> local) const {
  const std::int64_t h = config_.hidden;
  const std::int64_t i_total = config_.inner();
  const std::int64_t hm = h / mp_size();
  const std::int64_t im = i_total / mp_size();
  const std::int64_t r = mp_rank();
  ZERO_CHECK(full.size() ==
                 static_cast<std::size_t>(FullParamNumel(config_)),
             "full parameter vector size mismatch");
  ZERO_CHECK(local.size() == static_cast<std::size_t>(layout_.total_numel()),
             "local parameter vector size mismatch");

  // Full (mp=1) layout offsets, mirroring the constructor's Add order.
  struct FullOffsets {
    std::int64_t ln1_g, ln1_b, w_qkv, b_qkv, w_o, b_o;
    std::int64_t ln2_g, ln2_b, w_fc, b_fc, w_pr, b_pr, block;
  } fo;
  fo.ln1_g = 0;
  fo.ln1_b = fo.ln1_g + h;
  fo.w_qkv = fo.ln1_b + h;
  fo.b_qkv = fo.w_qkv + 3 * h * h;
  fo.w_o = fo.b_qkv + 3 * h;
  fo.b_o = fo.w_o + h * h;
  fo.ln2_g = fo.b_o + h;
  fo.ln2_b = fo.ln2_g + h;
  fo.w_fc = fo.ln2_b + h;
  fo.b_fc = fo.w_fc + i_total * h;
  fo.w_pr = fo.b_fc + i_total;
  fo.b_pr = fo.w_pr + h * i_total;
  fo.block = fo.b_pr + h;

  auto copy = [](std::span<float> dst, std::int64_t dst_off,
                 std::span<const float> src, std::int64_t src_off,
                 std::int64_t count) {
    std::memcpy(dst.data() + dst_off, src.data() + src_off,
                static_cast<std::size_t>(count) * sizeof(float));
  };

  // Unit 0 (embeddings) is replicated: identical layout, straight copy.
  copy(local, 0, full, 0, (config_.vocab + config_.seq) * h);

  const std::int64_t full_blocks_base = (config_.vocab + config_.seq) * h;
  for (std::int64_t l = 0; l < config_.layers; ++l) {
    auto [ub, ue] = layout_.UnitRange(static_cast<int>(l) + 1);
    std::span<float> lu = local.subspan(static_cast<std::size_t>(ub),
                                        static_cast<std::size_t>(ue - ub));
    std::span<const float> fu = full.subspan(
        static_cast<std::size_t>(full_blocks_base + l * fo.block),
        static_cast<std::size_t>(fo.block));

    copy(lu, lo_.ln1_g, fu, fo.ln1_g, h);
    copy(lu, lo_.ln1_b, fu, fo.ln1_b, h);
    // Column-parallel qkv: local q/k/v segments are global row slices
    // [r*hm, (r+1)*hm) of each [h, h] segment (row width h on both sides).
    for (std::int64_t seg = 0; seg < 3; ++seg) {
      copy(lu, lo_.w_qkv + seg * hm * h, fu,
           fo.w_qkv + (seg * h + r * hm) * h, hm * h);
      copy(lu, lo_.b_qkv + seg * hm, fu, fo.b_qkv + seg * h + r * hm, hm);
    }
    // Row-parallel attn out: keep columns [r*hm, ...) of every global row.
    for (std::int64_t row = 0; row < h; ++row) {
      copy(lu, lo_.w_o + row * hm, fu, fo.w_o + row * h + r * hm, hm);
    }
    copy(lu, lo_.b_o, fu, fo.b_o, h);
    copy(lu, lo_.ln2_g, fu, fo.ln2_g, h);
    copy(lu, lo_.ln2_b, fu, fo.ln2_b, h);
    // Column-parallel fc: global row slice [r*im, ...), full row width.
    copy(lu, lo_.w_fc, fu, fo.w_fc + r * im * h, im * h);
    copy(lu, lo_.b_fc, fu, fo.b_fc + r * im, im);
    // Row-parallel proj: keep columns [r*im, ...) of every global row.
    for (std::int64_t row = 0; row < h; ++row) {
      copy(lu, lo_.w_pr + row * im, fu, fo.w_pr + row * i_total + r * im, im);
    }
    copy(lu, lo_.b_pr, fu, fo.b_pr, h);
  }

  auto [fb, fe] = layout_.UnitRange(static_cast<int>(config_.layers) + 1);
  copy(local, fb, full, full_blocks_base + config_.layers * fo.block,
       fe - fb);
}

float GptModel::Step(const Batch& batch, ParamProvider& params,
                     GradSink& grads) {
  namespace K = tensor;
  const std::int64_t b_count = batch.rows;
  const std::int64_t s_count = batch.cols;
  ZERO_CHECK(s_count == config_.seq, "batch seq length must match config");
  const std::int64_t bs = b_count * s_count;
  const std::int64_t h = config_.hidden;
  const std::int64_t v = config_.vocab;
  const int layers = static_cast<int>(config_.layers);
  ZERO_CHECK(batch.inputs.size() == static_cast<std::size_t>(bs) &&
                 batch.targets.size() == static_cast<std::size_t>(bs),
             "batch token count mismatch");

  // ---- forward: embedding ----
  Tensor x = NewAct({bs, h});
  {
    std::span<const float> u0 = params.AcquireUnit(0, Phase::kForward);
    const float* wte = u0.data() + off_wte_;
    const float* wpe = u0.data() + off_wpe_;
    float* xp = x.f32().data();
    for (std::int64_t i = 0; i < bs; ++i) {
      const std::int64_t id = batch.inputs[static_cast<std::size_t>(i)];
      ZERO_CHECK(id >= 0 && id < v, "token id out of range");
      const std::int64_t pos = i % s_count;
      const float* te = wte + id * h;
      const float* pe = wpe + pos * h;
      float* row = xp + i * h;
      for (std::int64_t c = 0; c < h; ++c) row[c] = te[c] + pe[c];
    }
    params.ReleaseUnit(0, Phase::kForward);
  }

  // ---- forward: blocks ----
  std::vector<LayerStash> stashes(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    LayerStash& st = stashes[static_cast<std::size_t>(l)];
    std::span<const float> up = params.AcquireUnit(l + 1, Phase::kForward);
    Tensor x_next = NewAct({bs, h});
    BlockForward(up, x.f32().data(), x_next.f32().data(), bs, st);
    params.ReleaseUnit(l + 1, Phase::kForward);
    if (config_.activation_checkpointing) {
      st.ckpt_handle = session_.checkpoints->Save(l, x.f32());
      st.DropAll();  // recomputed during backward
    } else {
      st.x_in = std::move(x);
    }
    x = std::move(x_next);
  }

  // ---- forward: final norm + tied-embedding logits ----
  const int unit_f = layers + 1;
  Tensor lnf_mean = NewAct({bs});
  Tensor lnf_rstd = NewAct({bs});
  Tensor y = NewAct({bs, h});
  {
    std::span<const float> uf = params.AcquireUnit(unit_f, Phase::kForward);
    K::LayerNormForward(x.f32().data(), uf.data() + off_lnf_g_,
                        uf.data() + off_lnf_b_, y.f32().data(),
                        lnf_mean.f32().data(), lnf_rstd.f32().data(), bs, h,
                        config_.ln_eps);
    params.ReleaseUnit(unit_f, Phase::kForward);
  }

  Tensor dlogits = NewAct({bs, v});
  float loss = 0.0f;
  {
    std::span<const float> u0 = params.AcquireUnit(0, Phase::kForward);
    Tensor logits = NewAct({bs, v});
    K::Gemm(false, true, bs, v, h, 1.0f, y.f32().data(),
            u0.data() + off_wte_, 0.0f, logits.f32().data());
    loss = K::CrossEntropyLoss(logits.f32().data(), batch.targets.data(), bs,
                               v, dlogits.f32().data());
    params.ReleaseUnit(0, Phase::kForward);
  }

  // ---- backward ----
  // Unit-0 gradient accumulates across the whole backward pass (logits
  // contribution now, embedding scatter at the end), so it is emitted
  // last — the order stage-2 bucketization expects.
  std::vector<float> g0(
      static_cast<std::size_t>(layout_.UnitNumel(0)), 0.0f);

  Tensor dy = NewAct({bs, h});
  {
    std::span<const float> u0 = params.AcquireUnit(0, Phase::kBackward);
    K::Gemm(false, false, bs, h, v, 1.0f, dlogits.f32().data(),
            u0.data() + off_wte_, 0.0f, dy.f32().data());
    K::Gemm(true, false, v, h, bs, 1.0f, dlogits.f32().data(),
            y.f32().data(), 1.0f, g0.data() + off_wte_);
    params.ReleaseUnit(0, Phase::kBackward);
  }
  dlogits = Tensor();
  y = Tensor();

  Tensor dx = NewAct({bs, h});
  {
    std::span<const float> uf = params.AcquireUnit(unit_f, Phase::kBackward);
    std::vector<float> gf(static_cast<std::size_t>(layout_.UnitNumel(unit_f)),
                          0.0f);
    K::LayerNormBackward(x.f32().data(), uf.data() + off_lnf_g_,
                         lnf_mean.f32().data(), lnf_rstd.f32().data(),
                         dy.f32().data(), dx.f32().data(),
                         gf.data() + off_lnf_g_, gf.data() + off_lnf_b_, bs,
                         h);
    params.ReleaseUnit(unit_f, Phase::kBackward);
    grads.EmitUnitGrad(unit_f, gf);
  }
  dy = Tensor();
  x = Tensor();
  lnf_mean = Tensor();
  lnf_rstd = Tensor();

  std::vector<float> ugrad;
  for (int l = layers - 1; l >= 0; --l) {
    LayerStash& st = stashes[static_cast<std::size_t>(l)];
    std::span<const float> up = params.AcquireUnit(l + 1, Phase::kBackward);

    if (config_.activation_checkpointing) {
      // Restore the block input and recompute the forward pass to rebuild
      // the stash (the "33% recomputation overhead").
      st.x_in = NewAct({bs, h});
      session_.checkpoints->Load(st.ckpt_handle, st.x_in.f32());
      Tensor x_scratch = NewAct({bs, h});
      BlockForward(up, st.x_in.f32().data(), x_scratch.f32().data(), bs, st);
    }

    ugrad.assign(static_cast<std::size_t>(layout_.UnitNumel(l + 1)), 0.0f);
    BlockBackward(up, st, st.x_in.f32().data(), dx.f32().data(),
                  dx.f32().data(), bs, ugrad);
    params.ReleaseUnit(l + 1, Phase::kBackward);
    grads.EmitUnitGrad(l + 1, ugrad);
    st.DropAll();
  }

  // ---- backward: embedding ----
  {
    const float* dxp = dx.f32().data();
    float* dwte = g0.data() + off_wte_;
    float* dwpe = g0.data() + off_wpe_;
    for (std::int64_t i = 0; i < bs; ++i) {
      const std::int64_t id = batch.inputs[static_cast<std::size_t>(i)];
      const std::int64_t pos = i % s_count;
      const float* row = dxp + i * h;
      float* te = dwte + id * h;
      float* pe = dwpe + pos * h;
      for (std::int64_t c = 0; c < h; ++c) {
        te[c] += row[c];
        pe[c] += row[c];
      }
    }
  }
  grads.EmitUnitGrad(0, g0);

  if (config_.activation_checkpointing) {
    session_.checkpoints->Reset();
  }
  return loss;
}

}  // namespace zero::model
