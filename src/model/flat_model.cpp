#include "model/flat_model.hpp"

#include "common/error.hpp"

namespace zero::model {

std::int64_t ParamLayout::Add(std::string name, std::int64_t numel,
                              int unit, std::int64_t rows,
                              std::int64_t cols) {
  ZERO_CHECK(numel > 0, "parameter must have positive size");
  ZERO_CHECK(unit >= 0, "unit must be nonnegative");
  ZERO_CHECK(rows == 0 ? cols == 0 : rows * cols == numel,
             "parameter shape must multiply out to numel");
  const int current = num_units();
  ZERO_CHECK(unit == current - 1 || unit == current,
             "units must be appended contiguously");
  const std::int64_t offset = total_;
  if (unit == current) {
    unit_ranges_.emplace_back(offset, offset);
  }
  entries_.push_back(
      ParamEntry{std::move(name), offset, numel, unit, rows, cols});
  unit_ranges_[static_cast<std::size_t>(unit)].second = offset + numel;
  total_ += numel;
  return offset;
}

std::pair<std::int64_t, std::int64_t> ParamLayout::UnitRange(int u) const {
  ZERO_CHECK(u >= 0 && u < num_units(), "unit index out of range");
  return unit_ranges_[static_cast<std::size_t>(u)];
}

const ParamEntry& ParamLayout::Find(const std::string& name) const {
  for (const ParamEntry& e : entries_) {
    if (e.name == name) return e;
  }
  throw Error("no parameter named " + name);
}

}  // namespace zero::model
