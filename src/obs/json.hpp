// Minimal strict JSON value, parser and writer for the telemetry layer.
//
// The trace recorder, metrics registry and step report all emit JSON that
// external tools (chrome://tracing, Perfetto, CI scripts) must be able to
// load, so the repo carries its own strict parser to round-trip-validate
// everything it writes: the trace test parses the recorder's output with
// this, and ci.sh runs the same validation over the smoke-run artifacts.
// Strictness follows RFC 8259: no trailing commas, no comments, no bare
// NaN/Infinity, \uXXXX escapes checked, one value per document.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace zero::obs::json {

class Value;
using Array = std::vector<Value>;
// std::map keeps object keys sorted, which makes writer output
// deterministic — handy for golden tests.
using Object = std::map<std::string, Value>;

enum class Kind : unsigned char {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                 // NOLINT
  Value(double d) : kind_(Kind::kNumber), num_(d) {}              // NOLINT
  Value(std::int64_t i)                                           // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(std::string s)                                            // NOLINT
      : kind_(Kind::kString), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}         // NOLINT
  Value(Array a)                                                  // NOLINT
      : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o)                                                 // NOLINT
      : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return *arr_; }
  [[nodiscard]] const Object& as_object() const { return *obj_; }
  [[nodiscard]] Array& as_array() { return *arr_; }
  [[nodiscard]] Object& as_object() { return *obj_; }

  [[nodiscard]] static Value MakeObject() { return Value(Object{}); }
  [[nodiscard]] static Value MakeArray() { return Value(Array{}); }

  // Builder helpers for emit sites. Set requires an object value,
  // Append an array value; both are no-ops on other kinds.
  void Set(std::string_view key, Value v) {
    if (is_object()) (*obj_)[std::string(key)] = std::move(v);
  }
  void Append(Value v) {
    if (is_array()) arr_->push_back(std::move(v));
  }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* Find(std::string_view key) const;

  // Serializes with stable key order. Numbers use shortest round-trip
  // formatting; non-finite numbers are emitted as null (valid JSON).
  [[nodiscard]] std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

// Strict parse of one JSON document. On failure returns nullopt-like
// null value and sets *error to "offset N: message".
[[nodiscard]] bool Parse(std::string_view text, Value* out,
                         std::string* error);

// Escapes a string for embedding in hand-built JSON output.
[[nodiscard]] std::string Escape(std::string_view s);

}  // namespace zero::obs::json
