#include "obs/telemetry.hpp"

#include <cstdlib>

namespace zero::obs {

TelemetryOptions& TelemetryOptions::ResolvePaths() {
  if (!trace_path.empty()) {
    if (metrics_path.empty()) metrics_path = trace_path + ".metrics.json";
    if (report_path.empty()) report_path = trace_path + ".report.json";
    if (timeline_path.empty()) timeline_path = trace_path + ".timeline.json";
  }
  return *this;
}

TelemetryOptions TelemetryOptions::FromEnv() {
  TelemetryOptions opts;
  if (const char* env = std::getenv("ZERO_TRACE")) {
    if (env[0] != '\0') {
      opts.enabled = true;
      opts.trace_path = env;
      opts.ResolvePaths();
    }
  }
  if (const char* env = std::getenv("ZERO_POSTMORTEM")) {
    if (env[0] != '\0') opts.postmortem_dir = env;
  }
  return opts;
}

}  // namespace zero::obs
