#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace zero::obs {

namespace {

void AppendMicros(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

// End timestamps of every sync span on one rank, keyed by name, in
// recording (= program) order. SPMD lockstep makes index k on one rank
// correspond to index k on every other.
using SyncEnds = std::map<std::string, std::vector<std::uint64_t>>;

SyncEnds CollectSyncEnds(const std::vector<ThreadEvents>& threads,
                         int rank) {
  // Gather first, then sort by start so multi-lane ranks (intra-op
  // workers share the tag but never record collectives) stay ordered.
  std::vector<const TraceEvent*> spans;
  for (const ThreadEvents& te : threads) {
    for (const TraceEvent& e : te.events) {
      if (e.rank == rank && IsSyncSpanName(e.name)) spans.push_back(&e);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->start_ns < b->start_ns;
            });
  SyncEnds ends;
  for (const TraceEvent* e : spans) {
    ends[e->name].push_back(e->start_ns + e->dur_ns);
  }
  return ends;
}

}  // namespace

bool IsSyncSpanName(std::string_view name) {
  // Symmetric blocking collectives only: every member both feeds the
  // ring and drains it until the last contribution lands, so the exits
  // are aligned. Rooted ops (broadcast/reduce/gather/scatter) let the
  // root leave early over buffered sends and would bias the estimate.
  return name == "comm/all_reduce" || name == "comm/reduce_scatter" ||
         name == "comm/all_gather" || name == "comm/all_to_all";
}

std::vector<RankClock> EstimateClockSkew(
    const std::vector<ThreadEvents>& threads) {
  std::set<int> ranks;
  for (const ThreadEvents& te : threads) {
    for (const TraceEvent& e : te.events) {
      if (e.rank >= 0) ranks.insert(e.rank);
    }
  }
  std::vector<RankClock> clocks;
  if (ranks.empty()) return clocks;

  const int base_rank = *ranks.begin();
  const SyncEnds base = CollectSyncEnds(threads, base_rank);
  for (int r : ranks) {
    RankClock rc;
    rc.rank = r;
    if (r != base_rank) {
      const SyncEnds mine = CollectSyncEnds(threads, r);
      std::vector<std::int64_t> deltas;
      for (const auto& [name, ends] : mine) {
        auto it = base.find(name);
        // Only names where both ranks saw the same instance count can
        // be matched index-for-index; anything else (a subgroup
        // schedule, a truncated ring) is skipped, not guessed at.
        if (it == base.end() || it->second.size() != ends.size()) continue;
        for (std::size_t k = 0; k < ends.size(); ++k) {
          deltas.push_back(static_cast<std::int64_t>(ends[k]) -
                           static_cast<std::int64_t>(it->second[k]));
        }
      }
      if (!deltas.empty()) {
        std::nth_element(deltas.begin(),
                         deltas.begin() + deltas.size() / 2, deltas.end());
        rc.skew_ns = deltas[deltas.size() / 2];
        rc.matched = static_cast<int>(deltas.size());
      }
    }
    clocks.push_back(rc);
  }
  return clocks;
}

int Timeline::max_rank() const {
  int mx = -1;
  for (const RankClock& c : clocks) mx = std::max(mx, c.rank);
  return mx;
}

std::int64_t Timeline::SkewFor(int rank) const {
  for (const RankClock& c : clocks) {
    if (c.rank == rank) return c.skew_ns;
  }
  return 0;
}

std::vector<const TimelineSpan*> Timeline::RankSpans(int rank) const {
  std::vector<const TimelineSpan*> out;
  for (const TimelineSpan& s : spans) {
    if (s.rank == rank) out.push_back(&s);
  }
  return out;
}

std::vector<const TimelineSpan*> Timeline::Named(
    std::string_view name) const {
  std::vector<const TimelineSpan*> out;
  for (const TimelineSpan& s : spans) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

Timeline BuildTimeline(const std::vector<ThreadEvents>& threads) {
  Timeline t;
  t.clocks = EstimateClockSkew(threads);
  for (const ThreadEvents& te : threads) {
    t.dropped_events += te.dropped;
    if (te.dropped != 0) t.dropped_by_tid[te.tid] = te.dropped;
    if (!te.events.empty()) t.lane_names[te.tid] = te.name;
    for (const TraceEvent& e : te.events) {
      TimelineSpan s;
      s.name = e.name;
      s.rank = e.rank;
      s.tid = te.tid;
      // Shift into rank 0's clock domain; a span that would land before
      // the epoch clamps to 0 (the relative ordering per lane holds).
      const std::int64_t skew = e.rank >= 0 ? t.SkewFor(e.rank) : 0;
      const std::int64_t start = static_cast<std::int64_t>(e.start_ns) - skew;
      s.start_ns = start > 0 ? static_cast<std::uint64_t>(start) : 0;
      s.dur_ns = e.dur_ns;
      t.spans.push_back(std::move(s));
    }
  }
  std::stable_sort(t.spans.begin(), t.spans.end(),
                   [](const TimelineSpan& a, const TimelineSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return t;
}

std::string TimelineChromeJson(const Timeline& timeline) {
  std::string out;
  out.reserve(timeline.spans.size() * 96 + 2048);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  out += std::to_string(timeline.dropped_events);
  out += ",\"droppedByLane\":{";
  bool first = true;
  for (const auto& [tid, dropped] : timeline.dropped_by_tid) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += std::to_string(tid);
    out += "\":";
    out += std::to_string(dropped);
  }
  out += "},\"clockSkewNs\":{";
  first = true;
  for (const RankClock& c : timeline.clocks) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += std::to_string(c.rank);
    out += "\":";
    out += std::to_string(c.skew_ns);
  }
  out += "}},\"traceEvents\":[";

  first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  // Process metadata: one pid per rank that actually recorded.
  std::set<int> pids;
  for (const TimelineSpan& s : timeline.spans) {
    pids.insert(s.rank >= 0 ? s.rank + 1 : 0);
  }
  for (int pid : pids) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += pid == 0 ? "untagged" : json::Escape("rank " + std::to_string(pid - 1));
    out += "\"}}";
  }
  // Lane metadata: home pid = the last rank tag seen on the lane.
  std::map<int, int> lane_pid;
  for (const TimelineSpan& s : timeline.spans) {
    lane_pid[s.tid] = s.rank >= 0 ? s.rank + 1 : 0;
  }
  for (const auto& [tid, name] : timeline.lane_names) {
    auto it = lane_pid.find(tid);
    if (it == lane_pid.end()) continue;
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(it->second);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    out += json::Escape(name);
    out += "\"}}";
  }
  for (const TimelineSpan& s : timeline.spans) {
    comma();
    out += "{\"name\":\"";
    out += json::Escape(s.name);
    out += "\",\"cat\":\"zero\",\"ph\":\"X\",\"ts\":";
    AppendMicros(out, s.start_ns);
    out += ",\"dur\":";
    AppendMicros(out, s.dur_ns);
    out += ",\"pid\":";
    out += std::to_string(s.rank >= 0 ? s.rank + 1 : 0);
    out += ",\"tid\":";
    out += std::to_string(s.tid);
    out += '}';
  }
  out += "]}";
  return out;
}

bool WriteMergedTimelineFile(const std::string& path) {
  const Timeline t = BuildTimeline(CollectEvents());
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    ZLOG_ERROR << "cannot open timeline output " << path;
    return false;
  }
  f << TimelineChromeJson(t);
  f.flush();
  if (!f) {
    ZLOG_ERROR << "short write to timeline output " << path;
    return false;
  }
  ZLOG_INFO << "wrote merged timeline (" << t.spans.size() << " spans, "
            << t.dropped_events << " dropped, " << t.clocks.size()
            << " rank clocks) to " << path;
  return true;
}

}  // namespace zero::obs
