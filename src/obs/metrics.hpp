// Process-wide metrics registry: named counters, gauges and histograms
// snapshotted per training step and dumpable as JSON.
//
// Instrument sites fetch a handle once (typically a function-local
// static — handles are never invalidated; ResetValues zeroes values but
// keeps every instance alive) and then update it lock-free:
//
//   static obs::Counter& hits = obs::Metrics().counter("alloc.cache.hits");
//   hits.Add();
//
// Counters and gauges are single atomics. Histograms take a per-instance
// mutex on Observe — fine at the call rates the runtime instruments
// (per-step, per-flush, per-allocation), and in exchange the snapshot is
// exact (count/sum/min/max plus base-2 log buckets for quantiles).
//
// The registry is deliberately process-global across SPMD ranks: rank
// threads of one run aggregate into the same metrics, matching how a
// real multi-process job would aggregate per-node series in a scraper.
// Per-rank quantities that must stay exact (CommStats, DeviceStats)
// keep their existing per-instance structs; the registry is the
// cross-cutting, named view.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>

namespace zero::obs {

class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };

  void Observe(double v);
  [[nodiscard]] Summary Snapshot() const;
  void Reset();

 private:
  // Bucket upper bounds are powers of two: bucket i holds values in
  // (2^(i-1), 2^i] with bucket 0 catching everything <= 1. Quantiles
  // interpolate within the winning bucket — plenty for latency series.
  static int BucketFor(double v);
  [[nodiscard]] double QuantileLocked(double q) const;

  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  // Constructible so tests and tools can hold private registries; the
  // runtime's instrument sites all aggregate into Metrics().
  MetricsRegistry() = default;

  // Fetches (creating on first use) the named metric. A name is bound to
  // one metric kind for the life of the process; asking for the same
  // name as a different kind is a ZERO_CHECK failure.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zeroes every metric's value. Instances (and any cached handles)
  // stay valid.
  void ResetValues();

  // One JSON object: {"counters":{name:value,...},"gauges":{...},
  // "histograms":{name:{count,sum,min,max,mean,p50,p95,p99},...}}.
  [[nodiscard]] std::string SnapshotJson() const;

  // Visitation for custom reporters (names in sorted order).
  void VisitCounters(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void VisitGauges(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void VisitHistograms(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

 private:
  struct Impl;
  [[nodiscard]] Impl& impl() const;
  mutable Impl* impl_ = nullptr;
  mutable std::mutex impl_mutex_;
};

// The process-wide registry.
MetricsRegistry& Metrics();

}  // namespace zero::obs
