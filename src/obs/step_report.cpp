#include "obs/step_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "model/transformer_spec.hpp"
#include "obs/json.hpp"

namespace zero::obs {

namespace {

double RelError(double measured, double predicted) {
  if (predicted == 0.0) return measured == 0.0 ? 0.0 : 1.0;
  return std::abs(measured - predicted) / predicted;
}

std::string Fmt(const char* fmt, double a, double b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

double PredictedStateBytes(int stage, int nd, bool fp16, double psi) {
  model::ModelStateBytes s = model::PerDeviceModelStates(
      psi, static_cast<model::ZeroStage>(stage), nd);
  // The Figure 1 equations assume fp16 params/grads (2 bytes each). In
  // fp32 mode both are 4 bytes; the K=12 optimizer term is fp32 either
  // way. (kStateBytesPerParam in optim/adam matches K.)
  const double prec = fp16 ? 1.0 : 2.0;
  return s.parameters * prec + s.gradients * prec + s.optimizer;
}

double PredictedCommBytesPerStep(int stage, int nd, bool fp16, double psi,
                                 double padded_psi) {
  const double e = fp16 ? 2.0 : 4.0;
  const double ring = nd > 0 ? static_cast<double>(nd - 1) / nd : 0.0;
  if (stage <= 2) {
    // All-reduce (stage 0) or reduce-scatter + all-gather (stages 1-2):
    // both move 2x the padded volume through the ring.
    return 2.0 * ring * padded_psi * e;
  }
  // Stage 3: every parameter is broadcast from its owner twice per step
  // (forward and backward materialization) over the full unpadded model,
  // and gradients are reduce-scattered once over the padded flat buffer.
  return ring * (2.0 * psi + padded_psi) * e;
}

double PredictedCommBytesPerStep(const StepReportInputs& in) {
  const double e = in.fp16 ? 2.0 : 4.0;
  const double ring =
      in.nd > 0 ? static_cast<double>(in.nd - 1) / in.nd : 0.0;
  // int8 wire bytes per element: one code byte plus the amortized fp16
  // block scale (exact up to per-message ceil rounding).
  const double qe =
      1.0 + 2.0 / static_cast<double>(in.quant_block > 0 ? in.quant_block : 64);
  // qgZ hierarchical gradient reduce (stages 2-3): only relays cross
  // nodes — each rank owns the relay role for one partition per node
  // and sends (nodes-1) quantized shards on the DP ledger.
  const bool qgz_on =
      in.qgz && in.ranks_per_node > 0 && in.nd % in.ranks_per_node == 0;
  double grads = ring * in.padded_psi * e;
  if (qgz_on && in.stage >= 2) {
    const double nodes =
        static_cast<double>(in.nd) / static_cast<double>(in.ranks_per_node);
    grads = (nodes - 1.0) * (in.padded_psi / in.nd) * qe;
  }
  if (in.stage <= 2) {
    if (in.stage == 0) return 2.0 * ring * in.padded_psi * e;
    // Stages 1-2: gradient reduce + the step-end parameter all-gather
    // (int8 under qwZ).
    const double ag = ring * in.padded_psi * (in.qwz ? qe : e);
    return grads + ag;
  }
  const double fwd = ring * in.psi * (in.qwz ? qe : e);
  // hpZ moves the backward gather onto the intra-node ledger entirely.
  const double bwd = in.hpz ? 0.0 : ring * in.psi * (in.qwz ? qe : e);
  return fwd + bwd + grads;
}

StepReport BuildStepReport(const StepReportInputs& inputs) {
  StepReport r;
  r.inputs = inputs;
  const int stage = inputs.stage;
  const int nd = inputs.nd;
  const int steps = inputs.steps > 0 ? inputs.steps : 1;

  // --- Memory: Figure 1 equations at the actual Nd -------------------
  MemoryCheck& mem = r.memory;
  mem.measured_bytes = inputs.measured_state_bytes;
  mem.predicted_bytes =
      PredictedStateBytes(stage, nd, inputs.fp16, inputs.padded_psi);
  mem.baseline_bytes =
      PredictedStateBytes(0, nd, inputs.fp16, inputs.padded_psi);
  if (mem.measured_bytes > 0) {
    mem.measured_reduction = mem.baseline_bytes / mem.measured_bytes;
  }
  if (mem.predicted_bytes > 0) {
    mem.predicted_reduction = mem.baseline_bytes / mem.predicted_bytes;
  }
  // Nd->infinity limits of the same equations: 16/16, 16/4, 16/2, Nd.
  switch (stage) {
    case 1:
      mem.asymptotic_reduction = 4.0;
      break;
    case 2:
      mem.asymptotic_reduction = 8.0;
      break;
    case 3:
      mem.asymptotic_reduction = static_cast<double>(nd);
      break;
    default:
      mem.asymptotic_reduction = 1.0;
      break;
  }
  mem.rel_error = RelError(mem.measured_bytes, mem.predicted_bytes);
  mem.ok = mem.rel_error <= inputs.tolerance;
  if (!mem.ok) {
    r.divergences.push_back(
        "memory: measured model states " +
        Fmt("%.0f B diverge from analytic %.0f B", mem.measured_bytes,
            mem.predicted_bytes) +
        Fmt(" (rel err %.3f > tol %.3f)", mem.rel_error, inputs.tolerance));
  }

  // --- Communication: 1x/1x/1x/1.5x of baseline DP volume ------------
  CommCheck& comm = r.comm;
  comm.measured_bytes_per_step = inputs.measured_comm_bytes / steps;
  comm.predicted_bytes_per_step = PredictedCommBytesPerStep(inputs);
  comm.local_bytes_per_step = inputs.measured_local_comm_bytes / steps;
  const int ws = inputs.world_size > 0 ? inputs.world_size : 1;
  comm.wire_int8_bytes_per_step = inputs.wire_int8_bytes / (ws * steps);
  comm.wire_scale_bytes_per_step = inputs.wire_scale_bytes / (ws * steps);
  const double baseline_comm = PredictedCommBytesPerStep(
      0, nd, inputs.fp16, inputs.psi, inputs.padded_psi);
  if (baseline_comm > 0) {
    comm.measured_ratio = comm.measured_bytes_per_step / baseline_comm;
    comm.predicted_ratio = comm.predicted_bytes_per_step / baseline_comm;
  }
  comm.rel_error =
      RelError(comm.measured_bytes_per_step, comm.predicted_bytes_per_step);
  // Compression-aware runs are judged in absolute bytes against the
  // stage's *uncompressed* wire scale: the ~KB/step of unmodeled scalar
  // collectives (loss mean, overflow flag, clip norm) is volume noise at
  // the exact scale but can dominate a 4x-smaller compressed prediction.
  // A missing compression path still fails — measured would sit a full
  // exact-minus-compressed volume above the prediction. The denominator
  // is identical to predicted when no ZeRO++ flag rewrites the volume.
  StepReportInputs exact = inputs;
  exact.qwz = exact.hpz = exact.qgz = false;
  const double wire_scale =
      std::max(comm.predicted_bytes_per_step, PredictedCommBytesPerStep(exact));
  comm.ok = wire_scale <= 0.0 ||
            std::abs(comm.measured_bytes_per_step -
                     comm.predicted_bytes_per_step) <=
                inputs.tolerance * wire_scale;
  if (!comm.ok) {
    r.divergences.push_back(
        "comm: measured per-rank " +
        Fmt("%.0f B/step diverge from analytic %.0f B/step",
            comm.measured_bytes_per_step, comm.predicted_bytes_per_step) +
        Fmt(" (rel err %.3f > tol %.3f)", comm.rel_error, inputs.tolerance));
  }
  return r;
}

std::string StepReport::ToJson() const {
  json::Value in = json::Value::MakeObject();
  in.Set("stage", json::Value(static_cast<std::int64_t>(inputs.stage)));
  in.Set("nd", json::Value(static_cast<std::int64_t>(inputs.nd)));
  in.Set("fp16", json::Value(inputs.fp16));
  in.Set("psi", json::Value(inputs.psi));
  in.Set("padded_psi", json::Value(inputs.padded_psi));
  in.Set("steps", json::Value(static_cast<std::int64_t>(inputs.steps)));
  in.Set("tolerance", json::Value(inputs.tolerance));
  in.Set("overlap_frac", json::Value(inputs.overlap_frac));
  in.Set("trace_dropped_events", json::Value(inputs.trace_dropped_events));
  if (inputs.qwz || inputs.hpz || inputs.qgz) {
    json::Value zpp = json::Value::MakeObject();
    zpp.Set("qwz", json::Value(inputs.qwz));
    zpp.Set("hpz", json::Value(inputs.hpz));
    zpp.Set("qgz", json::Value(inputs.qgz));
    zpp.Set("quant_block",
            json::Value(static_cast<std::int64_t>(inputs.quant_block)));
    zpp.Set("ranks_per_node",
            json::Value(static_cast<std::int64_t>(inputs.ranks_per_node)));
    in.Set("zeropp", std::move(zpp));
  }

  json::Value mem = json::Value::MakeObject();
  mem.Set("measured_bytes", json::Value(memory.measured_bytes));
  mem.Set("predicted_bytes", json::Value(memory.predicted_bytes));
  mem.Set("baseline_bytes", json::Value(memory.baseline_bytes));
  mem.Set("measured_reduction", json::Value(memory.measured_reduction));
  mem.Set("predicted_reduction", json::Value(memory.predicted_reduction));
  mem.Set("asymptotic_reduction", json::Value(memory.asymptotic_reduction));
  mem.Set("rel_error", json::Value(memory.rel_error));
  mem.Set("ok", json::Value(memory.ok));

  json::Value cm = json::Value::MakeObject();
  cm.Set("measured_bytes_per_step",
         json::Value(comm.measured_bytes_per_step));
  cm.Set("predicted_bytes_per_step",
         json::Value(comm.predicted_bytes_per_step));
  cm.Set("measured_ratio", json::Value(comm.measured_ratio));
  cm.Set("predicted_ratio", json::Value(comm.predicted_ratio));
  cm.Set("rel_error", json::Value(comm.rel_error));
  cm.Set("ok", json::Value(comm.ok));
  cm.Set("local_bytes_per_step", json::Value(comm.local_bytes_per_step));
  cm.Set("wire_int8_bytes_per_step",
         json::Value(comm.wire_int8_bytes_per_step));
  cm.Set("wire_scale_bytes_per_step",
         json::Value(comm.wire_scale_bytes_per_step));

  json::Value div = json::Value::MakeArray();
  for (const std::string& d : divergences) div.Append(json::Value(d));

  json::Value root = json::Value::MakeObject();
  root.Set("inputs", std::move(in));
  root.Set("memory", std::move(mem));
  root.Set("comm", std::move(cm));
  if (!inputs.offload_tier.empty()) {
    json::Value off = json::Value::MakeObject();
    off.Set("tier", json::Value(inputs.offload_tier));
    off.Set("host_in_use_bytes", json::Value(inputs.host_in_use_bytes));
    off.Set("host_peak_bytes", json::Value(inputs.host_peak_bytes));
    off.Set("bytes_to_tier", json::Value(inputs.offload_bytes_to_tier));
    off.Set("bytes_to_device", json::Value(inputs.offload_bytes_to_device));
    off.Set("hidden_frac", json::Value(inputs.offload_hidden_frac));
    root.Set("offload", std::move(off));
  }
  if (inputs.anatomy_steps > 0) {
    json::Value an = json::Value::MakeObject();
    an.Set("steps",
           json::Value(static_cast<std::int64_t>(inputs.anatomy_steps)));
    an.Set("straggler_rank",
           json::Value(static_cast<std::int64_t>(inputs.straggler_rank)));
    an.Set("straggler_steps",
           json::Value(static_cast<std::int64_t>(inputs.straggler_steps)));
    json::Value ranks = json::Value::MakeArray();
    for (const StepReportInputs::RankAnatomy& ra : inputs.anatomy_ranks) {
      json::Value v = json::Value::MakeObject();
      v.Set("rank", json::Value(static_cast<std::int64_t>(ra.rank)));
      v.Set("step_ms", json::Value(ra.step_ms));
      v.Set("compute_ms", json::Value(ra.compute_ms));
      v.Set("comm_ms", json::Value(ra.comm_ms));
      v.Set("stall_ms", json::Value(ra.stall_ms));
      v.Set("offload_ms", json::Value(ra.offload_ms));
      v.Set("critical_ms", json::Value(ra.critical_ms));
      v.Set("overlap_frac", json::Value(ra.overlap_frac));
      ranks.Append(std::move(v));
    }
    an.Set("ranks", std::move(ranks));
    root.Set("anatomy", std::move(an));
  }
  root.Set("divergences", std::move(div));
  root.Set("ok", json::Value(ok()));
  return root.Dump(2);
}

std::string StepReport::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "stage %d nd=%d: memory %.3g B measured vs %.3g B analytic "
      "(%.2fx reduction, asymptotic %.3gx, err %.1f%%); comm "
      "%.3g B/step vs %.3g analytic (%.2fx of baseline DP volume, "
      "err %.1f%%); %s",
      inputs.stage, inputs.nd, memory.measured_bytes, memory.predicted_bytes,
      memory.measured_reduction, memory.asymptotic_reduction,
      memory.rel_error * 100.0,
      comm.measured_bytes_per_step, comm.predicted_bytes_per_step,
      comm.measured_ratio, comm.rel_error * 100.0,
      ok() ? "matches paper equations" : "DIVERGES");
  return buf;
}

}  // namespace zero::obs
