// Chrome trace_event JSON export of the trace recorder's buffers, plus a
// strict validator for the emitted format (used by the trace tests and
// the CI smoke gate, and runnable over any artifact via the
// bench/trace_validate binary).
//
// Layout: one pid per rank (pid = rank + 1; untagged threads land in
// pid 0), one tid per recording thread, "X" complete events with
// microsecond timestamps sorted ascending, and "M" metadata events
// naming each process ("rank N") and thread lane. The output loads
// directly in chrome://tracing and https://ui.perfetto.dev.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace zero::obs {

// Serializes `threads` (typically CollectEvents()) to a Chrome
// trace_event JSON document.
[[nodiscard]] std::string ChromeTraceJson(
    const std::vector<ThreadEvents>& threads);

// Convenience: CollectEvents() -> ChromeTraceJson -> `path`. Returns
// false (and logs) when the file cannot be written.
bool WriteChromeTraceFile(const std::string& path);

// Strict validation: `text` must parse as JSON (RFC 8259) and satisfy
// the trace_event contract above — top-level object with a
// "traceEvents" array; every event an object with string "name"/"ph"
// and numeric "pid"/"tid"; every "X" event with numeric "ts" >= 0 and
// "dur" >= 0, and "X" timestamps monotonically non-decreasing in file
// order. On failure returns false and describes the problem in *error.
bool ValidateChromeTrace(const std::string& text, std::string* error);

// Reads `path` and validates. Missing/unreadable files fail.
bool ValidateChromeTraceFile(const std::string& path, std::string* error);

}  // namespace zero::obs
