#include "obs/metrics.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace zero::obs {

void Histogram::Observe(double v) {
  if (!std::isfinite(v)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++buckets_[BucketFor(v)];
}

int Histogram::BucketFor(double v) {
  if (v <= 1.0) return 0;
  // ceil(log2 v) maps (2^(b-1), 2^b] -> b, matching QuantileLocked's
  // interpolation ranges; the epsilon keeps exact powers in their bucket.
  const int b = static_cast<int>(std::ceil(std::log2(v) - 1e-9));
  return b >= kBuckets ? kBuckets - 1 : b;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target && buckets_[b] > 0) {
      // Interpolate inside bucket b's range (lo, hi]. Bucket 0 spans
      // (min_, 1]; clamp against the observed min/max so quantiles never
      // leave the data range.
      const double hi = b == 0 ? 1.0 : std::exp2(static_cast<double>(b));
      const double lo = b == 0 ? 0.0 : hi / 2.0;
      const std::uint64_t before = seen - buckets_[b];
      const double frac =
          (static_cast<double>(target - before)) /
          static_cast<double>(buckets_[b]);
      double est = lo + frac * (hi - lo);
      if (est < min_) est = min_;
      if (est > max_) est = max_;
      return est;
    }
  }
  return max_;
}

Histogram::Summary Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(count_);
  s.p50 = QuantileLocked(0.50);
  s.p95 = QuantileLocked(0.95);
  s.p99 = QuantileLocked(0.99);
  return s;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  for (std::uint64_t& b : buckets_) b = 0;
}

// std::map keeps snapshot key order deterministic; unique_ptr values are
// never erased, so handles returned to instrument sites stay valid for
// the life of the process.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  template <typename Map>
  static bool Holds(const Map& map, std::string_view name) {
    return map.find(name) != map.end();
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  std::lock_guard<std::mutex> lock(impl_mutex_);
  if (impl_ == nullptr) impl_ = new Impl();  // leaked: handles never die
  return *impl_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    ZERO_CHECK(!Impl::Holds(im.gauges, name) &&
                   !Impl::Holds(im.histograms, name),
               "metric \"" + std::string(name) +
                   "\" already registered as a different kind");
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    ZERO_CHECK(!Impl::Holds(im.counters, name) &&
                   !Impl::Holds(im.histograms, name),
               "metric \"" + std::string(name) +
                   "\" already registered as a different kind");
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    ZERO_CHECK(!Impl::Holds(im.counters, name) &&
                   !Impl::Holds(im.gauges, name),
               "metric \"" + std::string(name) +
                   "\" already registered as a different kind");
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetValues() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (auto& [name, c] : im.counters) c->Reset();
  for (auto& [name, g] : im.gauges) g->Reset();
  for (auto& [name, h] : im.histograms) h->Reset();
}

std::string MetricsRegistry::SnapshotJson() const {
  Impl& im = impl();
  json::Value counters = json::Value::MakeObject();
  json::Value gauges = json::Value::MakeObject();
  json::Value histograms = json::Value::MakeObject();
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    for (const auto& [name, c] : im.counters) {
      counters.Set(name, json::Value(static_cast<double>(c->value())));
    }
    for (const auto& [name, g] : im.gauges) {
      gauges.Set(name, json::Value(g->value()));
    }
    for (const auto& [name, h] : im.histograms) {
      const Histogram::Summary s = h->Snapshot();
      json::Value o = json::Value::MakeObject();
      o.Set("count", json::Value(static_cast<double>(s.count)));
      o.Set("sum", json::Value(s.sum));
      o.Set("min", json::Value(s.min));
      o.Set("max", json::Value(s.max));
      o.Set("mean", json::Value(s.mean));
      o.Set("p50", json::Value(s.p50));
      o.Set("p95", json::Value(s.p95));
      o.Set("p99", json::Value(s.p99));
      histograms.Set(name, std::move(o));
    }
  }
  json::Value root = json::Value::MakeObject();
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root.Dump(2);
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (const auto& [name, c] : im.counters) fn(name, *c);
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (const auto& [name, g] : im.gauges) fn(name, *g);
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (const auto& [name, h] : im.histograms) fn(name, *h);
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked on purpose
  return *reg;
}

}  // namespace zero::obs
