// Step critical-path analysis over a merged Timeline.
//
// Per step (the k-th "engine/step" span on every rank):
//
//   * Segment decomposition. Each rank's step time is split into
//     compute / exposed-comm / stall / offload by sweeping the rank's
//     classified spans: at every instant the highest-priority active
//     class wins (stall > offload > comm), and time under no classified
//     span is compute. Stall is a blocked wait (mailbox recv, p2p wait,
//     collective wait, prefetch acquire, bucket drain); comm is active
//     wire work (collectives, bucket flushes, quantize codecs); offload
//     is the optimizer-state tier pipeline.
//
//   * Critical path. Blocking collectives induce cross-rank dependency
//     edges: instance k of a collective on rank r matches instance k on
//     every other rank (SPMD lockstep), and the instance cannot end
//     before its *gating* rank — the member that finished contributing
//     last — is done. The walk starts at the step's latest rank end and
//     moves backward; at each matched collective it jumps to the gating
//     rank, identified as the member maximizing span_start +
//     (span_dur - stall_within): the arrival-adjusted busy end. A late
//     arriver wins on start; a rank slowed inside the collective wins
//     on busy time; a member that merely sat in recv-wait never wins.
//     The chain of segments from step start to step end is the critical
//     path, and the rank holding most of it is the step's straggler.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/timeline.hpp"

namespace zero::obs {

enum class SegClass : int { kCompute = 0, kComm = 1, kStall = 2, kOffload = 3 };
inline constexpr int kSegClassCount = 4;

const char* SegClassName(SegClass c);

// Name-prefix classification; unlisted names are compute.
SegClass ClassifySpanName(std::string_view name);

struct RankStepAnatomy {
  int rank = -1;
  std::uint64_t begin_ns = 0;  // this rank's engine/step window
  std::uint64_t end_ns = 0;
  double class_ns[kSegClassCount] = {0, 0, 0, 0};
  double critical_ns = 0;  // time attributed to this rank on the path

  [[nodiscard]] double step_ns() const {
    return static_cast<double>(end_ns - begin_ns);
  }
  // Fraction of the step this rank spent NOT blocked or on the wire —
  // the per-rank analogue of the prefetcher's overlap gauge.
  [[nodiscard]] double busy_frac() const {
    const double s = step_ns();
    if (s <= 0) return 0;
    return class_ns[static_cast<int>(SegClass::kCompute)] / s;
  }
};

struct CriticalSegment {
  int rank = -1;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

struct StepAnatomy {
  int step = -1;
  std::vector<RankStepAnatomy> ranks;   // one per tagged rank, rank order
  std::vector<CriticalSegment> path;    // step start -> step end
  int straggler_rank = -1;              // argmax critical_ns
};

// One StepAnatomy per matched engine/step instance (the count is the
// minimum across ranks, so a crashed rank truncates the analysis
// instead of corrupting it). Empty when no rank recorded a step.
std::vector<StepAnatomy> AnalyzeSteps(const Timeline& timeline);

// Aggregate over steps for the step report.
struct RankAggregate {
  int rank = -1;
  double step_ms = 0;
  double compute_ms = 0;
  double comm_ms = 0;
  double stall_ms = 0;
  double offload_ms = 0;
  double critical_ms = 0;  // mean time on the critical path
};

struct AnatomySummary {
  int steps = 0;            // steps analyzed (after skip)
  int straggler_rank = -1;  // plurality winner across steps
  int straggler_steps = 0;  // steps won by that rank
  std::vector<RankAggregate> ranks;  // per-step means
};

// Skips the first `skip_first` steps (warm-up) before averaging.
AnatomySummary SummarizeAnatomy(const std::vector<StepAnatomy>& steps,
                                int skip_first = 0);

}  // namespace zero::obs
