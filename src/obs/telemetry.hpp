// Run-level telemetry switches, threaded through EngineConfig into the
// trainer. Tracing is always compiled in; these options decide whether
// the recorder is turned on for a run and where artifacts land.
//
// Environment activation: setting ZERO_TRACE=/path/to/trace.json turns
// telemetry on for any binary that consults FromEnv (the trainer and the
// examples do). The metrics snapshot, step report and merged timeline
// derive their paths from the trace path unless overridden:
//   <trace>.metrics.json    per-step metrics registry snapshots
//   <trace>.report.json     paper-equation step report
//   <trace>.timeline.json   skew-corrected cross-rank timeline
// ZERO_POSTMORTEM=/path/to/dir independently arms the flight recorder
// (obs/flight_recorder.hpp): a faulted run flushes a post-mortem bundle
// there even when ZERO_TRACE is unset.
#pragma once

#include <string>

namespace zero::obs {

struct TelemetryOptions {
  // Master switch: spans are recorded, metrics snapshotted per step, and
  // the artifacts below written at the end of the run.
  bool enabled = false;

  // Chrome trace_event JSON output path ("" = do not write a trace).
  std::string trace_path;

  // Per-step metrics JSON ("" = derive from trace_path).
  std::string metrics_path;

  // Step report JSON with measured-vs-analytic checks ("" = derive).
  std::string report_path;

  // Merged multi-pid cross-rank timeline ("" = derive from trace_path).
  std::string timeline_path;

  // Flight-recorder post-mortem bundle root ("" = disarmed). Unlike the
  // artifacts above this is independent of `enabled`: the recorder arms
  // a small bounded ring even when full telemetry is off, and only
  // writes when a fault kills the run. Set via EngineConfig::telemetry
  // or the ZERO_POSTMORTEM env var.
  std::string postmortem_dir;

  // Run the paper-equation validation (memory 4x/8x/Nd, comm 1x/1x/1.5x)
  // and log divergences. Independent of whether a report file is written.
  bool validate = true;

  // Per-thread ring capacity in events while this run records.
  std::size_t trace_buffer_events = 16384;

  // Fills the derived paths in place and returns self.
  TelemetryOptions& ResolvePaths();

  // Reads ZERO_TRACE; a non-empty value enables telemetry with that
  // trace path and derived metrics/report paths.
  static TelemetryOptions FromEnv();
};

}  // namespace zero::obs
