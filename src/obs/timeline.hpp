// Cross-rank timeline: merges every rank's per-thread trace rings into
// one global, clock-aligned view of a run.
//
// The recorder (obs/trace.hpp) is strictly rank-local — each thread owns
// a ring stamped with its rank tag. This module joins those rings:
//
//   1. Clock skew estimation. On real clusters every rank has its own
//      clock; here each rank's offset relative to rank 0 is estimated
//      from matched blocking-collective span pairs. A blocking
//      symmetric collective (all-reduce, reduce-scatter, all-gather,
//      all-to-all) releases every member within one wire latency of the
//      last arrival, so the k-th instance of such a span must end at
//      (nearly) the same true time on every rank: the median end-time
//      difference over all matched pairs is the skew. In the in-process
//      SPMD runtime all ranks share one steady_clock and the estimate
//      converges to ~0; the machinery exists so traces imported with an
//      artificial or genuine offset still align (tested by injecting
//      one).
//
//   2. A queryable in-memory form (Timeline) with skew-corrected spans
//      sorted by start time, plus the per-lane drop counters so a
//      truncated ring is visible in every downstream consumer.
//
//   3. A single Perfetto-loadable multi-pid Chrome trace
//      (TimelineChromeJson): pid = rank+1 exactly like the per-rank
//      exporter, with the skew estimates and per-lane drop counts in
//      otherData.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace zero::obs {

// One span in the merged timeline; timestamps are already corrected
// into rank 0's clock domain.
struct TimelineSpan {
  std::string name;
  int rank = -1;  // -1 = untagged helper thread
  int tid = 0;    // recorder lane (globally unique across ranks)
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;

  [[nodiscard]] std::uint64_t end_ns() const { return start_ns + dur_ns; }
};

// Per-rank clock model: skew_ns is this rank's clock minus rank 0's,
// estimated over `matched` collective span pairs (0 pairs => skew 0).
struct RankClock {
  int rank = -1;
  std::int64_t skew_ns = 0;
  int matched = 0;
};

struct Timeline {
  std::vector<TimelineSpan> spans;  // sorted by start_ns
  std::vector<RankClock> clocks;    // one per tagged rank, rank order
  std::map<int, std::string> lane_names;        // tid -> recorder name
  std::map<int, std::uint64_t> dropped_by_tid;  // nonzero lanes only
  std::uint64_t dropped_events = 0;

  // Largest tagged rank seen; -1 when only untagged lanes recorded.
  [[nodiscard]] int max_rank() const;
  [[nodiscard]] std::int64_t SkewFor(int rank) const;
  // Spans tagged `rank`, in start order (pointers into `spans`).
  [[nodiscard]] std::vector<const TimelineSpan*> RankSpans(int rank) const;
  // Spans named exactly `name`, in start order.
  [[nodiscard]] std::vector<const TimelineSpan*> Named(
      std::string_view name) const;
};

// True for span names usable as cross-rank synchronization anchors:
// blocking collectives every group member participates in end to end.
bool IsSyncSpanName(std::string_view name);

// Estimate per-rank skew relative to rank 0 from the raw collected
// rings. Only span names where every tagged rank recorded the same
// nonzero instance count contribute (subgroup collectives with
// rank-dependent schedules are skipped rather than mismatched).
std::vector<RankClock> EstimateClockSkew(
    const std::vector<ThreadEvents>& threads);

// Merge + skew-correct + sort. Input is CollectEvents() output (or a
// synthetic equivalent in tests).
Timeline BuildTimeline(const std::vector<ThreadEvents>& threads);

// Multi-pid Chrome trace of the merged timeline (pid = rank+1, 0 =
// untagged). otherData carries droppedEvents, droppedByLane and
// clockSkewNs so consumers can see truncation and the applied offsets.
std::string TimelineChromeJson(const Timeline& timeline);

// CollectEvents() -> BuildTimeline -> write to `path`. Same collection
// contract as WriteChromeTraceFile: no thread may be recording.
bool WriteMergedTimelineFile(const std::string& path);

}  // namespace zero::obs
