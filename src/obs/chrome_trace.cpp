#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace zero::obs {

namespace {

struct FlatEvent {
  const TraceEvent* e;
  int pid;
  int tid;
};

void AppendMicros(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<ThreadEvents>& threads) {
  std::vector<FlatEvent> flat;
  // pid -> process label; tid lanes are globally unique already.
  std::map<int, std::string> processes;
  std::map<int, std::pair<int, std::string>> lanes;  // tid -> (pid, name)
  std::uint64_t dropped = 0;
  for (const ThreadEvents& te : threads) {
    dropped += te.dropped;
    int lane_pid = 0;
    for (const TraceEvent& e : te.events) {
      const int pid = e.rank >= 0 ? e.rank + 1 : 0;
      lane_pid = pid;  // last rank tag wins for the lane's home process
      flat.push_back({&e, pid, te.tid});
      auto [it, inserted] = processes.try_emplace(pid);
      if (inserted) {
        it->second =
            pid == 0 ? "untagged" : "rank " + std::to_string(pid - 1);
      }
    }
    if (!te.events.empty()) {
      lanes[te.tid] = {lane_pid, te.name};
    }
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const FlatEvent& a, const FlatEvent& b) {
                     return a.e->start_ns < b.e->start_ns;
                   });

  // Hand-built output: event volume makes the generic json::Value dump
  // needlessly slow, and the format is fixed anyway.
  std::string out;
  out.reserve(flat.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  out += std::to_string(dropped);
  // Per-lane drop counts (nonzero lanes only): a truncated ring must be
  // visible in the artifact, not silently absorbed into the total.
  out += ",\"droppedByLane\":{";
  bool dropped_first = true;
  for (const ThreadEvents& te : threads) {
    if (te.dropped == 0) continue;
    if (!dropped_first) out += ',';
    dropped_first = false;
    out += '"';
    out += std::to_string(te.tid);
    out += "\":";
    out += std::to_string(te.dropped);
  }
  out += "}},\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const auto& [pid, name] : processes) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += json::Escape(name);
    out += "\"}}";
  }
  for (const auto& [tid, lane] : lanes) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(lane.first);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    out += json::Escape(lane.second);
    out += "\"}}";
  }
  for (const FlatEvent& fe : flat) {
    comma();
    out += "{\"name\":\"";
    out += json::Escape(fe.e->name);
    out += "\",\"cat\":\"zero\",\"ph\":\"X\",\"ts\":";
    AppendMicros(out, fe.e->start_ns);
    out += ",\"dur\":";
    AppendMicros(out, fe.e->dur_ns);
    out += ",\"pid\":";
    out += std::to_string(fe.pid);
    out += ",\"tid\":";
    out += std::to_string(fe.tid);
    out += '}';
  }
  out += "]}";
  return out;
}

bool WriteChromeTraceFile(const std::string& path) {
  const std::string text = ChromeTraceJson(CollectEvents());
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    ZLOG_ERROR << "cannot open trace output " << path;
    return false;
  }
  f << text;
  f.flush();
  if (!f) {
    ZLOG_ERROR << "short write to trace output " << path;
    return false;
  }
  ZLOG_INFO << "wrote chrome trace (" << TraceEventCount() << " events, "
            << TraceDroppedCount() << " dropped) to " << path;
  return true;
}

namespace {

bool EventError(std::size_t index, const std::string& what,
                std::string* error) {
  if (error != nullptr) {
    *error = "traceEvents[" + std::to_string(index) + "]: " + what;
  }
  return false;
}

}  // namespace

bool ValidateChromeTrace(const std::string& text, std::string* error) {
  json::Value root;
  std::string perr;
  if (!json::Parse(text, &root, &perr)) {
    if (error != nullptr) *error = "JSON parse failed: " + perr;
    return false;
  }
  if (!root.is_object()) {
    if (error != nullptr) *error = "top level is not an object";
    return false;
  }
  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }
  double last_ts = -1.0;
  for (std::size_t i = 0; i < events->as_array().size(); ++i) {
    const json::Value& ev = events->as_array()[i];
    if (!ev.is_object()) return EventError(i, "not an object", error);
    const json::Value* name = ev.Find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return EventError(i, "missing string name", error);
    }
    const json::Value* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return EventError(i, "missing string ph", error);
    }
    for (const char* key : {"pid", "tid"}) {
      const json::Value* v = ev.Find(key);
      if (v == nullptr || !v->is_number()) {
        return EventError(i, std::string("missing numeric ") + key, error);
      }
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") continue;  // metadata carries no timestamp
    if (phase != "X") {
      return EventError(i, "unexpected phase \"" + phase + "\"", error);
    }
    const json::Value* ts = ev.Find("ts");
    const json::Value* dur = ev.Find("dur");
    if (ts == nullptr || !ts->is_number() || ts->as_number() < 0) {
      return EventError(i, "X event needs numeric ts >= 0", error);
    }
    if (dur == nullptr || !dur->is_number() || dur->as_number() < 0) {
      return EventError(i, "X event needs numeric dur >= 0", error);
    }
    if (ts->as_number() < last_ts) {
      return EventError(i, "timestamps not monotonically ordered", error);
    }
    last_ts = ts->as_number();
  }
  return true;
}

bool ValidateChromeTraceFile(const std::string& path, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ValidateChromeTrace(ss.str(), error);
}

}  // namespace zero::obs
