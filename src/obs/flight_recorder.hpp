// Flight recorder: a bounded always-on telemetry ring plus rolling
// metrics snapshots that the fault abort cascade flushes to a
// deterministic post-mortem bundle.
//
// The PR-3 recorder is off by default because full tracing is a
// per-run opt-in; the flight recorder arms the same per-thread rings
// (small and bounded, so the steady-state cost is the ~1ns disabled
// span check plus one 64-byte ring write per span) and keeps the last
// few per-step metrics snapshots in memory. Nothing is written during
// healthy operation. When a run dies — injected fault, missed
// heartbeat, comm timeout — FlushFlightRecorder writes:
//
//   <dir>[/<label>]/manifest.json        reason, ranks, snapshots, skew
//   <dir>[/<label>]/rank-<r>.trace.json  per-rank Chrome trace
//   <dir>[/<label>]/timeline.json        merged skew-corrected timeline
//
// The layout is deterministic (file set is a function of the ranks that
// recorded), so CI can assert a crashed run left an analyzable bundle.
// Wired through the trainer (TrainResult::postmortem_dir) and
// RecoveryCoordinator (per-attempt bundles under attempt-<k>/).
#pragma once

#include <cstdint>
#include <string>

namespace zero::obs {

struct FlightRecorderOptions {
  // Bundle root. Flushes land here (or in <dir>/<label>).
  std::string dir;
  // Per-thread span ring capacity to arm tracing with when the full
  // telemetry recorder is not already on.
  std::size_t ring_events = 8192;
  // Rolling metrics snapshots kept (oldest evicted first).
  std::size_t max_snapshots = 16;
};

// Arms the recorder. If tracing is off it is enabled with a ring of
// ring_events (no reset: an armed recorder never discards history it
// could keep). Idempotent; a second call replaces the options.
void EnableFlightRecorder(const FlightRecorderOptions& options);

// Disarms without flushing and clears the snapshot buffer. Does not
// touch the tracing enable flag (the owner of the run decides that).
void DisableFlightRecorder();

bool FlightRecorderEnabled();
std::string FlightRecorderDir();

// Appends a metrics snapshot (MetricsRegistry::SnapshotJson) to the
// rolling buffer. No-op when disarmed. Thread-safe.
void FlightRecorderStepSnapshot(std::int64_t step, std::string metrics_json);

// Flushes the bundle. Collection contract: no thread may be recording
// (call after World::TryRun has joined). Returns the bundle directory,
// or "" when disarmed or on I/O failure.
std::string FlushFlightRecorder(const std::string& reason,
                                const std::string& label = "");

// Post-mortem bundle validator: the manifest must parse under the
// strict RFC 8259 parser and every rank trace plus the merged timeline
// it lists must pass the Chrome-trace validator.
bool ValidatePostmortemBundle(const std::string& dir, std::string* error);

}  // namespace zero::obs
