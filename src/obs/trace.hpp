// Low-overhead, thread-safe trace recorder.
//
// Every instrumented scope in the runtime is wrapped in TRACE_SPAN("x");
// when tracing is disabled (the default) a span costs one relaxed atomic
// load and a branch — cheap enough to leave compiled into the hot paths
// permanently (bench/telemetry_overhead gates this at <2% of a training
// step). When enabled, each thread records 64-byte events into its own
// fixed-capacity ring buffer:
//
//   - no locks on the record path (the registry mutex is only taken once
//     per thread, at first record, to register the buffer);
//   - overflow overwrites the oldest events and counts the drops — a
//     recorder never blocks or allocates mid-step (the ring is allocated
//     at registration);
//   - buffers outlive their threads (the registry keeps them alive), so
//     SPMD rank threads can exit before the main thread flushes.
//
// Rank attribution: each event snapshots the recording thread's rank tag
// (common/logging.hpp's thread rank, set by World::Run for rank threads
// and inherited by intra-op workers). The Chrome exporter maps rank ->
// pid and registration order -> tid, so a whole training step renders as
// one process lane per rank in chrome://tracing / Perfetto.
//
// Collection contract: CollectEvents / chrome-trace flushing must not
// run concurrently with active span recording. In practice the trainer
// flushes after World::Run has joined every rank thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace zero::obs {

// ---- dynamic switch ----
[[nodiscard]] bool TracingEnabled();
void EnableTracing();
void DisableTracing();

// Drops all recorded events and thread registrations (buffers of live
// threads are re-registered on their next record). Not thread-safe with
// concurrent recording; call between runs.
void ResetTrace();

// Ring capacity (events per thread) for buffers registered *after* the
// call. Clamped to [64, 1<<22]. Default 16384 (1 MiB per thread).
void SetTraceBufferCapacity(std::size_t events);

// Optional human-readable lane name for the calling thread ("rank 3",
// "w0"); applies at registration time, so set it before the first span.
void SetThreadTraceName(std::string name);

// Nanoseconds since the recorder epoch (process start / last Reset).
[[nodiscard]] std::uint64_t TraceNowNs();

// One completed span. 64 bytes; name is truncated to kNameCap-1.
struct TraceEvent {
  static constexpr std::size_t kNameCap = 44;
  char name[kNameCap];
  std::int32_t rank;  // thread rank tag at record time (-1 = untagged)
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};
static_assert(sizeof(TraceEvent) == 64);

struct ThreadEvents {
  int tid = 0;                     // registration order, stable per thread
  std::string name;                // lane label ("rank 0", "w1", ...)
  std::uint64_t dropped = 0;       // events overwritten by ring overflow
  std::vector<TraceEvent> events;  // oldest -> newest
};

// Snapshot of every registered buffer. See the collection contract above.
[[nodiscard]] std::vector<ThreadEvents> CollectEvents();

// Total events currently held across all buffers (post-drop).
[[nodiscard]] std::size_t TraceEventCount();
// Total events dropped to ring overflow across all buffers.
[[nodiscard]] std::uint64_t TraceDroppedCount();

namespace detail {
void RecordSpan(const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns);
}  // namespace detail

// RAII scoped span. `name` must stay valid until destruction (string
// literals always qualify); it is copied into the event at record time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_ns_ = TraceNowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::RecordSpan(name_, start_ns_, TraceNowNs());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#define ZERO_TRACE_CONCAT2(a, b) a##b
#define ZERO_TRACE_CONCAT(a, b) ZERO_TRACE_CONCAT2(a, b)
// Scoped span: TRACE_SPAN("fwd/layer3"); ends at scope exit.
#define TRACE_SPAN(name) \
  ::zero::obs::TraceSpan ZERO_TRACE_CONCAT(zero_trace_span_, __LINE__)(name)

}  // namespace zero::obs
