#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace zero::obs {

namespace {

// Blocking collectives usable as dependency anchors in the walk. Wider
// than the skew set: rooted ops still pin the *other* members to the
// gating rank even though the root itself can leave early.
bool IsWalkAnchor(std::string_view name) {
  return name == "comm/all_reduce" || name == "comm/reduce_scatter" ||
         name == "comm/all_gather" || name == "comm/all_to_all" ||
         name == "comm/broadcast" || name == "comm/reduce" ||
         name == "comm/gather" || name == "comm/scatter";
}

struct Interval {
  std::uint64_t lo;
  std::uint64_t hi;
  SegClass cls;
};

// Sum of stall-class time inside [lo, hi) given the rank's stall
// intervals (clipped; overlap within the class is counted once by
// merging — stall spans on one lane nest, so max-end tracking is
// enough).
double StallWithin(const std::vector<Interval>& stalls, std::uint64_t lo,
                   std::uint64_t hi) {
  double total = 0;
  std::uint64_t covered_to = lo;
  for (const Interval& s : stalls) {
    if (s.hi <= lo || s.lo >= hi) continue;
    const std::uint64_t b = std::max({s.lo, lo, covered_to});
    const std::uint64_t e = std::min(s.hi, hi);
    if (e > b) {
      total += static_cast<double>(e - b);
      covered_to = e;
    }
  }
  return total;
}

}  // namespace

const char* SegClassName(SegClass c) {
  switch (c) {
    case SegClass::kCompute:
      return "compute";
    case SegClass::kComm:
      return "comm";
    case SegClass::kStall:
      return "stall";
    case SegClass::kOffload:
      return "offload";
  }
  return "?";
}

SegClass ClassifySpanName(std::string_view name) {
  // Blocked waits first: a wait span nests inside the collective or
  // acquire that issued it and must win the sweep.
  if (name == "comm/p2p_wait" || name == "comm/recv_wait" ||
      name == "comm/collective_wait" || name == "params/prefetch_wait" ||
      name == "grads/bucket_drain") {
    return SegClass::kStall;
  }
  if (name.starts_with("offload/") || name == "optim/offload_step") {
    return SegClass::kOffload;
  }
  if (name.starts_with("comm/") || name.starts_with("grads/") ||
      name.starts_with("params/") || name == "tensor/quantize" ||
      name == "tensor/dequantize") {
    return SegClass::kComm;
  }
  return SegClass::kCompute;
}

std::vector<StepAnatomy> AnalyzeSteps(const Timeline& timeline) {
  std::vector<StepAnatomy> out;

  // One lane per rank: the one carrying engine/step spans. Worker lanes
  // share the rank tag but only ever record compute spans, so scoping
  // the sweep to the step lane avoids double counting.
  struct Lane {
    int rank = -1;
    int tid = -1;
    std::vector<const TimelineSpan*> steps;     // engine/step, start order
    std::vector<const TimelineSpan*> spans;     // every span on the lane
    std::vector<Interval> stalls;               // stall-class, start order
    std::vector<const TimelineSpan*> anchors;   // walk anchors, start order
  };
  std::map<int, Lane> lanes;
  for (const TimelineSpan& s : timeline.spans) {
    if (s.rank < 0) continue;
    if (std::string_view(s.name) == "engine/step") {
      Lane& l = lanes[s.rank];
      if (l.tid == -1) {
        l.rank = s.rank;
        l.tid = s.tid;
      }
      if (s.tid == l.tid) l.steps.push_back(&s);
    }
  }
  if (lanes.empty()) return out;
  std::size_t num_steps = SIZE_MAX;
  for (auto& [rank, lane] : lanes) {
    num_steps = std::min(num_steps, lane.steps.size());
  }
  if (num_steps == 0 || num_steps == SIZE_MAX) return out;

  for (const TimelineSpan& s : timeline.spans) {
    auto it = lanes.find(s.rank);
    if (it == lanes.end() || s.tid != it->second.tid) continue;
    it->second.spans.push_back(&s);
    const SegClass cls = ClassifySpanName(s.name);
    if (cls == SegClass::kStall) {
      it->second.stalls.push_back({s.start_ns, s.end_ns(), cls});
    }
    if (IsWalkAnchor(s.name)) it->second.anchors.push_back(&s);
  }

  for (std::size_t k = 0; k < num_steps; ++k) {
    StepAnatomy step;
    step.step = static_cast<int>(k);

    // ---- per-rank segment decomposition ----
    for (auto& [rank, lane] : lanes) {
      RankStepAnatomy ra;
      ra.rank = rank;
      const TimelineSpan* w = lane.steps[k];
      ra.begin_ns = w->start_ns;
      ra.end_ns = w->end_ns();

      // Boundary sweep over the classified spans inside the window: at
      // each elementary interval the highest-priority active class wins
      // (stall > offload > comm); uncovered time is compute.
      struct Edge {
        std::uint64_t t;
        int delta;
        SegClass cls;
      };
      std::vector<Edge> edges;
      for (const TimelineSpan* s : lane.spans) {
        if (s == w) continue;
        const SegClass cls = ClassifySpanName(s->name);
        if (cls == SegClass::kCompute) continue;
        const std::uint64_t lo = std::max(s->start_ns, ra.begin_ns);
        const std::uint64_t hi = std::min(s->end_ns(), ra.end_ns);
        if (hi <= lo) continue;
        edges.push_back({lo, +1, cls});
        edges.push_back({hi, -1, cls});
      }
      std::sort(edges.begin(), edges.end(),
                [](const Edge& a, const Edge& b) { return a.t < b.t; });
      int active[kSegClassCount] = {0, 0, 0, 0};
      std::uint64_t prev = ra.begin_ns;
      auto flush_to = [&](std::uint64_t t) {
        if (t <= prev) return;
        SegClass cls = SegClass::kCompute;
        if (active[static_cast<int>(SegClass::kStall)] > 0) {
          cls = SegClass::kStall;
        } else if (active[static_cast<int>(SegClass::kOffload)] > 0) {
          cls = SegClass::kOffload;
        } else if (active[static_cast<int>(SegClass::kComm)] > 0) {
          cls = SegClass::kComm;
        }
        ra.class_ns[static_cast<int>(cls)] += static_cast<double>(t - prev);
        prev = t;
      };
      for (const Edge& e : edges) {
        flush_to(e.t);
        active[static_cast<int>(e.cls)] += e.delta;
      }
      flush_to(ra.end_ns);
      step.ranks.push_back(ra);
    }

    // ---- matched collective instances ----
    // name -> per-rank anchor spans inside this step's window. Only
    // names where every rank saw the same count are matchable
    // (subgroup collectives drop out here).
    std::map<std::string, std::map<int, std::vector<const TimelineSpan*>>>
        by_name;
    for (auto& [rank, lane] : lanes) {
      const TimelineSpan* w = lane.steps[k];
      for (const TimelineSpan* a : lane.anchors) {
        if (a->start_ns >= w->start_ns && a->end_ns() <= w->end_ns()) {
          by_name[a->name][rank].push_back(a);
        }
      }
    }
    struct Instance {
      std::map<int, const TimelineSpan*> spans;  // rank -> span
    };
    std::vector<Instance> instances;
    for (auto& [name, per_rank] : by_name) {
      if (per_rank.size() != lanes.size()) continue;
      std::size_t count = per_rank.begin()->second.size();
      bool uniform = true;
      for (auto& [rank, v] : per_rank) uniform &= v.size() == count;
      if (!uniform) continue;
      for (std::size_t i = 0; i < count; ++i) {
        Instance inst;
        for (auto& [rank, v] : per_rank) inst.spans[rank] = v[i];
        instances.push_back(std::move(inst));
      }
    }
    // Per rank, its instance spans in start order (for "latest before t").
    std::map<int, std::vector<std::pair<const TimelineSpan*, std::size_t>>>
        rank_insts;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      for (auto& [rank, span] : instances[i].spans) {
        rank_insts[rank].push_back({span, i});
      }
    }
    for (auto& [rank, v] : rank_insts) {
      std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
        return a.first->start_ns < b.first->start_ns;
      });
    }

    // The member that finished contributing last gates the instance:
    // maximize arrival-adjusted busy end. A late arriver wins on start;
    // a rank slowed inside wins on busy time; a waiter never wins.
    auto gate_of = [&](const Instance& inst) {
      int gate = -1;
      double best = -1;
      for (auto& [rank, span] : inst.spans) {
        const double busy =
            static_cast<double>(span->dur_ns) -
            StallWithin(lanes[rank].stalls, span->start_ns, span->end_ns());
        const double busy_end = static_cast<double>(span->start_ns) +
                                std::max(0.0, busy);
        if (busy_end > best) {
          best = busy_end;
          gate = rank;
        }
      }
      return gate;
    };

    // ---- backward walk from the latest step end ----
    auto rank_entry = [&](int rank) -> RankStepAnatomy& {
      for (RankStepAnatomy& ra : step.ranks) {
        if (ra.rank == rank) return ra;
      }
      return step.ranks.front();
    };
    int cur = -1;
    std::uint64_t t = 0;
    for (const RankStepAnatomy& ra : step.ranks) {
      if (cur == -1 || ra.end_ns > t) {
        cur = ra.rank;
        t = ra.end_ns;
      }
    }
    std::vector<CriticalSegment> rev;
    auto attribute = [&](int rank, std::uint64_t lo, std::uint64_t hi) {
      if (hi <= lo) return;
      rev.push_back({rank, lo, hi});
      rank_entry(rank).critical_ns += static_cast<double>(hi - lo);
    };
    std::size_t guard = instances.size() * 2 + 4;
    while (guard-- > 0) {
      // Latest matched instance on `cur` starting before t.
      const std::vector<std::pair<const TimelineSpan*, std::size_t>>& v =
          rank_insts[cur];
      const TimelineSpan* span = nullptr;
      std::size_t inst_idx = 0;
      for (const auto& [s, idx] : v) {
        if (s->start_ns < t) {
          span = s;
          inst_idx = idx;
        } else {
          break;
        }
      }
      if (span == nullptr) {
        attribute(cur, rank_entry(cur).begin_ns, t);
        break;
      }
      const std::uint64_t seg_lo = std::min(span->end_ns(), t);
      attribute(cur, seg_lo, t);
      const int gate = gate_of(instances[inst_idx]);
      const TimelineSpan* gspan = instances[inst_idx].spans.at(gate);
      attribute(gate, gspan->start_ns, std::min(gspan->end_ns(), seg_lo));
      if (gspan->start_ns >= t) break;  // no progress: clocks disagree
      cur = gate;
      t = gspan->start_ns;
    }
    std::reverse(rev.begin(), rev.end());
    step.path = std::move(rev);

    for (const RankStepAnatomy& ra : step.ranks) {
      if (step.straggler_rank == -1 ||
          ra.critical_ns >
              rank_entry(step.straggler_rank).critical_ns) {
        step.straggler_rank = ra.rank;
      }
    }
    out.push_back(std::move(step));
  }
  return out;
}

AnatomySummary SummarizeAnatomy(const std::vector<StepAnatomy>& steps,
                                int skip_first) {
  AnatomySummary sum;
  const std::size_t skip = std::min<std::size_t>(
      steps.size() > 1 ? static_cast<std::size_t>(std::max(0, skip_first))
                       : 0,
      steps.empty() ? 0 : steps.size() - 1);
  std::map<int, RankAggregate> agg;
  std::map<int, int> votes;
  for (std::size_t i = skip; i < steps.size(); ++i) {
    const StepAnatomy& s = steps[i];
    ++sum.steps;
    if (s.straggler_rank >= 0) ++votes[s.straggler_rank];
    for (const RankStepAnatomy& ra : s.ranks) {
      RankAggregate& a = agg[ra.rank];
      a.rank = ra.rank;
      a.step_ms += ra.step_ns() / 1e6;
      a.compute_ms += ra.class_ns[static_cast<int>(SegClass::kCompute)] / 1e6;
      a.comm_ms += ra.class_ns[static_cast<int>(SegClass::kComm)] / 1e6;
      a.stall_ms += ra.class_ns[static_cast<int>(SegClass::kStall)] / 1e6;
      a.offload_ms += ra.class_ns[static_cast<int>(SegClass::kOffload)] / 1e6;
      a.critical_ms += ra.critical_ns / 1e6;
    }
  }
  if (sum.steps > 0) {
    for (auto& [rank, a] : agg) {
      a.step_ms /= sum.steps;
      a.compute_ms /= sum.steps;
      a.comm_ms /= sum.steps;
      a.stall_ms /= sum.steps;
      a.offload_ms /= sum.steps;
      a.critical_ms /= sum.steps;
      sum.ranks.push_back(a);
    }
  }
  for (const auto& [rank, n] : votes) {
    if (n > sum.straggler_steps) {
      sum.straggler_steps = n;
      sum.straggler_rank = rank;
    }
  }
  return sum;
}

}  // namespace zero::obs
