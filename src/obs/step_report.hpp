// Step report: joins measured runtime telemetry (CommStats bytes,
// ModelStateReport bytes) against the paper's analytic predictions and
// flags divergence.
//
// Memory (Sec 3.1 / Figure 1, via model::PerDeviceModelStates): per-rank
// model-state bytes must match the stage equation at the run's actual
// DP degree. The famous 4x / 8x / Nd reductions are the Nd->infinity
// limits of those equations; the report carries both the at-Nd check
// (asserted) and the asymptotic figure (informational).
//
// Communication (Sec 7): ring collectives move (Nd-1)/Nd of nominal
// volume per rank, so per-rank bytes sent per step are predicted as
//   stages 0-2:  2 * (Nd-1)/Nd * P * e      (reduce-scatter + all-gather)
//   stage 3:     (Nd-1)/Nd * (2*T + P) * e  (params broadcast fwd+bwd,
//                                            gradients reduce-scattered)
// with P = padded parameter elements, T = total (unpadded) elements and
// e the low-precision element size. Relative to the stage-0 baseline
// that is the paper's 1x / 1x / 1x / 1.5x comm-volume claim.
//
// ZeRO++ compression (arXiv:2306.10209) rewrites those wire volumes and
// the report predicts the rewritten values, so a compressed run still
// closes with ok=true:
//   qwZ  parameter gathers ship int8 codes + one fp16 scale per
//        quant_block elements: e -> 1 + 2/B bytes per element.
//   hpZ  stage-3 backward gathers leave the DP ledger entirely (they
//        ride the intra-node communicator, reported separately as
//        local_bytes_per_step).
//   qgZ  the gradient reduce-scatter sends only (nodes-1) quantized
//        shards per rank across nodes; the fp16 intra-node folding
//        traffic moves to the local ledger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zero::obs {

struct MemoryCheck {
  double measured_bytes = 0;    // per-rank model states, as measured
  double predicted_bytes = 0;   // stage equation at the actual Nd
  double baseline_bytes = 0;    // stage-0 equation (same psi/precision)
  double measured_reduction = 0;    // baseline_bytes / measured_bytes
  double predicted_reduction = 0;   // baseline_bytes / predicted_bytes
  double asymptotic_reduction = 0;  // 1x / 4x / 8x / Nd
  double rel_error = 0;  // |measured - predicted| / predicted
  bool ok = false;
};

struct CommCheck {
  double measured_bytes_per_step = 0;   // per-rank bytes sent (DP ledger)
  double predicted_bytes_per_step = 0;  // formula above
  double measured_ratio = 0;   // measured / predicted stage-0 volume
  double predicted_ratio = 0;  // predicted / predicted stage-0 volume
  double rel_error = 0;
  bool ok = false;
  // ---- wire-precision split (informational; never a divergence) ----
  // Intra-node traffic the DP ledger no longer sees (hpZ backward
  // gathers, qgZ fp16 folding); 0 when no node-aware path ran.
  double local_bytes_per_step = 0;
  // Of the bytes sent, how many were int8 payload vs fp16 block scales
  // (comm.wire.* counters); both 0 in uncompressed runs.
  double wire_int8_bytes_per_step = 0;
  double wire_scale_bytes_per_step = 0;
};

struct StepReportInputs {
  int stage = 0;  // 0..3
  int nd = 1;     // DP degree
  bool fp16 = true;
  double psi = 0;         // logical parameter elements
  double padded_psi = 0;  // partition-padded elements (>= psi)
  // Per-rank measurements. Comm bytes should exclude warm-up (step 0 of
  // stage 3 materializes from the owner once extra) — measure a delta
  // over `steps` steady-state steps.
  double measured_state_bytes = 0;
  double measured_comm_bytes = 0;
  int steps = 1;
  double tolerance = 0.10;  // relative error allowed before divergence
  // Fraction of stage-3 gather time hidden behind compute by the
  // parameter prefetcher (metrics gauge comm.overlap_frac); -1 when
  // prefetch was off. Informational — never a divergence.
  double overlap_frac = -1.0;
  // ---- optimizer-state offload (informational; never a divergence) ----
  // Tier name ("host" / "nvme") when the fp32 optimizer state lives
  // behind a storage tier; empty when device-resident. The byte ledgers
  // mirror the alloc.host.* / offload.* metrics series.
  std::string offload_tier;
  double host_in_use_bytes = 0;       // alloc.host.in_use at run end
  double host_peak_bytes = 0;         // alloc.host.peak
  double offload_bytes_to_tier = 0;   // device -> tier link traffic
  double offload_bytes_to_device = 0;  // tier -> device link traffic
  // Fraction of offload link time hidden behind compute; -1 when the
  // link was instant or the tier device-resident.
  double offload_hidden_frac = -1.0;
  // ---- ZeRO++ compression, as resolved by the engine ----
  bool qwz = false;
  bool hpz = false;
  bool qgz = false;
  std::int64_t quant_block = 64;  // elements per int8 scale block
  int ranks_per_node = 1;         // node size behind hpZ/qgZ
  // Per-rank intra-node bytes over the same steady-state window (0 when
  // no local communicator existed).
  double measured_local_comm_bytes = 0;
  // Process-wide comm.wire.* counter deltas over the window (divided by
  // the world size for the per-rank figures in the report).
  double wire_int8_bytes = 0;
  double wire_scale_bytes = 0;
  int world_size = 1;
  // ---- step anatomy (informational; never a divergence) ----
  // Cross-rank critical-path decomposition from obs/critical_path over
  // the merged timeline: per-rank per-step means, and the plurality
  // straggler across the measured steps. Replaces the old rank-0-only
  // overlap gauge with a per-rank figure.
  struct RankAnatomy {
    int rank = -1;
    double step_ms = 0;
    double compute_ms = 0;
    double comm_ms = 0;      // active wire work (exposed)
    double stall_ms = 0;     // blocked waits (mailbox/prefetch/drain)
    double offload_ms = 0;   // optimizer-state tier pipeline
    double critical_ms = 0;  // mean time on the step's critical path
    double overlap_frac = -1.0;  // per-rank comm.overlap_frac.rank<r>
  };
  std::vector<RankAnatomy> anatomy_ranks;
  int anatomy_steps = 0;    // steps the analyzer measured (0 = no data)
  int straggler_rank = -1;  // plurality critical-path winner
  int straggler_steps = 0;  // measured steps attributed to that rank
  // Trace-ring overflow across all lanes for the run (obs/trace
  // per-thread drop counters); a nonzero value means the trace and the
  // anatomy above describe a truncated window.
  double trace_dropped_events = 0;
};

struct StepReport {
  StepReportInputs inputs;
  MemoryCheck memory;
  CommCheck comm;
  // Human-readable description of every check outside tolerance. Empty
  // means the run matched the paper equations.
  std::vector<std::string> divergences;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  [[nodiscard]] std::string ToJson() const;
  // One-paragraph log-friendly summary of the ratio checks.
  [[nodiscard]] std::string Summary() const;
};

// Pure analytic predictions (exposed for tests and the report itself).
double PredictedStateBytes(int stage, int nd, bool fp16, double psi);
double PredictedCommBytesPerStep(int stage, int nd, bool fp16, double psi,
                                 double padded_psi);
// Compression-aware DP-ledger prediction: collapses to the plain
// formula when no ZeRO++ path is flagged in `in`.
double PredictedCommBytesPerStep(const StepReportInputs& in);

StepReport BuildStepReport(const StepReportInputs& inputs);

}  // namespace zero::obs
