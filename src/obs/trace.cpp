#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/logging.hpp"

namespace zero::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_capacity{16384};

std::chrono::steady_clock::time_point& Epoch() {
  static std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// One thread's ring. Written only by the owning thread; read by the
// collector under the registry's collection contract (no concurrent
// recording).
struct ThreadBuffer {
  int tid = 0;
  std::string name;
  std::size_t capacity = 0;
  std::uint64_t head = 0;  // monotonic count of events ever recorded
  std::vector<TraceEvent> ring;

  void Record(const char* name_str, std::uint64_t start_ns,
              std::uint64_t end_ns) {
    TraceEvent& e = ring[static_cast<std::size_t>(head % capacity)];
    std::strncpy(e.name, name_str, TraceEvent::kNameCap - 1);
    e.name[TraceEvent::kNameCap - 1] = '\0';
    e.rank = GetThreadLogRank();
    e.start_ns = start_ns;
    e.dur_ns = end_ns - start_ns;
    ++head;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint64_t generation = 0;  // bumped by ResetTrace
  int next_tid = 0;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: threads may outlive exit
  return *r;
}

thread_local std::string tl_pending_name;
struct TlSlot {
  std::shared_ptr<ThreadBuffer> buffer;
  std::uint64_t generation = 0;
};
thread_local TlSlot tl_slot;

ThreadBuffer* RegisterThisThread() {
  Registry& reg = TheRegistry();
  auto buf = std::make_shared<ThreadBuffer>();
  buf->capacity = g_capacity.load(std::memory_order_relaxed);
  buf->ring.resize(buf->capacity);
  buf->name = tl_pending_name;
  std::lock_guard<std::mutex> lock(reg.mutex);
  buf->tid = reg.next_tid++;
  if (buf->name.empty()) {
    const int rank = GetThreadLogRank();
    buf->name = rank >= 0 ? "rank " + std::to_string(rank)
                          : "thread " + std::to_string(buf->tid);
  }
  reg.buffers.push_back(buf);
  tl_slot.buffer = std::move(buf);
  tl_slot.generation = reg.generation;
  return tl_slot.buffer.get();
}

}  // namespace

bool TracingEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void EnableTracing() {
  Epoch();  // pin the epoch no later than the first enable
  g_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() { g_enabled.store(false, std::memory_order_relaxed); }

void ResetTrace() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.buffers.clear();
  reg.next_tid = 0;
  ++reg.generation;
  Epoch() = std::chrono::steady_clock::now();
}

void SetTraceBufferCapacity(std::size_t events) {
  events = std::clamp<std::size_t>(events, 64, std::size_t{1} << 22);
  g_capacity.store(events, std::memory_order_relaxed);
}

void SetThreadTraceName(std::string name) {
  tl_pending_name = std::move(name);
  if (tl_slot.buffer != nullptr) {
    // Already registered: rename in place (registry holds a reference,
    // but `name` is only read by the collector, which cannot run
    // concurrently with the owning thread by contract).
    tl_slot.buffer->name = tl_pending_name;
  }
}

std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

namespace detail {

void RecordSpan(const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns) {
  ThreadBuffer* buf = tl_slot.buffer.get();
  if (buf == nullptr ||
      tl_slot.generation != TheRegistry().generation) {
    buf = RegisterThisThread();
  }
  buf->Record(name, start_ns, end_ns);
}

}  // namespace detail

std::vector<ThreadEvents> CollectEvents() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<ThreadEvents> out;
  out.reserve(reg.buffers.size());
  for (const auto& buf : reg.buffers) {
    ThreadEvents te;
    te.tid = buf->tid;
    te.name = buf->name;
    const std::uint64_t held =
        std::min<std::uint64_t>(buf->head, buf->capacity);
    te.dropped = buf->head - held;
    te.events.reserve(static_cast<std::size_t>(held));
    for (std::uint64_t i = buf->head - held; i < buf->head; ++i) {
      te.events.push_back(
          buf->ring[static_cast<std::size_t>(i % buf->capacity)]);
    }
    out.push_back(std::move(te));
  }
  return out;
}

std::size_t TraceEventCount() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buf : reg.buffers) {
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(buf->head, buf->capacity));
  }
  return n;
}

std::uint64_t TraceDroppedCount() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t n = 0;
  for (const auto& buf : reg.buffers) {
    const std::uint64_t held =
        std::min<std::uint64_t>(buf->head, buf->capacity);
    n += buf->head - held;
  }
  return n;
}

}  // namespace zero::obs
