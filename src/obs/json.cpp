#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace zero::obs::json {

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = obj_->find(std::string(key));
  return it == obj_->end() ? nullptr : &it->second;
}

namespace {

void AppendNumber(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Integers up to 2^53 print exactly; everything else round-trips
  // through %.17g and is trimmed by the shorter %g when lossless.
  char buf[40];
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::fabs(d) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", d);
    double back = std::strtod(buf, nullptr);
    if (back != d) std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

void Indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(out, num_);
      break;
    case Kind::kString:
      out += '"';
      out += Escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : *arr_) {
        if (!first) out += ',';
        first = false;
        Indent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!first) Indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : *obj_) {
        if (!first) out += ',';
        first = false;
        Indent(out, indent, depth + 1);
        out += '"';
        out += Escape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.DumpTo(out, indent, depth + 1);
      }
      if (!first) Indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(Value* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = "offset " + std::to_string(pos_) + ": " + msg;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool AtEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char Peek() const { return text_[pos_]; }

  bool Expect(char c) {
    if (AtEnd() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return false;
        *out = Value(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return false;
        *out = Value();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    Object obj;
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      *out = Value(std::move(obj));
      return true;
    }
    for (;;) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      Value v;
      if (!ParseValue(&v, depth + 1)) return false;
      if (!obj.emplace(std::move(key), std::move(v)).second) {
        return Fail("duplicate object key");
      }
      SkipWs();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        *out = Value(std::move(obj));
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    Array arr;
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      *out = Value(std::move(arr));
      return true;
    }
    for (;;) {
      SkipWs();
      Value v;
      if (!ParseValue(&v, depth + 1)) return false;
      arr.push_back(std::move(v));
      SkipWs();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        *out = Value(std::move(arr));
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return Fail("invalid \\u escape");
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      *s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *s += static_cast<char>(0xC0 | (cp >> 6));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *s += static_cast<char>(0xE0 | (cp >> 12));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *s += static_cast<char>(0xF0 | (cp >> 18));
      *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    std::string s;
    for (;;) {
      if (AtEnd()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (AtEnd()) return Fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!ParseHex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(&s, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    *out = std::move(s);
    return true;
  }

  bool ParseNumber(Value* out) {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd()) return Fail("invalid number");
    if (Peek() == '0') {
      ++pos_;
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      return Fail("invalid number");
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = Value(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Parse(std::string_view text, Value* out, std::string* error) {
  Parser p(text, error);
  return p.ParseDocument(out);
}

}  // namespace zero::obs::json
