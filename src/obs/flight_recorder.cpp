#include "obs/flight_recorder.hpp"

#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/logging.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace zero::obs {

namespace {

struct Recorder {
  std::mutex mutex;
  bool enabled = false;
  FlightRecorderOptions opts;
  std::deque<std::pair<std::int64_t, std::string>> snapshots;
};

Recorder& TheRecorder() {
  static Recorder* r = new Recorder();
  return *r;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << text;
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace

void EnableFlightRecorder(const FlightRecorderOptions& options) {
  Recorder& r = TheRecorder();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.enabled = true;
  r.opts = options;
  r.snapshots.clear();
  if (!TracingEnabled()) {
    SetTraceBufferCapacity(options.ring_events);
    EnableTracing();
  }
}

void DisableFlightRecorder() {
  Recorder& r = TheRecorder();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.enabled = false;
  r.snapshots.clear();
}

bool FlightRecorderEnabled() {
  Recorder& r = TheRecorder();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.enabled;
}

std::string FlightRecorderDir() {
  Recorder& r = TheRecorder();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.enabled ? r.opts.dir : std::string();
}

void FlightRecorderStepSnapshot(std::int64_t step,
                                std::string metrics_json) {
  Recorder& r = TheRecorder();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.enabled) return;
  r.snapshots.emplace_back(step, std::move(metrics_json));
  while (r.snapshots.size() > r.opts.max_snapshots) {
    r.snapshots.pop_front();
  }
}

std::string FlushFlightRecorder(const std::string& reason,
                                const std::string& label) {
  FlightRecorderOptions opts;
  std::deque<std::pair<std::int64_t, std::string>> snapshots;
  {
    Recorder& r = TheRecorder();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (!r.enabled) return "";
    opts = r.opts;
    snapshots = r.snapshots;
  }
  std::string dir = opts.dir;
  if (!label.empty()) dir += "/" + label;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    ZLOG_ERROR << "flight recorder: cannot create " << dir << ": "
               << ec.message();
    return "";
  }

  const std::vector<ThreadEvents> threads = CollectEvents();
  const Timeline timeline = BuildTimeline(threads);

  // Per-rank traces: each rank's events, keeping the global lane ids so
  // the bundle cross-references the merged timeline.
  std::set<int> ranks;
  for (const ThreadEvents& te : threads) {
    for (const TraceEvent& e : te.events) {
      if (e.rank >= 0) ranks.insert(e.rank);
    }
  }
  json::Value rank_traces = json::Value::MakeArray();
  bool io_ok = true;
  for (int rank : ranks) {
    std::vector<ThreadEvents> mine;
    for (const ThreadEvents& te : threads) {
      ThreadEvents filtered;
      filtered.tid = te.tid;
      filtered.name = te.name;
      filtered.dropped = te.dropped;
      for (const TraceEvent& e : te.events) {
        if (e.rank == rank) filtered.events.push_back(e);
      }
      if (!filtered.events.empty()) mine.push_back(std::move(filtered));
    }
    const std::string file = "rank-" + std::to_string(rank) + ".trace.json";
    io_ok &= WriteFile(dir + "/" + file, ChromeTraceJson(mine));
    rank_traces.Append(json::Value(file));
  }
  io_ok &= WriteFile(dir + "/timeline.json", TimelineChromeJson(timeline));

  json::Value manifest = json::Value::MakeObject();
  manifest.Set("reason", json::Value(reason));
  manifest.Set("world_ranks",
               json::Value(static_cast<std::int64_t>(ranks.size())));
  manifest.Set("rank_traces", std::move(rank_traces));
  manifest.Set("timeline", json::Value(std::string("timeline.json")));
  manifest.Set("dropped_events",
               json::Value(static_cast<std::int64_t>(timeline.dropped_events)));
  json::Value skew = json::Value::MakeObject();
  for (const RankClock& c : timeline.clocks) {
    skew.Set(std::to_string(c.rank), json::Value(c.skew_ns));
  }
  manifest.Set("clock_skew_ns", std::move(skew));
  json::Value snaps = json::Value::MakeArray();
  for (const auto& [step, metrics_json] : snapshots) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("step", json::Value(step));
    json::Value metrics;
    std::string perr;
    if (json::Parse(metrics_json, &metrics, &perr)) {
      entry.Set("metrics", std::move(metrics));
    } else {
      entry.Set("metrics_raw", json::Value(metrics_json));
    }
    snaps.Append(std::move(entry));
  }
  manifest.Set("snapshots", std::move(snaps));
  io_ok &= WriteFile(dir + "/manifest.json", manifest.Dump(2) + "\n");

  if (!io_ok) {
    ZLOG_ERROR << "flight recorder: short write into " << dir;
    return "";
  }
  ZLOG_INFO << "flight recorder: post-mortem bundle (" << ranks.size()
            << " ranks, " << snapshots.size() << " snapshots) in " << dir;
  return dir;
}

bool ValidatePostmortemBundle(const std::string& dir, std::string* error) {
  std::ifstream f(dir + "/manifest.json", std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + dir + "/manifest.json";
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  json::Value manifest;
  std::string perr;
  if (!json::Parse(ss.str(), &manifest, &perr)) {
    if (error != nullptr) *error = "manifest parse failed: " + perr;
    return false;
  }
  const json::Value* reason = manifest.Find("reason");
  if (reason == nullptr || !reason->is_string()) {
    if (error != nullptr) *error = "manifest missing string reason";
    return false;
  }
  const json::Value* traces = manifest.Find("rank_traces");
  if (traces == nullptr || !traces->is_array()) {
    if (error != nullptr) *error = "manifest missing rank_traces array";
    return false;
  }
  for (const json::Value& t : traces->as_array()) {
    if (!t.is_string()) {
      if (error != nullptr) *error = "rank_traces entry is not a string";
      return false;
    }
    std::string terr;
    if (!ValidateChromeTraceFile(dir + "/" + t.as_string(), &terr)) {
      if (error != nullptr) *error = t.as_string() + ": " + terr;
      return false;
    }
  }
  const json::Value* timeline = manifest.Find("timeline");
  if (timeline != nullptr && timeline->is_string()) {
    std::string terr;
    if (!ValidateChromeTraceFile(dir + "/" + timeline->as_string(), &terr)) {
      if (error != nullptr) *error = timeline->as_string() + ": " + terr;
      return false;
    }
  }
  return true;
}

}  // namespace zero::obs
