#include "comm/health.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace zero::comm {

HealthBoard::HealthBoard(int size)
    : size_(size),
      beats_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(size)]),
      dead_(new std::atomic<bool>[static_cast<std::size_t>(size)]),
      reasons_(static_cast<std::size_t>(size)) {
  ZERO_CHECK(size >= 1, "health board needs at least one rank");
  for (int i = 0; i < size; ++i) {
    beats_[i].store(0, std::memory_order_relaxed);
    dead_[i].store(false, std::memory_order_relaxed);
  }
}

void HealthBoard::Beat(int rank, std::uint64_t now_ns) {
  beats_[rank].store(now_ns, std::memory_order_relaxed);
}

std::uint64_t HealthBoard::LastBeatNs(int rank) const {
  return beats_[rank].load(std::memory_order_relaxed);
}

void HealthBoard::MarkDead(int rank, const std::string& reason) {
  bool expected = false;
  if (!dead_[rank].compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
    return;  // already declared; first reason wins
  }
  {
    std::lock_guard<std::mutex> lock(reasons_mutex_);
    reasons_[static_cast<std::size_t>(rank)] = reason;
  }
  dead_count_.fetch_add(1, std::memory_order_acq_rel);
  static obs::Counter& deaths = obs::Metrics().counter("fault.rank_deaths");
  deaths.Add();
  ZLOG_WARN << "rank " << rank << " declared dead: " << reason;
  RequestAbort();
}

bool HealthBoard::IsDead(int rank) const {
  return dead_[rank].load(std::memory_order_acquire);
}

bool HealthBoard::AnyDead() const {
  return dead_count_.load(std::memory_order_acquire) > 0;
}

int HealthBoard::AliveCount() const {
  return size_ - dead_count_.load(std::memory_order_acquire);
}

std::vector<int> HealthBoard::AliveRanks() const {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    if (!IsDead(i)) alive.push_back(i);
  }
  return alive;
}

std::string HealthBoard::DeathReason(int rank) const {
  std::lock_guard<std::mutex> lock(reasons_mutex_);
  return reasons_[static_cast<std::size_t>(rank)];
}

void HealthBoard::RequestAbort() {
  abort_.store(true, std::memory_order_release);
}

bool HealthBoard::AbortRequested() const {
  return abort_.load(std::memory_order_acquire);
}

}  // namespace zero::comm
