#include "comm/mailbox.hpp"

#include "common/error.hpp"

namespace zero::comm {

void Mailbox::Deposit(int source, std::uint64_t tag,
                      std::span<const std::byte> data) {
  std::vector<std::byte> copy(data.begin(), data.end());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;  // late sender into a dying world
    queues_[{source, tag}].push_back(std::move(copy));
    ++pending_;
  }
  cv_.notify_all();
}

void Mailbox::PopLocked(
    std::map<Key, std::deque<std::vector<std::byte>>>::iterator it,
    std::vector<std::byte>& out) {
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  --pending_;
}

std::vector<std::byte> Mailbox::Take(int source, std::uint64_t tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  cv_.wait(lock, [&] {
    if (shutdown_) return true;
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) {
    // Only reachable via shutdown with no queued message.
    throw CommError("mailbox shut down while blocked in Take");
  }
  std::vector<std::byte> msg;
  PopLocked(it, msg);
  return msg;
}

TakeStatus Mailbox::TakeFor(int source, std::uint64_t tag,
                            std::chrono::nanoseconds timeout,
                            std::vector<std::byte>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  const std::uint64_t epoch = interrupts_;
  auto ready = [&] {
    if (shutdown_ || interrupts_ != epoch) return true;
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  };
  if (timeout == kForever) {
    cv_.wait(lock, ready);
  } else if (!cv_.wait_for(lock, timeout, ready)) {
    return TakeStatus::kTimeout;
  }
  // Delivery wins over a racing shutdown/interrupt.
  auto it = queues_.find(key);
  if (it != queues_.end() && !it->second.empty()) {
    PopLocked(it, out);
    return TakeStatus::kOk;
  }
  return shutdown_ ? TakeStatus::kShutdown : TakeStatus::kInterrupted;
}

std::optional<std::vector<std::byte>> Mailbox::TryTake(int source,
                                                       std::uint64_t tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  if (it == queues_.end() || it->second.empty()) {
    return std::nullopt;
  }
  std::vector<std::byte> msg;
  PopLocked(it, msg);
  return msg;
}

void Mailbox::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void Mailbox::Interrupt() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++interrupts_;
  }
  cv_.notify_all();
}

bool Mailbox::shut_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

std::size_t Mailbox::PendingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace zero::comm
