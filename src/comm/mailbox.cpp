#include "comm/mailbox.hpp"

namespace zero::comm {

void Mailbox::Deposit(int source, std::uint64_t tag,
                      std::span<const std::byte> data) {
  std::vector<std::byte> copy(data.begin(), data.end());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[{source, tag}].push_back(std::move(copy));
    ++pending_;
  }
  cv_.notify_all();
}

std::vector<std::byte> Mailbox::Take(int source, std::uint64_t tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  cv_.wait(lock, [&] {
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto it = queues_.find(key);
  std::vector<std::byte> msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  --pending_;
  return msg;
}

std::optional<std::vector<std::byte>> Mailbox::TryTake(int source,
                                                       std::uint64_t tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  if (it == queues_.end() || it->second.empty()) {
    return std::nullopt;
  }
  std::vector<std::byte> msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  --pending_;
  return msg;
}

std::size_t Mailbox::PendingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace zero::comm
