// Collective communication over a group of in-process ranks.
//
// Algorithms are the bandwidth-optimal ring schedules NCCL uses, executed
// as real message-passing over mailboxes:
//   - ReduceScatter: p-1 steps; rank r ends holding chunk r, fully
//     reduced. Per-rank volume (p-1)/p * M  (~= M, "Psi" in the paper).
//   - AllGather: p-1 steps; per-rank volume (p-1)/p * M.
//   - AllReduce = ReduceScatter + AllGather; per-rank volume ~= 2M —
//     exactly the 2*Psi baseline-DP accounting of Sec 7.1.
//   - Broadcast: ring-pipelined; per-rank volume ~= M, which is what
//     makes the stage-3 schedule cost Psi per pass (Sec 7.2.2).
//   - Reduce: ring accumulation ending at the root; per-rank send volume
//     M — the primitive behind stage-2's bucketized "reduce at the
//     partition owner".
//
// Every byte sent/received is counted in CommStats, so the paper's
// communication-volume claims are verified by measurement in the tests
// and the comm_volume_analysis bench.
//
// SPMD contract: all ranks of a group must call the same collectives in
// the same order (enforced cheaply via a per-group operation sequence
// number embedded in message tags).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "comm/world.hpp"
#include "common/error.hpp"
#include "common/half.hpp"

namespace zero::comm {

enum class ReduceOp : unsigned char { kSum, kAvg, kMax };

struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t collectives = 0;

  CommStats& operator+=(const CommStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    messages_sent += o.messages_sent;
    collectives += o.collectives;
    return *this;
  }
};

namespace detail {
// Element-wise accumulate src into dst, promoting Half through fp32 the
// way tensor-core reductions do.
inline void AccumulateInto(float* dst, const float* src, std::size_t n,
                           ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
      break;
  }
}
inline void AccumulateInto(Half* dst, const Half* src, std::size_t n,
                           ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = Half(dst[i].ToFloat() + src[i].ToFloat());
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = Half(std::max(dst[i].ToFloat(), src[i].ToFloat()));
      break;
  }
}
inline void AccumulateInto(double* dst, const double* src, std::size_t n,
                           ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
      break;
  }
}

inline void ScaleBy(float* dst, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(dst[i] * s);
}
inline void ScaleBy(Half* dst, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = Half(static_cast<float>(dst[i].ToFloat() * s));
}
inline void ScaleBy(double* dst, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= s;
}
}  // namespace detail

// One Communicator instance exists per rank per group (SPMD style: each
// rank constructs its own over the same member list and group id).
class Communicator {
 public:
  // `members` lists global ranks; this rank must be among them. group_id
  // must be identical on all members and unique per logical group.
  Communicator(RankContext& ctx, std::vector<int> members,
               std::uint64_t group_id);

  // Convenience: the whole world as one group.
  static Communicator WholeWorld(RankContext& ctx);

  [[nodiscard]] int rank() const { return my_index_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] int global_rank() const { return ctx_->rank; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CommStats{}; }

  void Barrier();

  // ---- point to point (peer is a group-relative rank) ----
  void SendBytes(int peer, std::span<const std::byte> data, std::uint64_t tag);
  [[nodiscard]] std::vector<std::byte> RecvBytes(int peer, std::uint64_t tag);

  template <typename T>
  void Send(int peer, std::span<const T> data, std::uint64_t tag) {
    SendBytes(peer, std::as_bytes(data), tag);
  }
  template <typename T>
  void Recv(int peer, std::span<T> out, std::uint64_t tag) {
    std::vector<std::byte> raw = RecvBytes(peer, tag);
    ZERO_CHECK(raw.size() == out.size_bytes(),
               "Recv size mismatch: expected " +
                   std::to_string(out.size_bytes()) + ", got " +
                   std::to_string(raw.size()));
    std::memcpy(out.data(), raw.data(), raw.size());
  }

  // ---- collectives ----

  // In-place sum/avg/max across the group. Any length.
  template <typename T>
  void AllReduce(std::span<T> data, ReduceOp op = ReduceOp::kSum) {
    const std::uint64_t seq = NextSeq();
    if (size() == 1) {
      return;  // single rank: reduction is the identity
    }
    RingReduceScatterInPlace(data, op, seq);
    RingAllGatherInPlace(data, seq + kStepStride);
    if (op == ReduceOp::kAvg) {
      detail::ScaleBy(data.data(), data.size(), 1.0 / size());
    }
  }

  // data.size() must be divisible by size(); out.size() == data.size()/p.
  // On return, out holds this rank's fully reduced chunk. `data` is used
  // as scratch and left in an unspecified state.
  template <typename T>
  void ReduceScatter(std::span<T> data, std::span<T> out,
                     ReduceOp op = ReduceOp::kSum) {
    const int p = size();
    ZERO_CHECK(data.size() % static_cast<std::size_t>(p) == 0,
               "ReduceScatter length must divide evenly (pad first)");
    const std::size_t chunk = data.size() / static_cast<std::size_t>(p);
    ZERO_CHECK(out.size() == chunk, "ReduceScatter output size mismatch");
    const std::uint64_t seq = NextSeq();
    if (p > 1) RingReduceScatterInPlace(data, op, seq);
    std::memcpy(out.data(), data.data() + chunk * static_cast<std::size_t>(rank()),
                chunk * sizeof(T));
    if (op == ReduceOp::kAvg) detail::ScaleBy(out.data(), out.size(), 1.0 / p);
  }

  // out.size() must equal chunk.size() * p; rank i's chunk lands at
  // offset i*chunk.size().
  template <typename T>
  void AllGather(std::span<const T> chunk, std::span<T> out) {
    const int p = size();
    ZERO_CHECK(out.size() == chunk.size() * static_cast<std::size_t>(p),
               "AllGather output size mismatch");
    std::memcpy(out.data() + chunk.size() * static_cast<std::size_t>(rank()),
                chunk.data(), chunk.size() * sizeof(T));
    const std::uint64_t seq = NextSeq();
    if (p > 1) RingAllGatherInPlace(out, seq);
  }

  // Ring-pipelined broadcast from group rank `root`; per-rank volume ~= M.
  template <typename T>
  void Broadcast(std::span<T> data, int root) {
    const std::uint64_t seq = NextSeq();
    if (size() == 1) return;
    RingBroadcast(std::as_writable_bytes(data), root, seq);
  }

  // Ring reduce: result lands on `root` only; other ranks' buffers are
  // left untouched. Per-rank send volume M.
  template <typename T>
  void Reduce(std::span<T> data, int root, ReduceOp op = ReduceOp::kSum) {
    const int p = size();
    const std::uint64_t seq = NextSeq();
    if (p == 1) {
      return;
    }
    // Walk the ring starting after root; each hop accumulates.
    const int steps_from_root = Distance(root, rank());
    std::vector<T> acc;
    if (steps_from_root == 1) {
      // First in the chain: just forward own data.
      Send(Next(), std::span<const T>(data.data(), data.size()),
           seq | kKindReduce);
    } else {
      acc.resize(data.size());
      Recv(Prev(), std::span<T>(acc), seq | kKindReduce);
      detail::AccumulateInto(acc.data(), data.data(), data.size(), op);
      if (rank() != root) {
        Send(Next(), std::span<const T>(acc.data(), acc.size()),
             seq | kKindReduce);
      } else {
        std::memcpy(data.data(), acc.data(), acc.size() * sizeof(T));
        if (op == ReduceOp::kAvg)
          detail::ScaleBy(data.data(), data.size(), 1.0 / p);
      }
    }
    ++stats_.collectives;
  }

  // Every rank's `chunk` lands at offset rank*chunk.size() of the
  // root's `out` (out is only written at the root).
  template <typename T>
  void Gather(std::span<const T> chunk, std::span<T> out, int root) {
    const int p = size();
    const std::uint64_t seq = NextSeq();
    if (rank() == root) {
      ZERO_CHECK(out.size() == chunk.size() * static_cast<std::size_t>(p),
                 "Gather output size mismatch at root");
      std::memcpy(out.data() + chunk.size() * static_cast<std::size_t>(root),
                  chunk.data(), chunk.size_bytes());
      for (int i = 0; i < p; ++i) {
        if (i == root) continue;
        Recv(i,
             out.subspan(chunk.size() * static_cast<std::size_t>(i),
                         chunk.size()),
             seq | kKindGather);
      }
    } else {
      Send(root, chunk, seq | kKindGather);
    }
    ++stats_.collectives;
  }

  // Personalized exchange: send.size() == recv.size() == p * chunk; the
  // i-th chunk of `send` goes to rank i, whose j-th chunk of `recv`
  // comes from rank j.
  template <typename T>
  void AllToAll(std::span<const T> send, std::span<T> recv) {
    const int p = size();
    ZERO_CHECK(send.size() == recv.size() &&
                   send.size() % static_cast<std::size_t>(p) == 0,
               "AllToAll buffers must be p equal chunks");
    const std::size_t chunk = send.size() / static_cast<std::size_t>(p);
    const std::uint64_t seq = NextSeq();
    // Post all sends first (deposits are non-blocking), then receive.
    for (int i = 0; i < p; ++i) {
      std::span<const T> piece =
          send.subspan(chunk * static_cast<std::size_t>(i), chunk);
      if (i == rank()) {
        std::memcpy(recv.data() + chunk * static_cast<std::size_t>(i),
                    piece.data(), piece.size_bytes());
      } else {
        Send(i, piece, seq | kKindAllToAll);
      }
    }
    for (int i = 0; i < p; ++i) {
      if (i == rank()) continue;
      Recv(i, recv.subspan(chunk * static_cast<std::size_t>(i), chunk),
           seq | kKindAllToAll);
    }
    ++stats_.collectives;
  }

  // Root's data is split into p equal chunks; chunk i is delivered to
  // rank i's `out`.
  template <typename T>
  void Scatter(std::span<const T> data, std::span<T> out, int root) {
    const int p = size();
    ZERO_CHECK(out.size() * static_cast<std::size_t>(p) == data.size() ||
                   rank() != root,
               "Scatter size mismatch at root");
    const std::uint64_t seq = NextSeq();
    if (rank() == root) {
      for (int i = 0; i < p; ++i) {
        std::span<const T> chunk = data.subspan(
            out.size() * static_cast<std::size_t>(i), out.size());
        if (i == rank()) {
          std::memcpy(out.data(), chunk.data(), chunk.size_bytes());
        } else {
          Send(i, chunk, seq | kKindScatter);
        }
      }
    } else {
      Recv(root, out, seq | kKindScatter);
    }
    ++stats_.collectives;
  }

 private:
  static constexpr std::uint64_t kStepStride = 1ull << 20;
  static constexpr std::uint64_t kKindReduce = 1ull << 18;
  static constexpr std::uint64_t kKindScatter = 2ull << 18;
  static constexpr std::uint64_t kKindGather = 3ull << 18;
  // Kind field is 2 bits wide (18-19); AllToAll shares the unused step
  // range above it.
  static constexpr std::uint64_t kKindAllToAll = 1ull << 17;
  // User-supplied point-to-point tags must stay below this; internal
  // collective tags are allocated above it.
  static constexpr std::uint64_t kUserTagLimit = 1ull << 40;

  [[nodiscard]] int Next() const { return (rank() + 1) % size(); }
  [[nodiscard]] int Prev() const { return (rank() + size() - 1) % size(); }
  [[nodiscard]] int Distance(int from, int to) const {
    return (to - from + size()) % size();
  }
  std::uint64_t NextSeq() {
    // Two stride slots per collective so AllReduce's two phases never
    // collide with the next call's tags.
    const std::uint64_t s = op_seq_;
    op_seq_ += 2 * kStepStride;
    return s;
  }

  template <typename T>
  void RingReduceScatterInPlace(std::span<T> data, ReduceOp op,
                                std::uint64_t seq);
  template <typename T>
  void RingAllGatherInPlace(std::span<T> data, std::uint64_t seq);
  void RingBroadcast(std::span<std::byte> data, int root, std::uint64_t seq);

  // Chunk [begin, end) element range for ring step bookkeeping; chunks
  // are as even as possible (first `rem` chunks one element longer).
  [[nodiscard]] std::pair<std::size_t, std::size_t> ChunkRange(
      std::size_t total, int chunk_index) const;

  RankContext* ctx_;
  std::vector<int> members_;
  int my_index_;
  std::uint64_t group_id_;
  std::uint64_t op_seq_ = 0;
  CommStats stats_;
};

// ---- template implementations ----

template <typename T>
void Communicator::RingReduceScatterInPlace(std::span<T> data, ReduceOp op,
                                            std::uint64_t seq) {
  const int p = size();
  const int r = rank();
  std::vector<T> staging;
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (r - s - 1 + 2 * p) % p;
    const int recv_chunk = (r - s - 2 + 2 * p) % p;
    auto [sb, se] = ChunkRange(data.size(), send_chunk);
    auto [rb, re] = ChunkRange(data.size(), recv_chunk);
    Send(Next(), std::span<const T>(data.data() + sb, se - sb),
         seq + static_cast<std::uint64_t>(s));
    staging.resize(re - rb);
    Recv(Prev(), std::span<T>(staging), seq + static_cast<std::uint64_t>(s));
    detail::AccumulateInto(data.data() + rb, staging.data(), re - rb, op);
  }
  ++stats_.collectives;
}

template <typename T>
void Communicator::RingAllGatherInPlace(std::span<T> data, std::uint64_t seq) {
  const int p = size();
  const int r = rank();
  std::vector<T> staging;
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (r - s + 2 * p) % p;
    const int recv_chunk = (r - s - 1 + 2 * p) % p;
    auto [sb, se] = ChunkRange(data.size(), send_chunk);
    auto [rb, re] = ChunkRange(data.size(), recv_chunk);
    Send(Next(), std::span<const T>(data.data() + sb, se - sb),
         seq + static_cast<std::uint64_t>(s));
    staging.resize(re - rb);
    Recv(Prev(), std::span<T>(staging), seq + static_cast<std::uint64_t>(s));
    std::memcpy(data.data() + rb, staging.data(), (re - rb) * sizeof(T));
  }
  ++stats_.collectives;
}

}  // namespace zero::comm
