// Collective communication over a group of in-process ranks.
//
// Algorithms are the bandwidth-optimal ring schedules NCCL uses, executed
// as real message-passing over mailboxes:
//   - ReduceScatter: p-1 steps; rank r ends holding chunk r, fully
//     reduced. Per-rank volume (p-1)/p * M  (~= M, "Psi" in the paper).
//   - AllGather: p-1 steps; per-rank volume (p-1)/p * M.
//   - AllReduce = ReduceScatter + AllGather; per-rank volume ~= 2M —
//     exactly the 2*Psi baseline-DP accounting of Sec 7.1.
//   - Broadcast: ring-pipelined; per-rank volume ~= M, which is what
//     makes the stage-3 schedule cost Psi per pass (Sec 7.2.2).
//   - Reduce: ring accumulation ending at the root; per-rank send volume
//     M — the primitive behind stage-2's bucketized "reduce at the
//     partition owner".
//
// Every byte sent/received is counted in CommStats, so the paper's
// communication-volume claims are verified by measurement in the tests
// and the comm_volume_analysis bench.
//
// SPMD contract: all ranks of a group must call the same collectives in
// the same order (enforced cheaply via a per-group operation sequence
// number embedded in message tags).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "comm/world.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "obs/trace.hpp"

namespace zero::comm {

enum class ReduceOp : unsigned char { kSum, kAvg, kMax };

struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t collectives = 0;

  CommStats& operator+=(const CommStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    messages_sent += o.messages_sent;
    collectives += o.collectives;
    return *this;
  }
  // Counters are monotonic, so a-b is only meaningful when a was sampled
  // after b on the same communicator; CommDelta provides that pattern.
  CommStats& operator-=(const CommStats& o) {
    bytes_sent -= o.bytes_sent;
    bytes_received -= o.bytes_received;
    messages_sent -= o.messages_sent;
    collectives -= o.collectives;
    return *this;
  }
  friend CommStats operator+(CommStats a, const CommStats& b) {
    a += b;
    return a;
  }
  friend CommStats operator-(CommStats a, const CommStats& b) {
    a -= b;
    return a;
  }
  friend bool operator==(const CommStats& a, const CommStats& b) {
    return a.bytes_sent == b.bytes_sent &&
           a.bytes_received == b.bytes_received &&
           a.messages_sent == b.messages_sent &&
           a.collectives == b.collectives;
  }
};

namespace detail {
// Reduction arithmetic runs in the promoted type: Half promotes through
// fp32 the way tensor-core reductions do; every wider type accumulates
// natively.
template <typename T>
struct FpPromote {
  using type = T;
  static constexpr type Widen(T v) { return v; }
  static constexpr T Narrow(type v) { return v; }
};
template <>
struct FpPromote<Half> {
  using type = float;
  static float Widen(Half v) { return v.ToFloat(); }
  static Half Narrow(float v) { return Half(v); }
};

// Element-wise accumulate src into dst in the promoted type.
template <typename T>
inline void AccumulateInto(T* dst, const T* src, std::size_t n,
                           ReduceOp op) {
  using P = FpPromote<T>;
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = P::Narrow(P::Widen(dst[i]) + P::Widen(src[i]));
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = P::Narrow(std::max(P::Widen(dst[i]), P::Widen(src[i])));
      break;
  }
}

template <typename T>
inline void ScaleBy(T* dst, std::size_t n, double s) {
  using P = FpPromote<T>;
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = P::Narrow(
        static_cast<typename P::type>(P::Widen(dst[i]) * s));
}
}  // namespace detail

class Communicator;

// Handle to an in-flight nonblocking point-to-point operation started
// with Communicator::IsSend / IsRecv.
//
//   - Wait() blocks until the operation completes (for a recv: until the
//     matching message arrives and has been copied into the caller's
//     buffer).
//   - Test() polls: completes the operation if it can finish without
//     blocking and returns whether it is done.
//   - A default-constructed or already-completed request is done; Wait
//     and Test on it are no-ops. Requests may be completed in any order
//     relative to how they were posted.
//
// Handles are copyable (shared state); the receive buffer passed to
// IsRecv must stay alive and unmodified until the request completes.
class CommRequest {
 public:
  CommRequest() = default;

  void Wait();
  [[nodiscard]] bool Test();
  // Abandons a pending request: a matching message that already arrived
  // is drained and discarded; one that arrives later rots in the mailbox
  // under its never-reused tag. The landing buffer is released (safe to
  // free afterwards) and the request reads as done. Used by the abort /
  // elastic-resume paths to unwind with operations still in flight.
  void Cancel();
  [[nodiscard]] bool done() const { return !state_ || state_->done; }

 private:
  friend class Communicator;
  struct State {
    Communicator* comm = nullptr;
    int peer = -1;             // group-relative rank
    std::uint64_t tag = 0;
    std::span<std::byte> out;  // recv landing buffer (empty for sends)
    bool recv = false;
    bool done = false;
  };
  explicit CommRequest(std::shared_ptr<State> s) : state_(std::move(s)) {}
  void Complete(std::vector<std::byte> msg);

  std::shared_ptr<State> state_;
};

// One Communicator instance exists per rank per group (SPMD style: each
// rank constructs its own over the same member list and group id).
class Communicator {
 public:
  // `members` lists global ranks; this rank must be among them. group_id
  // must be identical on all members and unique per logical group.
  Communicator(RankContext& ctx, std::vector<int> members,
               std::uint64_t group_id);

  // Convenience: the whole world as one group.
  static Communicator WholeWorld(RankContext& ctx);

  [[nodiscard]] int rank() const { return my_index_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] int global_rank() const { return ctx_->rank; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CommStats{}; }

  void Barrier();

  // ---- fault tolerance ----
  // Named injectable point: runs the world's fault hooks (if any),
  // publishes a heartbeat (when a comm deadline is configured), and
  // surfaces a pending step abort as StepAbortedError. One pointer load
  // plus two relaxed atomic loads when fault tolerance is off. Called at
  // every collective entry; the engine calls it at the top of each
  // training step with site "step".
  void FaultPoint(const char* site);

  // ---- point to point (peer is a group-relative rank) ----
  void SendBytes(int peer, std::span<const std::byte> data, std::uint64_t tag);
  // Blocks until the matching message arrives. With a world comm
  // deadline configured, the wait is bounded and failure-aware: a peer
  // declared dead (or heartbeat-silent past the deadline) surfaces as
  // PeerFailedError, a pending step abort as StepAbortedError, and a
  // wait that starves past kStallFactor deadlines with the peer still
  // beating as CommTimeoutError (lost message). With deadline 0 the wait
  // is unbounded but still wakes when the world declares a death.
  [[nodiscard]] std::vector<std::byte> RecvBytes(int peer, std::uint64_t tag);
  // Nonblocking poll for a matching message; nullopt if none is queued.
  [[nodiscard]] std::optional<std::vector<std::byte>> TryRecvBytes(
      int peer, std::uint64_t tag);

  template <typename T>
  void Send(int peer, std::span<const T> data, std::uint64_t tag) {
    SendBytes(peer, std::as_bytes(data), tag);
  }
  template <typename T>
  void Recv(int peer, std::span<T> out, std::uint64_t tag) {
    std::vector<std::byte> raw = RecvBytes(peer, tag);
    ZERO_CHECK(raw.size() == out.size_bytes(),
               "Recv size mismatch: expected " +
                   std::to_string(out.size_bytes()) + ", got " +
                   std::to_string(raw.size()));
    std::memcpy(out.data(), raw.data(), raw.size());
  }

  // ---- nonblocking point to point ----
  // IsSend completes immediately: mailbox deposits are buffered, so the
  // payload is copied out before the call returns and the returned
  // request is already done. It exists so call sites can treat both
  // directions uniformly.
  CommRequest IsSendBytes(int peer, std::span<const std::byte> data,
                          std::uint64_t tag);
  // IsRecv registers `out` as the landing buffer for the next message
  // matching (peer, tag) and returns without blocking. The message is
  // consumed (and its size checked against `out`) when the request
  // completes via Wait or a successful Test.
  [[nodiscard]] CommRequest IsRecvBytes(int peer, std::span<std::byte> out,
                                        std::uint64_t tag);

  template <typename T>
  CommRequest IsSend(int peer, std::span<const T> data, std::uint64_t tag) {
    return IsSendBytes(peer, std::as_bytes(data), tag);
  }
  template <typename T>
  [[nodiscard]] CommRequest IsRecv(int peer, std::span<T> out,
                                   std::uint64_t tag) {
    return IsRecvBytes(peer, std::as_writable_bytes(out), tag);
  }

  // ---- collectives ----

  // In-place sum/avg/max across the group. Any length.
  template <typename T>
  void AllReduce(std::span<T> data, ReduceOp op = ReduceOp::kSum) {
    TRACE_SPAN("comm/all_reduce");
    FaultPoint("collective");
    const std::uint64_t seq = NextSeq();
    if (size() == 1) {
      return;  // single rank: reduction is the identity
    }
    RingReduceScatterInPlace(data, op, seq);
    RingAllGatherInPlace(data, seq + kStepStride);
    if (op == ReduceOp::kAvg) {
      detail::ScaleBy(data.data(), data.size(), 1.0 / size());
    }
  }

  // data.size() must be divisible by size(); out.size() == data.size()/p.
  // On return, out holds this rank's fully reduced chunk. `data` is used
  // as scratch and left in an unspecified state.
  template <typename T>
  void ReduceScatter(std::span<T> data, std::span<T> out,
                     ReduceOp op = ReduceOp::kSum) {
    const int p = size();
    ZERO_CHECK(data.size() % static_cast<std::size_t>(p) == 0,
               "ReduceScatter length must divide evenly (pad first)");
    const std::size_t chunk = data.size() / static_cast<std::size_t>(p);
    ZERO_CHECK(out.size() == chunk, "ReduceScatter output size mismatch");
    TRACE_SPAN("comm/reduce_scatter");
    FaultPoint("collective");
    const std::uint64_t seq = NextSeq();
    if (p > 1) RingReduceScatterInPlace(data, op, seq);
    std::memcpy(out.data(), data.data() + chunk * static_cast<std::size_t>(rank()),
                chunk * sizeof(T));
    if (op == ReduceOp::kAvg) detail::ScaleBy(out.data(), out.size(), 1.0 / p);
  }

  // out.size() must equal chunk.size() * p; rank i's chunk lands at
  // offset i*chunk.size().
  template <typename T>
  void AllGather(std::span<const T> chunk, std::span<T> out) {
    const int p = size();
    ZERO_CHECK(out.size() == chunk.size() * static_cast<std::size_t>(p),
               "AllGather output size mismatch");
    TRACE_SPAN("comm/all_gather");
    FaultPoint("collective");
    std::memcpy(out.data() + chunk.size() * static_cast<std::size_t>(rank()),
                chunk.data(), chunk.size() * sizeof(T));
    const std::uint64_t seq = NextSeq();
    if (p > 1) RingAllGatherInPlace(out, seq);
  }

  // Ring-pipelined broadcast from group rank `root`; per-rank volume ~= M.
  template <typename T>
  void Broadcast(std::span<T> data, int root) {
    TRACE_SPAN("comm/broadcast");
    FaultPoint("collective");
    const std::uint64_t seq = NextSeq();
    if (size() == 1) return;
    RingBroadcast(std::as_writable_bytes(data), root, seq);
  }

  // Ring reduce. Contract (relied on by the stage-2 gradient path and
  // documented here because every clause is asymmetric by design):
  //   - The fully reduced result lands in `root`'s buffer ONLY; every
  //     other rank's buffer is left exactly as it was passed in.
  //   - kAvg divides by the group size at the root only — non-root
  //     buffers never see the scaling, since they hold unreduced local
  //     data, not a result.
  //   - Accumulation walks the ring root+1, root+2, ..., root: the rank
  //     immediately after root forwards its own buffer verbatim (it has
  //     nothing to receive), every later rank folds its contribution
  //     into the running partial sum. The bracketing is therefore fixed
  //     by ring position and deterministic for a given root.
  //   - Per-rank send volume is M on every non-root rank and 0 at the
  //     root; stats_.collectives increments once per rank per call on
  //     every rank, including the degenerate single-rank group.
  template <typename T>
  void Reduce(std::span<T> data, int root, ReduceOp op = ReduceOp::kSum) {
    TRACE_SPAN("comm/reduce");
    FaultPoint("collective");
    const int p = size();
    const std::uint64_t seq = NextSeq();
    ++stats_.collectives;
    if (p == 1) {
      return;  // identity, like the other single-rank collectives
    }
    const int steps_from_root = Distance(root, rank());
    std::vector<T> acc;
    if (steps_from_root != 1) {
      // Everyone but the first hop receives the running sum from the
      // previous ring position and folds in its own contribution.
      acc.resize(data.size());
      Recv(Prev(), std::span<T>(acc), seq | kKindReduce);
      detail::AccumulateInto(acc.data(), data.data(), data.size(), op);
    }
    if (rank() != root) {
      const std::span<const T> fwd =
          steps_from_root == 1
              ? std::span<const T>(data.data(), data.size())
              : std::span<const T>(acc.data(), acc.size());
      Send(Next(), fwd, seq | kKindReduce);
    } else {
      std::memcpy(data.data(), acc.data(), acc.size() * sizeof(T));
      if (op == ReduceOp::kAvg)
        detail::ScaleBy(data.data(), data.size(), 1.0 / p);
    }
  }

  // Every rank's `chunk` lands at offset rank*chunk.size() of the
  // root's `out` (out is only written at the root).
  template <typename T>
  void Gather(std::span<const T> chunk, std::span<T> out, int root) {
    TRACE_SPAN("comm/gather");
    FaultPoint("collective");
    const int p = size();
    const std::uint64_t seq = NextSeq();
    if (rank() == root) {
      ZERO_CHECK(out.size() == chunk.size() * static_cast<std::size_t>(p),
                 "Gather output size mismatch at root");
      std::memcpy(out.data() + chunk.size() * static_cast<std::size_t>(root),
                  chunk.data(), chunk.size_bytes());
      for (int i = 0; i < p; ++i) {
        if (i == root) continue;
        Recv(i,
             out.subspan(chunk.size() * static_cast<std::size_t>(i),
                         chunk.size()),
             seq | kKindGather);
      }
    } else {
      Send(root, chunk, seq | kKindGather);
    }
    ++stats_.collectives;
  }

  // Personalized exchange: send.size() == recv.size() == p * chunk; the
  // i-th chunk of `send` goes to rank i, whose j-th chunk of `recv`
  // comes from rank j.
  template <typename T>
  void AllToAll(std::span<const T> send, std::span<T> recv) {
    const int p = size();
    ZERO_CHECK(send.size() == recv.size() &&
                   send.size() % static_cast<std::size_t>(p) == 0,
               "AllToAll buffers must be p equal chunks");
    const std::size_t chunk = send.size() / static_cast<std::size_t>(p);
    TRACE_SPAN("comm/all_to_all");
    FaultPoint("collective");
    const std::uint64_t seq = NextSeq();
    // Post all sends first (deposits are non-blocking), then receive.
    for (int i = 0; i < p; ++i) {
      std::span<const T> piece =
          send.subspan(chunk * static_cast<std::size_t>(i), chunk);
      if (i == rank()) {
        std::memcpy(recv.data() + chunk * static_cast<std::size_t>(i),
                    piece.data(), piece.size_bytes());
      } else {
        Send(i, piece, seq | kKindAllToAll);
      }
    }
    for (int i = 0; i < p; ++i) {
      if (i == rank()) continue;
      Recv(i, recv.subspan(chunk * static_cast<std::size_t>(i), chunk),
           seq | kKindAllToAll);
    }
    ++stats_.collectives;
  }

  // Root's data is split into p equal chunks; chunk i is delivered to
  // rank i's `out`.
  template <typename T>
  void Scatter(std::span<const T> data, std::span<T> out, int root) {
    TRACE_SPAN("comm/scatter");
    FaultPoint("collective");
    const int p = size();
    ZERO_CHECK(out.size() * static_cast<std::size_t>(p) == data.size() ||
                   rank() != root,
               "Scatter size mismatch at root");
    const std::uint64_t seq = NextSeq();
    if (rank() == root) {
      for (int i = 0; i < p; ++i) {
        std::span<const T> chunk = data.subspan(
            out.size() * static_cast<std::size_t>(i), out.size());
        if (i == rank()) {
          std::memcpy(out.data(), chunk.data(), chunk.size_bytes());
        } else {
          Send(i, chunk, seq | kKindScatter);
        }
      }
    } else {
      Recv(root, out, seq | kKindScatter);
    }
    ++stats_.collectives;
  }

  // A bounded wait gives up with CommTimeoutError (lost message) after
  // this many comm-deadline windows with the peer still heartbeating.
  static constexpr int kStallFactor = 8;

  // ---- nonblocking collective support (nonblocking_collectives.hpp) ----
  // The chunked collective state machines replay the blocking ring
  // schedules above as resumable steps, so they need the same tag
  // arithmetic and ring geometry the blocking templates use.
  static constexpr std::uint64_t kStepStride = 1ull << 20;

  [[nodiscard]] int Next() const { return (rank() + 1) % size(); }
  [[nodiscard]] int Prev() const { return (rank() + size() - 1) % size(); }
  [[nodiscard]] int Distance(int from, int to) const {
    return (to - from + size()) % size();
  }
  // Chunk [begin, end) element range for ring step bookkeeping; chunks
  // are as even as possible (first `rem` chunks one element longer).
  [[nodiscard]] std::pair<std::size_t, std::size_t> ChunkRange(
      std::size_t total, int chunk_index) const;

  // Entry point for one nonblocking collective launch: runs the fault
  // point, counts `sub_ops` collectives in stats, and returns the base
  // tag sequence (two kStepStride slots, like the blocking collectives).
  std::uint64_t BeginCollective(const char* site, int sub_ops = 1);

  // Group introspection for topology builders (comm/topology.hpp).
  [[nodiscard]] const std::vector<int>& members() const { return members_; }
  [[nodiscard]] RankContext& context() const { return *ctx_; }
  [[nodiscard]] std::uint64_t group_id() const { return group_id_; }

 private:
  static constexpr std::uint64_t kKindReduce = 1ull << 18;
  static constexpr std::uint64_t kKindScatter = 2ull << 18;
  static constexpr std::uint64_t kKindGather = 3ull << 18;
  // Kind field is 2 bits wide (18-19); AllToAll shares the unused step
  // range above it.
  static constexpr std::uint64_t kKindAllToAll = 1ull << 17;
  // User-supplied point-to-point tags must stay below this; internal
  // collective tags are allocated above it.
  static constexpr std::uint64_t kUserTagLimit = 1ull << 40;

  std::uint64_t NextSeq() {
    // Two stride slots per collective so AllReduce's two phases never
    // collide with the next call's tags.
    const std::uint64_t s = op_seq_;
    op_seq_ += 2 * kStepStride;
    return s;
  }

  template <typename T>
  void RingReduceScatterInPlace(std::span<T> data, ReduceOp op,
                                std::uint64_t seq);
  template <typename T>
  void RingAllGatherInPlace(std::span<T> data, std::uint64_t seq);
  void RingBroadcast(std::span<std::byte> data, int root, std::uint64_t seq);

  RankContext* ctx_;
  std::vector<int> members_;
  int my_index_;
  std::uint64_t group_id_;
  std::uint64_t op_seq_ = 0;
  CommStats stats_;
};

// ---- template implementations ----

template <typename T>
void Communicator::RingReduceScatterInPlace(std::span<T> data, ReduceOp op,
                                            std::uint64_t seq) {
  const int p = size();
  const int r = rank();
  std::vector<T> staging;
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (r - s - 1 + 2 * p) % p;
    const int recv_chunk = (r - s - 2 + 2 * p) % p;
    auto [sb, se] = ChunkRange(data.size(), send_chunk);
    auto [rb, re] = ChunkRange(data.size(), recv_chunk);
    Send(Next(), std::span<const T>(data.data() + sb, se - sb),
         seq + static_cast<std::uint64_t>(s));
    staging.resize(re - rb);
    Recv(Prev(), std::span<T>(staging), seq + static_cast<std::uint64_t>(s));
    detail::AccumulateInto(data.data() + rb, staging.data(), re - rb, op);
  }
  ++stats_.collectives;
}

template <typename T>
void Communicator::RingAllGatherInPlace(std::span<T> data, std::uint64_t seq) {
  const int p = size();
  const int r = rank();
  std::vector<T> staging;
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = (r - s + 2 * p) % p;
    const int recv_chunk = (r - s - 1 + 2 * p) % p;
    auto [sb, se] = ChunkRange(data.size(), send_chunk);
    auto [rb, re] = ChunkRange(data.size(), recv_chunk);
    Send(Next(), std::span<const T>(data.data() + sb, se - sb),
         seq + static_cast<std::uint64_t>(s));
    staging.resize(re - rb);
    Recv(Prev(), std::span<T>(staging), seq + static_cast<std::uint64_t>(s));
    std::memcpy(data.data() + rb, staging.data(), (re - rb) * sizeof(T));
  }
  ++stats_.collectives;
}

// Measures the communication attributable to a region of code without
// resetting the communicator's monotonic counters:
//
//   comm::CommDelta step(dp);
//   ... one training step ...
//   comm::CommStats used = step.Delta();
//
// Replaces the old pattern of calling ResetStats() between steps, which
// destroyed the run-lifetime totals other readers (the trainer's
// RankMetrics) depend on.
class CommDelta {
 public:
  explicit CommDelta(const Communicator& comm)
      : comm_(&comm), start_(comm.stats()) {}
  [[nodiscard]] CommStats Delta() const { return comm_->stats() - start_; }
  // Re-bases the helper so the next Delta() starts from now.
  void Rebase() { start_ = comm_->stats(); }

 private:
  const Communicator* comm_;
  CommStats start_;
};

}  // namespace zero::comm
