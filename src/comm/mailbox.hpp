// Point-to-point message transport between in-process ranks.
//
// Each rank owns one Mailbox. A sender deposits a tagged byte buffer into
// the receiver's box; Recv blocks until a message matching (source, tag)
// arrives. This is the only synchronization primitive under the
// collective library — everything above it is the same SPMD
// message-passing structure an MPI/NCCL implementation would have.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace zero::comm {

struct Message {
  int source = -1;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void Deposit(int source, std::uint64_t tag, std::span<const std::byte> data);

  // Blocks until a message with exactly this (source, tag) is available.
  [[nodiscard]] std::vector<std::byte> Take(int source, std::uint64_t tag);

  // Nonblocking variant: returns the message if one is already queued
  // for (source, tag), nullopt otherwise. The polling primitive under
  // CommRequest::Test.
  [[nodiscard]] std::optional<std::vector<std::byte>> TryTake(
      int source, std::uint64_t tag);

  [[nodiscard]] std::size_t PendingCount() const;

 private:
  using Key = std::pair<int, std::uint64_t>;  // (source, tag)
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<std::vector<std::byte>>> queues_;
  std::size_t pending_ = 0;
};

}  // namespace zero::comm
