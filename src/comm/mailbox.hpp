// Point-to-point message transport between in-process ranks.
//
// Each rank owns one Mailbox. A sender deposits a tagged byte buffer into
// the receiver's box; Recv blocks until a message matching (source, tag)
// arrives. This is the only synchronization primitive under the
// collective library — everything above it is the same SPMD
// message-passing structure an MPI/NCCL implementation would have.
//
// Wakeup audit (the rules every entry point below follows):
//   - Every waiter is a condition_variable wait with a predicate checked
//     under mutex_, so spurious wakeups and deposit/notify races cannot
//     strand a waiter (the predicate re-check closes them).
//   - Every state change a predicate reads (queues_, shutdown_,
//     interrupts_) is written under mutex_ BEFORE the notify, so a
//     waiter either observes the new state in its predicate or is
//     notified after it went to sleep — never neither (the classic
//     missed wakeup requires mutating the flag outside the mutex).
//   - notify_all, not notify_one: distinct waiters wait on distinct
//     (source, tag) keys, so a single-wakeup policy could wake the wrong
//     waiter and strand the right one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace zero::comm {

struct Message {
  int source = -1;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;
};

// Outcome of a bounded/interruptible Take.
enum class TakeStatus : unsigned char {
  kOk,           // message delivered into `out`
  kTimeout,      // deadline expired with no matching message
  kShutdown,     // the box was shut down while (or before) waiting
  kInterrupted,  // Interrupt() was called; caller should re-check health
};

class Mailbox {
 public:
  // Sentinel timeout for TakeFor: wait forever (still wakes on
  // Shutdown/Interrupt, unlike Take).
  static constexpr std::chrono::nanoseconds kForever =
      std::chrono::nanoseconds::max();

  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Deposits are dropped silently after Shutdown (the world is tearing
  // down; late senders must not crash).
  void Deposit(int source, std::uint64_t tag, std::span<const std::byte> data);

  // Blocks until a message with exactly this (source, tag) is available.
  // Throws CommError if the box is shut down while (or before) blocking —
  // the regression case for shutdown-while-blocked.
  [[nodiscard]] std::vector<std::byte> Take(int source, std::uint64_t tag);

  // Bounded, interruptible Take: waits up to `timeout` (kForever = no
  // deadline) for a matching message. A queued message wins over a
  // concurrent shutdown/interrupt — delivery is never dropped on the
  // floor. kInterrupted reports that Interrupt() bumped the epoch during
  // the wait so the caller can re-check failure state and re-enter.
  [[nodiscard]] TakeStatus TakeFor(int source, std::uint64_t tag,
                                   std::chrono::nanoseconds timeout,
                                   std::vector<std::byte>& out);

  // Nonblocking variant: returns the message if one is already queued
  // for (source, tag), nullopt otherwise. The polling primitive under
  // CommRequest::Test.
  [[nodiscard]] std::optional<std::vector<std::byte>> TryTake(
      int source, std::uint64_t tag);

  // Wakes every blocked waiter: Take throws CommError, TakeFor returns
  // kShutdown. Idempotent. Used at world teardown.
  void Shutdown();

  // Wakes every blocked TakeFor so it can re-check external failure
  // state (dead peers, abort requests). Blocking Take is NOT woken — it
  // predates the fault layer and keeps its pure semantics; detection
  // paths must go through TakeFor.
  void Interrupt();

  [[nodiscard]] bool shut_down() const;
  [[nodiscard]] std::size_t PendingCount() const;

 private:
  using Key = std::pair<int, std::uint64_t>;  // (source, tag)

  // Pops the front message for `key` into `out`; caller holds mutex_ and
  // has verified availability.
  void PopLocked(std::map<Key, std::deque<std::vector<std::byte>>>::iterator it,
                 std::vector<std::byte>& out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<std::vector<std::byte>>> queues_;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
  std::uint64_t interrupts_ = 0;
};

}  // namespace zero::comm
