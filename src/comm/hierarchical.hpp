// Two-level (node-aware) all-reduce.
//
// On a DGX-2 cluster the flat ring streams the whole message through
// every edge — including the slow inter-node ones — and pays ring
// latency proportional to the world size. The hierarchical schedule
// exploits the topology the paper's cluster has:
//
//   1. reduce-scatter inside each local (intra-node) group;
//   2. all-reduce each shard across the group leaders' communicator
//      (one participant per node on the slow network);
//   3. all-gather inside the local group.
//
// Every rank still sends O(M) bytes, but only 1/G of the message ever
// crosses nodes per rank and the slow-network ring has `nodes` members
// instead of `world` — the standard NCCL-style optimization for the
// NVSwitch + InfiniBand fabric of Sec 10.1.
//
// Usage (SPMD): every rank passes its intra-node communicator; ranks
// whose local rank is 0 also pass the cross-node (leaders)
// communicator, others pass nullptr.
#pragma once

#include <span>

#include "comm/communicator.hpp"

namespace zero::comm {

template <typename T>
void HierarchicalAllReduce(Communicator& local, Communicator* leaders,
                           std::span<T> data, ReduceOp op = ReduceOp::kSum) {
  const int g = local.size();
  const bool is_leader = local.rank() == 0;
  ZERO_CHECK(is_leader == (leaders != nullptr),
             "exactly the local-rank-0 members must pass the leader comm");
  ZERO_CHECK(op != ReduceOp::kAvg,
             "HierarchicalAllReduce supports kSum/kMax; apply averaging at "
             "the call site (non-leaders cannot see the global count)");

  if (g == 1) {
    // Degenerate local group: just the cross-node phase.
    if (leaders != nullptr) leaders->AllReduce(data, op);
    return;
  }

  // Pad to a multiple of the local group size so ReduceScatter divides
  // evenly; padding reduces to zero and is dropped at the end.
  const std::size_t chunk =
      (data.size() + static_cast<std::size_t>(g) - 1) /
      static_cast<std::size_t>(g);
  std::vector<T> padded(chunk * static_cast<std::size_t>(g), T{});
  std::memcpy(padded.data(), data.data(), data.size_bytes());

  // Phase 1: local reduce-scatter — each local rank ends with one fully
  // locally-reduced shard.
  std::vector<T> shard(chunk);
  local.ReduceScatter(std::span<T>(padded), std::span<T>(shard), op);

  // Phase 2: leaders combine their shards across nodes. Non-leaders'
  // shards must also cross, so each local rank funnels its shard through
  // its leader? No — every local rank owns a *different* shard, so all
  // shards together tile the message exactly once. The cross-node
  // reduction must therefore run per shard owner: the owner of shard i
  // on every node holds the same index range, so the natural leaders'
  // group for shard i is "local rank i across nodes". When the caller
  // provides one leaders' communicator (local rank 0 only), shards are
  // first gathered to the leader, reduced across nodes, and scattered
  // back — trading one extra local round trip for a single cross-node
  // group.
  if (is_leader) {
    std::vector<T> all_shards(padded.size());
    // Gather every local rank's shard to the leader.
    std::memcpy(all_shards.data(), shard.data(), shard.size() * sizeof(T));
    for (int r = 1; r < g; ++r) {
      local.Recv(r, std::span<T>(all_shards.data() +
                                     static_cast<std::size_t>(r) * chunk,
                                 chunk),
                 /*tag=*/0x11);
    }
    leaders->AllReduce(std::span<T>(all_shards), op);
    // Scatter the globally reduced shards back.
    for (int r = 1; r < g; ++r) {
      local.Send(r,
                 std::span<const T>(all_shards.data() +
                                        static_cast<std::size_t>(r) * chunk,
                                    chunk),
                 /*tag=*/0x12);
    }
    std::memcpy(shard.data(), all_shards.data(), shard.size() * sizeof(T));
  } else {
    local.Send(0, std::span<const T>(shard.data(), shard.size()),
               /*tag=*/0x11);
    local.Recv(0, std::span<T>(shard), /*tag=*/0x12);
  }

  // Phase 3: local all-gather reassembles the full message everywhere.
  local.AllGather(std::span<const T>(shard.data(), shard.size()),
                  std::span<T>(padded));
  std::memcpy(data.data(), padded.data(), data.size_bytes());
}

}  // namespace zero::comm
