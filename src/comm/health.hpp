// Per-world rank liveness: heartbeats, death records, and the
// cooperative step-abort flag. The detection half of the fault subsystem
// (the injection half lives in src/fault/).
//
// Heartbeats are published by each rank from inside the communicator's
// blocking paths (only when a comm deadline is configured — with
// detection off, no clock is read). A rank is declared dead either
// directly (its thread unwound with an exception; World::Run observes
// this immediately) or by inference (a peer's bounded wait expired with
// no heartbeat inside the deadline window). Every declaration also
// raises the abort flag: a synchronous SPMD step cannot survive a lost
// rank, so all survivors should unwind with StepAbortedError at their
// next blocking point rather than discover the death one timeout at a
// time.
//
// All state is atomics (TSan-clean, no locks on the beat path) except
// the death reasons, which are mutex-guarded strings read only after a
// failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace zero::comm {

class HealthBoard {
 public:
  explicit HealthBoard(int size);
  HealthBoard(const HealthBoard&) = delete;
  HealthBoard& operator=(const HealthBoard&) = delete;

  [[nodiscard]] int size() const { return size_; }

  // ---- heartbeats ----
  // Publishes "rank was alive at time now_ns". Relaxed store; callers
  // pass obs::TraceNowNs().
  void Beat(int rank, std::uint64_t now_ns);
  // 0 until the first beat.
  [[nodiscard]] std::uint64_t LastBeatNs(int rank) const;

  // ---- death records ----
  // Idempotent: the first reason wins. Also raises the abort flag.
  void MarkDead(int rank, const std::string& reason);
  [[nodiscard]] bool IsDead(int rank) const;
  [[nodiscard]] bool AnyDead() const;
  [[nodiscard]] int AliveCount() const;
  [[nodiscard]] std::vector<int> AliveRanks() const;
  [[nodiscard]] std::string DeathReason(int rank) const;

  // ---- cooperative step abort ----
  void RequestAbort();
  [[nodiscard]] bool AbortRequested() const;

 private:
  int size_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> beats_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<int> dead_count_{0};
  std::atomic<bool> abort_{false};
  mutable std::mutex reasons_mutex_;
  std::vector<std::string> reasons_;
};

}  // namespace zero::comm
