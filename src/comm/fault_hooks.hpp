// Fault-injection seam of the communication layer.
//
// The comm layer knows nothing about fault *plans* — it only exposes two
// hook points that src/fault/'s FaultInjector implements:
//
//   - AtPoint(rank, site): named injectable points ("step" at the top of
//     every engine TrainStep, "collective" at every collective entry,
//     "barrier" before a barrier). An implementation may throw
//     InjectedFaultError (simulated crash), block until the world aborts
//     (simulated hang), or sleep (simulated straggler).
//   - OnSend(src, dst, tag, bytes): consulted for every point-to-point
//     deposit; the verdict can drop the message, delay it (modeled as a
//     sender-side stall, the way a congested NIC back-pressures), or
//     duplicate it.
//
// Zero-cost-when-off contract: World stores a plain FaultHooks pointer
// that is null by default; every hook site is one pointer load and a
// branch, cheap enough to stay compiled into the hot paths permanently
// (the telemetry-overhead CI gate covers it). Set the hooks before
// World::Run and do not change them while ranks execute.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zero::comm {

class World;

struct FaultSendVerdict {
  bool drop = false;         // message is never deposited
  int duplicates = 0;        // extra deposits after the real one
  std::uint64_t delay_ns = 0;  // sender-side stall before depositing
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  // Called at named injectable points. May throw (crash), block (hang),
  // or sleep (straggler); must be safe to call from any rank thread.
  virtual void AtPoint(int rank, const char* site) = 0;

  // Called before every point-to-point deposit. `dst_rank` is the global
  // (world) rank of the receiver.
  virtual FaultSendVerdict OnSend(int src_rank, int dst_rank,
                                  std::uint64_t tag, std::size_t bytes) = 0;

  // World::SetFaultHooks hands the hooks their world so hang-style
  // faults can watch the health board for the abort that releases them.
  virtual void BindWorld(World* /*world*/) {}
};

}  // namespace zero::comm
