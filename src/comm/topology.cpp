#include "comm/topology.hpp"

#include "common/error.hpp"

namespace zero::comm {

GridTopology::GridTopology(int world, int mp)
    : world_size(world), mp_degree(mp) {
  ZERO_CHECK(world >= 1 && mp >= 1, "degenerate grid");
  ZERO_CHECK(world % mp == 0, "world size must be divisible by MP degree");
  dp_degree = world / mp;
}

std::vector<int> GridTopology::MpGroupMembers(int rank) const {
  const int base = MpGroupIndex(rank) * mp_degree;
  std::vector<int> members(static_cast<std::size_t>(mp_degree));
  for (int i = 0; i < mp_degree; ++i) members[static_cast<std::size_t>(i)] = base + i;
  return members;
}

std::vector<int> GridTopology::DpGroupMembers(int rank) const {
  const int col = DpGroupIndex(rank);
  std::vector<int> members(static_cast<std::size_t>(dp_degree));
  for (int i = 0; i < dp_degree; ++i)
    members[static_cast<std::size_t>(i)] = col + i * mp_degree;
  return members;
}

Communicator GridTopology::MakeMpComm(RankContext& ctx) const {
  return Communicator(
      ctx, MpGroupMembers(ctx.rank),
      kMpGroupBase + static_cast<std::uint64_t>(MpGroupIndex(ctx.rank)));
}

Communicator GridTopology::MakeDpComm(RankContext& ctx) const {
  return Communicator(
      ctx, DpGroupMembers(ctx.rank),
      kDpGroupBase + static_cast<std::uint64_t>(DpGroupIndex(ctx.rank)));
}

NodeTopology::NodeTopology(const Communicator& within, int per_node)
    : ranks_per_node(per_node), members(within.members()),
      parent_low_(within.group_id() & 0xF) {
  ZERO_CHECK(per_node >= 1, "ranks_per_node must be positive");
  // Uneven worlds degrade cleanly: the last node is simply short (ceil
  // division), single-rank nodes make every member its own leader, and
  // per_node > size collapses to one node spanning the whole group. The
  // leaders' group always has one member per node — never empty.
  nodes = (within.size() + per_node - 1) / per_node;
}

int NodeTopology::GroupRankOf(int global_rank) const {
  auto it = std::find(members.begin(), members.end(), global_rank);
  ZERO_CHECK(it != members.end(),
             "rank " + std::to_string(global_rank) + " not in sliced group");
  return static_cast<int>(it - members.begin());
}

std::vector<int> NodeTopology::LocalMembers(int group_rank) const {
  const std::size_t base = static_cast<std::size_t>(NodeIndex(group_rank)) *
                           static_cast<std::size_t>(ranks_per_node);
  const std::size_t end = std::min(
      members.size(), base + static_cast<std::size_t>(ranks_per_node));
  return {members.begin() + static_cast<std::ptrdiff_t>(base),
          members.begin() + static_cast<std::ptrdiff_t>(end)};
}

std::vector<int> NodeTopology::LeaderMembers() const {
  std::vector<int> leaders(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    leaders[static_cast<std::size_t>(n)] =
        members[static_cast<std::size_t>(n * ranks_per_node)];
  }
  return leaders;
}

Communicator NodeTopology::MakeLocalComm(RankContext& ctx) const {
  const int g = GroupRankOf(ctx.rank);
  return Communicator(ctx, LocalMembers(g),
                      kLocalGroupBase + (parent_low_ << 4) +
                          static_cast<std::uint64_t>(NodeIndex(g) & 0xF));
}

Communicator NodeTopology::MakeLeadersComm(RankContext& ctx) const {
  const int g = GroupRankOf(ctx.rank);
  ZERO_CHECK(IsLeader(g), "only local-rank-0 members join the leaders group");
  return Communicator(ctx, LeaderMembers(), kLeadersGroupBase + parent_low_);
}

}  // namespace zero::comm
