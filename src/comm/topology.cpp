#include "comm/topology.hpp"

#include "common/error.hpp"

namespace zero::comm {

GridTopology::GridTopology(int world, int mp)
    : world_size(world), mp_degree(mp) {
  ZERO_CHECK(world >= 1 && mp >= 1, "degenerate grid");
  ZERO_CHECK(world % mp == 0, "world size must be divisible by MP degree");
  dp_degree = world / mp;
}

std::vector<int> GridTopology::MpGroupMembers(int rank) const {
  const int base = MpGroupIndex(rank) * mp_degree;
  std::vector<int> members(static_cast<std::size_t>(mp_degree));
  for (int i = 0; i < mp_degree; ++i) members[static_cast<std::size_t>(i)] = base + i;
  return members;
}

std::vector<int> GridTopology::DpGroupMembers(int rank) const {
  const int col = DpGroupIndex(rank);
  std::vector<int> members(static_cast<std::size_t>(dp_degree));
  for (int i = 0; i < dp_degree; ++i)
    members[static_cast<std::size_t>(i)] = col + i * mp_degree;
  return members;
}

Communicator GridTopology::MakeMpComm(RankContext& ctx) const {
  return Communicator(
      ctx, MpGroupMembers(ctx.rank),
      kMpGroupBase + static_cast<std::uint64_t>(MpGroupIndex(ctx.rank)));
}

Communicator GridTopology::MakeDpComm(RankContext& ctx) const {
  return Communicator(
      ctx, DpGroupMembers(ctx.rank),
      kDpGroupBase + static_cast<std::uint64_t>(DpGroupIndex(ctx.rank)));
}

}  // namespace zero::comm
