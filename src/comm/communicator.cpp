#include "comm/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>

#include "obs/metrics.hpp"

namespace zero::comm {

Communicator::Communicator(RankContext& ctx, std::vector<int> members,
                           std::uint64_t group_id)
    : ctx_(&ctx), members_(std::move(members)), group_id_(group_id) {
  ZERO_CHECK(!members_.empty(), "empty communicator group");
  auto it = std::find(members_.begin(), members_.end(), ctx.rank);
  ZERO_CHECK(it != members_.end(),
             "rank " + std::to_string(ctx.rank) + " not in group");
  my_index_ = static_cast<int>(it - members_.begin());
  for (int m : members_) {
    ZERO_CHECK(m >= 0 && m < ctx.world_size, "group member out of range");
  }
  // Internal collective tags live above the user tag space.
  op_seq_ = kUserTagLimit;
}

Communicator Communicator::WholeWorld(RankContext& ctx) {
  std::vector<int> all(static_cast<std::size_t>(ctx.world_size));
  std::iota(all.begin(), all.end(), 0);
  return Communicator(ctx, std::move(all), /*group_id=*/0);
}

void Communicator::Barrier() {
  FaultPoint("barrier");
  // Distinct barrier key per group; all members pass the same key.
  ctx_->world->SharedBarrier(0x5A5A000000000000ull ^ group_id_, size())
      .Arrive();
}

void Communicator::FaultPoint(const char* site) {
  World* w = ctx_->world;
  if (FaultHooks* hooks = w->fault_hooks()) {
    hooks->AtPoint(ctx_->rank, site);  // may throw / block / sleep
  }
  if (w->comm_deadline_ns() != 0) {
    w->health().Beat(ctx_->rank, obs::TraceNowNs());
    if (w->health().AbortRequested()) {
      throw StepAbortedError("step aborted at fault point '" +
                             std::string(site) + "' on rank " +
                             std::to_string(ctx_->rank));
    }
  }
}

void Communicator::SendBytes(int peer, std::span<const std::byte> data,
                             std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "send peer out of range");
  const int global_peer = members_[static_cast<std::size_t>(peer)];
  World* w = ctx_->world;
  int deposits = 1;
  if (FaultHooks* hooks = w->fault_hooks()) {
    const FaultSendVerdict v =
        hooks->OnSend(ctx_->rank, global_peer, tag, data.size());
    if (v.delay_ns != 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(v.delay_ns));
    }
    deposits = v.drop ? 0 : 1 + v.duplicates;
  }
  if (w->comm_deadline_ns() != 0) {
    w->health().Beat(ctx_->rank, obs::TraceNowNs());
  }
  for (int i = 0; i < deposits; ++i) {
    w->mailbox(global_peer).Deposit(ctx_->rank, tag ^ (group_id_ << 52), data);
  }
  stats_.bytes_sent += data.size();
  ++stats_.messages_sent;
}

std::vector<std::byte> Communicator::RecvBytes(int peer, std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "recv peer out of range");
  const int global_peer = members_[static_cast<std::size_t>(peer)];
  World* w = ctx_->world;
  Mailbox& box = w->mailbox(ctx_->rank);
  const std::uint64_t full_tag = tag ^ (group_id_ << 52);
  const std::uint64_t deadline_ns = w->comm_deadline_ns();
  const std::uint64_t wait_start = deadline_ns != 0 ? obs::TraceNowNs() : 0;
  std::vector<std::byte> msg;

  // The whole take loop is blocked time: the span makes mailbox waits
  // inside ring collectives visible as a stall class to the step
  // critical-path analyzer (a message already queued costs ~nothing).
  TRACE_SPAN("comm/recv_wait");
  for (;;) {
    // A queued message wins over failure state (checked inside TakeFor's
    // predicate too): drain what was delivered before unwinding, so a
    // completed send is never lost to a concurrent abort.
    if (w->health().IsDead(global_peer)) {
      const TakeStatus st =
          box.TakeFor(global_peer, full_tag, std::chrono::nanoseconds(0), msg);
      if (st == TakeStatus::kOk) break;
      throw PeerFailedError(
          global_peer, "recv from rank " + std::to_string(global_peer) +
                           " which is dead: " +
                           w->health().DeathReason(global_peer));
    }
    if (w->health().AbortRequested()) {
      const TakeStatus st =
          box.TakeFor(global_peer, full_tag, std::chrono::nanoseconds(0), msg);
      if (st == TakeStatus::kOk) break;
      throw StepAbortedError("recv aborted on rank " +
                             std::to_string(ctx_->rank) +
                             ": step abort requested");
    }
    if (deadline_ns != 0) {
      w->health().Beat(ctx_->rank, obs::TraceNowNs());
    }
    const TakeStatus st = box.TakeFor(
        global_peer, full_tag,
        deadline_ns == 0 ? Mailbox::kForever
                         : std::chrono::nanoseconds(deadline_ns),
        msg);
    if (st == TakeStatus::kOk) break;
    if (st == TakeStatus::kShutdown) {
      throw CommError("mailbox shut down during recv on rank " +
                      std::to_string(ctx_->rank));
    }
    if (st == TakeStatus::kInterrupted) continue;  // re-check failure state

    // kTimeout: decide between a dead peer (no heartbeat for a full
    // deadline window) and a lost/stalled message (peer still beating).
    const std::uint64_t now = obs::TraceNowNs();
    const std::uint64_t last_seen =
        std::max(w->health().LastBeatNs(global_peer), wait_start);
    if (now >= last_seen + deadline_ns) {
      static obs::Counter& detected =
          obs::Metrics().counter("fault.detected_failures");
      detected.Add();
      w->DeclareDead(global_peer,
                     "no heartbeat within deadline (detected by rank " +
                         std::to_string(ctx_->rank) + ")");
      throw PeerFailedError(global_peer,
                            "rank " + std::to_string(global_peer) +
                                " missed its heartbeat deadline");
    }
    if (now >= wait_start + static_cast<std::uint64_t>(kStallFactor) *
                                deadline_ns) {
      throw CommTimeoutError(
          "recv on rank " + std::to_string(ctx_->rank) + " from rank " +
          std::to_string(global_peer) + " tag " + std::to_string(tag) +
          " stalled: peer is alive but the message never arrived");
    }
    // Peer is alive and we are within the stall budget: keep waiting.
  }
  stats_.bytes_received += msg.size();
  return msg;
}

std::optional<std::vector<std::byte>> Communicator::TryRecvBytes(
    int peer, std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "recv peer out of range");
  const int global_peer = members_[static_cast<std::size_t>(peer)];
  std::optional<std::vector<std::byte>> msg =
      ctx_->world->mailbox(ctx_->rank)
          .TryTake(global_peer, tag ^ (group_id_ << 52));
  if (msg.has_value()) {
    stats_.bytes_received += msg->size();
  }
  return msg;
}

CommRequest Communicator::IsSendBytes(int peer,
                                      std::span<const std::byte> data,
                                      std::uint64_t tag) {
  // The deposit copies the payload into the receiver's mailbox, so the
  // operation is complete before this call returns.
  SendBytes(peer, data, tag);
  auto state = std::make_shared<CommRequest::State>();
  state->comm = this;
  state->peer = peer;
  state->tag = tag;
  state->done = true;
  return CommRequest(std::move(state));
}

CommRequest Communicator::IsRecvBytes(int peer, std::span<std::byte> out,
                                      std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "recv peer out of range");
  auto state = std::make_shared<CommRequest::State>();
  state->comm = this;
  state->peer = peer;
  state->tag = tag;
  state->out = out;
  state->recv = true;
  return CommRequest(std::move(state));
}

void CommRequest::Complete(std::vector<std::byte> msg) {
  ZERO_CHECK(msg.size() == state_->out.size(),
             "IsRecv size mismatch: expected " +
                 std::to_string(state_->out.size()) + ", got " +
                 std::to_string(msg.size()));
  std::memcpy(state_->out.data(), msg.data(), msg.size());
  state_->done = true;
}

void CommRequest::Wait() {
  if (done()) return;
  // A blocking wait on a pending recv is exactly the "all-gather stall" /
  // "bucket-flush wait" the step report wants visible: record how long
  // the rank sat here.
  TRACE_SPAN("comm/p2p_wait");
  const std::uint64_t t0 = obs::TraceNowNs();
  Complete(state_->comm->RecvBytes(state_->peer, state_->tag));
  static obs::Histogram& wait_us = obs::Metrics().histogram("comm.p2p_wait_us");
  wait_us.Observe(static_cast<double>(obs::TraceNowNs() - t0) / 1000.0);
}

bool CommRequest::Test() {
  if (done()) return true;
  std::optional<std::vector<std::byte>> msg =
      state_->comm->TryRecvBytes(state_->peer, state_->tag);
  if (!msg.has_value()) return false;
  Complete(std::move(*msg));
  return true;
}

void CommRequest::Cancel() {
  if (!state_ || state_->done) {
    state_.reset();
    return;
  }
  if (state_->recv) {
    // Drain a message that already landed so it cannot be mistaken for a
    // later operation's payload. Tags are never reused, so a message
    // arriving after this point is simply inert.
    (void)state_->comm->TryRecvBytes(state_->peer, state_->tag);
  }
  state_->out = {};
  state_->done = true;
  state_.reset();
}

std::uint64_t Communicator::BeginCollective(const char* site, int sub_ops) {
  FaultPoint(site);
  stats_.collectives += static_cast<std::uint64_t>(sub_ops);
  return NextSeq();
}

std::pair<std::size_t, std::size_t> Communicator::ChunkRange(
    std::size_t total, int chunk_index) const {
  const auto p = static_cast<std::size_t>(size());
  const auto i = static_cast<std::size_t>(chunk_index);
  const std::size_t base = total / p;
  const std::size_t rem = total % p;
  const std::size_t begin = i * base + std::min(i, rem);
  const std::size_t len = base + (i < rem ? 1 : 0);
  return {begin, begin + len};
}

void Communicator::RingBroadcast(std::span<std::byte> data, int root,
                                 std::uint64_t seq) {
  const int p = size();
  // Pipeline the message in p chunks around the ring rooted at `root`.
  // Position q = distance from root along the ring.
  const int q = Distance(root, rank());
  for (int c = 0; c < p; ++c) {
    auto [b, e] = ChunkRange(data.size(), c);
    if (e == b) continue;
    std::span<std::byte> chunk = data.subspan(b, e - b);
    if (q != 0) {
      Recv(Prev(), chunk, seq + static_cast<std::uint64_t>(c));
    }
    if (q != p - 1) {
      Send(Next(), std::span<const std::byte>(chunk),
           seq + static_cast<std::uint64_t>(c));
    }
  }
  ++stats_.collectives;
}

}  // namespace zero::comm
