#include "comm/communicator.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"

namespace zero::comm {

Communicator::Communicator(RankContext& ctx, std::vector<int> members,
                           std::uint64_t group_id)
    : ctx_(&ctx), members_(std::move(members)), group_id_(group_id) {
  ZERO_CHECK(!members_.empty(), "empty communicator group");
  auto it = std::find(members_.begin(), members_.end(), ctx.rank);
  ZERO_CHECK(it != members_.end(),
             "rank " + std::to_string(ctx.rank) + " not in group");
  my_index_ = static_cast<int>(it - members_.begin());
  for (int m : members_) {
    ZERO_CHECK(m >= 0 && m < ctx.world_size, "group member out of range");
  }
  // Internal collective tags live above the user tag space.
  op_seq_ = kUserTagLimit;
}

Communicator Communicator::WholeWorld(RankContext& ctx) {
  std::vector<int> all(static_cast<std::size_t>(ctx.world_size));
  std::iota(all.begin(), all.end(), 0);
  return Communicator(ctx, std::move(all), /*group_id=*/0);
}

void Communicator::Barrier() {
  // Distinct barrier key per group; all members pass the same key.
  ctx_->world->SharedBarrier(0x5A5A000000000000ull ^ group_id_, size())
      .Arrive();
}

void Communicator::SendBytes(int peer, std::span<const std::byte> data,
                             std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "send peer out of range");
  const int global_peer = members_[static_cast<std::size_t>(peer)];
  ctx_->world->mailbox(global_peer)
      .Deposit(ctx_->rank, tag ^ (group_id_ << 52), data);
  stats_.bytes_sent += data.size();
  ++stats_.messages_sent;
}

std::vector<std::byte> Communicator::RecvBytes(int peer, std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "recv peer out of range");
  const int global_peer = members_[static_cast<std::size_t>(peer)];
  std::vector<std::byte> msg = ctx_->world->mailbox(ctx_->rank)
                                   .Take(global_peer, tag ^ (group_id_ << 52));
  stats_.bytes_received += msg.size();
  return msg;
}

std::optional<std::vector<std::byte>> Communicator::TryRecvBytes(
    int peer, std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "recv peer out of range");
  const int global_peer = members_[static_cast<std::size_t>(peer)];
  std::optional<std::vector<std::byte>> msg =
      ctx_->world->mailbox(ctx_->rank)
          .TryTake(global_peer, tag ^ (group_id_ << 52));
  if (msg.has_value()) {
    stats_.bytes_received += msg->size();
  }
  return msg;
}

CommRequest Communicator::IsSendBytes(int peer,
                                      std::span<const std::byte> data,
                                      std::uint64_t tag) {
  // The deposit copies the payload into the receiver's mailbox, so the
  // operation is complete before this call returns.
  SendBytes(peer, data, tag);
  auto state = std::make_shared<CommRequest::State>();
  state->comm = this;
  state->peer = peer;
  state->tag = tag;
  state->done = true;
  return CommRequest(std::move(state));
}

CommRequest Communicator::IsRecvBytes(int peer, std::span<std::byte> out,
                                      std::uint64_t tag) {
  ZERO_CHECK(peer >= 0 && peer < size(), "recv peer out of range");
  auto state = std::make_shared<CommRequest::State>();
  state->comm = this;
  state->peer = peer;
  state->tag = tag;
  state->out = out;
  state->recv = true;
  return CommRequest(std::move(state));
}

void CommRequest::Complete(std::vector<std::byte> msg) {
  ZERO_CHECK(msg.size() == state_->out.size(),
             "IsRecv size mismatch: expected " +
                 std::to_string(state_->out.size()) + ", got " +
                 std::to_string(msg.size()));
  std::memcpy(state_->out.data(), msg.data(), msg.size());
  state_->done = true;
}

void CommRequest::Wait() {
  if (done()) return;
  // A blocking wait on a pending recv is exactly the "all-gather stall" /
  // "bucket-flush wait" the step report wants visible: record how long
  // the rank sat here.
  TRACE_SPAN("comm/p2p_wait");
  const std::uint64_t t0 = obs::TraceNowNs();
  Complete(state_->comm->RecvBytes(state_->peer, state_->tag));
  static obs::Histogram& wait_us = obs::Metrics().histogram("comm.p2p_wait_us");
  wait_us.Observe(static_cast<double>(obs::TraceNowNs() - t0) / 1000.0);
}

bool CommRequest::Test() {
  if (done()) return true;
  std::optional<std::vector<std::byte>> msg =
      state_->comm->TryRecvBytes(state_->peer, state_->tag);
  if (!msg.has_value()) return false;
  Complete(std::move(*msg));
  return true;
}

std::pair<std::size_t, std::size_t> Communicator::ChunkRange(
    std::size_t total, int chunk_index) const {
  const auto p = static_cast<std::size_t>(size());
  const auto i = static_cast<std::size_t>(chunk_index);
  const std::size_t base = total / p;
  const std::size_t rem = total % p;
  const std::size_t begin = i * base + std::min(i, rem);
  const std::size_t len = base + (i < rem ? 1 : 0);
  return {begin, begin + len};
}

void Communicator::RingBroadcast(std::span<std::byte> data, int root,
                                 std::uint64_t seq) {
  const int p = size();
  // Pipeline the message in p chunks around the ring rooted at `root`.
  // Position q = distance from root along the ring.
  const int q = Distance(root, rank());
  for (int c = 0; c < p; ++c) {
    auto [b, e] = ChunkRange(data.size(), c);
    if (e == b) continue;
    std::span<std::byte> chunk = data.subspan(b, e - b);
    if (q != 0) {
      Recv(Prev(), chunk, seq + static_cast<std::uint64_t>(c));
    }
    if (q != p - 1) {
      Send(Next(), std::span<const std::byte>(chunk),
           seq + static_cast<std::uint64_t>(c));
    }
  }
  ++stats_.collectives;
}

}  // namespace zero::comm
