// World: the set of in-process ranks ("devices") for one run.
//
// World::Run(n, fn) launches n threads; each executes fn(RankContext&)
// with its rank id, its Mailbox, and access to every peer's Mailbox for
// sends. A shared Barrier (generation-counted) provides group-wide
// synchronization. Exceptions thrown by any rank are captured and
// rethrown on the launching thread after all ranks join, so a device OOM
// on rank k surfaces as a normal C++ exception in the test/bench.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/mailbox.hpp"

namespace zero::comm {

// Reusable generation-counted barrier for an arbitrary subset size.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}

  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

class World;

struct RankContext {
  World* world = nullptr;
  int rank = -1;
  int world_size = 0;
};

class World {
 public:
  explicit World(int size);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  // Obtain (lazily creating) a barrier shared by all callers that pass
  // the same key with the same party count. Used by communicators over
  // rank subsets.
  [[nodiscard]] Barrier& SharedBarrier(std::uint64_t key, int parties);

  // SPMD entry point: runs body once per rank on its own thread and
  // joins. If any rank throws, the first exception (by rank order) is
  // rethrown here after all threads complete or abort their wait.
  void Run(const std::function<void(RankContext&)>& body);

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::mutex barriers_mutex_;
  std::map<std::uint64_t, std::unique_ptr<Barrier>> barriers_;
};

}  // namespace zero::comm
