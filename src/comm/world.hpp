// World: the set of in-process ranks ("devices") for one run.
//
// World::Run(n, fn) launches n threads; each executes fn(RankContext&)
// with its rank id, its Mailbox, and access to every peer's Mailbox for
// sends. A shared Barrier (generation-counted) provides group-wide
// synchronization. Exceptions thrown by any rank are captured and
// rethrown on the launching thread after all ranks join, so a device OOM
// on rank k surfaces as a normal C++ exception in the test/bench.
//
// Fault tolerance: the world carries a HealthBoard (heartbeats + death
// records + step-abort flag), an optional comm deadline (bounded waits
// in Communicator::RecvBytes, 0 = classic blocking behavior for hangs
// but crash deaths still propagate), and an optional FaultHooks pointer
// (deterministic fault injection, null = zero-cost). When any rank's
// body unwinds with an exception, Run declares it dead, raises the
// abort flag, and interrupts every blocked waiter — survivors surface a
// typed CommError (PeerFailedError / StepAbortedError) instead of
// deadlocking on messages that will never arrive. TryRun is the
// recovery-oriented variant that returns the per-rank outcomes instead
// of rethrowing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/fault_hooks.hpp"
#include "comm/health.hpp"
#include "comm/mailbox.hpp"

namespace zero::comm {

// Reusable generation-counted barrier for an arbitrary subset size.
// Abort-aware: Abort() permanently wakes and fails every current and
// future Arrive with StepAbortedError (a barrier party died; the step
// cannot complete).
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}

  void Arrive();
  void Abort();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
};

class World;

struct RankContext {
  World* world = nullptr;
  int rank = -1;
  int world_size = 0;
};

class World {
 public:
  explicit World(int size);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  [[nodiscard]] HealthBoard& health() { return health_; }

  // ---- fault-tolerance configuration (set before Run) ----
  // Deadline for bounded communicator waits; 0 (default) disables
  // heartbeat-based detection (crash deaths still propagate via the
  // abort cascade).
  void SetCommDeadline(std::chrono::nanoseconds deadline) {
    comm_deadline_ns_.store(
        static_cast<std::uint64_t>(deadline.count()),
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t comm_deadline_ns() const {
    return comm_deadline_ns_.load(std::memory_order_relaxed);
  }
  // Borrowed pointer, null disables injection. Calls hooks->BindWorld.
  void SetFaultHooks(FaultHooks* hooks);
  [[nodiscard]] FaultHooks* fault_hooks() const { return fault_hooks_; }

  // Declares `rank` dead, raises the step-abort flag, and wakes every
  // blocked mailbox/barrier waiter so survivors can unwind.
  void DeclareDead(int rank, const std::string& reason);
  // Wakes all blocked waiters without declaring a death (used after
  // RequestAbort).
  void InterruptAll();

  // Obtain (lazily creating) a barrier shared by all callers that pass
  // the same key with the same party count. Used by communicators over
  // rank subsets.
  [[nodiscard]] Barrier& SharedBarrier(std::uint64_t key, int parties);

  // SPMD entry point: runs body once per rank on its own thread and
  // joins. If any rank throws, the most root-cause exception (first by
  // rank order that is not a secondary StepAborted/PeerFailed/
  // CommTimeout) is rethrown here after all threads complete.
  void Run(const std::function<void(RankContext&)>& body);

  // Per-rank outcomes of one Run attempt, for callers (recovery) that
  // must inspect failures rather than crash on them.
  struct RunReport {
    std::vector<std::exception_ptr> errors;  // null = rank completed
    [[nodiscard]] bool ok() const {
      for (const auto& e : errors) {
        if (e) return false;
      }
      return true;
    }
    // First error by rank order that is not collateral damage
    // (StepAborted/PeerFailed/CommTimeout); falls back to the first
    // error of any kind; null when ok().
    [[nodiscard]] std::exception_ptr RootCause() const;
  };
  // Like Run but never throws from rank failures.
  RunReport TryRun(const std::function<void(RankContext&)>& body);

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  HealthBoard health_;
  std::atomic<std::uint64_t> comm_deadline_ns_{0};
  FaultHooks* fault_hooks_ = nullptr;
  std::mutex barriers_mutex_;
  std::map<std::uint64_t, std::unique_ptr<Barrier>> barriers_;
};

// True when `e` is one of the collateral fault types a survivor throws
// while unwinding from someone else's failure.
[[nodiscard]] bool IsSecondaryFault(const std::exception_ptr& e);

}  // namespace zero::comm
