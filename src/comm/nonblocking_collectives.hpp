// Nonblocking collectives: the blocking ring schedules of
// communicator.hpp re-expressed as resumable chunked state machines over
// the CommRequest/mailbox p2p layer.
//
// Each launcher (IBroadcast / IAllGather / IReduceScatter / IAllReduce)
// performs the same FaultPoint + tag-sequence bookkeeping as its
// blocking twin, posts the first ring step, and returns a waitable
// CollectiveRequest. The machine advances whenever the owner drives it:
//
//   - Test()  completes as many ring steps as have messages queued and
//     returns whether the collective finished — never blocks. This is
//     what lets a rank *forward* pipeline chunks for its neighbours
//     while it is busy computing (the stage-3 prefetch overlap).
//   - Wait()  drives the machine to completion, blocking in the same
//     failure-aware bounded RecvBytes the blocking collectives use, so
//     comm deadlines, dead-peer detection and step aborts all apply.
//   - Cancel() abandons the machine: pending receives are drained if
//     already delivered and their landing buffers released, so a rank
//     unwinding from a fault can destroy buffers safely. Tags are never
//     reused, so peers' stale messages rot harmlessly.
//
// Determinism contract: the ring step order, chunk geometry and
// accumulation bracketing are copied chunk-for-chunk from the blocking
// schedules, so a nonblocking collective produces bit-identical results
// to its blocking twin (the property the stage-3 prefetcher relies on,
// and which tests/comm/nonblocking_collectives_test.cpp pins).
//
// SPMD contract (deadlock freedom): all ranks must launch collectives in
// the same order, and must eventually Wait (or Cancel) each one. Between
// launch and Wait, arbitrary other collectives may run — progress of a
// machine only consumes messages carrying its own tag block. Because
// every send a machine performs is a buffered mailbox deposit, a rank
// that has finished its own Wait has already forwarded everything its
// neighbours need: no rank ever blocks on a peer that is merely idle.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/quantize.hpp"

namespace zero::comm {

namespace nb_detail {

// Base of all chunked collective state machines. Driven from the owning
// rank's thread only (no internal locking; the mailbox underneath is the
// cross-thread boundary).
class Machine {
 public:
  virtual ~Machine() = default;
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Advance as far as possible; with `blocking` the next pending message
  // is waited for instead of polled. Returns whether the machine is done.
  virtual bool Advance(bool blocking) = 0;
  virtual void Cancel() = 0;
  [[nodiscard]] bool done() const { return done_; }

 protected:
  Machine() = default;
  bool done_ = false;
};

// Ring-pipelined broadcast (RingBroadcast as a machine). The root's
// sends are buffered deposits, so the root is done at launch; every
// other rank receives chunk c from Prev and forwards it to Next unless
// it is the ring tail.
class BroadcastMachine final : public Machine {
 public:
  BroadcastMachine(Communicator& comm, std::span<std::byte> data, int root,
                   std::uint64_t seq)
      : comm_(&comm), data_(data), seq_(seq) {
    const int p = comm.size();
    if (p == 1 || data.empty()) {
      done_ = true;
      return;
    }
    q_ = comm.Distance(root, comm.rank());
    if (q_ == 0) {
      for (int c = 0; c < p; ++c) {
        auto [b, e] = comm.ChunkRange(data.size(), c);
        if (e == b) continue;
        comm.SendBytes(comm.Next(),
                       std::span<const std::byte>(data.subspan(b, e - b)),
                       seq + static_cast<std::uint64_t>(c));
      }
      done_ = true;
      return;
    }
    recvs_.resize(static_cast<std::size_t>(p));
    for (int c = 0; c < p; ++c) {
      auto [b, e] = comm.ChunkRange(data.size(), c);
      if (e == b) continue;
      recvs_[static_cast<std::size_t>(c)] = comm.IsRecvBytes(
          comm.Prev(), data.subspan(b, e - b),
          seq + static_cast<std::uint64_t>(c));
    }
  }

  bool Advance(bool blocking) override {
    const int p = comm_->size();
    while (cursor_ < p) {
      auto [b, e] = comm_->ChunkRange(data_.size(), cursor_);
      if (e != b) {
        CommRequest& r = recvs_[static_cast<std::size_t>(cursor_)];
        if (blocking) {
          r.Wait();
        } else if (!r.Test()) {
          return false;
        }
        if (q_ != p - 1) {
          comm_->SendBytes(
              comm_->Next(),
              std::span<const std::byte>(data_.subspan(b, e - b)),
              seq_ + static_cast<std::uint64_t>(cursor_));
        }
      }
      ++cursor_;
    }
    done_ = true;
    return true;
  }

  void Cancel() override {
    for (CommRequest& r : recvs_) r.Cancel();
    recvs_.clear();
    done_ = true;
  }

 private:
  Communicator* comm_;
  std::span<std::byte> data_;
  std::uint64_t seq_;
  int q_ = 0;       // ring distance from root
  int cursor_ = 0;  // next chunk to complete-and-forward, in order
  std::vector<CommRequest> recvs_;
};

// In-place ring all-gather phase (RingAllGatherInPlace as a machine).
// Untyped: gathers move bytes only, so element ranges are scaled to byte
// ranges up front.
class GatherMachine final : public Machine {
 public:
  GatherMachine(Communicator& comm, std::byte* base, std::size_t elems,
                std::size_t elem_size, std::uint64_t seq)
      : comm_(&comm),
        base_(base),
        elems_(elems),
        elem_size_(elem_size),
        seq_(seq) {
    if (comm.size() == 1) {
      done_ = true;
      return;
    }
    StartStep();
  }

  bool Advance(bool blocking) override {
    const int p = comm_->size();
    while (s_ < p - 1) {
      if (blocking) {
        recv_.Wait();
      } else if (!recv_.Test()) {
        return false;
      }
      if (++s_ < p - 1) StartStep();
    }
    done_ = true;
    return true;
  }

  void Cancel() override {
    recv_.Cancel();
    done_ = true;
  }

 private:
  void StartStep() {
    const int p = comm_->size();
    const int r = comm_->rank();
    const int send_chunk = (r - s_ + 2 * p) % p;
    const int recv_chunk = (r - s_ - 1 + 2 * p) % p;
    auto [sb, se] = comm_->ChunkRange(elems_, send_chunk);
    auto [rb, re] = comm_->ChunkRange(elems_, recv_chunk);
    comm_->SendBytes(
        comm_->Next(),
        std::span<const std::byte>(base_ + sb * elem_size_,
                                   (se - sb) * elem_size_),
        seq_ + static_cast<std::uint64_t>(s_));
    recv_ = comm_->IsRecvBytes(
        comm_->Prev(),
        std::span<std::byte>(base_ + rb * elem_size_, (re - rb) * elem_size_),
        seq_ + static_cast<std::uint64_t>(s_));
  }

  Communicator* comm_;
  std::byte* base_;
  std::size_t elems_;
  std::size_t elem_size_;
  std::uint64_t seq_;
  int s_ = 0;  // ring step
  CommRequest recv_;
};

// In-place ring reduce-scatter phase followed by an optional finishing
// action (copy-out for IReduceScatter, the all-gather phase + averaging
// for IAllReduce). The accumulation bracketing — receive into staging,
// fold into the local buffer in ring-step order — is identical to
// RingReduceScatterInPlace, which is what makes the nonblocking result
// bit-exact against the blocking one.
template <typename T>
class ReducePhaseMachine : public Machine {
 public:
  ReducePhaseMachine(Communicator& comm, std::span<T> data, ReduceOp op,
                     std::uint64_t seq)
      : comm_(&comm), data_(data), op_(op), seq_(seq) {
    // size()==1 leaves the ring loop empty; the first Advance runs the
    // finishing action (OnReduceDone is virtual, so it cannot run here).
    if (comm.size() > 1) StartStep();
  }

  bool Advance(bool blocking) override {
    const int p = comm_->size();
    while (s_ < p - 1) {
      if (blocking) {
        recv_.Wait();
      } else if (!recv_.Test()) {
        return false;
      }
      detail::AccumulateInto(data_.data() + acc_begin_, staging_.data(),
                             staging_.size(), op_);
      if (++s_ < p - 1) StartStep();
    }
    if (!done_) OnReduceDone();
    return done_ ? true : Advance(blocking);
  }

  void Cancel() override {
    recv_.Cancel();
    done_ = true;
  }

 protected:
  // Called once when the reduce phase completes; sets done_ or arms a
  // follow-up phase (in which case Advance recurses into it).
  virtual void OnReduceDone() = 0;

  Communicator* comm_;
  std::span<T> data_;
  ReduceOp op_;
  std::uint64_t seq_;

 private:
  void StartStep() {
    const int p = comm_->size();
    const int r = comm_->rank();
    const int send_chunk = (r - s_ - 1 + 2 * p) % p;
    const int recv_chunk = (r - s_ - 2 + 2 * p) % p;
    auto [sb, se] = comm_->ChunkRange(data_.size(), send_chunk);
    auto [rb, re] = comm_->ChunkRange(data_.size(), recv_chunk);
    comm_->Send(comm_->Next(),
                std::span<const T>(data_.data() + sb, se - sb),
                seq_ + static_cast<std::uint64_t>(s_));
    staging_.resize(re - rb);
    acc_begin_ = rb;
    recv_ = comm_->IsRecv(comm_->Prev(), std::span<T>(staging_),
                          seq_ + static_cast<std::uint64_t>(s_));
  }

  int s_ = 0;
  std::size_t acc_begin_ = 0;
  std::vector<T> staging_;
  CommRequest recv_;
};

template <typename T>
class ReduceScatterMachine final : public ReducePhaseMachine<T> {
 public:
  ReduceScatterMachine(Communicator& comm, std::span<T> data, std::span<T> out,
                       ReduceOp op, std::uint64_t seq)
      : ReducePhaseMachine<T>(comm, data, op, seq), out_(out) {}

 protected:
  void OnReduceDone() override {
    const std::size_t chunk =
        this->data_.size() / static_cast<std::size_t>(this->comm_->size());
    std::memcpy(out_.data(),
                this->data_.data() +
                    chunk * static_cast<std::size_t>(this->comm_->rank()),
                chunk * sizeof(T));
    if (this->op_ == ReduceOp::kAvg) {
      detail::ScaleBy(out_.data(), out_.size(), 1.0 / this->comm_->size());
    }
    this->done_ = true;
  }

 private:
  std::span<T> out_;
};

template <typename T>
class AllReduceMachine final : public ReducePhaseMachine<T> {
 public:
  AllReduceMachine(Communicator& comm, std::span<T> data, ReduceOp op,
                   std::uint64_t seq)
      : ReducePhaseMachine<T>(comm, data, op, seq) {}

  bool Advance(bool blocking) override {
    if (gather_) {
      if (!gather_->Advance(blocking)) return false;
      Finish();
      return true;
    }
    return ReducePhaseMachine<T>::Advance(blocking);
  }

  void Cancel() override {
    if (gather_) gather_->Cancel();
    ReducePhaseMachine<T>::Cancel();
  }

 protected:
  void OnReduceDone() override {
    if (this->comm_->size() == 1) {
      this->done_ = true;  // identity, like the blocking AllReduce
      return;
    }
    // Same tag block as the blocking AllReduce's second phase.
    gather_ = std::make_unique<GatherMachine>(
        *this->comm_, reinterpret_cast<std::byte*>(this->data_.data()),
        this->data_.size(), sizeof(T), this->seq_ + Communicator::kStepStride);
    // The fresh gather may already be able to run (2-rank groups: the
    // peer's send could be queued); let the caller's loop drive it.
  }

 private:
  void Finish() {
    if (this->op_ == ReduceOp::kAvg) {
      detail::ScaleBy(this->data_.data(), this->data_.size(),
                      1.0 / this->comm_->size());
    }
    this->done_ = true;
  }

  std::unique_ptr<GatherMachine> gather_;
};

// ---- ZeRO++ qwZ: quantized parameter movement ---------------------------
//
// The fp16 payload is replaced on the wire by the blockwise int8 format
// of tensor/quantize.hpp (int8 codes + fp16 scales, ~3.8x smaller at
// block 64). Every rank — the root/chunk owner included — overwrites its
// fp16 destination with the dequantized wire contents, so all ranks hold
// bit-identical (lossy) values afterwards; without that, the owner's
// replica would silently diverge from its peers'.

// Wire-precision accounting for the step report's comm.bytes split:
// every quantized payload injected into the network books its int8 and
// fp16-scale byte counts here (process-wide; the report divides by the
// rank count).
inline void WireCounters(std::size_t elems, std::int64_t block) {
  static obs::Counter& int8_bytes = obs::Metrics().counter("comm.wire.int8_bytes");
  static obs::Counter& scale_bytes =
      obs::Metrics().counter("comm.wire.scale_bytes");
  int8_bytes.Add(elems);
  scale_bytes.Add(static_cast<std::size_t>(
      2 * tensor::QuantBlocks(static_cast<std::int64_t>(elems), block)));
}

class QuantBroadcastMachine final : public Machine {
 public:
  QuantBroadcastMachine(Communicator& comm, std::span<Half> data, int root,
                        std::int64_t block, std::uint64_t seq)
      : data_(data), block_(block) {
    wire_.resize(tensor::QuantWireBytes(
        static_cast<std::int64_t>(data.size()), block));
    if (comm.rank() == root) {
      TRACE_SPAN("comm/qwz_quantize");
      tensor::QuantizeHalf(data.data(),
                           static_cast<std::int64_t>(data.size()), block,
                           wire_.data());
      WireCounters(data.size(), block);
    }
    inner_ = std::make_unique<BroadcastMachine>(comm, std::span(wire_), root,
                                                seq);
  }

  bool Advance(bool blocking) override {
    // The root's inner machine is done at construction with no pending
    // receives; advancing it again would walk an empty request list.
    if (!inner_->done() && !inner_->Advance(blocking)) return false;
    if (!done_) {
      TRACE_SPAN("comm/qwz_dequantize");
      tensor::DequantizeHalf(wire_.data(),
                             static_cast<std::int64_t>(data_.size()), block_,
                             data_.data());
      done_ = true;
    }
    return true;
  }

  void Cancel() override {
    inner_->Cancel();
    done_ = true;
  }

 private:
  std::span<Half> data_;
  std::int64_t block_;
  std::vector<std::byte> wire_;
  std::unique_ptr<BroadcastMachine> inner_;
};

class QuantAllGatherMachine final : public Machine {
 public:
  QuantAllGatherMachine(Communicator& comm, std::span<const Half> chunk,
                        std::span<Half> out, std::int64_t block,
                        std::uint64_t seq)
      : comm_(&comm), out_(out), block_(block) {
    chunk_elems_ = static_cast<std::int64_t>(chunk.size());
    wire_chunk_ = tensor::QuantWireBytes(chunk_elems_, block);
    // One equal-size wire slot per rank, so the byte-level ring chunks
    // of GatherMachine coincide exactly with the rank slots.
    wire_.resize(wire_chunk_ * static_cast<std::size_t>(comm.size()));
    {
      TRACE_SPAN("comm/qwz_quantize");
      tensor::QuantizeHalf(chunk.data(), chunk_elems_, block,
                           wire_.data() +
                               wire_chunk_ *
                                   static_cast<std::size_t>(comm.rank()));
      WireCounters(chunk.size(), block);
    }
    inner_ = std::make_unique<GatherMachine>(comm, wire_.data(), wire_.size(),
                                             /*elem_size=*/1, seq);
  }

  bool Advance(bool blocking) override {
    if (!inner_->done() && !inner_->Advance(blocking)) return false;
    if (!done_) {
      TRACE_SPAN("comm/qwz_dequantize");
      for (int i = 0; i < comm_->size(); ++i) {
        tensor::DequantizeHalf(
            wire_.data() + wire_chunk_ * static_cast<std::size_t>(i),
            chunk_elems_, block_,
            out_.data() + chunk_elems_ * static_cast<std::size_t>(i));
      }
      done_ = true;
    }
    return true;
  }

  void Cancel() override {
    inner_->Cancel();
    done_ = true;
  }

 private:
  Communicator* comm_;
  std::span<Half> out_;
  std::int64_t block_;
  std::int64_t chunk_elems_ = 0;
  std::size_t wire_chunk_ = 0;
  std::vector<std::byte> wire_;
  std::unique_ptr<GatherMachine> inner_;
};

}  // namespace nb_detail

// Handle to an in-flight nonblocking collective. Copyable (shared
// machine); drive it from the owning rank's thread only. The data
// buffers passed at launch must stay alive and unmodified (except by the
// collective itself) until the request completes or is cancelled.
class CollectiveRequest {
 public:
  CollectiveRequest() = default;
  explicit CollectiveRequest(std::shared_ptr<nb_detail::Machine> m)
      : m_(std::move(m)) {}

  // Completes as many ring steps as possible without blocking; returns
  // whether the collective finished.
  bool Test() {
    if (!m_ || m_->done()) return true;
    return m_->Advance(/*blocking=*/false);
  }

  // Drives the machine to completion (failure-aware bounded waits).
  void Wait() {
    if (!m_ || m_->done()) return;
    TRACE_SPAN("comm/collective_wait");
    while (!m_->Advance(/*blocking=*/true)) {
    }
  }

  // Abandons the collective; see the header comment for semantics.
  void Cancel() {
    if (m_ && !m_->done()) m_->Cancel();
    m_.reset();
  }

  [[nodiscard]] bool done() const { return !m_ || m_->done(); }

 private:
  std::shared_ptr<nb_detail::Machine> m_;
};

// Ring-pipelined broadcast from group rank `root`. Same volume and byte
// movement as Communicator::Broadcast.
template <typename T>
[[nodiscard]] CollectiveRequest IBroadcast(Communicator& comm,
                                           std::span<T> data, int root) {
  TRACE_SPAN("comm/ibroadcast");
  // Blocking collectives only count when a ring actually runs (p > 1).
  const std::uint64_t seq =
      comm.BeginCollective("collective", comm.size() > 1 ? 1 : 0);
  return CollectiveRequest(std::make_shared<nb_detail::BroadcastMachine>(
      comm, std::as_writable_bytes(data), root, seq));
}

// out.size() == chunk.size() * p; rank i's chunk lands at offset
// i*chunk.size(). Same semantics as Communicator::AllGather.
template <typename T>
[[nodiscard]] CollectiveRequest IAllGather(Communicator& comm,
                                           std::span<const T> chunk,
                                           std::span<T> out) {
  const int p = comm.size();
  ZERO_CHECK(out.size() == chunk.size() * static_cast<std::size_t>(p),
             "IAllGather output size mismatch");
  TRACE_SPAN("comm/iall_gather");
  const std::uint64_t seq =
      comm.BeginCollective("collective", p > 1 ? 1 : 0);
  std::memcpy(out.data() + chunk.size() * static_cast<std::size_t>(comm.rank()),
              chunk.data(), chunk.size() * sizeof(T));
  return CollectiveRequest(std::make_shared<nb_detail::GatherMachine>(
      comm, reinterpret_cast<std::byte*>(out.data()), out.size(), sizeof(T),
      seq));
}

// data.size() must divide evenly by p; out.size() == data.size()/p.
// `data` is scratch, left unspecified. Bit-exact vs ReduceScatter.
template <typename T>
[[nodiscard]] CollectiveRequest IReduceScatter(Communicator& comm,
                                               std::span<T> data,
                                               std::span<T> out,
                                               ReduceOp op = ReduceOp::kSum) {
  const int p = comm.size();
  ZERO_CHECK(data.size() % static_cast<std::size_t>(p) == 0,
             "IReduceScatter length must divide evenly (pad first)");
  ZERO_CHECK(out.size() == data.size() / static_cast<std::size_t>(p),
             "IReduceScatter output size mismatch");
  TRACE_SPAN("comm/ireduce_scatter");
  const std::uint64_t seq =
      comm.BeginCollective("collective", p > 1 ? 1 : 0);
  return CollectiveRequest(std::make_shared<nb_detail::ReduceScatterMachine<T>>(
      comm, data, out, op, seq));
}

// qwZ broadcast: the root's fp16 span travels as int8 codes + fp16
// scales and every rank (root included) lands the dequantized values in
// `data`. Same ring schedule and tag bookkeeping as IBroadcast, ~1/3.8
// of the bytes at block 64. Lossy: NOT bit-exact vs IBroadcast, but
// deterministic and rank-identical.
[[nodiscard]] inline CollectiveRequest IQuantBroadcast(Communicator& comm,
                                                       std::span<Half> data,
                                                       int root,
                                                       std::int64_t block) {
  TRACE_SPAN("comm/iquant_broadcast");
  const std::uint64_t seq =
      comm.BeginCollective("collective", comm.size() > 1 ? 1 : 0);
  return CollectiveRequest(std::make_shared<nb_detail::QuantBroadcastMachine>(
      comm, data, root, block, seq));
}

// qwZ all-gather: each rank contributes `chunk` (equal sizes), the wire
// carries quantized slots, and `out` receives the dequantized
// concatenation — including this rank's own chunk, re-read through the
// quantizer so replicas agree bitwise across the group.
[[nodiscard]] inline CollectiveRequest IQuantAllGather(
    Communicator& comm, std::span<const Half> chunk, std::span<Half> out,
    std::int64_t block) {
  ZERO_CHECK(out.size() ==
                 chunk.size() * static_cast<std::size_t>(comm.size()),
             "IQuantAllGather output size mismatch");
  TRACE_SPAN("comm/iquant_all_gather");
  const std::uint64_t seq =
      comm.BeginCollective("collective", comm.size() > 1 ? 1 : 0);
  return CollectiveRequest(std::make_shared<nb_detail::QuantAllGatherMachine>(
      comm, chunk, out, block, seq));
}

// In-place sum/avg/max across the group, any length. Bit-exact vs
// AllReduce (same two-phase ring, same bracketing, same kAvg epilogue).
template <typename T>
[[nodiscard]] CollectiveRequest IAllReduce(Communicator& comm,
                                           std::span<T> data,
                                           ReduceOp op = ReduceOp::kSum) {
  TRACE_SPAN("comm/iall_reduce");
  // The blocking AllReduce counts its two ring phases separately.
  const std::uint64_t seq =
      comm.BeginCollective("collective", comm.size() > 1 ? 2 : 0);
  return CollectiveRequest(std::make_shared<nb_detail::AllReduceMachine<T>>(
      comm, data, op, seq));
}

}  // namespace zero::comm
