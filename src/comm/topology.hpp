// DP x MP process-grid topology (Megatron-LM convention).
//
// With world size W = Nd * Nm, model-parallel groups are blocks of Nm
// consecutive ranks (they would share a node, where NVSwitch bandwidth
// lives), and data-parallel groups stride across blocks with step Nm.
// ZeRO composes with MP exactly this way (Sec 1: "16-way model
// parallelism within each DGX2 node and 64-way data parallelism across
// nodes").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"

namespace zero::comm {

struct GridTopology {
  int world_size = 0;
  int mp_degree = 1;
  int dp_degree = 1;

  GridTopology(int world, int mp);

  // Group-id bases keep MP/DP communicator tags disjoint.
  static constexpr std::uint64_t kMpGroupBase = 0x100;
  static constexpr std::uint64_t kDpGroupBase = 0x200;

  [[nodiscard]] int MpGroupIndex(int rank) const { return rank / mp_degree; }
  [[nodiscard]] int DpGroupIndex(int rank) const { return rank % mp_degree; }
  [[nodiscard]] int MpRank(int rank) const { return rank % mp_degree; }
  [[nodiscard]] int DpRank(int rank) const { return rank / mp_degree; }

  [[nodiscard]] std::vector<int> MpGroupMembers(int rank) const;
  [[nodiscard]] std::vector<int> DpGroupMembers(int rank) const;

  // Communicators for the calling rank's row/column of the grid.
  [[nodiscard]] Communicator MakeMpComm(RankContext& ctx) const;
  [[nodiscard]] Communicator MakeDpComm(RankContext& ctx) const;
};

// Node-aware slicing of an existing communicator (the engine's DP group)
// into "nodes" of `ranks_per_node` consecutive group ranks, for the
// two-level schedules in comm/hierarchical.hpp: an intra-node local
// group per block, and one cross-node leaders' group holding each
// block's first member.
//
// SPMD usage mirrors HierarchicalAllReduce's contract: every rank builds
// its local communicator; only ranks with IsLeader() true may build the
// leaders' communicator.
struct NodeTopology {
  // `within` supplies the member list being sliced. The size need not
  // divide evenly by ranks_per_node: the last node is short (ceil
  // division) and uniform() reports false. Schedules that require equal
  // node sizes (hierarchical all-reduce, hpZ/qgZ) must check uniform()
  // and fall back to flat when it does not hold.
  NodeTopology(const Communicator& within, int ranks_per_node);

  int ranks_per_node = 1;
  int nodes = 1;
  std::vector<int> members;  // parent group's global ranks, in group order

  // Group-id bases; disjoint from the MP/DP grid bases above. Local
  // groups of different parents may alias ids, which is harmless: their
  // member sets are disjoint, and mailbox matching is (source, tag).
  static constexpr std::uint64_t kLocalGroupBase = 0x300;
  static constexpr std::uint64_t kLeadersGroupBase = 0x400;

  [[nodiscard]] int NodeIndex(int group_rank) const {
    return group_rank / ranks_per_node;
  }
  [[nodiscard]] int LocalRank(int group_rank) const {
    return group_rank % ranks_per_node;
  }
  [[nodiscard]] bool IsLeader(int group_rank) const {
    return LocalRank(group_rank) == 0;
  }
  // Members of a node, accounting for a short last node.
  [[nodiscard]] int LocalSize(int group_rank) const {
    const int size = static_cast<int>(members.size());
    const int base = NodeIndex(group_rank) * ranks_per_node;
    return std::min(ranks_per_node, size - base);
  }
  // True when every node has exactly ranks_per_node members — the
  // precondition of the equal-shard two-level schedules.
  [[nodiscard]] bool uniform() const {
    return static_cast<int>(members.size()) % ranks_per_node == 0;
  }

  [[nodiscard]] std::vector<int> LocalMembers(int group_rank) const;
  [[nodiscard]] std::vector<int> LeaderMembers() const;

  // The calling rank's intra-node group.
  [[nodiscard]] Communicator MakeLocalComm(RankContext& ctx) const;
  // The cross-node leaders' group; caller must be a leader.
  [[nodiscard]] Communicator MakeLeadersComm(RankContext& ctx) const;

 private:
  [[nodiscard]] int GroupRankOf(int global_rank) const;
  std::uint64_t parent_low_ = 0;  // parent group id, folded into new ids
};

}  // namespace zero::comm
