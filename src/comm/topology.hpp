// DP x MP process-grid topology (Megatron-LM convention).
//
// With world size W = Nd * Nm, model-parallel groups are blocks of Nm
// consecutive ranks (they would share a node, where NVSwitch bandwidth
// lives), and data-parallel groups stride across blocks with step Nm.
// ZeRO composes with MP exactly this way (Sec 1: "16-way model
// parallelism within each DGX2 node and 64-way data parallelism across
// nodes").
#pragma once

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"

namespace zero::comm {

struct GridTopology {
  int world_size = 0;
  int mp_degree = 1;
  int dp_degree = 1;

  GridTopology(int world, int mp);

  // Group-id bases keep MP/DP communicator tags disjoint.
  static constexpr std::uint64_t kMpGroupBase = 0x100;
  static constexpr std::uint64_t kDpGroupBase = 0x200;

  [[nodiscard]] int MpGroupIndex(int rank) const { return rank / mp_degree; }
  [[nodiscard]] int DpGroupIndex(int rank) const { return rank % mp_degree; }
  [[nodiscard]] int MpRank(int rank) const { return rank % mp_degree; }
  [[nodiscard]] int DpRank(int rank) const { return rank / mp_degree; }

  [[nodiscard]] std::vector<int> MpGroupMembers(int rank) const;
  [[nodiscard]] std::vector<int> DpGroupMembers(int rank) const;

  // Communicators for the calling rank's row/column of the grid.
  [[nodiscard]] Communicator MakeMpComm(RankContext& ctx) const;
  [[nodiscard]] Communicator MakeDpComm(RankContext& ctx) const;
};

}  // namespace zero::comm
