#include "comm/world.hpp"

#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace zero::comm {

World::World(int size) : size_(size) {
  ZERO_CHECK(size >= 1, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Barrier& World::SharedBarrier(std::uint64_t key, int parties) {
  std::lock_guard<std::mutex> lock(barriers_mutex_);
  auto it = barriers_.find(key);
  if (it == barriers_.end()) {
    it = barriers_.emplace(key, std::make_unique<Barrier>(parties)).first;
  }
  return *it->second;
}

void World::Run(const std::function<void(RankContext&)>& body) {
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      // Tag the thread so log lines and trace events attribute to the
      // rank without call sites threading it through.
      SetThreadLogRank(r);
      RankContext ctx;
      ctx.world = this;
      ctx.rank = r;
      ctx.world_size = size_;
      try {
        body(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace zero::comm
