#include "comm/world.hpp"

#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace zero::comm {

void Barrier::Arrive() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_) {
    throw StepAbortedError("barrier aborted: a party rank failed");
  }
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen || aborted_; });
    if (generation_ == gen && aborted_) {
      throw StepAbortedError("barrier aborted: a party rank failed");
    }
  }
}

void Barrier::Abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

World::World(int size) : size_(size), health_(size >= 1 ? size : 1) {
  ZERO_CHECK(size >= 1, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::SetFaultHooks(FaultHooks* hooks) {
  fault_hooks_ = hooks;
  if (hooks != nullptr) hooks->BindWorld(this);
}

void World::DeclareDead(int rank, const std::string& reason) {
  health_.MarkDead(rank, reason);  // also raises the abort flag
  InterruptAll();
}

void World::InterruptAll() {
  for (auto& box : mailboxes_) box->Interrupt();
  std::lock_guard<std::mutex> lock(barriers_mutex_);
  for (auto& [key, barrier] : barriers_) barrier->Abort();
}

Barrier& World::SharedBarrier(std::uint64_t key, int parties) {
  std::lock_guard<std::mutex> lock(barriers_mutex_);
  auto it = barriers_.find(key);
  if (it == barriers_.end()) {
    it = barriers_.emplace(key, std::make_unique<Barrier>(parties)).first;
    if (health_.AbortRequested()) it->second->Abort();
  }
  return *it->second;
}

bool IsSecondaryFault(const std::exception_ptr& e) {
  if (!e) return false;
  try {
    std::rethrow_exception(e);
  } catch (const StepAbortedError&) {
    return true;
  } catch (const PeerFailedError&) {
    return true;
  } catch (const CommTimeoutError&) {
    return true;
  } catch (...) {
    return false;
  }
}

std::exception_ptr World::RunReport::RootCause() const {
  std::exception_ptr first;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!IsSecondaryFault(e)) return e;
  }
  return first;
}

World::RunReport World::TryRun(const std::function<void(RankContext&)>& body) {
  RunReport report;
  report.errors.resize(static_cast<std::size_t>(size_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &report] {
      // Tag the thread so log lines and trace events attribute to the
      // rank without call sites threading it through.
      SetThreadLogRank(r);
      RankContext ctx;
      ctx.world = this;
      ctx.rank = r;
      ctx.world_size = size_;
      try {
        body(ctx);
      } catch (const std::exception& e) {
        report.errors[static_cast<std::size_t>(r)] = std::current_exception();
        // A rank whose body unwound is gone as far as the SPMD step is
        // concerned; declare it so blocked survivors wake with a typed
        // error instead of deadlocking on its messages.
        DeclareDead(r, e.what());
      } catch (...) {
        report.errors[static_cast<std::size_t>(r)] = std::current_exception();
        DeclareDead(r, "unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  return report;
}

void World::Run(const std::function<void(RankContext&)>& body) {
  const RunReport report = TryRun(body);
  if (std::exception_ptr root = report.RootCause()) {
    std::rethrow_exception(root);
  }
}

}  // namespace zero::comm
