#include "core/offload_engine.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"

namespace zero::core {

namespace {
std::span<float> AsFloats(std::span<std::byte> bytes) {
  return {reinterpret_cast<float*>(bytes.data()),
          bytes.size() / sizeof(float)};
}
}  // namespace

OffloadEngine::OffloadEngine(optim::AdamConfig cfg, alloc::StorageTier& tier,
                             std::span<const float> init, OffloadOptions opts)
    : cfg_(cfg),
      tier_(&tier),
      opts_(opts),
      numel_(static_cast<std::int64_t>(init.size())) {
  ZERO_CHECK(opts_.slice_elems > 0, "offload slice size must be positive");
  const std::size_t state_bytes = init.size_bytes();
  master_rg_ = tier_->CreateRegion(state_bytes);
  m_rg_ = tier_->CreateRegion(state_bytes);
  v_rg_ = tier_->CreateRegion(state_bytes);
  resident_ = !tier_->ResidentBytes(master_rg_).empty();
  if (resident_) {
    master_host_ = AsFloats(tier_->ResidentBytes(master_rg_));
    m_host_ = AsFloats(tier_->ResidentBytes(m_rg_));
    v_host_ = AsFloats(tier_->ResidentBytes(v_rg_));
    std::memcpy(master_host_.data(), init.data(), init.size_bytes());
  } else {
    // Initial population of the tier (counted as tier traffic, waited:
    // nothing to overlap with at construction).
    tier_->StoreAsync(master_rg_, 0, std::as_bytes(init)).Wait();
  }
  const std::int64_t s = num_slices();
  slice_covered_.assign(static_cast<std::size_t>(s), 0);
  staged_.assign(static_cast<std::size_t>(s), false);
  slice_req_.assign(static_cast<std::size_t>(s), alloc::TransferRequest{});
}

OffloadEngine::~OffloadEngine() {
  tier_->ReleaseRegion(master_rg_);
  tier_->ReleaseRegion(m_rg_);
  tier_->ReleaseRegion(v_rg_);
}

const alloc::ChannelStats* OffloadEngine::channel_stats() const {
  const alloc::TransferChannel* ch = tier_->channel();
  return ch != nullptr ? &ch->stats() : nullptr;
}

std::uint64_t OffloadEngine::transfer_bytes() const {
  const alloc::ChannelStats* s = channel_stats();
  return s != nullptr ? s->total_bytes() : 0;
}

// ---------------------------------------------------------------------------
// Eager gradient streaming (GradStreamSink)

void OffloadEngine::OnShardGradFinal(std::int64_t begin_elem,
                                     std::int64_t numel,
                                     std::span<const std::byte> bytes) {
  ZERO_CHECK(numel > 0 && bytes.size() % static_cast<std::size_t>(numel) == 0,
             "malformed gradient-finality notification");
  ZERO_CHECK(begin_elem >= 0 && begin_elem + numel <= numel_,
             "gradient-finality range outside the shard");
  const std::size_t elem = bytes.size() / static_cast<std::size_t>(numel);
  if (grad_elem_ != elem) {
    grad_elem_ = elem;
    grad_host_.assign(static_cast<std::size_t>(numel_) * elem, std::byte{});
  }
  std::memcpy(grad_host_.data() + static_cast<std::size_t>(begin_elem) * elem,
              bytes.data(), bytes.size());

  const std::int64_t end_elem = begin_elem + numel;
  const std::int64_t first = begin_elem / opts_.slice_elems;
  const std::int64_t last = (end_elem - 1) / opts_.slice_elems;
  for (std::int64_t s = first; s <= last; ++s) {
    const std::int64_t lo = std::max(begin_elem, slice_begin(s));
    const std::int64_t hi = std::min(end_elem, slice_begin(s) + slice_len(s));
    auto& covered = slice_covered_[static_cast<std::size_t>(s)];
    covered += hi - lo;
    if (covered == slice_len(s)) {
      recording_.push_back(static_cast<std::int32_t>(s));
    }
  }
  TryLaunchEager();
}

void OffloadEngine::TryLaunchEager() {
  if (!replaying_ || !opts_.eager_grads) return;
  while (launch_pos_ < schedule_.size()) {
    const std::int32_t s = schedule_[launch_pos_];
    const auto su = static_cast<std::size_t>(s);
    if (slice_covered_[su] < slice_len(s)) return;  // stall, never skip
    if (staged_[su]) {
      ++launch_pos_;
      continue;
    }
    const std::size_t bytes =
        static_cast<std::size_t>(slice_len(s)) * grad_elem_;
    if (opts_.max_inflight_bytes != 0 &&
        staged_bytes_ + bytes > opts_.max_inflight_bytes) {
      static obs::Counter& stops =
          obs::Metrics().counter("offload.eager_stops");
      stops.Add();
      return;
    }
    {
      TRACE_SPAN("offload/slice_launch");
      slice_req_[su] = tier_->SubmitToTier(bytes);
    }
    staged_[su] = true;
    staged_bytes_ += bytes;
    ++launch_pos_;
    static obs::Counter& eager =
        obs::Metrics().counter("offload.eager_slices");
    eager.Add();
  }
}

void OffloadEngine::ResetStaging() {
  std::fill(slice_covered_.begin(), slice_covered_.end(), 0);
  std::fill(staged_.begin(), staged_.end(), false);
  std::fill(slice_req_.begin(), slice_req_.end(), alloc::TransferRequest{});
  recording_.clear();
  staged_bytes_ = 0;
  launch_pos_ = 0;
}

void OffloadEngine::DiscardStagedGradients() {
  if (staged_bytes_ != 0 || !recording_.empty()) {
    static obs::Counter& discards = obs::Metrics().counter("offload.discards");
    discards.Add();
  }
  ResetStaging();
}

// ---------------------------------------------------------------------------
// The streaming update pipeline

void OffloadEngine::Step(std::span<Half> params_f16,
                         std::span<const Half> grads_f16, float loss_scale) {
  ZERO_CHECK(params_f16.size() == static_cast<std::size_t>(numel_) &&
                 grads_f16.size() == static_cast<std::size_t>(numel_),
             "shard size mismatch");
  RunUpdate(params_f16, {}, std::as_bytes(grads_f16), sizeof(Half),
            GradKind::kF16Scaled, 1.0f / loss_scale);
}

void OffloadEngine::StepFromF32(std::span<Half> params_f16,
                                std::span<const float> grads,
                                float grad_scale) {
  ZERO_CHECK(params_f16.size() == static_cast<std::size_t>(numel_) &&
                 grads.size() == static_cast<std::size_t>(numel_),
             "shard size mismatch");
  RunUpdate(params_f16, {}, std::as_bytes(grads), sizeof(float),
            GradKind::kF32Scaled, grad_scale);
}

void OffloadEngine::StepF32(std::span<float> params_out,
                            std::span<const float> grads, float grad_scale) {
  ZERO_CHECK(params_out.size() == static_cast<std::size_t>(numel_) &&
                 grads.size() == static_cast<std::size_t>(numel_),
             "shard size mismatch");
  RunUpdate({}, params_out, std::as_bytes(grads), sizeof(float),
            GradKind::kF32Scaled, grad_scale);
}

void OffloadEngine::RunUpdate(std::span<Half> params_f16,
                              std::span<float> params_f32,
                              std::span<const std::byte> grads,
                              std::size_t grad_elem, GradKind kind,
                              float scale) {
  TRACE_SPAN("optim/offload_step");
  const std::int64_t num = num_slices();
  ++t_;

  // Replay the recorded finality order when it covers the shard; the
  // eagerly staged slices then complete in exactly the order the
  // pipeline consumes them. Ascending otherwise. The order is a pure
  // schedule choice: Adam is elementwise with one bias-correction clock
  // per step, so any order produces identical bits.
  std::vector<std::int32_t> order;
  if (static_cast<std::int64_t>(schedule_.size()) == num) {
    order = schedule_;
  } else {
    order.resize(static_cast<std::size_t>(num));
    std::iota(order.begin(), order.end(), 0);
  }

  const float* lut = HalfDecodeTable();

  auto prepare = [&](std::int64_t idx) {
    TRACE_SPAN("offload/slice_launch");
    const std::int32_t s = order[static_cast<std::size_t>(idx)];
    const std::int64_t begin = slice_begin(s);
    const std::int64_t len = slice_len(s);
    Slot& slot = slots_[idx & 1];
    // The slot's previous occupant must have drained its writebacks
    // before its buffers are reused.
    for (auto& r : slot.out_reqs) r.Wait();
    slot.out_reqs.clear();
    if (!staged_[static_cast<std::size_t>(s)]) {
      slice_req_[static_cast<std::size_t>(s)] =
          tier_->SubmitToTier(static_cast<std::size_t>(len) * grad_elem);
    }
    if (!resident_) {
      const auto n = static_cast<std::size_t>(len);
      slot.master.resize(n);
      slot.m.resize(n);
      slot.v.resize(n);
      const std::size_t off = static_cast<std::size_t>(begin) * sizeof(float);
      slot.in_reqs.push_back(tier_->FetchAsync(
          master_rg_, off, std::as_writable_bytes(std::span(slot.master))));
      slot.in_reqs.push_back(tier_->FetchAsync(
          m_rg_, off, std::as_writable_bytes(std::span(slot.m))));
      slot.in_reqs.push_back(tier_->FetchAsync(
          v_rg_, off, std::as_writable_bytes(std::span(slot.v))));
    }
  };

  prepare(0);
  for (std::int64_t idx = 0; idx < num; ++idx) {
    const std::int32_t s = order[static_cast<std::size_t>(idx)];
    const std::int64_t begin = slice_begin(s);
    const std::int64_t len = slice_len(s);
    Slot& slot = slots_[idx & 1];

    // Next slice's transfers ride the link while this slice computes.
    if (idx + 1 < num) prepare(idx + 1);

    {
      TRACE_SPAN("offload/slice_wait");
      slice_req_[static_cast<std::size_t>(s)].Wait();
      for (auto& r : slot.in_reqs) r.Wait();
      slot.in_reqs.clear();
    }

    std::span<float> master, m, v;
    if (resident_) {
      master = master_host_.subspan(static_cast<std::size_t>(begin),
                                    static_cast<std::size_t>(len));
      m = m_host_.subspan(static_cast<std::size_t>(begin),
                          static_cast<std::size_t>(len));
      v = v_host_.subspan(static_cast<std::size_t>(begin),
                          static_cast<std::size_t>(len));
    } else {
      master = slot.master;
      m = slot.m;
      v = slot.v;
    }

    std::vector<float>& gf = grad_f32_[idx & 1];
    gf.resize(static_cast<std::size_t>(len));
    const std::byte* src =
        (staged_[static_cast<std::size_t>(s)] ? grad_host_.data()
                                              : grads.data()) +
        static_cast<std::size_t>(begin) * grad_elem;
    if (kind == GradKind::kF16Scaled) {
      const Half* g = reinterpret_cast<const Half*>(src);
      for (std::int64_t i = 0; i < len; ++i) {
        gf[static_cast<std::size_t>(i)] =
            lut[g[static_cast<std::size_t>(i)].bits()] * scale;
      }
    } else {
      const float* g = reinterpret_cast<const float*>(src);
      for (std::int64_t i = 0; i < len; ++i) {
        gf[static_cast<std::size_t>(i)] =
            g[static_cast<std::size_t>(i)] * scale;
      }
    }

    optim::AdamUpdate(cfg_, t_, master, gf, m, v);

    if (!params_f16.empty()) {
      tensor::CastFloatToHalf(
          master.data(), params_f16.data() + static_cast<std::size_t>(begin),
          len);
      slot.out_reqs.push_back(tier_->SubmitToDevice(
          static_cast<std::size_t>(len) * sizeof(Half)));
    } else {
      std::memcpy(params_f32.data() + static_cast<std::size_t>(begin),
                  master.data(), static_cast<std::size_t>(len) * sizeof(float));
      slot.out_reqs.push_back(tier_->SubmitToDevice(
          static_cast<std::size_t>(len) * sizeof(float)));
    }
    if (!resident_) {
      const std::size_t off = static_cast<std::size_t>(begin) * sizeof(float);
      slot.out_reqs.push_back(
          tier_->StoreAsync(master_rg_, off, std::as_bytes(std::span(master))));
      slot.out_reqs.push_back(
          tier_->StoreAsync(m_rg_, off, std::as_bytes(std::span(m))));
      slot.out_reqs.push_back(
          tier_->StoreAsync(v_rg_, off, std::as_bytes(std::span(v))));
    }
  }
  {
    TRACE_SPAN("offload/slice_wait");
    for (Slot& slot : slots_) {
      for (auto& r : slot.out_reqs) r.Wait();
      slot.out_reqs.clear();
    }
  }

  if (static_cast<std::int64_t>(recording_.size()) == num) {
    schedule_ = recording_;
  }
  replaying_ = true;
  ResetStaging();
  PublishMetrics();
}

void OffloadEngine::PublishMetrics() {
  static obs::Counter& updates = obs::Metrics().counter("offload.updates");
  updates.Add();
  const alloc::ChannelStats* s = channel_stats();
  if (s == nullptr) return;
  static obs::Counter& to_tier =
      obs::Metrics().counter("offload.bytes_to_tier");
  static obs::Counter& to_device =
      obs::Metrics().counter("offload.bytes_to_device");
  to_tier.Add(s->bytes_to_tier - prev_to_tier_);
  to_device.Add(s->bytes_to_device - prev_to_device_);
  prev_to_tier_ = s->bytes_to_tier;
  prev_to_device_ = s->bytes_to_device;
  obs::Metrics().gauge("offload.hidden_frac").Set(s->hidden_fraction());
}

// ---------------------------------------------------------------------------
// Checkpoint access

void OffloadEngine::CopyStateOut(optim::OptStateKind kind,
                                 std::span<float> out) {
  ZERO_CHECK(out.size() == static_cast<std::size_t>(numel_),
             "state copy size mismatch");
  const std::size_t region = kind == optim::OptStateKind::kMaster ? master_rg_
                             : kind == optim::OptStateKind::kMomentum
                                 ? m_rg_
                                 : v_rg_;
  if (resident_) {
    std::memcpy(out.data(), tier_->ResidentBytes(region).data(),
                out.size_bytes());
  } else {
    tier_->FetchAsync(region, 0, std::as_writable_bytes(out)).Wait();
  }
}

void OffloadEngine::CopyStateIn(optim::OptStateKind kind,
                                std::span<const float> in) {
  ZERO_CHECK(in.size() == static_cast<std::size_t>(numel_),
             "state copy size mismatch");
  const std::size_t region = kind == optim::OptStateKind::kMaster ? master_rg_
                             : kind == optim::OptStateKind::kMomentum
                                 ? m_rg_
                                 : v_rg_;
  if (resident_) {
    std::memcpy(tier_->ResidentBytes(region).data(), in.data(),
                in.size_bytes());
  } else {
    tier_->StoreAsync(region, 0, std::as_bytes(in)).Wait();
  }
}

}  // namespace zero::core
