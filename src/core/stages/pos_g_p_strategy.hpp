// Stage 3 — Pos+g+p, full partitioning (Sec 5.3): each rank stores only
// its 1/Nd slice of the fp16 parameters and reduced gradients. Units
// are materialized broadcast-on-demand from their partition owners
// before use and discarded at release (Sec 7.2.2) — the extra parameter
// all-gather makes total volume 3Ψ. The gradient path reuses the
// stage-2 bucketized nonblocking reduce.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/stages/grad_bucketizer.hpp"
#include "core/stages/param_prefetcher.hpp"
#include "core/stages/stage_strategy.hpp"

namespace zero::core {

class PosGPStrategy final : public StageStrategy {
 public:
  using StageStrategy::StageStrategy;

  [[nodiscard]] const char* name() const override { return "pos-g-p"; }
  [[nodiscard]] bool params_partitioned() const override { return true; }

  void InitParams(std::span<const float> padded_init) override;
  std::span<const float> AcquireUnit(int u, model::Phase phase) override;
  void ReleaseUnit(int u, model::Phase phase) override;
  void OnStepBegin() override {
    bucketizer_->BeginStep();
    if (prefetcher_.has_value()) prefetcher_->OnStepBegin();
  }
  void EmitUnitGrad(int u, std::span<const float> grad) override {
    // Drive in-flight prefetched gathers from the backward compute path
    // (ring chunks forward while this rank is busy with gradients).
    if (prefetcher_.has_value()) prefetcher_->Progress();
    bucketizer_->Emit(u, grad);
  }
  void ReduceGradients() override;
  std::span<const Half> ReducedF16() override { return grads_.f16(); }
  std::span<const float> ReducedF32() override { return grads_.f32(); }
  // The stored partition is exactly what the optimizer updates.
  std::span<Half> UpdateTargetF16() override { return params_.f16(); }
  std::span<float> UpdateTargetF32() override { return params_.f32(); }
  void OnUpdateApplied() override { grads_.FillZero(); }
  void ImportMasterParams(std::span<const float> padded_master) override;
  void ResetInFlight() override;
  void GatherFullParams(std::span<float> out) override;
  [[nodiscard]] std::size_t param_bytes() const override {
    return params_.nbytes();
  }
  [[nodiscard]] std::size_t grad_bytes() const override {
    return grads_.nbytes();
  }

 private:
  void WriteParams(const float* padded_src);

  struct MaterializedUnit {
    tensor::Tensor f16;      // gathered fp16 unit (device-accounted)
    std::vector<float> f32;  // what the model actually reads
    int refcount = 0;
  };

  tensor::Tensor params_;  // this rank's partition (1/Nd)
  tensor::Tensor grads_;   // this rank's reduced partition (1/Nd)
  std::optional<GradBucketizer> bucketizer_;
  // Look-ahead gather pipeline (EngineConfig::prefetch_lookahead > 0);
  // bit-exact vs the blocking materialization below.
  std::optional<ParamPrefetcher> prefetcher_;
  std::map<int, MaterializedUnit> units_;
};

}  // namespace zero::core
