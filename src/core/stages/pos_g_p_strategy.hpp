// Stage 3 — Pos+g+p, full partitioning (Sec 5.3): each rank stores only
// its 1/Nd slice of the fp16 parameters and reduced gradients. Units
// are materialized broadcast-on-demand from their partition owners
// before use and discarded at release (Sec 7.2.2) — the extra parameter
// all-gather makes total volume 3Ψ. The gradient path reuses the
// stage-2 bucketized nonblocking reduce.
//
// ZeRO++ hooks (arXiv:2306.10209), engaged via StageContext:
//   qwZ — forward/backward unit broadcasts carry blockwise-int8
//         payloads (comm::IQuantBroadcast) instead of fp16. Lossy but
//         rank-identical: every rank dequantizes the same wire bytes.
//   hpZ — a secondary fp16 parameter copy sharded across the intra-node
//         group. Forward gathers stay global and *refresh* the copy
//         (CaptureSecondary); once a unit is captured, its backward
//         re-gather resolves entirely inside the node group over the
//         local communicator — zero cross-node bytes on the backward
//         half of stage 3's 3Ψ. An optimizer update staleness-clears
//         all captures. hpZ alone is bit-exact vs plain stage 3: the
//         captured bytes are exact copies of what the global gather
//         delivered.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/stages/grad_bucketizer.hpp"
#include "core/stages/param_prefetcher.hpp"
#include "core/stages/stage_strategy.hpp"

namespace zero::core {

class PosGPStrategy final : public StageStrategy {
 public:
  using StageStrategy::StageStrategy;

  [[nodiscard]] const char* name() const override { return "pos-g-p"; }
  [[nodiscard]] bool params_partitioned() const override { return true; }

  void InitParams(std::span<const float> padded_init) override;
  std::span<const float> AcquireUnit(int u, model::Phase phase) override;
  void ReleaseUnit(int u, model::Phase phase) override;
  void OnStepBegin() override {
    bucketizer_->BeginStep();
    if (prefetcher_.has_value()) prefetcher_->OnStepBegin();
  }
  void EmitUnitGrad(int u, std::span<const float> grad) override {
    // Drive in-flight prefetched gathers from the backward compute path
    // (ring chunks forward while this rank is busy with gradients).
    if (prefetcher_.has_value()) prefetcher_->Progress();
    bucketizer_->Emit(u, grad);
  }
  void ReduceGradients() override;
  std::span<const Half> ReducedF16() override { return grads_.f16(); }
  std::span<const float> ReducedF32() override { return grads_.f32(); }
  // The stored partition is exactly what the optimizer updates.
  std::span<Half> UpdateTargetF16() override { return params_.f16(); }
  std::span<float> UpdateTargetF32() override { return params_.f32(); }
  void OnUpdateApplied() override {
    grads_.FillZero();
    // The update changed params_: every hpZ secondary copy is stale
    // until the next forward refreshes it.
    if (!unit_captured_.empty())
      unit_captured_.assign(unit_captured_.size(), 0);
  }
  void ImportMasterParams(std::span<const float> padded_master) override;
  void ResetInFlight() override;
  void GatherFullParams(std::span<float> out) override;
  [[nodiscard]] std::size_t param_bytes() const override {
    return params_.nbytes();
  }
  [[nodiscard]] std::size_t grad_bytes() const override {
    return grads_.nbytes();
  }

 private:
  void WriteParams(const float* padded_src);
  // Copies this rank's hpz_part_ slice of the freshly materialized unit
  // into the secondary shard and marks the unit locally gatherable.
  void CaptureSecondary(int u, const tensor::Tensor& f16);

  struct MaterializedUnit {
    tensor::Tensor f16;      // gathered fp16 unit (device-accounted)
    std::vector<float> f32;  // what the model actually reads
    int refcount = 0;
  };

  tensor::Tensor params_;  // this rank's partition (1/Nd)
  tensor::Tensor grads_;   // this rank's reduced partition (1/Nd)
  std::optional<GradBucketizer> bucketizer_;
  // Look-ahead gather pipeline (EngineConfig::prefetch_lookahead > 0);
  // bit-exact vs the blocking materialization below.
  std::optional<ParamPrefetcher> prefetcher_;
  std::map<int, MaterializedUnit> units_;

  // hpZ secondary parameter copy: the full fp16 parameter space sharded
  // across the *intra-node* group (1/s per rank, s = node_size) — the
  // paper's "memory for communication" trade. Empty unless
  // StageContext::hpz survived the budget check.
  tensor::Tensor secondary_;
  std::optional<Partitioner> hpz_part_;
  // Per-unit: 1 while the node group collectively holds a fresh copy of
  // the unit (set at forward materialization, cleared on update/import).
  // SPMD-identical by construction — every rank materializes the same
  // units in the same order and applies updates collectively.
  std::vector<std::uint8_t> unit_captured_;
};

}  // namespace zero::core
