#include "core/stages/pos_g_p_strategy.hpp"

#include <cstring>
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"

namespace zero::core {

using model::Phase;

void PosGPStrategy::WriteParams(const float* padded_src) {
  const Range own = ctx_->part->PartitionRange(ctx_->rank());
  const float* src = padded_src + own.begin;
  const std::size_t n = static_cast<std::size_t>(params_.numel());
  if (ctx_->cfg->fp16) {
    tensor::CastFloatToHalf(src, params_.f16().data(),
                            static_cast<std::int64_t>(n));
  } else {
    std::memcpy(params_.f32().data(), src, n * sizeof(float));
  }
}

void PosGPStrategy::InitParams(std::span<const float> padded_init) {
  const std::int64_t shard = ctx_->part->partition_size();
  params_ = ctx_->NewDevice(shard, ctx_->work_dtype());
  WriteParams(padded_init.data());
  grads_ = ctx_->NewDevice(shard, ctx_->work_dtype());
  grads_.FillZero();
  bucketizer_.emplace(*ctx_, &grads_);
  if (ctx_->hpz) {
    hpz_part_.emplace(ctx_->part->total(), ctx_->node_size);
    const std::size_t bytes =
        static_cast<std::size_t>(hpz_part_->partition_size()) * sizeof(Half);
    if (ctx_->cfg->hpz_max_bytes > 0 && bytes > ctx_->cfg->hpz_max_bytes) {
      // The secondary shard does not fit the configured budget. The
      // check is a pure function of config + world shape, so every rank
      // flips together — SPMD-safe degradation to plain stage 3.
      ctx_->hpz = false;
      hpz_part_.reset();
    } else {
      secondary_ = ctx_->NewDevice(hpz_part_->partition_size(), DType::kF16);
      secondary_.FillZero();
      unit_captured_.assign(
          static_cast<std::size_t>(ctx_->model->layout().num_units()), 0);
    }
  }
  if (ctx_->cfg->prefetch_lookahead > 0) {
    prefetcher_.emplace(*ctx_, &params_, ctx_->hpz ? &secondary_ : nullptr,
                        ctx_->hpz ? &*hpz_part_ : nullptr);
  }
}

void PosGPStrategy::CaptureSecondary(int u, const tensor::Tensor& f16) {
  TRACE_SPAN("params/hpz_capture");
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  const Range own2 = hpz_part_->PartitionRange(ctx_->local->rank());
  const Range overlap = Intersect(Range{ub, ue}, own2);
  if (!overlap.empty()) {
    std::memcpy(secondary_.f16().data() + (overlap.begin - own2.begin),
                f16.f16().data() + (overlap.begin - ub),
                static_cast<std::size_t>(overlap.size()) * sizeof(Half));
    static obs::Counter& captured =
        obs::Metrics().counter("hpz.secondary_bytes_captured");
    captured.Add(static_cast<double>(overlap.size()) * sizeof(Half));
  }
  // Even a rank whose slice misses this unit marks it: the flag means
  // "the node group collectively holds unit u", which became true the
  // moment every local rank executed this same materialization.
  unit_captured_[static_cast<std::size_t>(u)] = 1;
}

std::span<const float> PosGPStrategy::AcquireUnit(int u, Phase phase) {
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  const std::int64_t n = ue - ub;

  // Materialize the unit from its partition owners: complete the
  // prefetched gather when the look-ahead pipeline covers this
  // materialization, otherwise broadcast on demand.
  MaterializedUnit& mu = units_[u];
  if (mu.refcount == 0) {
    TRACE_SPAN("params/materialize_unit");
    static obs::Counter& materializations =
        obs::Metrics().counter("stage3.unit_materializations");
    materializations.Add();
    // hpZ gather-kind decision: backward re-gathers resolve inside the
    // node group once the forward pass captured the unit. Pure function
    // of SPMD-identical state (phase + capture flags), so every rank
    // picks the same kind for the same materialization.
    const bool use_local = ctx_->hpz && phase == Phase::kBackward &&
                           unit_captured_[static_cast<std::size_t>(u)] != 0;
    bool claimed = false;
    if (prefetcher_.has_value() && ctx_->cfg->fp16 &&
        prefetcher_->Claim(u, &mu.f16, nullptr, use_local)) {
      mu.f32.resize(static_cast<std::size_t>(n));
      tensor::CastHalfToFloat(mu.f16.f16().data(), mu.f32.data(), n);
      claimed = true;
    } else if (prefetcher_.has_value() && !ctx_->cfg->fp16 &&
               prefetcher_->Claim(u, nullptr, &mu.f32)) {
      claimed = true;
    }
    if (!claimed) {
      const Range unit_range{ub, ue};
      if (ctx_->cfg->fp16) {
        mu.f16 = ctx_->NewDevice(n, DType::kF16);
        if (use_local) {
          // hpZ: gather from the intra-node secondary shard — zero
          // bytes cross the node boundary.
          const Range own2 = hpz_part_->PartitionRange(ctx_->local->rank());
          for (const auto& [j2, overlap] : hpz_part_->Overlaps(unit_range)) {
            std::span<Half> dst = mu.f16.f16().subspan(
                static_cast<std::size_t>(overlap.begin - ub),
                static_cast<std::size_t>(overlap.size()));
            if (j2 == ctx_->local->rank()) {
              std::memcpy(dst.data(),
                          secondary_.f16().data() + (overlap.begin - own2.begin),
                          dst.size_bytes());
            }
            ctx_->local->Broadcast(dst, j2);
          }
        } else {
          const Range own = ctx_->part->PartitionRange(ctx_->rank());
          for (const auto& [j, overlap] : ctx_->part->Overlaps(unit_range)) {
            std::span<Half> dst = mu.f16.f16().subspan(
                static_cast<std::size_t>(overlap.begin - ub),
                static_cast<std::size_t>(overlap.size()));
            if (j == ctx_->rank()) {
              std::memcpy(dst.data(),
                          params_.f16().data() + (overlap.begin - own.begin),
                          dst.size_bytes());
            }
            if (ctx_->qwz) {
              // qwZ: int8 on the wire; the machine dequantizes on every
              // rank (the owner included), so all replicas agree.
              comm::IQuantBroadcast(*ctx_->dp, dst, j, ctx_->quant_block)
                  .Wait();
            } else {
              ctx_->dp->Broadcast(dst, j);
            }
          }
        }
        mu.f32.resize(static_cast<std::size_t>(n));
        tensor::CastHalfToFloat(mu.f16.f16().data(), mu.f32.data(), n);
      } else {
        const Range own = ctx_->part->PartitionRange(ctx_->rank());
        mu.f32.assign(static_cast<std::size_t>(n), 0.0f);
        for (const auto& [j, overlap] : ctx_->part->Overlaps(unit_range)) {
          std::span<float> dst{mu.f32.data() + (overlap.begin - ub),
                               static_cast<std::size_t>(overlap.size())};
          if (j == ctx_->rank()) {
            std::memcpy(dst.data(),
                        params_.f32().data() + (overlap.begin - own.begin),
                        dst.size_bytes());
          }
          ctx_->dp->Broadcast(dst, j);
        }
      }
      if (prefetcher_.has_value()) prefetcher_->Record(u, use_local);
    }
    if (ctx_->hpz && phase == Phase::kForward) CaptureSecondary(u, mu.f16);
  } else if (prefetcher_.has_value()) {
    prefetcher_->Progress();
  }
  ++mu.refcount;
  return mu.f32;
}

void PosGPStrategy::ReleaseUnit(int u, Phase phase) {
  (void)phase;
  if (prefetcher_.has_value()) prefetcher_->Progress();
  auto it = units_.find(u);
  ZERO_CHECK(it != units_.end(), "ReleaseUnit without matching AcquireUnit");
  ZERO_CHECK(it->second.refcount > 0, "ReleaseUnit refcount underflow");
  if (--it->second.refcount == 0) {
    // "The parameters can be discarded" (Sec 7.2.2) — this frees the
    // gathered fp16 device tensor immediately.
    units_.erase(it);
  }
}

void PosGPStrategy::ReduceGradients() {
  ZERO_CHECK(units_.empty(), "model leaked acquired units");
  TRACE_SPAN("grads/bucket_drain");
  // Gradients were already reduced to their owners during backward; wait
  // out whatever is still in flight and verify full coverage.
  bucketizer_->Drain();
  if (prefetcher_.has_value()) prefetcher_->OnStepEnd();
}

void PosGPStrategy::ImportMasterParams(std::span<const float> padded_master) {
  WriteParams(padded_master.data());
  // Imported params invalidate every hpZ capture (elastic resume may
  // even have changed what the unit held).
  if (!unit_captured_.empty())
    unit_captured_.assign(unit_captured_.size(), 0);
}

void PosGPStrategy::ResetInFlight() {
  bucketizer_->Reset();
  if (prefetcher_.has_value()) prefetcher_->CancelAll();
  grads_.FillZero();
  units_.clear();
  if (!unit_captured_.empty())
    unit_captured_.assign(unit_captured_.size(), 0);
}

void PosGPStrategy::GatherFullParams(std::span<float> out) {
  for (int u = 0; u < ctx_->model->layout().num_units(); ++u) {
    const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
    std::span<const float> p = AcquireUnit(u, Phase::kForward);
    std::memcpy(out.data() + ub, p.data(),
                static_cast<std::size_t>(ue - ub) * sizeof(float));
    ReleaseUnit(u, Phase::kForward);
  }
}

}  // namespace zero::core
