#include "core/stages/pos_g_p_strategy.hpp"

#include <cstring>
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"

namespace zero::core {

using model::Phase;

void PosGPStrategy::WriteParams(const float* padded_src) {
  const Range own = ctx_->part->PartitionRange(ctx_->rank());
  const float* src = padded_src + own.begin;
  const std::size_t n = static_cast<std::size_t>(params_.numel());
  if (ctx_->cfg->fp16) {
    tensor::CastFloatToHalf(src, params_.f16().data(),
                            static_cast<std::int64_t>(n));
  } else {
    std::memcpy(params_.f32().data(), src, n * sizeof(float));
  }
}

void PosGPStrategy::InitParams(std::span<const float> padded_init) {
  const std::int64_t shard = ctx_->part->partition_size();
  params_ = ctx_->NewDevice(shard, ctx_->work_dtype());
  WriteParams(padded_init.data());
  grads_ = ctx_->NewDevice(shard, ctx_->work_dtype());
  grads_.FillZero();
  bucketizer_.emplace(*ctx_, &grads_);
  if (ctx_->cfg->prefetch_lookahead > 0) {
    prefetcher_.emplace(*ctx_, &params_);
  }
}

std::span<const float> PosGPStrategy::AcquireUnit(int u, Phase phase) {
  (void)phase;
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  const std::int64_t n = ue - ub;

  // Materialize the unit from its partition owners: complete the
  // prefetched gather when the look-ahead pipeline covers this
  // materialization, otherwise broadcast on demand.
  MaterializedUnit& mu = units_[u];
  if (mu.refcount == 0) {
    TRACE_SPAN("params/materialize_unit");
    static obs::Counter& materializations =
        obs::Metrics().counter("stage3.unit_materializations");
    materializations.Add();
    if (prefetcher_.has_value() && ctx_->cfg->fp16 &&
        prefetcher_->Claim(u, &mu.f16, nullptr)) {
      mu.f32.resize(static_cast<std::size_t>(n));
      tensor::CastHalfToFloat(mu.f16.f16().data(), mu.f32.data(), n);
      ++mu.refcount;
      return mu.f32;
    }
    if (prefetcher_.has_value() && !ctx_->cfg->fp16 &&
        prefetcher_->Claim(u, nullptr, &mu.f32)) {
      ++mu.refcount;
      return mu.f32;
    }
    const Range unit_range{ub, ue};
    const Range own = ctx_->part->PartitionRange(ctx_->rank());
    if (ctx_->cfg->fp16) {
      mu.f16 = ctx_->NewDevice(n, DType::kF16);
      for (const auto& [j, overlap] : ctx_->part->Overlaps(unit_range)) {
        std::span<Half> dst = mu.f16.f16().subspan(
            static_cast<std::size_t>(overlap.begin - ub),
            static_cast<std::size_t>(overlap.size()));
        if (j == ctx_->rank()) {
          std::memcpy(dst.data(),
                      params_.f16().data() + (overlap.begin - own.begin),
                      dst.size_bytes());
        }
        ctx_->dp->Broadcast(dst, j);
      }
      mu.f32.resize(static_cast<std::size_t>(n));
      tensor::CastHalfToFloat(mu.f16.f16().data(), mu.f32.data(), n);
    } else {
      mu.f32.assign(static_cast<std::size_t>(n), 0.0f);
      for (const auto& [j, overlap] : ctx_->part->Overlaps(unit_range)) {
        std::span<float> dst{mu.f32.data() + (overlap.begin - ub),
                             static_cast<std::size_t>(overlap.size())};
        if (j == ctx_->rank()) {
          std::memcpy(dst.data(),
                      params_.f32().data() + (overlap.begin - own.begin),
                      dst.size_bytes());
        }
        ctx_->dp->Broadcast(dst, j);
      }
    }
    if (prefetcher_.has_value()) prefetcher_->Record(u);
  } else if (prefetcher_.has_value()) {
    prefetcher_->Progress();
  }
  ++mu.refcount;
  return mu.f32;
}

void PosGPStrategy::ReleaseUnit(int u, Phase phase) {
  (void)phase;
  if (prefetcher_.has_value()) prefetcher_->Progress();
  auto it = units_.find(u);
  ZERO_CHECK(it != units_.end(), "ReleaseUnit without matching AcquireUnit");
  ZERO_CHECK(it->second.refcount > 0, "ReleaseUnit refcount underflow");
  if (--it->second.refcount == 0) {
    // "The parameters can be discarded" (Sec 7.2.2) — this frees the
    // gathered fp16 device tensor immediately.
    units_.erase(it);
  }
}

void PosGPStrategy::ReduceGradients() {
  ZERO_CHECK(units_.empty(), "model leaked acquired units");
  TRACE_SPAN("grads/bucket_drain");
  // Gradients were already reduced to their owners during backward; wait
  // out whatever is still in flight and verify full coverage.
  bucketizer_->Drain();
  if (prefetcher_.has_value()) prefetcher_->OnStepEnd();
}

void PosGPStrategy::ImportMasterParams(std::span<const float> padded_master) {
  WriteParams(padded_master.data());
}

void PosGPStrategy::ResetInFlight() {
  bucketizer_->Reset();
  if (prefetcher_.has_value()) prefetcher_->CancelAll();
  grads_.FillZero();
  units_.clear();
}

void PosGPStrategy::GatherFullParams(std::span<float> out) {
  for (int u = 0; u < ctx_->model->layout().num_units(); ++u) {
    const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
    std::span<const float> p = AcquireUnit(u, Phase::kForward);
    std::memcpy(out.data() + ub, p.data(),
                static_cast<std::size_t>(ue - ub) * sizeof(float));
    ReleaseUnit(u, Phase::kForward);
  }
}

}  // namespace zero::core
