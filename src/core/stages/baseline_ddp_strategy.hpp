// Stage 0 — baseline data parallelism (the paper's comparison point):
// full parameter, gradient, and optimizer replicas on every rank
// (2Ψ + 2Ψ + KΨ bytes); gradients all-reduced in place at step end
// (volume 2Ψ, Sec 7.1).
#pragma once

#include "core/stages/full_param_strategy.hpp"

namespace zero::core {

class BaselineDdpStrategy final : public FullParamStrategy {
 public:
  using FullParamStrategy::FullParamStrategy;

  [[nodiscard]] const char* name() const override { return "baseline-ddp"; }
  [[nodiscard]] bool state_partitioned() const override { return false; }

  void InitParams(std::span<const float> padded_init) override;
  void OnStepBegin() override {}
  void EmitUnitGrad(int u, std::span<const float> grad) override;
  void ReduceGradients() override;
  std::span<const Half> ReducedF16() override { return grads_.f16(); }
  std::span<const float> ReducedF32() override { return grads_.f32(); }
  void OnUpdateApplied() override {}
  void ResetInFlight() override { grads_.FillZero(); }
  [[nodiscard]] std::size_t grad_bytes() const override {
    return grads_.nbytes();
  }

 private:
  tensor::Tensor grads_;  // full padded vector
};

}  // namespace zero::core
