// Look-ahead parameter prefetch for stage 3 (Sec 7.2.2).
//
// The paper's claim that stage 3's extra 1.5x communication volume is
// cheap rests on *pipelining*: "the parameters for each layer can be
// broadcast before the forward/backward on that layer needs them". The
// blocking PosGPStrategy stalls every unit on a cold broadcast at
// AcquireUnit; this class turns those stalls into overlap by walking
// the unit schedule ahead of the compute and keeping up to
// EngineConfig::prefetch_lookahead units' gathers in flight as
// nonblocking collectives (comm/nonblocking_collectives.hpp).
//
// Schedule learning. The model's acquire order is irregular (a GPT
// forward touches the embedding unit again at the head; backward with
// recompute re-acquires in its own order), so the first training step
// runs fully blocking while the materialization order is *recorded*.
// Every later step replays that schedule: AcquireUnit completes the
// already-launched gather for its schedule position instead of starting
// a cold broadcast. If the model ever derails from the recorded order,
// all in-flight gathers are cancelled on every rank, the step finishes
// blocking, and the next step re-records. Conveniently, the recording
// step is step 0 — the same warm-up step the trainer already excludes
// from its communication-volume accounting.
//
// Memory budget. Look-ahead buys overlap with up to `lookahead` extra
// materialized units of device memory. The budget is agreed group-wide
// once (min free device memory across ranks, halved; or the explicit
// EngineConfig::prefetch_max_bytes), and TopUp stops — never skips, so
// launch order stays schedule order — when the next unit would not fit.
// With a tight budget the prefetcher degrades to the blocking path one
// claim at a time.
//
// SPMD safety. Every launch, wait, and cancel decision is a pure
// function of state that is identical on all ranks (the recorded
// schedule, the agreed budget, the claim cursor), so all ranks drive
// the same collectives in the same order — the tag-sequencing contract
// the communicator requires. Bit-exactness vs the blocking path is
// structural: broadcasts are byte moves and parameters are frozen
// between optimizer updates, so *when* a gather runs cannot change
// *what* it delivers.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "comm/nonblocking_collectives.hpp"
#include "core/stages/stage_strategy.hpp"
#include "tensor/tensor.hpp"

namespace zero::core {

class ParamPrefetcher {
 public:
  // `own_params` is the strategy's 1/Nd parameter partition (the local
  // contribution to every gather); must outlive this object. With hpZ,
  // `secondary` / `hpz_part` describe the strategy's intra-node
  // secondary shard, the source of kLocal launches (both null
  // otherwise; also must outlive this object).
  ParamPrefetcher(StageContext& ctx, const tensor::Tensor* own_params,
                  const tensor::Tensor* secondary = nullptr,
                  const Partitioner* hpz_part = nullptr);
  ~ParamPrefetcher();
  ParamPrefetcher(const ParamPrefetcher&) = delete;
  ParamPrefetcher& operator=(const ParamPrefetcher&) = delete;

  // Step bracket, driven by the strategy's OnStepBegin/ReduceGradients.
  // Outside the bracket (EvalLoss, GatherFullParams, checkpointing) the
  // prefetcher is passive and materializations take the blocking path.
  void OnStepBegin();
  void OnStepEnd();

  // Claims the gather for unit `u` if the prefetch path covers this
  // materialization: fills `f16_out` (fp16 mode) or `f32_out` (fp32
  // mode) with the fully gathered unit and returns true. Returns false
  // when the caller must materialize blocking — prefetch off-step,
  // recording, or the model derailed from the recorded schedule.
  // `local` is the caller's gather-kind decision for this
  // materialization (hpZ backward gathers resolve intra-node); a kind
  // mismatch against the recorded schedule derails like a unit mismatch
  // — the launch already happened the recorded way on every rank.
  bool Claim(int u, tensor::Tensor* f16_out, std::vector<float>* f32_out,
             bool local = false);

  // Records a blocking materialization (the schedule being learned).
  void Record(int u, bool local = false);

  // Drives in-flight gathers without blocking. Called from the compute
  // hooks (acquire/release/grad emission) so intermediate ring ranks
  // forward pipeline chunks while they are busy computing — this is
  // where the overlap physically happens.
  void Progress();

  // Abandons everything in flight and forgets the schedule (abort and
  // elastic-resume unwinding; also run by the destructor). Never
  // throws: stale chunks rot in the mailbox under never-reused tags.
  void CancelAll();

  [[nodiscard]] bool replaying() const { return mode_ == Mode::kReplaying; }

 private:
  enum class Mode : unsigned char { kIdle, kRecording, kReplaying };

  // One learned materialization: the unit plus the gather kind used
  // when it was recorded. Replay launches must reproduce the kind —
  // SPMD-consistent because the kind is a pure function of state that
  // is identical on all ranks (phase + per-unit capture flags).
  struct Entry {
    int unit = -1;
    bool local = false;  // hpZ intra-node gather from the secondary shard
  };

  struct InFlight {
    int unit = -1;
    std::size_t schedule_pos = 0;
    std::size_t bytes = 0;
    std::uint64_t launch_ns = 0;
    tensor::Tensor f16;                         // fp16 mode landing buffer
    std::vector<float> f32;                     // fp32 mode landing buffer
    std::vector<comm::CollectiveRequest> reqs;  // one per overlap owner
  };

  void EnsureBudget();
  void TopUp();
  [[nodiscard]] InFlight Launch(Entry e, std::size_t pos);
  [[nodiscard]] std::size_t UnitBytes(int u) const;
  void Derail();

  StageContext* ctx_;
  const tensor::Tensor* own_params_;
  const tensor::Tensor* secondary_;  // hpZ intra-node shard (may be null)
  const Partitioner* hpz_part_;      // partitioning of the above
  int lookahead_;

  Mode mode_ = Mode::kIdle;
  std::vector<Entry> schedule_;   // learned materialization order
  std::vector<Entry> recording_;  // being learned this step
  std::size_t cursor_ = 0;      // next schedule position to be claimed
  std::size_t next_launch_ = 0; // next schedule position to launch
  std::deque<InFlight> inflight_;
  std::size_t inflight_bytes_ = 0;
  std::size_t budget_ = 0;  // 0 = not yet agreed

  // Overlap accounting across the run: active = gather lifetime
  // (launch -> claim), exposed = time the claim actually blocked.
  double active_ns_ = 0.0;
  double exposed_ns_ = 0.0;
};

}  // namespace zero::core
