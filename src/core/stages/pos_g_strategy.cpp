#include "core/stages/pos_g_strategy.hpp"

#include "obs/trace.hpp"

namespace zero::core {

void PosGStrategy::InitParams(std::span<const float> padded_init) {
  FullParamStrategy::InitParams(padded_init);
  grads_ = ctx_->NewDevice(ctx_->part->partition_size(), ctx_->work_dtype());
  grads_.FillZero();
  bucketizer_.emplace(*ctx_, &grads_);
}

void PosGStrategy::ReduceGradients() {
  CheckUnitsReleased();
  TRACE_SPAN("grads/bucket_drain");
  // Gradients were already reduced to their owners during backward; wait
  // out whatever is still in flight and verify full coverage.
  bucketizer_->Drain();
}

void PosGStrategy::ResetInFlight() {
  bucketizer_->Reset();
  grads_.FillZero();
}

}  // namespace zero::core
