#include "core/stages/param_prefetcher.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zero::core {

namespace {
obs::Counter& HitCounter() {
  static obs::Counter& c = obs::Metrics().counter("prefetch.hits");
  return c;
}
obs::Counter& MissCounter() {
  static obs::Counter& c = obs::Metrics().counter("prefetch.misses");
  return c;
}
obs::Counter& DerailCounter() {
  static obs::Counter& c = obs::Metrics().counter("prefetch.derails");
  return c;
}
}  // namespace

ParamPrefetcher::ParamPrefetcher(StageContext& ctx,
                                 const tensor::Tensor* own_params,
                                 const tensor::Tensor* secondary,
                                 const Partitioner* hpz_part)
    : ctx_(&ctx),
      own_params_(own_params),
      secondary_(secondary),
      hpz_part_(hpz_part),
      lookahead_(ctx.cfg->prefetch_lookahead) {
  ZERO_CHECK(lookahead_ > 0, "ParamPrefetcher needs prefetch_lookahead > 0");
  ZERO_CHECK((secondary == nullptr) == (hpz_part == nullptr),
             "hpZ shard and its partitioner come together");
}

ParamPrefetcher::~ParamPrefetcher() { CancelAll(); }

void ParamPrefetcher::OnStepBegin() {
  if (schedule_.empty()) {
    mode_ = Mode::kRecording;
    recording_.clear();
    return;
  }
  mode_ = Mode::kReplaying;
  cursor_ = 0;
  next_launch_ = 0;
  EnsureBudget();
  TopUp();
}

void ParamPrefetcher::OnStepEnd() {
  if (mode_ == Mode::kRecording) {
    schedule_ = std::move(recording_);
    recording_.clear();
  } else if (mode_ == Mode::kReplaying) {
    if (cursor_ != schedule_.size()) {
      // The model stopped short of the recorded schedule (it changed
      // shape between steps): abandon the tail and re-learn.
      Derail();
    } else {
      const double overlap =
          active_ns_ > 0.0 ? std::max(0.0, 1.0 - exposed_ns_ / active_ns_)
                           : 0.0;
      static obs::Gauge& frac = obs::Metrics().gauge("comm.overlap_frac");
      frac.Set(overlap);
      // Per-rank figure for the step report's anatomy section (the
      // process-wide gauge above is last-writer-wins across ranks).
      obs::Metrics()
          .gauge("comm.overlap_frac.rank" + std::to_string(ctx_->rank()))
          .Set(overlap);
    }
  }
  mode_ = Mode::kIdle;
}

void ParamPrefetcher::EnsureBudget() {
  if (budget_ != 0) return;
  if (ctx_->cfg->prefetch_max_bytes > 0) {
    budget_ = ctx_->cfg->prefetch_max_bytes;
  } else if (ctx_->device == nullptr) {
    budget_ = SIZE_MAX;  // heap-backed state: no capacity to respect
  } else {
    // Agree on the group-wide minimum headroom (an SPMD-identical
    // budget is what keeps every rank's launch decisions in lock-step),
    // and commit only half of it to look-ahead.
    float neg_free = -static_cast<float>(
        ctx_->device->device().Stats().free_total);
    ctx_->dp->AllReduce(std::span<float>(&neg_free, 1),
                        comm::ReduceOp::kMax);
    budget_ = static_cast<std::size_t>(
                  std::max(0.0f, -neg_free)) / 2;
  }
  if (budget_ == 0) budget_ = 1;  // "tight" sentinel: degrade to blocking
}

std::size_t ParamPrefetcher::UnitBytes(int u) const {
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  return static_cast<std::size_t>(ue - ub) *
         (ctx_->cfg->fp16 ? sizeof(Half) : sizeof(float));
}

ParamPrefetcher::InFlight ParamPrefetcher::Launch(Entry e, std::size_t pos) {
  TRACE_SPAN("params/prefetch_launch");
  const int u = e.unit;
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  const std::int64_t n = ue - ub;
  const Range unit_range{ub, ue};
  const Range own = ctx_->part->PartitionRange(ctx_->rank());

  InFlight inf;
  inf.unit = u;
  inf.schedule_pos = pos;
  inf.bytes = UnitBytes(u);
  inf.launch_ns = obs::TraceNowNs();
  if (e.local) {
    // hpZ backward gather: the unit resolves inside the node group from
    // the secondary shard — fp16 byte moves, identical to what the
    // recording step's blocking local materialization delivered.
    ZERO_CHECK(secondary_ != nullptr && ctx_->local != nullptr,
               "local prefetch launch without an hpZ shard");
    inf.f16 = ctx_->NewDevice(n, DType::kF16);
    const Range own2 = hpz_part_->PartitionRange(ctx_->local->rank());
    for (const auto& [j2, overlap] : hpz_part_->Overlaps(unit_range)) {
      std::span<Half> dst = inf.f16.f16().subspan(
          static_cast<std::size_t>(overlap.begin - ub),
          static_cast<std::size_t>(overlap.size()));
      if (j2 == ctx_->local->rank()) {
        std::memcpy(dst.data(),
                    secondary_->f16().data() + (overlap.begin - own2.begin),
                    dst.size_bytes());
      }
      inf.reqs.push_back(comm::IBroadcast(*ctx_->local, dst, j2));
    }
    return inf;
  }
  // Same owner-slice copies and per-overlap broadcasts as the blocking
  // materialization in PosGPStrategy::AcquireUnit — only nonblocking
  // (and int8-quantized on the wire under qwZ).
  if (ctx_->cfg->fp16) {
    inf.f16 = ctx_->NewDevice(n, DType::kF16);
    for (const auto& [j, overlap] : ctx_->part->Overlaps(unit_range)) {
      std::span<Half> dst = inf.f16.f16().subspan(
          static_cast<std::size_t>(overlap.begin - ub),
          static_cast<std::size_t>(overlap.size()));
      if (j == ctx_->rank()) {
        std::memcpy(dst.data(),
                    own_params_->f16().data() + (overlap.begin - own.begin),
                    dst.size_bytes());
      }
      inf.reqs.push_back(
          ctx_->qwz
              ? comm::IQuantBroadcast(*ctx_->dp, dst, j, ctx_->quant_block)
              : comm::IBroadcast(*ctx_->dp, dst, j));
    }
  } else {
    inf.f32.assign(static_cast<std::size_t>(n), 0.0f);
    for (const auto& [j, overlap] : ctx_->part->Overlaps(unit_range)) {
      std::span<float> dst{inf.f32.data() + (overlap.begin - ub),
                           static_cast<std::size_t>(overlap.size())};
      if (j == ctx_->rank()) {
        std::memcpy(dst.data(),
                    own_params_->f32().data() + (overlap.begin - own.begin),
                    dst.size_bytes());
      }
      inf.reqs.push_back(comm::IBroadcast(*ctx_->dp, dst, j));
    }
  }
  return inf;
}

void ParamPrefetcher::TopUp() {
  while (next_launch_ < schedule_.size() &&
         inflight_.size() < static_cast<std::size_t>(lookahead_)) {
    const Entry e = schedule_[next_launch_];
    const std::size_t bytes = UnitBytes(e.unit);
    // Stop — never skip — when the budget is exhausted, so launches
    // stay in schedule order and degrade toward blocking under
    // pressure.
    if (bytes > budget_ - std::min(budget_, inflight_bytes_)) break;
    inflight_.push_back(Launch(e, next_launch_));
    inflight_bytes_ += bytes;
    ++next_launch_;
  }
}

void ParamPrefetcher::Progress() {
  for (InFlight& inf : inflight_) {
    for (comm::CollectiveRequest& r : inf.reqs) (void)r.Test();
  }
}

bool ParamPrefetcher::Claim(int u, tensor::Tensor* f16_out,
                            std::vector<float>* f32_out, bool local) {
  Progress();
  if (mode_ != Mode::kReplaying) return false;
  if (cursor_ >= schedule_.size() || schedule_[cursor_].unit != u ||
      schedule_[cursor_].local != local) {
    // Off-schedule acquire: cancel everything (all ranks see the same
    // divergence at the same claim) and fall back to blocking.
    Derail();
    return false;
  }
  const std::size_t pos = cursor_++;

  InFlight inf;
  const bool hit =
      !inflight_.empty() && inflight_.front().schedule_pos == pos;
  if (hit) {
    HitCounter().Add();
    inf = std::move(inflight_.front());
    inflight_.pop_front();
    inflight_bytes_ -= std::min(inflight_bytes_, inf.bytes);
  } else {
    // Budget (or a fresh schedule) kept this unit from launching ahead:
    // gather it now — still through the nonblocking machines, so tag
    // order matches the ranks that did launch ahead. Fully exposed.
    MissCounter().Add();
    inf = Launch(Entry{u, local}, pos);
    next_launch_ = std::max(next_launch_, pos + 1);
  }

  const std::uint64_t wait_t0 = obs::TraceNowNs();
  {
    TRACE_SPAN("params/prefetch_wait");
    for (comm::CollectiveRequest& r : inf.reqs) r.Wait();
  }
  const std::uint64_t now = obs::TraceNowNs();
  static obs::Histogram& wait_us =
      obs::Metrics().histogram("prefetch.wait_us");
  wait_us.Observe(static_cast<double>(now - wait_t0) / 1000.0);
  active_ns_ += static_cast<double>(now - inf.launch_ns);
  exposed_ns_ += static_cast<double>(now - wait_t0);

  if (f16_out != nullptr) *f16_out = std::move(inf.f16);
  if (f32_out != nullptr) *f32_out = std::move(inf.f32);
  TopUp();
  return true;
}

void ParamPrefetcher::Record(int u, bool local) {
  if (mode_ == Mode::kRecording) recording_.push_back(Entry{u, local});
}

void ParamPrefetcher::Derail() {
  DerailCounter().Add();
  for (InFlight& inf : inflight_) {
    for (comm::CollectiveRequest& r : inf.reqs) r.Cancel();
  }
  inflight_.clear();
  inflight_bytes_ = 0;
  schedule_.clear();
  recording_.clear();
  mode_ = Mode::kIdle;
}

void ParamPrefetcher::CancelAll() {
  for (InFlight& inf : inflight_) {
    for (comm::CollectiveRequest& r : inf.reqs) r.Cancel();
  }
  inflight_.clear();
  inflight_bytes_ = 0;
  schedule_.clear();
  recording_.clear();
  mode_ = Mode::kIdle;
}

}  // namespace zero::core
