#include "core/stages/full_param_strategy.hpp"

#include <cstring>
#include "comm/nonblocking_collectives.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"

namespace zero::core {

void FullParamStrategy::InitParams(std::span<const float> padded_init) {
  params_ = ctx_->NewDevice(ctx_->part->padded_total(), ctx_->work_dtype());
  WriteParams(padded_init.data());
}

void FullParamStrategy::WriteParams(const float* padded_src) {
  const std::size_t n = static_cast<std::size_t>(params_.numel());
  if (ctx_->cfg->fp16) {
    tensor::CastFloatToHalf(padded_src, params_.f16().data(),
                            static_cast<std::int64_t>(n));
  } else {
    std::memcpy(params_.f32().data(), padded_src, n * sizeof(float));
  }
}

std::span<const float> FullParamStrategy::AcquireUnit(int u,
                                                      model::Phase phase) {
  (void)phase;
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  const std::int64_t n = ue - ub;
  if (!ctx_->cfg->fp16) {
    // fp32, full copy resident: hand out a direct view.
    return params_.f32().subspan(static_cast<std::size_t>(ub),
                                 static_cast<std::size_t>(n));
  }
  // fp16, full copy resident: widen the unit into fp32 scratch.
  WidenedUnit& wu = units_[u];
  if (wu.refcount == 0) {
    wu.f32.resize(static_cast<std::size_t>(n));
    tensor::CastHalfToFloat(params_.f16().data() + ub, wu.f32.data(), n);
  }
  ++wu.refcount;
  return wu.f32;
}

void FullParamStrategy::ReleaseUnit(int u, model::Phase phase) {
  (void)phase;
  auto it = units_.find(u);
  if (it == units_.end()) {
    // fp32 mode hands out direct views with nothing to release.
    ZERO_CHECK(!ctx_->cfg->fp16, "ReleaseUnit without matching AcquireUnit");
    return;
  }
  ZERO_CHECK(it->second.refcount > 0, "ReleaseUnit refcount underflow");
  if (--it->second.refcount == 0) {
    units_.erase(it);
  }
}

void FullParamStrategy::CheckUnitsReleased() const {
  ZERO_CHECK(units_.empty(), "model leaked acquired units");
}

std::span<Half> FullParamStrategy::UpdateTargetF16() {
  if (!state_partitioned()) return params_.f16();
  const Range own = ctx_->part->PartitionRange(ctx_->rank());
  return params_.f16().subspan(static_cast<std::size_t>(own.begin),
                               static_cast<std::size_t>(own.size()));
}

std::span<float> FullParamStrategy::UpdateTargetF32() {
  if (!state_partitioned()) return params_.f32();
  const Range own = ctx_->part->PartitionRange(ctx_->rank());
  return params_.f32().subspan(static_cast<std::size_t>(own.begin),
                               static_cast<std::size_t>(own.size()));
}

void FullParamStrategy::ImportMasterParams(
    std::span<const float> padded_master) {
  WriteParams(padded_master.data());
}

void FullParamStrategy::GatherFullParams(std::span<float> out) {
  if (ctx_->cfg->fp16) {
    tensor::CastHalfToFloat(params_.f16().data(), out.data(),
                            static_cast<std::int64_t>(out.size()));
  } else {
    std::memcpy(out.data(), params_.f32().data(),
                out.size() * sizeof(float));
  }
}

void FullParamStrategy::AllGatherParams() {
  TRACE_SPAN("params/all_gather");
  const std::uint64_t t0 = obs::TraceNowNs();
  // Copy the owned chunk out first: AllGather writes the chunk into the
  // full buffer at this rank's offset, which would otherwise alias.
  const Range own = ctx_->part->PartitionRange(ctx_->rank());
  const std::int64_t shard = ctx_->part->partition_size();
  if (ctx_->cfg->fp16) {
    std::vector<Half> chunk(static_cast<std::size_t>(shard));
    std::memcpy(chunk.data(), params_.f16().data() + own.begin,
                chunk.size() * sizeof(Half));
    if (ctx_->qwz) {
      // qwZ: the step-end all-gather ships int8 + per-block scales.
      // Lossy on this rank's own chunk too, but that is safe — the next
      // update overwrites the working copy from the fp32 master, and
      // dequantizing everywhere keeps all replicas bit-identical.
      comm::IQuantAllGather(*ctx_->dp, std::span<const Half>(chunk),
                            params_.f16(), ctx_->quant_block)
          .Wait();
    } else {
      ctx_->dp->AllGather(std::span<const Half>(chunk), params_.f16());
    }
  } else {
    std::vector<float> chunk(static_cast<std::size_t>(shard));
    std::memcpy(chunk.data(), params_.f32().data() + own.begin,
                chunk.size() * sizeof(float));
    ctx_->dp->AllGather(std::span<const float>(chunk), params_.f32());
  }
  static obs::Histogram& gather_us =
      obs::Metrics().histogram("params.allgather_us");
  gather_us.Observe(static_cast<double>(obs::TraceNowNs() - t0) / 1000.0);
}

}  // namespace zero::core
