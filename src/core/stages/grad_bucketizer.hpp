// Partition-aligned gradient bucketing for stages 2 and 3 (Sec 5.2,
// Sec 7.2.1), issued through the communicator's nonblocking request
// layer so in-flight reductions interleave with continued backward
// emission — the overlap the paper's Sec 6.2/7.2.1 schedule assumes.
//
// Backward emits unit gradients top-down; units tile the flat parameter
// space, so emissions form one descending contiguous frontier. Each
// emission is scattered into per-partition staging segments; the moment
// a partition's real elements are fully covered, the segment flushes to
// the partition owner in constant-size buckets (CB, Sec 6.2):
//
//   - Non-owners IsSend their segment chunks straight to the owner and
//     release the segment immediately ("after the reduction we no
//     longer need the gradients and their memory can be released",
//     Sec 5.2). The sends are buffered deposits, so backward continues
//     while the bytes are conceptually in flight — no rank ever blocks
//     on a peer that is still computing.
//   - The owner posts IsRecv requests into per-peer staging and returns
//     to backward. Completed chunks are merged opportunistically on
//     later emissions (Progress) and whatever remains is drained at the
//     end of backward (Drain). For each chunk, peers merge in ascending
//     rank order on top of the owner's own contribution, so the sum
//     bracketing is deterministic.
//
// Per-rank send volume is identical to the ring-reduce schedule this
// replaces: every non-owner sends one shard per partition, the owner
// sends nothing — (Nd-1)/Nd * 2Ψ bytes per step, the paper's stage-2
// accounting. In exact_reductions mode (fp32 testing) the flush
// degrades to the blocking rank-ordered reduce every stage shares.
//
// qgZ (StageContext::qgz, ZeRO++ arXiv:2306.10209): the flush goes
// hierarchical. For partition j, each node elects the member with the
// owner's local index as its *relay*; non-relays send their fp16
// segment chunks over the intra-node communicator, the relay folds them
// into an fp32 accumulator (widen-add in ascending local-rank order),
// and only the relay's blockwise-int8-quantized partial crosses the
// node boundary to the owner, who dequantize-accumulates node partials
// in ascending node order before narrowing to the work dtype. Cross-
// node bytes drop from (Nd-1)/Nd * 2Ψ fp16 to ~(nodes-1)/nodes * Ψ/s
// int8 (+scales). Intra-node fp32 folding *tightens* rounding vs the
// flat fp16 chain, but the bracketing differs, so qgZ is NOT bit-exact
// vs the flat path (exact_reductions remains the bit-exact hatch and
// disables it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/stages/stage_strategy.hpp"

namespace zero::core {

class GradBucketizer {
 public:
  // `owner_grads` is the shard-sized persistent gradient store the
  // owner's fully reduced partition lands in; must outlive this object.
  GradBucketizer(StageContext& ctx, tensor::Tensor* owner_grads);

  // Resets the emission frontier; checks no stale state from a prior
  // step survived.
  void BeginStep();
  // Scatter one unit gradient into partition segments; flush any
  // partition this emission completes; make progress on pending
  // reductions this rank owns.
  void Emit(int u, std::span<const float> grad);
  // Blocks until every in-flight reduction completes; verifies backward
  // covered the full parameter space.
  void Drain();
  // Drops all in-flight state without completing it (elastic resume).
  void Reset();

 private:
  struct Segment {
    tensor::Tensor data;       // fp16/fp32 staging for one partition
    std::int64_t covered = 0;  // real elements emitted so far
  };
  // The reduction of this rank's own partition, in flight while backward
  // continues. At most one exists: a rank owns exactly one partition.
  struct PendingReduce {
    tensor::Tensor acc;        // owner's contribution; merge target
    std::vector<int> peers;    // every other group rank, ascending
    std::int64_t num_chunks = 0;
    std::int64_t chunk_elems = 0;
    // Indexed [chunk * peers.size() + peer_index]:
    std::vector<std::vector<std::byte>> staging;
    std::vector<comm::CommRequest> requests;
    // Per-chunk merge cursor into `peers` (rank-order determinism).
    std::vector<std::size_t> next_peer;
    std::int64_t merged_chunks = 0;
  };

  // One hierarchical (qgZ) reduction this rank relays or owns. Unlike
  // the flat path, a rank is the relay of every partition whose owner
  // shares its local index — up to `nodes` of these can be in flight.
  struct HierReduce {
    int partition = -1;
    bool owner = false;
    std::vector<float> acc32;  // fp32 fold target (shard-sized)
    std::int64_t num_chunks = 0;
    // Intra-node phase: staging[chunk * peers + k] from local_peers[k]
    // (local ranks of this node except the relay, ascending).
    std::vector<int> local_peers;
    std::vector<std::vector<std::byte>> intra_staging;
    std::vector<comm::CommRequest> intra_reqs;
    std::vector<std::size_t> intra_next;  // per-chunk fold cursor
    std::vector<std::uint8_t> intra_done;
    std::vector<std::uint64_t> inter_tags;  // per chunk, pre-drawn
    // Inter-node phase (owner only): staging[chunk * relays + k] from
    // remote_relays[k] (group ranks, ascending node index).
    std::vector<int> remote_relays;
    std::vector<std::vector<std::byte>> inter_staging;
    std::vector<comm::CommRequest> inter_reqs;
    std::vector<std::size_t> inter_next;  // per-chunk fold cursor
    std::vector<std::uint8_t> chunk_final;
    std::int64_t done_chunks = 0;  // relay: sent; owner: narrowed
  };

  void Flush(int j);
  void FlushExact(int j, Segment& seg);
  void FlushHier(int j, Segment& seg);
  // Merges whatever completed chunks Test() can find without blocking
  // (block=false) or everything (block=true).
  void Progress(bool block);
  void ProgressHier(bool block);
  void MergeChunk(std::int64_t c, std::size_t peer_index);
  void FinishPending();
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> ChunkSpan(
      std::int64_t c) const;

  StageContext* ctx_;
  tensor::Tensor* owner_grads_;
  std::map<int, Segment> segments_;
  std::int64_t emit_frontier_ = 0;  // descending coverage check
  std::optional<PendingReduce> pending_;
  std::vector<HierReduce> hier_;
};

}  // namespace zero::core
