// Partition-aligned gradient bucketing for stages 2 and 3 (Sec 5.2,
// Sec 7.2.1), issued through the communicator's nonblocking request
// layer so in-flight reductions interleave with continued backward
// emission — the overlap the paper's Sec 6.2/7.2.1 schedule assumes.
//
// Backward emits unit gradients top-down; units tile the flat parameter
// space, so emissions form one descending contiguous frontier. Each
// emission is scattered into per-partition staging segments; the moment
// a partition's real elements are fully covered, the segment flushes to
// the partition owner in constant-size buckets (CB, Sec 6.2):
//
//   - Non-owners IsSend their segment chunks straight to the owner and
//     release the segment immediately ("after the reduction we no
//     longer need the gradients and their memory can be released",
//     Sec 5.2). The sends are buffered deposits, so backward continues
//     while the bytes are conceptually in flight — no rank ever blocks
//     on a peer that is still computing.
//   - The owner posts IsRecv requests into per-peer staging and returns
//     to backward. Completed chunks are merged opportunistically on
//     later emissions (Progress) and whatever remains is drained at the
//     end of backward (Drain). For each chunk, peers merge in ascending
//     rank order on top of the owner's own contribution, so the sum
//     bracketing is deterministic.
//
// Per-rank send volume is identical to the ring-reduce schedule this
// replaces: every non-owner sends one shard per partition, the owner
// sends nothing — (Nd-1)/Nd * 2Ψ bytes per step, the paper's stage-2
// accounting. In exact_reductions mode (fp32 testing) the flush
// degrades to the blocking rank-ordered reduce every stage shares.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/stages/stage_strategy.hpp"

namespace zero::core {

class GradBucketizer {
 public:
  // `owner_grads` is the shard-sized persistent gradient store the
  // owner's fully reduced partition lands in; must outlive this object.
  GradBucketizer(StageContext& ctx, tensor::Tensor* owner_grads);

  // Resets the emission frontier; checks no stale state from a prior
  // step survived.
  void BeginStep();
  // Scatter one unit gradient into partition segments; flush any
  // partition this emission completes; make progress on pending
  // reductions this rank owns.
  void Emit(int u, std::span<const float> grad);
  // Blocks until every in-flight reduction completes; verifies backward
  // covered the full parameter space.
  void Drain();
  // Drops all in-flight state without completing it (elastic resume).
  void Reset();

 private:
  struct Segment {
    tensor::Tensor data;       // fp16/fp32 staging for one partition
    std::int64_t covered = 0;  // real elements emitted so far
  };
  // The reduction of this rank's own partition, in flight while backward
  // continues. At most one exists: a rank owns exactly one partition.
  struct PendingReduce {
    tensor::Tensor acc;        // owner's contribution; merge target
    std::vector<int> peers;    // every other group rank, ascending
    std::int64_t num_chunks = 0;
    std::int64_t chunk_elems = 0;
    // Indexed [chunk * peers.size() + peer_index]:
    std::vector<std::vector<std::byte>> staging;
    std::vector<comm::CommRequest> requests;
    // Per-chunk merge cursor into `peers` (rank-order determinism).
    std::vector<std::size_t> next_peer;
    std::int64_t merged_chunks = 0;
  };

  void Flush(int j);
  void FlushExact(int j, Segment& seg);
  // Merges whatever completed chunks Test() can find without blocking
  // (block=false) or everything (block=true).
  void Progress(bool block);
  void MergeChunk(std::int64_t c, std::size_t peer_index);
  void FinishPending();
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> ChunkSpan(
      std::int64_t c) const;

  StageContext* ctx_;
  tensor::Tensor* owner_grads_;
  std::map<int, Segment> segments_;
  std::int64_t emit_frontier_ = 0;  // descending coverage check
  std::optional<PendingReduce> pending_;
};

}  // namespace zero::core
