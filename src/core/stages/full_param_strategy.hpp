// Shared parameter residency for stages 0-2: every rank keeps a full
// (padded) fp16/fp32 replica of the parameters, so AcquireUnit is a
// view — a direct subspan in fp32 mode, or an fp32 widening of the fp16
// storage (the analog of tensor cores reading fp16 operands into fp32
// compute) with per-unit refcounting.
#pragma once

#include <map>
#include <vector>

#include "core/stages/stage_strategy.hpp"

namespace zero::core {

class FullParamStrategy : public StageStrategy {
 public:
  using StageStrategy::StageStrategy;

  void InitParams(std::span<const float> padded_init) override;
  std::span<const float> AcquireUnit(int u, model::Phase phase) override;
  void ReleaseUnit(int u, model::Phase phase) override;
  std::span<Half> UpdateTargetF16() override;
  std::span<float> UpdateTargetF32() override;
  void ImportMasterParams(std::span<const float> padded_master) override;
  void GatherFullParams(std::span<float> out) override;
  [[nodiscard]] std::size_t param_bytes() const override {
    return params_.nbytes();
  }

 protected:
  // Full padded parameter vector -> fp16/fp32 storage.
  void WriteParams(const float* padded_src);
  // No unit may still be widened when backward finishes.
  void CheckUnitsReleased() const;
  // Re-gather the updated fp16/fp32 partition into every rank's full
  // replica (stages 1-2 after the optimizer step; volume Ψ).
  void AllGatherParams();

  tensor::Tensor params_;

 private:
  struct WidenedUnit {
    std::vector<float> f32;  // what the model actually reads
    int refcount = 0;
  };
  std::map<int, WidenedUnit> units_;
};

}  // namespace zero::core
