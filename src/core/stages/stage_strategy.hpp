// Per-stage behavior of the ZeRO-DP engine, factored behind one
// interface (the paper's Sec 5 and Sec 7).
//
// ZeroDpEngine is a thin orchestrator: it owns the machinery every stage
// shares — gradient accumulation, overflow detection and loss scaling,
// gradient clipping, the (possibly partitioned) mixed-precision Adam
// update, optimizer offload accounting, and checkpoint export/import.
// Everything the paper varies *per stage* lives behind StageStrategy,
// along three seams:
//
//   1. Parameter residency (AcquireUnit/ReleaseUnit): full resident copy
//      handed out as a view (stages 0-2) vs. this rank's partition plus
//      broadcast-on-demand materialization of each unit (stage 3).
//   2. The gradient path (EmitUnitGrad): store into a full-size gradient
//      vector (stages 0-1) vs. partition-aligned bucketized reduce to
//      the owner during backward (stages 2-3).
//   3. The post-backward reduction (ReduceGradients): all-reduce vs.
//      reduce-scatter vs. already-reduced-at-owner drain.
//
// One strategy instance exists per engine; the factory maps
//   ZeroStage::kNone -> BaselineDdpStrategy   params 2Ψ | grads 2Ψ
//   ZeroStage::kOs   -> PosStrategy           optimizer KΨ/Nd
//   ZeroStage::kOsG  -> PosGStrategy          + grads 2Ψ/Nd
//   ZeroStage::kOsGP -> PosGPStrategy         + params 2Ψ/Nd
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "alloc/caching_allocator.hpp"
#include "comm/communicator.hpp"
#include "comm/hierarchical.hpp"
#include "core/engine_config.hpp"
#include "core/partition.hpp"
#include "model/flat_model.hpp"
#include "tensor/tensor.hpp"

namespace zero::core {

// Observer for gradient finality during the backward reduction. A
// strategy notifies when a contiguous element range of *this rank's
// reduced gradient shard* holds its final bits (fully reduced, no
// further writes this step): whole-shard after an all-reduce (stages
// 0-1), per merged chunk as the bucketized reduce-to-owner completes
// (stages 2-3). The byte span is in the working dtype and only valid
// for the duration of the call. The offload engine uses this to stream
// gradient slices off the device while backward is still running.
class GradStreamSink {
 public:
  virtual ~GradStreamSink() = default;
  // `bytes` views `numel` elements starting at shard element
  // `begin_elem` (element width = bytes.size() / numel).
  virtual void OnShardGradFinal(std::int64_t begin_elem, std::int64_t numel,
                                std::span<const std::byte> bytes) = 0;
};

// Everything a strategy needs from its engine. Owned by the engine and
// outlives the strategy; strategies hold a pointer.
struct StageContext {
  const EngineConfig* cfg = nullptr;
  model::FlatParamModel* model = nullptr;
  comm::Communicator* dp = nullptr;
  // Topology-aware slices of `dp` (EngineConfig::hierarchical_comm):
  // the intra-node block, plus the cross-node leaders' group on
  // local-rank-0 members only. Null when hierarchical comm is off.
  comm::Communicator* local = nullptr;
  comm::Communicator* leaders = nullptr;
  // Route the stage-0/1 full-gradient all-reduce through the two-level
  // node-aware schedule (EngineConfig::hierarchical_comm). `local` alone
  // no longer implies this: hpZ/qgZ also build node slices.
  bool hierarchical_allreduce = false;
  // ---- ZeRO++ compression, resolved by the engine (fp16 && !exact
  // reductions && the topology requirements hold; see engine_config) ----
  bool qwz = false;  // int8-quantized parameter gathers/broadcasts
  bool hpz = false;  // secondary intra-node shard for backward gathers
  bool qgz = false;  // hierarchical quantized gradient reduce
  std::int64_t quant_block = 64;
  // Equal node size backing hpz/qgz (== local->size() when they are on).
  int node_size = 1;
  alloc::CachingAllocator* device = nullptr;  // null => heap-backed state
  const Partitioner* part = nullptr;
  // Loss scale applied to fp16 gradient emission; the orchestrator
  // refreshes it before each backward pass (dynamic scaling).
  float loss_scale = 1.0f;
  // Deterministic point-to-point tag sequence. SPMD-consistent: every
  // rank advances it at the same call sites, so a value drawn here
  // matches across ranks without negotiation.
  std::uint64_t p2p_tag = 1;
  // When set, strategies report gradient finality here (see
  // GradStreamSink). Rank-local: notifications never touch the
  // communicator, so installing the sink cannot perturb SPMD schedules.
  GradStreamSink* grad_stream = nullptr;

  void NotifyGradFinal(std::int64_t begin_elem, std::int64_t numel,
                       std::span<const std::byte> bytes) const {
    if (grad_stream != nullptr) {
      grad_stream->OnShardGradFinal(begin_elem, numel, bytes);
    }
  }

  [[nodiscard]] int rank() const { return dp->rank(); }
  [[nodiscard]] int nd() const { return dp->size(); }
  [[nodiscard]] DType work_dtype() const {
    return cfg->fp16 ? DType::kF16 : DType::kF32;
  }
  // `device` may be null (heap-backed state, no capacity accounting).
  [[nodiscard]] tensor::Tensor NewDevice(std::int64_t numel, DType dt) const;

  // Deterministic rank-ordered reductions (exact_reductions mode):
  // gather at `root` / rank 0 and sum in rank order 0..Nd-1. The
  // bracketing is independent of which collective schedule a stage uses,
  // so every stage produces bit-identical sums.
  void ExactReduceToRoot(std::span<float> data, int root);
  void ExactAllReduceSum(std::span<float> data);

  // Full-gradient sum all-reduce, routed through the two-level node-
  // aware schedule when hierarchical comm is configured (stage-0
  // baseline path; different bracketing than the flat ring, so only
  // taken when exactness vs flat is not required).
  template <typename T>
  void AllReduceGradSum(std::span<T> data) {
    if (local != nullptr && hierarchical_allreduce) {
      comm::HierarchicalAllReduce(*local, leaders, data,
                                  comm::ReduceOp::kSum);
    } else {
      dp->AllReduce(data, comm::ReduceOp::kSum);
    }
  }
};

class StageStrategy {
 public:
  explicit StageStrategy(StageContext& ctx) : ctx_(&ctx) {}
  virtual ~StageStrategy() = default;
  StageStrategy(const StageStrategy&) = delete;
  StageStrategy& operator=(const StageStrategy&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  // ---- layout facts the orchestrator sizes shared machinery by ----
  // fp16/fp32 working parameters stored as this rank's 1/Nd partition
  // (stage 3) rather than a full replica.
  [[nodiscard]] virtual bool params_partitioned() const { return false; }
  // Reduced gradients, the accumulation buffer, and the optimizer state
  // are 1/Nd-sized (stages 1-3); the baseline keeps them full-size.
  [[nodiscard]] virtual bool state_partitioned() const { return true; }

  // ---- setup ----
  // `padded_init` is the deterministic full initialization, identical on
  // every rank, padded to part->padded_total().
  virtual void InitParams(std::span<const float> padded_init) = 0;

  // ---- seam 1: parameter residency ----
  virtual std::span<const float> AcquireUnit(int u, model::Phase phase) = 0;
  virtual void ReleaseUnit(int u, model::Phase phase) = 0;

  // ---- seam 2: gradient path ----
  virtual void OnStepBegin() = 0;
  virtual void EmitUnitGrad(int u, std::span<const float> grad) = 0;

  // ---- seam 3: post-backward reduction ----
  // Afterwards this rank's reduced gradients are what ReducedF16/F32
  // return; also verifies the model released every unit and covered the
  // full parameter space.
  virtual void ReduceGradients() = 0;

  // ---- optimizer seams ----
  [[nodiscard]] virtual std::span<const Half> ReducedF16() = 0;
  [[nodiscard]] virtual std::span<const float> ReducedF32() = 0;
  // The fp16 (or fp32) parameter span the optimizer updates.
  [[nodiscard]] virtual std::span<Half> UpdateTargetF16() = 0;
  [[nodiscard]] virtual std::span<float> UpdateTargetF32() = 0;
  // Runs only after an applied (non-skipped) optimizer update: stages
  // 1-2 re-gather the updated parameters, stages 2-3 zero their shard.
  virtual void OnUpdateApplied() = 0;

  // ---- checkpoint / introspection ----
  // Rebuilds the working parameters from an imported (padded) fp32
  // master copy.
  virtual void ImportMasterParams(std::span<const float> padded_master) = 0;
  // Drops any in-flight step state (elastic resume aborts mid-step).
  virtual void ResetInFlight() = 0;
  // Materializes the full fp32 parameter vector (collective for
  // stage 3). `out` has part->total() elements.
  virtual void GatherFullParams(std::span<float> out) = 0;
  [[nodiscard]] virtual std::size_t param_bytes() const = 0;
  [[nodiscard]] virtual std::size_t grad_bytes() const = 0;

 protected:
  StageContext* ctx_;
};

// The one place that maps EngineConfig::stage to an implementation.
[[nodiscard]] std::unique_ptr<StageStrategy> MakeStageStrategy(
    StageContext& ctx);

// Store one unit gradient into a full-size gradient vector (the
// stage 0/1 gradient path), applying the loss scale in fp16 mode.
void StoreUnitGradFull(StageContext& ctx, tensor::Tensor& grads, int u,
                       std::span<const float> grad);

}  // namespace zero::core
