#include "core/stages/grad_bucketizer.hpp"

#include <algorithm>
#include <cstring>

#include "comm/nonblocking_collectives.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"
#include "tensor/quantize.hpp"

namespace zero::core {

GradBucketizer::GradBucketizer(StageContext& ctx, tensor::Tensor* owner_grads)
    : ctx_(&ctx), owner_grads_(owner_grads) {}

std::pair<std::int64_t, std::int64_t> GradBucketizer::ChunkSpan(
    std::int64_t c) const {
  const std::int64_t shard = ctx_->part->partition_size();
  const std::int64_t off = c * ctx_->cfg->bucket_elems;
  return {off, std::min(ctx_->cfg->bucket_elems, shard - off)};
}

void GradBucketizer::BeginStep() {
  ZERO_CHECK(segments_.empty(), "stale gradient segments from a prior step");
  ZERO_CHECK(!pending_.has_value() && hier_.empty(),
             "stale in-flight reduction from a prior step");
  // Padding between total() and padded_total() is never emitted; the
  // frontier starts at the top of the real parameter space.
  emit_frontier_ = ctx_->part->total();
}

void GradBucketizer::Emit(int u, std::span<const float> grad) {
  const Partitioner& part = *ctx_->part;
  const auto [ub, ue] = ctx_->model->layout().UnitRange(u);
  // Units tile the flat space and backward completes them from the top
  // down, so emissions form one descending contiguous frontier. The
  // bucketizer relies on this to know when a partition is complete.
  ZERO_CHECK(ue == emit_frontier_,
             "units must be emitted in descending contiguous order");
  emit_frontier_ = ub;

  for (const auto& [j, overlap] : part.Overlaps(Range{ub, ue})) {
    auto [seg_it, created] = segments_.try_emplace(j);
    Segment& seg = seg_it->second;
    if (created) {
      seg.data = ctx_->NewDevice(part.partition_size(), ctx_->work_dtype());
      seg.data.FillZero();
    }
    const std::int64_t local = overlap.begin - part.PartitionRange(j).begin;
    const float* src = grad.data() + (overlap.begin - ub);
    if (ctx_->cfg->fp16) {
      Half* dst = seg.data.f16().data() + local;
      for (std::int64_t i = 0; i < overlap.size(); ++i) {
        dst[i] = Half(src[i] * ctx_->loss_scale);
      }
    } else {
      std::memcpy(seg.data.f32().data() + local, src,
                  static_cast<std::size_t>(overlap.size()) * sizeof(float));
    }
    seg.covered += overlap.size();
    ZERO_CHECK(seg.covered <= part.PartitionRangeClipped(j).size(),
               "partition coverage overflow");
    if (seg.covered == part.PartitionRangeClipped(j).size()) {
      Flush(j);
    }
  }
  // Fold in whatever peer contributions have already arrived for the
  // reduction this rank owns, without blocking backward.
  Progress(/*block=*/false);
}

void GradBucketizer::Flush(int j) {
  TRACE_SPAN("grads/bucket_flush");
  auto it = segments_.find(j);
  ZERO_CHECK(it != segments_.end(), "flushing a partition with no segment");
  Segment seg = std::move(it->second);
  segments_.erase(it);

  if (ctx_->cfg->exact_reductions) {
    FlushExact(j, seg);
    return;
  }
  if (ctx_->qgz && ctx_->nd() > 1) {
    FlushHier(j, seg);
    return;
  }
  if (ctx_->nd() == 1) {
    std::memcpy(owner_grads_->raw(), seg.data.raw(), owner_grads_->nbytes());
    ctx_->NotifyGradFinal(
        0, owner_grads_->numel(),
        std::span<const std::byte>(owner_grads_->raw(),
                                   owner_grads_->nbytes()));
    return;
  }

  // CB (Sec 6.2): issue the reduction in constant-size chunks so the
  // fused communication buffer does not grow with the model. Every rank
  // reaches this flush at the same logical point of its backward, so the
  // tags drawn from the shared sequence line up across ranks.
  const std::int64_t shard = ctx_->part->partition_size();
  const std::size_t elem =
      ctx_->cfg->fp16 ? sizeof(Half) : sizeof(float);
  const std::int64_t num_chunks =
      (shard + ctx_->cfg->bucket_elems - 1) / ctx_->cfg->bucket_elems;

  if (ctx_->rank() == j) {
    ZERO_CHECK(!pending_.has_value(),
               "a rank owns exactly one partition reduction at a time");
    PendingReduce pr;
    pr.acc = std::move(seg.data);
    for (int r = 0; r < ctx_->nd(); ++r) {
      if (r != j) pr.peers.push_back(r);
    }
    pr.num_chunks = num_chunks;
    pr.chunk_elems = ctx_->cfg->bucket_elems;
    const std::size_t npeers = pr.peers.size();
    pr.staging.resize(static_cast<std::size_t>(num_chunks) * npeers);
    pr.requests.resize(static_cast<std::size_t>(num_chunks) * npeers);
    pr.next_peer.assign(static_cast<std::size_t>(num_chunks), 0);
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::uint64_t tag = ctx_->p2p_tag++;
      const auto [off, len] = ChunkSpan(c);
      (void)off;
      for (std::size_t k = 0; k < npeers; ++k) {
        const std::size_t idx = static_cast<std::size_t>(c) * npeers + k;
        pr.staging[idx].resize(static_cast<std::size_t>(len) * elem);
        pr.requests[idx] = ctx_->dp->IsRecvBytes(
            pr.peers[k], std::span<std::byte>(pr.staging[idx]), tag);
      }
    }
    pending_.emplace(std::move(pr));
  } else {
    const std::byte* base = seg.data.raw();
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::uint64_t tag = ctx_->p2p_tag++;
      const auto [off, len] = ChunkSpan(c);
      (void)ctx_->dp->IsSendBytes(
          j,
          std::span<const std::byte>(
              base + static_cast<std::size_t>(off) * elem,
              static_cast<std::size_t>(len) * elem),
          tag);
    }
    // "After the reduction we no longer need the gradients and their
    // memory can be released" (Sec 5.2) — the deposits are buffered, so
    // the segment dies here while the bytes are in flight.
  }
}

void GradBucketizer::FlushExact(int j, Segment& seg) {
  const std::int64_t shard = ctx_->part->partition_size();
  for (std::int64_t off = 0; off < shard; off += ctx_->cfg->bucket_elems) {
    const std::int64_t len = std::min(ctx_->cfg->bucket_elems, shard - off);
    ctx_->ExactReduceToRoot(
        seg.data.f32().subspan(static_cast<std::size_t>(off),
                               static_cast<std::size_t>(len)),
        j);
  }
  if (ctx_->rank() == j) {
    std::memcpy(owner_grads_->raw(), seg.data.raw(), owner_grads_->nbytes());
    ctx_->NotifyGradFinal(
        0, owner_grads_->numel(),
        std::span<const std::byte>(owner_grads_->raw(),
                                   owner_grads_->nbytes()));
  }
}

void GradBucketizer::FlushHier(int j, Segment& seg) {
  TRACE_SPAN("grads/bucket_flush_hier");
  ZERO_CHECK(ctx_->cfg->fp16 && ctx_->local != nullptr,
             "qgZ flush requires fp16 mode and a node slice");
  const std::int64_t shard = ctx_->part->partition_size();
  const std::int64_t num_chunks =
      (shard + ctx_->cfg->bucket_elems - 1) / ctx_->cfg->bucket_elems;
  const int s = ctx_->node_size;
  const int r = ctx_->rank();
  const int lo = j % s;          // owner's local index == relay index
  const int owner_node = j / s;
  const int my_node = r / s;
  const int nodes = ctx_->nd() / s;

  // Every rank draws the same two tags per chunk (intra fold, inter
  // hop) whatever its role, keeping the shared sequence aligned.
  std::vector<std::uint64_t> intra_tags(static_cast<std::size_t>(num_chunks));
  std::vector<std::uint64_t> inter_tags(static_cast<std::size_t>(num_chunks));
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    intra_tags[static_cast<std::size_t>(c)] = ctx_->p2p_tag++;
    inter_tags[static_cast<std::size_t>(c)] = ctx_->p2p_tag++;
  }

  if (r % s != lo) {
    // Non-relay: the fp16 segment chunks go to this node's relay over
    // the intra-node communicator; buffered deposits, segment released.
    const std::byte* base = seg.data.raw();
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const auto [off, len] = ChunkSpan(c);
      (void)ctx_->local->IsSendBytes(
          lo,
          std::span<const std::byte>(
              base + static_cast<std::size_t>(off) * sizeof(Half),
              static_cast<std::size_t>(len) * sizeof(Half)),
          intra_tags[static_cast<std::size_t>(c)]);
    }
    return;
  }

  // Relay (the owner is its own node's relay): widen this rank's
  // contribution to fp32 — the intra-node fold accumulates in full
  // precision, which is what makes the quantized inter-node hop the
  // only lossy link of the path.
  HierReduce h;
  h.partition = j;
  h.owner = (r == j);
  h.num_chunks = num_chunks;
  h.inter_tags = std::move(inter_tags);
  h.acc32.resize(static_cast<std::size_t>(shard));
  tensor::CastHalfToFloat(seg.data.f16().data(), h.acc32.data(), shard);
  for (int k = 0; k < s; ++k) {
    if (k != lo) h.local_peers.push_back(k);
  }
  const std::size_t npeers = h.local_peers.size();
  h.intra_staging.resize(static_cast<std::size_t>(num_chunks) * npeers);
  h.intra_reqs.resize(static_cast<std::size_t>(num_chunks) * npeers);
  h.intra_next.assign(static_cast<std::size_t>(num_chunks), 0);
  h.intra_done.assign(static_cast<std::size_t>(num_chunks), 0);
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const auto [off, len] = ChunkSpan(c);
    (void)off;
    for (std::size_t k = 0; k < npeers; ++k) {
      const std::size_t idx = static_cast<std::size_t>(c) * npeers + k;
      h.intra_staging[idx].resize(static_cast<std::size_t>(len) *
                                  sizeof(Half));
      h.intra_reqs[idx] = ctx_->local->IsRecvBytes(
          h.local_peers[k], std::span<std::byte>(h.intra_staging[idx]),
          intra_tags[static_cast<std::size_t>(c)]);
    }
  }
  if (h.owner) {
    for (int n = 0; n < nodes; ++n) {
      if (n != owner_node) h.remote_relays.push_back(n * s + lo);
    }
    const std::size_t nrelays = h.remote_relays.size();
    h.inter_staging.resize(static_cast<std::size_t>(num_chunks) * nrelays);
    h.inter_reqs.resize(static_cast<std::size_t>(num_chunks) * nrelays);
    h.inter_next.assign(static_cast<std::size_t>(num_chunks), 0);
    h.chunk_final.assign(static_cast<std::size_t>(num_chunks), 0);
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const auto [off, len] = ChunkSpan(c);
      (void)off;
      const std::size_t wire =
          tensor::QuantWireBytes(len, ctx_->quant_block);
      for (std::size_t k = 0; k < nrelays; ++k) {
        const std::size_t idx = static_cast<std::size_t>(c) * nrelays + k;
        h.inter_staging[idx].resize(wire);
        h.inter_reqs[idx] = ctx_->dp->IsRecvBytes(
            h.remote_relays[k], std::span<std::byte>(h.inter_staging[idx]),
            h.inter_tags[static_cast<std::size_t>(c)]);
      }
    }
  }
  (void)my_node;
  hier_.push_back(std::move(h));
}

void GradBucketizer::ProgressHier(bool block) {
  for (HierReduce& h : hier_) {
    const std::size_t npeers = h.local_peers.size();
    const std::size_t nrelays = h.remote_relays.size();
    for (std::int64_t c = 0; c < h.num_chunks; ++c) {
      const auto [off, len] = ChunkSpan(c);
      const std::size_t ci = static_cast<std::size_t>(c);
      // Intra-node fold: widen-add local peers in ascending local-rank
      // order on top of the relay's own contribution.
      while (h.intra_next[ci] < npeers) {
        const std::size_t idx = ci * npeers + h.intra_next[ci];
        comm::CommRequest& req = h.intra_reqs[idx];
        if (block) {
          req.Wait();
        } else if (!req.Test()) {
          break;
        }
        const Half* peer =
            reinterpret_cast<const Half*>(h.intra_staging[idx].data());
        float* acc = h.acc32.data() + off;
        {
          TRACE_SPAN("grads/qgz_fold");
          for (std::int64_t i = 0; i < len; ++i) {
            acc[i] += peer[i].ToFloat();
          }
        }
        h.intra_staging[idx] = std::vector<std::byte>();
        if (++h.intra_next[ci] == npeers) {
          h.intra_done[ci] = 1;
          if (!h.owner) {
            // Remote relay: only the quantized fp32 partial crosses the
            // node boundary. The deposit is buffered; the wire vector
            // can die immediately.
            std::vector<std::byte> wire(
                tensor::QuantWireBytes(len, ctx_->quant_block));
            tensor::QuantizeF32(h.acc32.data() + off, len,
                                ctx_->quant_block, wire.data());
            comm::nb_detail::WireCounters(static_cast<std::size_t>(len),
                                          ctx_->quant_block);
            (void)ctx_->dp->IsSendBytes(h.partition,
                                        std::span<const std::byte>(wire),
                                        h.inter_tags[ci]);
            ++h.done_chunks;
          }
        }
      }
      // Owner inter-node fold: gated on the intra fold so the
      // bracketing (own node, then nodes ascending) is deterministic
      // whatever the arrival order.
      if (h.owner && h.intra_done[ci] != 0) {
        while (h.inter_next[ci] < nrelays) {
          const std::size_t idx = ci * nrelays + h.inter_next[ci];
          comm::CommRequest& req = h.inter_reqs[idx];
          if (block) {
            req.Wait();
          } else if (!req.Test()) {
            break;
          }
          {
            TRACE_SPAN("grads/qgz_fold");
            tensor::DequantizeAddF32(h.inter_staging[idx].data(), len,
                                     ctx_->quant_block,
                                     h.acc32.data() + off);
          }
          h.inter_staging[idx] = std::vector<std::byte>();
          ++h.inter_next[ci];
        }
        if (h.inter_next[ci] == nrelays && h.chunk_final[ci] == 0) {
          // All node partials folded: narrow this chunk of the owner's
          // partition gradient into the persistent store and report
          // finality (the offload stream hook).
          Half* dst = owner_grads_->f16().data() + off;
          tensor::CastFloatToHalf(h.acc32.data() + off, dst, len);
          ctx_->NotifyGradFinal(
              off, len,
              std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(dst),
                  static_cast<std::size_t>(len) * sizeof(Half)));
          h.chunk_final[ci] = 1;
          ++h.done_chunks;
        }
      }
    }
  }
  std::erase_if(hier_, [](const HierReduce& h) {
    return h.done_chunks == h.num_chunks;
  });
}

void GradBucketizer::MergeChunk(std::int64_t c, std::size_t peer_index) {
  PendingReduce& pr = *pending_;
  const auto [off, len] = ChunkSpan(c);
  std::vector<std::byte>& raw =
      pr.staging[static_cast<std::size_t>(c) * pr.peers.size() + peer_index];
  if (ctx_->cfg->fp16) {
    comm::detail::AccumulateInto(
        pr.acc.f16().data() + off,
        reinterpret_cast<const Half*>(raw.data()),
        static_cast<std::size_t>(len), comm::ReduceOp::kSum);
  } else {
    comm::detail::AccumulateInto(
        pr.acc.f32().data() + off,
        reinterpret_cast<const float*>(raw.data()),
        static_cast<std::size_t>(len), comm::ReduceOp::kSum);
  }
  raw = std::vector<std::byte>();  // release the staging early
}

void GradBucketizer::Progress(bool block) {
  if (!hier_.empty()) ProgressHier(block);
  if (!pending_.has_value()) return;
  PendingReduce& pr = *pending_;
  const std::size_t npeers = pr.peers.size();
  for (std::int64_t c = 0; c < pr.num_chunks; ++c) {
    auto& cursor = pr.next_peer[static_cast<std::size_t>(c)];
    // Within a chunk, peers merge in ascending rank order so the sum
    // bracketing (owner, then rank 0, 1, ...) is deterministic no
    // matter the arrival order.
    while (cursor < npeers) {
      comm::CommRequest& req =
          pr.requests[static_cast<std::size_t>(c) * npeers + cursor];
      if (block) {
        req.Wait();
      } else if (!req.Test()) {
        break;
      }
      MergeChunk(c, cursor);
      ++cursor;
      if (cursor == npeers) {
        ++pr.merged_chunks;
        // Every peer is folded in: this chunk of the owner's partition
        // gradient is final and can stream to the offload tier while
        // backward (and the rest of the reduction) continues.
        const auto [off, len] = ChunkSpan(c);
        const std::size_t elem =
            ctx_->cfg->fp16 ? sizeof(Half) : sizeof(float);
        ctx_->NotifyGradFinal(
            off, len,
            std::span<const std::byte>(
                pr.acc.raw() + static_cast<std::size_t>(off) * elem,
                static_cast<std::size_t>(len) * elem));
      }
    }
  }
  if (pr.merged_chunks == pr.num_chunks) {
    FinishPending();
  }
}

void GradBucketizer::FinishPending() {
  // The reduced partition gradient lands in this rank's persistent
  // (1/Nd-sized) gradient store.
  std::memcpy(owner_grads_->raw(), pending_->acc.raw(),
              owner_grads_->nbytes());
  pending_.reset();
}

void GradBucketizer::Drain() {
  ZERO_CHECK(emit_frontier_ == 0 && segments_.empty(),
             "backward did not cover the full parameter space");
  // Time the blocking tail of the reduction: this is the bucket-flush
  // wait the overlap machinery exists to hide.
  const std::uint64_t t0 = obs::TraceNowNs();
  Progress(/*block=*/true);
  static obs::Histogram& drain_us =
      obs::Metrics().histogram("bucket.drain_wait_us");
  drain_us.Observe(static_cast<double>(obs::TraceNowNs() - t0) / 1000.0);
  ZERO_CHECK(!pending_.has_value() && hier_.empty(),
             "in-flight reduction failed to drain");
}

void GradBucketizer::Reset() {
  if (pending_.has_value()) {
    // Cancel before dropping: a chunk that already arrived is drained so
    // it cannot be mistaken for a later step's payload, and the staging
    // buffers are released from the requests before they die.
    for (comm::CommRequest& r : pending_->requests) r.Cancel();
  }
  for (HierReduce& h : hier_) {
    for (comm::CommRequest& r : h.intra_reqs) r.Cancel();
    for (comm::CommRequest& r : h.inter_reqs) r.Cancel();
  }
  segments_.clear();
  pending_.reset();
  hier_.clear();
  emit_frontier_ = 0;
}

}  // namespace zero::core
