// Stage 2 — Pos+g, optimizer state + gradient partitioning (Sec 5.2):
// full fp16 parameter replicas, but each rank keeps only the reduced
// gradients of its own partition (2Ψ/Nd). Unit gradients are bucketized
// and reduced to their partition owners *during* backward through the
// nonblocking request layer; ReduceGradients only drains what is still
// in flight. Total volume stays 2Ψ (Sec 7.2.1).
#pragma once

#include "core/stages/full_param_strategy.hpp"
#include "core/stages/grad_bucketizer.hpp"

namespace zero::core {

class PosGStrategy final : public FullParamStrategy {
 public:
  using FullParamStrategy::FullParamStrategy;

  [[nodiscard]] const char* name() const override { return "pos-g"; }

  void InitParams(std::span<const float> padded_init) override;
  void OnStepBegin() override { bucketizer_->BeginStep(); }
  void EmitUnitGrad(int u, std::span<const float> grad) override {
    bucketizer_->Emit(u, grad);
  }
  void ReduceGradients() override;
  std::span<const Half> ReducedF16() override { return grads_.f16(); }
  std::span<const float> ReducedF32() override { return grads_.f32(); }
  void OnUpdateApplied() override {
    AllGatherParams();
    grads_.FillZero();
  }
  void ResetInFlight() override;
  [[nodiscard]] std::size_t grad_bytes() const override {
    return grads_.nbytes();
  }

 private:
  tensor::Tensor grads_;  // this rank's reduced partition (1/Nd)
  std::optional<GradBucketizer> bucketizer_;
};

}  // namespace zero::core
