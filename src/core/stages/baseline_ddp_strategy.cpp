#include "core/stages/baseline_ddp_strategy.hpp"

#include "obs/trace.hpp"

namespace zero::core {

void BaselineDdpStrategy::InitParams(std::span<const float> padded_init) {
  FullParamStrategy::InitParams(padded_init);
  grads_ = ctx_->NewDevice(ctx_->part->padded_total(), ctx_->work_dtype());
  grads_.FillZero();
}

void BaselineDdpStrategy::EmitUnitGrad(int u, std::span<const float> grad) {
  StoreUnitGradFull(*ctx_, grads_, u, grad);
}

void BaselineDdpStrategy::ReduceGradients() {
  CheckUnitsReleased();
  TRACE_SPAN("grads/all_reduce");
  // All-reduce full gradients in place (node-aware two-level schedule
  // when hierarchical comm is configured).
  if (ctx_->cfg->fp16) {
    ctx_->AllReduceGradSum(grads_.f16());
  } else if (ctx_->cfg->exact_reductions) {
    ctx_->ExactAllReduceSum(grads_.f32());
  } else {
    ctx_->AllReduceGradSum(grads_.f32());
  }
  // The whole (unpartitioned) gradient buffer is final now.
  ctx_->NotifyGradFinal(0, grads_.numel(),
                        std::span<const std::byte>(grads_.raw(),
                                                   grads_.nbytes()));
}

}  // namespace zero::core
