#include "core/stages/pos_strategy.hpp"

#include <cstring>

#include "obs/trace.hpp"

namespace zero::core {

void PosStrategy::InitParams(std::span<const float> padded_init) {
  FullParamStrategy::InitParams(padded_init);
  grads_ = ctx_->NewDevice(ctx_->part->padded_total(), ctx_->work_dtype());
  grads_.FillZero();
  reduced_shard_ =
      ctx_->NewDevice(ctx_->part->partition_size(), ctx_->work_dtype());
  reduced_shard_.FillZero();
}

void PosStrategy::EmitUnitGrad(int u, std::span<const float> grad) {
  StoreUnitGradFull(*ctx_, grads_, u, grad);
}

void PosStrategy::ReduceGradients() {
  CheckUnitsReleased();
  TRACE_SPAN("grads/reduce_scatter");
  // Reduce-scatter into this rank's reduced shard. Volume Ψ; the
  // parameter all-gather after the update is the other Ψ.
  const std::int64_t shard = ctx_->part->partition_size();
  if (ctx_->cfg->fp16) {
    ctx_->dp->ReduceScatter(grads_.f16(), reduced_shard_.f16(),
                            comm::ReduceOp::kSum);
  } else if (ctx_->cfg->exact_reductions) {
    for (int j = 0; j < ctx_->nd(); ++j) {
      const Range pr = ctx_->part->PartitionRange(j);
      ctx_->ExactReduceToRoot(
          grads_.f32().subspan(static_cast<std::size_t>(pr.begin),
                               static_cast<std::size_t>(pr.size())),
          j);
    }
    const Range own = ctx_->part->PartitionRange(ctx_->rank());
    std::memcpy(reduced_shard_.f32().data(),
                grads_.f32().data() + own.begin,
                static_cast<std::size_t>(shard) * sizeof(float));
  } else {
    ctx_->dp->ReduceScatter(grads_.f32(), reduced_shard_.f32(),
                            comm::ReduceOp::kSum);
  }
  // This rank's reduced shard is final now.
  ctx_->NotifyGradFinal(
      0, reduced_shard_.numel(),
      std::span<const std::byte>(reduced_shard_.raw(),
                                 reduced_shard_.nbytes()));
}

}  // namespace zero::core
