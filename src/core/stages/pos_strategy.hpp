// Stage 1 — Pos, optimizer state partitioning (Sec 5.1): full fp16
// parameter and gradient replicas, but each rank updates only its
// partition's optimizer state. Gradients are reduce-scattered at step
// end (volume Ψ); the updated fp16 partition is all-gathered back into
// every replica (the other Ψ) — total 2Ψ, matching baseline (Sec 7.2.1).
#pragma once

#include "core/stages/full_param_strategy.hpp"

namespace zero::core {

class PosStrategy final : public FullParamStrategy {
 public:
  using FullParamStrategy::FullParamStrategy;

  [[nodiscard]] const char* name() const override { return "pos"; }

  void InitParams(std::span<const float> padded_init) override;
  void OnStepBegin() override {}
  void EmitUnitGrad(int u, std::span<const float> grad) override;
  void ReduceGradients() override;
  std::span<const Half> ReducedF16() override { return reduced_shard_.f16(); }
  std::span<const float> ReducedF32() override { return reduced_shard_.f32(); }
  void OnUpdateApplied() override { AllGatherParams(); }
  void ResetInFlight() override { grads_.FillZero(); }
  // Matches the paper's stage-1 grads-2Ψ accounting: the reduce-scatter
  // output shard is transient working state, not a persistent store.
  [[nodiscard]] std::size_t grad_bytes() const override {
    return grads_.nbytes();
  }

 private:
  tensor::Tensor grads_;          // full padded vector
  tensor::Tensor reduced_shard_;  // reduce-scatter output (own partition)
};

}  // namespace zero::core
