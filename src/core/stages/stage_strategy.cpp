#include "core/stages/stage_strategy.hpp"

#include <cstring>
#include <vector>

#include "core/stages/baseline_ddp_strategy.hpp"
#include "core/stages/pos_g_p_strategy.hpp"
#include "core/stages/pos_g_strategy.hpp"
#include "core/stages/pos_strategy.hpp"

namespace zero::core {

tensor::Tensor StageContext::NewDevice(std::int64_t numel, DType dt) const {
  if (device != nullptr) {
    return tensor::Tensor::Device(*device, {numel}, dt);
  }
  return tensor::Tensor::Heap({numel}, dt);
}

void StageContext::ExactReduceToRoot(std::span<float> data, int root) {
  // Gather to root and sum in rank order 0..Nd-1: the bracketing is
  // independent of which collective algorithm a stage uses, so every
  // stage produces bit-identical sums.
  const std::uint64_t tag = p2p_tag++;
  if (rank() == root) {
    std::vector<float> acc(data.size(), 0.0f);
    std::vector<float> incoming(data.size());
    for (int r = 0; r < nd(); ++r) {
      if (r == rank()) {
        for (std::size_t i = 0; i < data.size(); ++i) acc[i] += data[i];
      } else {
        dp->Recv(r, std::span<float>(incoming), tag);
        for (std::size_t i = 0; i < data.size(); ++i) acc[i] += incoming[i];
      }
    }
    std::memcpy(data.data(), acc.data(), data.size_bytes());
  } else {
    dp->Send(root, std::span<const float>(data.data(), data.size()), tag);
  }
}

void StageContext::ExactAllReduceSum(std::span<float> data) {
  ExactReduceToRoot(data, 0);
  dp->Broadcast(data, 0);
}

void StoreUnitGradFull(StageContext& ctx, tensor::Tensor& grads, int u,
                       std::span<const float> grad) {
  const auto [ub, ue] = ctx.model->layout().UnitRange(u);
  (void)ue;
  if (ctx.cfg->fp16) {
    Half* dst = grads.f16().data() + ub;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      dst[i] = Half(grad[i] * ctx.loss_scale);
    }
  } else {
    std::memcpy(grads.f32().data() + ub, grad.data(), grad.size_bytes());
  }
}

std::unique_ptr<StageStrategy> MakeStageStrategy(StageContext& ctx) {
  switch (ctx.cfg->stage) {
    case model::ZeroStage::kNone:
      return std::make_unique<BaselineDdpStrategy>(ctx);
    case model::ZeroStage::kOs:
      return std::make_unique<PosStrategy>(ctx);
    case model::ZeroStage::kOsG:
      return std::make_unique<PosGStrategy>(ctx);
    case model::ZeroStage::kOsGP:
      return std::make_unique<PosGPStrategy>(ctx);
  }
  ZERO_CHECK(false, "unknown ZeRO stage");
  return nullptr;
}

}  // namespace zero::core
