// ZeroTrainer: the library's top-level entry point.
//
// Mirrors the paper's usability claim (Sec 10.4): wrap a model config
// and a ZeRO config, call Train, and the library assembles the cluster —
// DP x MP rank grid, per-rank simulated device memory, communicators,
// ZeRO-DP engine, ZeRO-R checkpoint policy — runs synchronous training
// on a synthetic corpus, and reports losses, memory and communication
// metrics. No model refactoring: the same GptModel runs under every
// stage and every ZeRO-R combination.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "alloc/host_memory.hpp"
#include "comm/topology.hpp"
#include "core/dp_engine.hpp"
#include "model/corpus.hpp"
#include "model/gpt.hpp"
#include "obs/step_report.hpp"

namespace zero::core {

struct ClusterOptions {
  int dp_degree = 2;
  int mp_degree = 1;
  // Per-rank simulated device capacity. Experiments that probe OOM
  // boundaries (max model / max batch) shrink this.
  std::size_t device_capacity_bytes = 256ull << 20;
};

struct ZeroROptions {
  bool activation_checkpointing = false;
  bool partition_activations = false;  // Pa   (needs checkpointing)
  bool cpu_offload = false;            // Pa+cpu (needs Pa)
  bool defrag_arena = false;           // MD: checkpoints in an arena
  std::size_t arena_bytes = 16ull << 20;
};

struct TrainOptions {
  model::GptConfig model;
  EngineConfig engine;
  ClusterOptions cluster;
  ZeroROptions zero_r;
  std::int64_t batch_per_rank = 2;
  int steps = 3;
  std::uint64_t seed = 42;
  int corpus_branching = 3;
  // Evaluate held-out loss every N steps (0 disables). Validation reads
  // a stream no rank trains on; every rank sees identical batches so
  // the (stage-3-collective) EvalLoss stays in lockstep.
  int eval_every = 0;
  int eval_batches = 2;
};

struct RankMetrics {
  int rank = -1;
  ModelStateReport model_states;
  alloc::CacheStats cache;      // peak_cached is the Figure 7 metric
  alloc::DeviceStats device;
  alloc::HostStats host;        // Pa+cpu transfer volume
  comm::CommStats dp_comm;
  comm::CommStats mp_comm;
};

struct TrainResult {
  // Mean training loss across the DP group, one entry per step.
  std::vector<float> losses;
  // Held-out losses, one entry per eval point (eval_every > 0).
  std::vector<float> validation_losses;
  std::vector<RankMetrics> ranks;
  bool oom = false;
  std::string oom_message;
  // Fault outcome: when an injected or detected failure killed the run,
  // the root cause is recorded here instead of thrown (genuine bugs —
  // anything that is not an InjectedFaultError/CommError — still throw).
  bool failed = false;
  std::string failure_message;
  // Flight-recorder post-mortem bundle written for this failure ("" when
  // the recorder was disarmed, the run was healthy, or the flush failed).
  std::string postmortem_dir;
  // Flat parameter space of the per-engine model (after any MP split):
  // logical and partition-padded element counts.
  std::int64_t psi = 0;
  std::int64_t padded_psi = 0;
  // Measured-vs-analytic validation, populated when telemetry is enabled
  // for the run (EngineConfig::telemetry or ZERO_TRACE).
  std::optional<obs::StepReport> report;

  [[nodiscard]] float final_loss() const {
    return losses.empty() ? 0.0f : losses.back();
  }
  // Largest per-rank peak cached device memory — the quantity a real
  // cluster would OOM on first.
  [[nodiscard]] std::size_t MaxPeakCached() const;
  [[nodiscard]] std::uint64_t TotalDpBytesSent() const;
  [[nodiscard]] std::uint64_t TotalMpBytesSent() const;
};

// Runs dp*mp ranks to completion (or symmetric OOM, reported in the
// result rather than thrown). Deterministic for a fixed TrainOptions.
TrainResult TrainGpt(const TrainOptions& options);

}  // namespace zero::core
