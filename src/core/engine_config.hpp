// Configuration of a ZeRO-DP engine (shared by the orchestrator in
// dp_engine.hpp and the per-stage strategies in stages/).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "alloc/tier.hpp"
#include "model/transformer_spec.hpp"
#include "obs/telemetry.hpp"
#include "optim/adam.hpp"
#include "optim/loss_scaler.hpp"

namespace zero::core {

struct EngineConfig {
  model::ZeroStage stage = model::ZeroStage::kOsG;
  bool fp16 = true;
  float loss_scale = 1024.0f;  // static loss scaling (fp16 only)
  // Dynamic loss scaling: overflow steps are skipped globally and the
  // scale adapts (overrides the static loss_scale).
  bool dynamic_loss_scale = false;
  optim::DynamicLossScaler::Config scaler;
  // Gradient accumulation: the optimizer runs every N micro-steps;
  // between them, reduced gradients accumulate into a partitioned fp32
  // buffer (full-size only for the stage-0 baseline).
  int accumulation_steps = 1;
  // Global gradient-norm clipping (0 disables). The norm spans the whole
  // model, so partitioned stages all-reduce their shard norms first.
  float max_grad_norm = 0.0f;
  // Optimizer-state offload to host memory (the direction the paper's
  // Sec 2.2.2 contrasts with and ZeRO-Offload later implemented): the
  // fp32 master/momentum/variance live in CPU memory; each update moves
  // the reduced gradient shard to the host and the updated fp16
  // parameters back, removing the K*Psi/Nd term from device memory at
  // 4 bytes/param/step of PCIe traffic. Shorthand for
  // offload_tier = kHost; the explicit tier below wins when set.
  bool offload_optimizer = false;
  // Storage tier for the fp32 optimizer state (alloc/tier.hpp +
  // core/offload_engine.hpp): kDevice keeps the non-offloaded baseline,
  // kHost streams through host DRAM (ZeRO-Offload), kNvme through the
  // simulated NVMe tier (ZeRO-Infinity). Bit-exact vs kDevice at every
  // stage. Env ZERO_OFFLOAD (host|nvme|1|0) applies when this is
  // kDevice and offload_optimizer is false.
  alloc::TierKind offload_tier = alloc::TierKind::kDevice;
  // Simulated link bandwidth for the offload tier in bytes/second;
  // 0 = instant link (tests). The bench sets PCIe/NVMe-like speeds.
  double offload_bandwidth = 0.0;
  // Streaming granularity of the offload pipeline in fp32 elements per
  // slice: each slice's gradients move D2H, the host Adam updates it,
  // and its parameters move H2D, double-buffered against the next
  // slice's transfers.
  std::int64_t offload_slice_elems = 1 << 15;
  // Stream gradient slices to the host as they become final during
  // backward (record/replay-scheduled, mirroring the prefetcher) rather
  // than at update time. Disabled automatically under accumulation.
  bool offload_eager_grads = true;
  // Budget for gradient bytes staged ahead of the update; staging
  // stops (degrading toward blocking at-update transfers) when a slice
  // would exceed it. 0 = unlimited.
  std::size_t offload_max_inflight_bytes = 0;

  // The tier the engine will actually use once the offload_optimizer
  // shorthand is folded in.
  [[nodiscard]] alloc::TierKind resolved_offload_tier() const {
    if (offload_tier != alloc::TierKind::kDevice) return offload_tier;
    return offload_optimizer ? alloc::TierKind::kHost
                             : alloc::TierKind::kDevice;
  }
  // CB (Sec 6.2): collectives on gradient partitions are issued through
  // a constant-size fused buffer of at most this many elements, rather
  // than one model-size-proportional buffer.
  std::int64_t bucket_elems = 1 << 16;
  // Deterministic rank-ordered reductions (gather, sum in rank order,
  // redistribute). Exact across stages; used by equivalence tests.
  bool exact_reductions = false;
  // Intra-op worker budget for the CPU kernels (tensor/parallel_for.hpp).
  // 0 leaves the process-wide setting alone (env ZERO_INTRAOP_WORKERS,
  // default serial); positive values are clamped so that
  // rank_threads x workers never exceeds the hardware thread count.
  int intra_op_workers = 0;
  optim::AdamConfig adam;

  // ---- communication / compute overlap (stage 3) ----
  // Number of schedule-ahead parameter units kept in flight by the
  // ParamPrefetcher (core/stages/param_prefetcher.hpp): AcquireUnit
  // completes an already-launched nonblocking gather instead of issuing
  // a cold blocking broadcast. 0 (default) keeps the blocking path. The
  // prefetched path is bit-exact vs blocking. Env ZERO_PREFETCH applies
  // when this is 0.
  int prefetch_lookahead = 0;
  // Device-memory budget for in-flight prefetched units, in bytes. 0
  // derives the budget from the group-wide minimum free device memory;
  // lookahead degrades toward blocking when the budget is tight.
  std::size_t prefetch_max_bytes = 0;

  // ---- topology-aware collectives ----
  // Two-level gradient all-reduce (comm/hierarchical.hpp): ring-reduce
  // inside each block of `ranks_per_node` consecutive DP ranks, then
  // across block leaders. Applies to the full-gradient all-reduce of the
  // stage-0 baseline; partitioned stages already reduce shard-wise.
  // Different bracketing than the flat ring, so NOT bit-exact vs flat
  // (and ignored when exact_reductions is set).
  bool hierarchical_comm = false;
  // DP-group ranks per "node" block. <= 1 means flat; a DP degree that
  // does not divide evenly falls back to flat for the schedules that
  // need equal node sizes (hierarchical all-reduce, hpZ, qgZ). Env
  // ZERO_RANKS_PER_NODE applies when this is 1.
  int ranks_per_node = 1;

  // ---- ZeRO++ communication compression (arXiv:2306.10209) ----
  // All three paths require fp16 mode, are lossy-but-deterministic, and
  // are disabled wholesale by exact_reductions (the bit-exact escape
  // hatch). Env knobs ZERO_QWZ / ZERO_HPZ / ZERO_QGZ apply when the
  // fields are false.
  //
  // qwZ: parameter all-gathers/broadcasts (stage-3 unit materialization
  // incl. prefetch, stage-1/2 post-update re-gather) ship blockwise int8
  // codes + fp16 scales instead of the fp16 payload (~3.8x fewer bytes
  // at quant_block 64).
  bool qwz = false;
  // hpZ: each rank additionally keeps a secondary fp16 parameter shard
  // partitioned over its intra-node group (ranks_per_node), captured
  // from forward materializations; stage-3 backward gathers then resolve
  // entirely inside the node group. Forward gathers stay global (they
  // refresh the secondary shard). Needs ranks_per_node > 1.
  bool hpz = false;
  // qgZ: bucketized gradient reduce-scatter goes hierarchical — fp16
  // chunks fold into fp32 at a per-node relay, and only the relay's
  // quantized int8 partial crosses the node boundary to the owner.
  // Needs ranks_per_node > 1. Different bracketing than the flat path,
  // so NOT bit-exact vs qgz=false.
  bool qgz = false;
  // Elements per quantization block for qwZ/qgZ (one fp16 scale each).
  std::int64_t quant_block = 64;
  // Memory budget for the hpZ secondary shard, in bytes per rank. If the
  // shard would exceed it, hpZ disables itself uniformly across the
  // group (the bound is config-derived, so the decision is SPMD-safe).
  // 0 = unlimited.
  std::size_t hpz_max_bytes = 0;

  // Runtime telemetry: tracing/metrics/step-report switches for the run.
  // TelemetryOptions::FromEnv() honors ZERO_TRACE; spans are compiled in
  // regardless and cost ~a relaxed atomic load while disabled.
  obs::TelemetryOptions telemetry;

  // ---- fault tolerance (src/fault/, src/comm/health.hpp) ----
  // Heartbeat-based failure detection: bounded communicator waits with
  // this deadline; a silent peer is declared dead and every survivor
  // unwinds with a typed CommError instead of deadlocking. 0 (default)
  // keeps classic unbounded blocking. Env ZERO_COMM_DEADLINE_MS applies
  // when this is 0.
  std::uint64_t comm_deadline_ms = 0;
  // Elastic checkpointing: every N applied steps, all ranks collectively
  // ExportState and rank 0 writes the Nd-independent TrainingState to
  // checkpoint_path (latest wins). 0 disables.
  int checkpoint_every_n_steps = 0;
  std::string checkpoint_path;
  // Deterministic fault injection, same grammar as the ZERO_FAULT env
  // variable (see fault/fault_plan.hpp). The explicit spec wins over the
  // environment; empty + no env means no injection and no overhead.
  std::string fault_spec;
};

}  // namespace zero::core
