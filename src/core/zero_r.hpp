// ZeRO-R: residual-memory optimizations (Sec 6).
//
//   Pa  — PartitionedCheckpointStore: each MP rank keeps only a 1/Nm
//         slice of every activation checkpoint and all-gathers the full
//         tensor right before the backward recompute needs it (Sec 6.1).
//   Pa+cpu — the same store with host offload: the slice is copied to
//         CPU memory after partitioning and copied back before the
//         gather, reducing device activation memory to ~zero at 2x
//         transfer cost (Sec 6.1 / Sec 8).
//   MD  — ArenaCheckpointStore: checkpoints (long-lived) are bump-
//         allocated into one pre-allocated contiguous arena so they never
//         interleave with short-lived activations in the general
//         allocator (Sec 6.3).
//   CB  — constant-size fused buffers are implemented inside the DP
//         engine (EngineConfig::bucket_elems, Sec 6.2).
//
// All three stores implement model::CheckpointStore, so any combination
// plugs into the GPT runtime unchanged.
#pragma once

#include <map>
#include <vector>

#include "alloc/arena.hpp"
#include "alloc/caching_allocator.hpp"
#include "alloc/host_memory.hpp"
#include "comm/communicator.hpp"
#include "model/checkpoint_store.hpp"

namespace zero::core {

// MD: checkpoints in a contiguous pre-allocated arena.
class ArenaCheckpointStore final : public model::CheckpointStore {
 public:
  explicit ArenaCheckpointStore(alloc::Arena& arena) : arena_(&arena) {}

  std::int64_t Save(int layer, std::span<const float> data) override;
  void Load(std::int64_t handle, std::span<float> out) override;
  void Reset() override;

 private:
  struct Entry {
    float* data = nullptr;
    std::size_t numel = 0;
  };
  alloc::Arena* arena_;
  std::vector<Entry> entries_;
};

// Pa / Pa+cpu: checkpoints partitioned across the MP group, optionally
// offloaded to host memory, reconstructed by all-gather on Load.
class PartitionedCheckpointStore final : public model::CheckpointStore {
 public:
  // `host` non-null enables Pa+cpu. `device` may be null (heap slices,
  // used in tests without capacity accounting). `arena` non-null places
  // device-resident slices in the MD arena instead.
  PartitionedCheckpointStore(comm::Communicator& mp,
                             alloc::CachingAllocator* device,
                             alloc::HostMemory* host,
                             alloc::Arena* arena = nullptr);

  std::int64_t Save(int layer, std::span<const float> data) override;
  void Load(std::int64_t handle, std::span<float> out) override;
  void Reset() override;

  // Device bytes currently held by checkpoint slices (0 under Pa+cpu
  // once offloaded) — the quantity Figures 6-7 track.
  [[nodiscard]] std::size_t DeviceBytesHeld() const;

 private:
  struct Entry {
    std::size_t full_numel = 0;
    std::size_t slice_numel = 0;   // padded slice length
    alloc::CachedBlock device_slice;
    float* arena_slice = nullptr;
    std::vector<float> heap_slice;
    std::size_t host_handle = 0;   // Pa+cpu
    bool offloaded = false;
    [[nodiscard]] const float* slice_data() const;
    [[nodiscard]] float* slice_data();
  };

  comm::Communicator* mp_;
  alloc::CachingAllocator* device_;
  alloc::HostMemory* host_;
  alloc::Arena* arena_;
  std::vector<Entry> entries_;
};

}  // namespace zero::core
