#include "core/zero_r.hpp"

#include <cstring>

#include "common/error.hpp"

namespace zero::core {

// ---------------------------------------------------------------------
// ArenaCheckpointStore (MD)
// ---------------------------------------------------------------------

std::int64_t ArenaCheckpointStore::Save(int layer,
                                        std::span<const float> data) {
  (void)layer;
  Entry e;
  e.numel = data.size();
  e.data = reinterpret_cast<float*>(arena_->Allocate(data.size_bytes()));
  std::memcpy(e.data, data.data(), data.size_bytes());
  entries_.push_back(e);
  return static_cast<std::int64_t>(entries_.size()) - 1;
}

void ArenaCheckpointStore::Load(std::int64_t handle, std::span<float> out) {
  Entry& e = entries_.at(static_cast<std::size_t>(handle));
  ZERO_CHECK(e.numel == out.size(), "checkpoint size mismatch");
  ZERO_CHECK(e.data != nullptr, "checkpoint already consumed");
  std::memcpy(out.data(), e.data, out.size_bytes());
  // Bump space is reclaimed by Reset(), not per-entry; the entry is just
  // marked consumed.
  e.data = nullptr;
}

void ArenaCheckpointStore::Reset() {
  entries_.clear();
  arena_->Reset();
}

// ---------------------------------------------------------------------
// PartitionedCheckpointStore (Pa / Pa+cpu)
// ---------------------------------------------------------------------

const float* PartitionedCheckpointStore::Entry::slice_data() const {
  return const_cast<Entry*>(this)->slice_data();
}

float* PartitionedCheckpointStore::Entry::slice_data() {
  if (arena_slice != nullptr) return arena_slice;
  if (device_slice.valid()) {
    return reinterpret_cast<float*>(device_slice.data());
  }
  return heap_slice.data();
}

PartitionedCheckpointStore::PartitionedCheckpointStore(
    comm::Communicator& mp, alloc::CachingAllocator* device,
    alloc::HostMemory* host, alloc::Arena* arena)
    : mp_(&mp), device_(device), host_(host), arena_(arena) {
  // Arena slices cannot be returned individually, so Pa+cpu (which frees
  // the device copy after offload) does not compose with MD placement.
  ZERO_CHECK(host_ == nullptr || arena_ == nullptr,
             "Pa+cpu does not compose with MD arena placement");
}

std::int64_t PartitionedCheckpointStore::Save(int layer,
                                              std::span<const float> data) {
  (void)layer;
  const int m = mp_->size();
  const int r = mp_->rank();
  Entry e;
  e.full_numel = data.size();
  // Pad so every rank's slice has equal length; only real elements are
  // copied back on Load.
  e.slice_numel = (data.size() + static_cast<std::size_t>(m) - 1) /
                  static_cast<std::size_t>(m);
  const std::size_t begin = e.slice_numel * static_cast<std::size_t>(r);
  const std::size_t bytes = e.slice_numel * sizeof(float);

  float* slice = nullptr;
  if (arena_ != nullptr) {
    e.arena_slice = reinterpret_cast<float*>(arena_->Allocate(bytes));
    slice = e.arena_slice;
  } else if (device_ != nullptr) {
    e.device_slice = device_->Malloc(bytes);
    slice = reinterpret_cast<float*>(e.device_slice.data());
  } else {
    e.heap_slice.resize(e.slice_numel);
    slice = e.heap_slice.data();
  }
  // This rank keeps only its 1/Nm slice; checkpoints are replicated
  // across the MP group at Save time (every MP rank computed the same
  // activations), so no communication happens here.
  for (std::size_t i = 0; i < e.slice_numel; ++i) {
    const std::size_t src = begin + i;
    slice[i] = src < data.size() ? data[src] : 0.0f;
  }

  if (host_ != nullptr) {
    // Pa+cpu: push the slice to host memory and free the device copy.
    e.host_handle =
        host_->Offload(reinterpret_cast<const std::byte*>(slice), bytes);
    e.offloaded = true;
    e.device_slice.Release();
    e.heap_slice.clear();
    e.heap_slice.shrink_to_fit();
  }

  entries_.push_back(std::move(e));
  return static_cast<std::int64_t>(entries_.size()) - 1;
}

void PartitionedCheckpointStore::Load(std::int64_t handle,
                                      std::span<float> out) {
  Entry& e = entries_.at(static_cast<std::size_t>(handle));
  ZERO_CHECK(e.full_numel == out.size(), "checkpoint size mismatch");
  const int m = mp_->size();

  std::vector<float> slice(e.slice_numel);
  if (e.offloaded) {
    host_->Restore(e.host_handle, reinterpret_cast<std::byte*>(slice.data()));
    e.offloaded = false;
  } else {
    std::memcpy(slice.data(), e.slice_data(), e.slice_numel * sizeof(float));
    e.device_slice.Release();
    e.heap_slice.clear();
    e.heap_slice.shrink_to_fit();
  }

  // Re-materialize the replicated activation: one all-gather per
  // checkpoint — the Sec 8 Pa overhead term (volume = message size).
  std::vector<float> gathered(e.slice_numel * static_cast<std::size_t>(m));
  mp_->AllGather(std::span<const float>(slice), std::span<float>(gathered));
  std::memcpy(out.data(), gathered.data(), out.size_bytes());
  e.full_numel = 0;
}

void PartitionedCheckpointStore::Reset() { entries_.clear(); }

std::size_t PartitionedCheckpointStore::DeviceBytesHeld() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    if (e.device_slice.valid()) total += e.device_slice.size();
  }
  return total;
}

}  // namespace zero::core
