// ZeRO-DP: the paper's primary contribution (Sec 5 and Sec 7).
//
// One ZeroDpEngine runs per rank over its data-parallel group. It owns
// all persistent training state for that rank and implements the
// ParamProvider / GradSink contract the model trains through:
//
//   stage 0 (baseline DDP)  params 2Psi | grads 2Psi | opt K*Psi
//     gradients all-reduced at step end; full local Adam.
//   stage 1 (Pos)           params 2Psi | grads 2Psi | opt K*Psi/Nd
//     gradients reduce-scattered; rank updates only its partition's
//     optimizer state; updated fp16 parameters all-gathered.
//   stage 2 (Pos+g)         params 2Psi | grads 2Psi/Nd | opt K*Psi/Nd
//     gradients reduced to their partition owner *during backward* in
//     partition-aligned buckets and released immediately; otherwise as
//     stage 1. Same 2Psi communication volume as baseline (Sec 7.2.1).
//   stage 3 (Pos+g+p)       everything /Nd
//     parameters stored partitioned; each unit is materialized by
//     broadcast from its owners right before use and discarded right
//     after (forward and again in backward), totalling 3Psi volume
//     (Sec 7.2.2). No parameter all-gather at step end.
//
// The engine itself is a thin orchestrator: it runs the machinery every
// stage shares — gradient accumulation, overflow detection and loss
// scaling, gradient clipping, the (possibly partitioned) mixed-precision
// Adam update, offload accounting, and checkpoint export/import.
// Everything the paper varies per stage (parameter residency, the
// gradient path, the post-backward reduction) lives behind the
// StageStrategy picked by MakeStageStrategy at construction; see
// core/stages/stage_strategy.hpp.
//
// Precision: fp16 mode stores parameters and gradients as real fp16
// device tensors with loss scaling and keeps fp32 master+momentum+
// variance in the (possibly partitioned) MixedPrecisionAdam — K = 12.
// fp32 mode exists for exact-equivalence tests, optionally with
// deterministic rank-ordered reductions so every stage produces
// bit-identical trajectories.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "alloc/caching_allocator.hpp"
#include "alloc/host_memory.hpp"
#include "alloc/tier.hpp"
#include "comm/communicator.hpp"
#include "core/engine_config.hpp"
#include "core/partition.hpp"
#include "core/stages/stage_strategy.hpp"
#include "core/state_checkpoint.hpp"
#include "model/flat_model.hpp"
#include "model/transformer_spec.hpp"
#include "optim/adam.hpp"
#include "optim/loss_scaler.hpp"
#include "optim/shard_optimizer.hpp"
#include "tensor/tensor.hpp"

namespace zero::core {

// Persistent per-rank model-state footprint, measured from live tensors.
struct ModelStateReport {
  std::size_t param_bytes = 0;
  std::size_t grad_bytes = 0;
  std::size_t optimizer_bytes = 0;
  bool optimizer_on_host = false;  // offload_optimizer moved it off-device
  [[nodiscard]] std::size_t total() const {
    return param_bytes + grad_bytes + optimizer_bytes;
  }
  [[nodiscard]] std::size_t device_total() const {
    return param_bytes + grad_bytes +
           (optimizer_on_host ? 0 : optimizer_bytes);
  }
};

class ZeroDpEngine final : public model::ParamProvider, public model::GradSink {
 public:
  // `device` may be null (heap-backed state, no capacity accounting).
  // `host_pool` backs the host storage tier when the optimizer is
  // offloaded; null makes the engine own a private pool. All DP ranks
  // must construct with identical config/seed.
  ZeroDpEngine(EngineConfig config, model::FlatParamModel& model,
               comm::Communicator& dp, alloc::CachingAllocator* device,
               std::uint64_t seed, alloc::HostMemory* host_pool = nullptr);
  ~ZeroDpEngine() override;

  // One synchronous data-parallel training step on this rank's
  // microbatch. Collective; all DP ranks must call together. With
  // accumulation_steps > 1, the optimizer (and the stage-1/2 parameter
  // all-gather) only runs on every Nth call.
  float TrainStep(const model::Batch& batch);

  // Forward/backward without touching any training state — gradients are
  // discarded at the sink. Collective for stage 3 (parameters are
  // fetched from their owners); all DP ranks must call together.
  float EvalLoss(const model::Batch& batch);

  // ---- ParamProvider / GradSink (called by the model inside Step) ----
  std::span<const float> AcquireUnit(int u, model::Phase phase) override;
  void ReleaseUnit(int u, model::Phase phase) override;
  void EmitUnitGrad(int u, std::span<const float> grad) override;

  // ---- introspection ----
  [[nodiscard]] ModelStateReport MeasureModelStates() const;
  [[nodiscard]] const Partitioner& partitioner() const { return part_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] std::int64_t steps_taken() const { return steps_; }
  // The loss scale currently applied to emitted gradients.
  [[nodiscard]] float current_loss_scale() const;
  // Optimizer updates skipped due to fp16 overflow (dynamic scaling).
  [[nodiscard]] std::int64_t skipped_steps() const { return skipped_; }
  // Global (clipped-from) gradient norm of the last completed update; 0
  // before the first update or when clipping is off.
  [[nodiscard]] float last_grad_norm() const { return last_grad_norm_; }
  // Host<->device bytes attributable to optimizer offload so far
  // (measured on the storage tier's link; 0 when device-resident).
  [[nodiscard]] std::uint64_t optimizer_transfer_bytes() const {
    return opt_->transfer_bytes();
  }
  // Link ledger of the offload tier; null when device-resident.
  [[nodiscard]] const alloc::ChannelStats* offload_channel_stats() const;
  // The intra-node slice of the DP group; null unless a node-aware
  // schedule (hierarchical all-reduce, hpZ, qgZ) is active. Its
  // CommStats ledger is the intra-node traffic the DP ledger no longer
  // sees — the step report splits measured volume on this boundary.
  [[nodiscard]] const comm::Communicator* local_comm() const {
    return local_comm_.has_value() ? &*local_comm_ : nullptr;
  }
  // The ZeRO++ compression paths actually engaged after the engine
  // resolved fp16/exactness/topology requirements (in qwz/hpz/qgz
  // order).
  [[nodiscard]] bool qwz_active() const { return ctx_.qwz; }
  [[nodiscard]] bool hpz_active() const { return ctx_.hpz; }
  [[nodiscard]] bool qgz_active() const { return ctx_.qgz; }
  // Materializes the full fp32 parameter vector. Collective for stage 3
  // (parameters must be fetched from their owners).
  [[nodiscard]] std::vector<float> GatherFullParams();

  // ---- training-state checkpointing (collective) ----
  // Re-assembles the full, Nd-independent training state (fp32 master
  // parameters, Adam momentum/variance, step clock, loss scale) by
  // all-gathering every rank's shard. All DP ranks must call together;
  // every rank receives the same state. Must not be called mid
  // accumulation cycle.
  [[nodiscard]] TrainingState ExportState();
  // Re-partitions `state` onto this engine — possibly under a different
  // DP degree than it was saved with (elastic resume). Rebuilds the
  // working fp16/fp32 parameters from the imported master copy and
  // resets any in-flight accumulation.
  void ImportState(const TrainingState& state);

 private:
  // -- setup --
  void InitState(std::uint64_t seed);

  void AccumulateReduced();
  [[nodiscard]] bool DetectGlobalOverflow();
  // Returns the multiplicative clip coefficient (1 when disabled) and
  // records last_grad_norm_.
  [[nodiscard]] float ComputeClipCoefficient(float base_scale);
  void ApplyUpdate();

  [[nodiscard]] int rank() const { return dp_->rank(); }
  [[nodiscard]] int nd() const { return dp_->size(); }

  EngineConfig cfg_;
  model::FlatParamModel* model_;
  comm::Communicator* dp_;
  alloc::CachingAllocator* device_;
  alloc::HostMemory* host_pool_;  // backs the host tier (may be owned_host_)
  Partitioner part_;
  std::int64_t steps_ = 0;

  // Node-aware slices of the DP group (EngineConfig::hierarchical_comm):
  // this rank's intra-node block, plus the cross-node leaders' group on
  // local-rank-0 members.
  std::optional<comm::Communicator> local_comm_;
  std::optional<comm::Communicator> leaders_comm_;

  // Per-stage behavior: parameter residency, gradient path, reduction.
  StageContext ctx_;
  std::unique_ptr<StageStrategy> strategy_;

  // fp32 accumulation buffer (allocated only when accumulation_steps >
  // 1): shard-sized for partitioned stages, full for the baseline.
  tensor::Tensor acc_;
  int micro_ = 0;

  // Storage tier behind the optimizer state (device/host/NVMe). Declared
  // before opt_: the offload engine releases its regions into the tier
  // on destruction.
  std::optional<alloc::HostMemory> owned_host_;
  std::unique_ptr<alloc::StorageTier> tier_;
  // Partitioned (stages 1-3) or full (stage 0) optimizer shard:
  // MixedPrecisionAdam on the device tier, the streaming OffloadEngine
  // otherwise.
  std::unique_ptr<optim::ShardOptimizer> opt_;

  std::optional<optim::DynamicLossScaler> scaler_;
  std::int64_t skipped_ = 0;
  float last_grad_norm_ = 0.0f;
};

}  // namespace zero::core
