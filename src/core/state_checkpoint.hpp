// Training-state checkpointing for ZeRO engines.
//
// ZeRO scatters the authoritative training state — fp32 master
// parameters, Adam momentum and variance — across the data-parallel
// group, 1/Nd per rank. A checkpoint must therefore be *re-assembled*
// (all-gather of every shard) on save and *re-partitioned* on load.
// Storing the full, Nd-independent state buys elasticity: a run saved at
// Nd = 4 resumes at Nd = 2 (or 8) and continues the exact same Adam
// trajectory, because the state never depended on the partitioning.
//
// Format: a small versioned header followed by three fp32 arrays
// (master, momentum, variance) of total_numel elements each.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace zero::core {

struct TrainingState {
  std::int64_t total_numel = 0;
  std::int64_t step_count = 0;    // Adam's bias-correction clock
  float loss_scale = 1.0f;        // dynamic scaler position (fp16 runs)
  // Rest of the dynamic scaler's control loop (v2 checkpoints): without
  // the growth countdown, a resumed run re-doubles the scale at the
  // wrong step and its fp16 trajectory diverges from the original.
  std::int32_t scaler_steps_since_backoff = 0;
  std::int64_t scaler_skipped = 0;
  std::int64_t scaler_good = 0;
  std::vector<float> master;
  std::vector<float> momentum;
  std::vector<float> variance;

  [[nodiscard]] std::vector<std::byte> Serialize() const;
  static TrainingState Deserialize(std::span<const std::byte> bytes);

  // Convenience file round trip (used by the examples).
  void SaveToFile(const std::string& path) const;
  static TrainingState LoadFromFile(const std::string& path);

  friend bool operator==(const TrainingState&, const TrainingState&) =
      default;
};

}  // namespace zero::core
