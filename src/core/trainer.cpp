#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "common/logging.hpp"
#include "core/zero_r.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace zero::core {

std::size_t TrainResult::MaxPeakCached() const {
  std::size_t mx = 0;
  for (const RankMetrics& r : ranks) mx = std::max(mx, r.cache.peak_cached);
  return mx;
}

std::uint64_t TrainResult::TotalDpBytesSent() const {
  std::uint64_t total = 0;
  for (const RankMetrics& r : ranks) total += r.dp_comm.bytes_sent;
  return total;
}

std::uint64_t TrainResult::TotalMpBytesSent() const {
  std::uint64_t total = 0;
  for (const RankMetrics& r : ranks) total += r.mp_comm.bytes_sent;
  return total;
}

TrainResult TrainGpt(const TrainOptions& options) {
  const int world_size =
      options.cluster.dp_degree * options.cluster.mp_degree;
  ZERO_CHECK(world_size >= 1, "cluster must have at least one rank");
  ZERO_CHECK(!options.zero_r.partition_activations ||
                 options.zero_r.activation_checkpointing,
             "Pa requires activation checkpointing");
  ZERO_CHECK(!options.zero_r.cpu_offload ||
                 options.zero_r.partition_activations,
             "Pa+cpu requires Pa");

  comm::World world(world_size);
  comm::GridTopology grid(world_size, options.cluster.mp_degree);

  // Fault tolerance: an explicit config spec wins over ZERO_FAULT.
  fault::FaultPlan fault_plan =
      options.engine.fault_spec.empty()
          ? fault::FaultPlan::FromEnv()
          : fault::FaultPlan::Parse(options.engine.fault_spec);
  std::optional<fault::FaultInjector> injector;
  if (!fault_plan.empty()) {
    injector.emplace(std::move(fault_plan), world_size);
    world.SetFaultHooks(&*injector);
  }
  std::uint64_t deadline_ms = options.engine.comm_deadline_ms;
  if (deadline_ms == 0) {
    if (const char* env = std::getenv("ZERO_COMM_DEADLINE_MS")) {
      deadline_ms = std::strtoull(env, nullptr, 10);
    }
  }
  if (deadline_ms != 0) {
    world.SetCommDeadline(std::chrono::milliseconds(deadline_ms));
  }

  // Stage-3 parameter prefetch: explicit config wins over ZERO_PREFETCH.
  EngineConfig engine_cfg = options.engine;
  if (engine_cfg.prefetch_lookahead == 0) {
    if (const char* env = std::getenv("ZERO_PREFETCH")) {
      engine_cfg.prefetch_lookahead =
          static_cast<int>(std::strtol(env, nullptr, 10));
    }
  }

  // ZeRO++ compression paths and the node size they shard over: explicit
  // config wins over the ZERO_QWZ / ZERO_HPZ / ZERO_QGZ /
  // ZERO_RANKS_PER_NODE knobs. The engine still downgrades any flag
  // whose fp16/exactness/topology preconditions don't hold.
  const auto env_flag = [](const char* name) {
    const char* env = std::getenv(name);
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  };
  if (!engine_cfg.qwz) engine_cfg.qwz = env_flag("ZERO_QWZ");
  if (!engine_cfg.hpz) engine_cfg.hpz = env_flag("ZERO_HPZ");
  if (!engine_cfg.qgz) engine_cfg.qgz = env_flag("ZERO_QGZ");
  if (engine_cfg.ranks_per_node == 1) {
    if (const char* env = std::getenv("ZERO_RANKS_PER_NODE")) {
      engine_cfg.ranks_per_node =
          static_cast<int>(std::strtol(env, nullptr, 10));
    }
  }

  // Optimizer-state offload tier: explicit config wins over ZERO_OFFLOAD
  // (host | nvme | 1 | 0). ZERO_OFFLOAD_BW sets the simulated link
  // bandwidth in bytes/second when the config leaves it at 0 (instant).
  if (engine_cfg.resolved_offload_tier() == alloc::TierKind::kDevice) {
    if (const char* env = std::getenv("ZERO_OFFLOAD")) {
      const std::string v(env);
      if (v == "host" || v == "1") {
        engine_cfg.offload_tier = alloc::TierKind::kHost;
      } else if (v == "nvme") {
        engine_cfg.offload_tier = alloc::TierKind::kNvme;
      } else {
        ZERO_CHECK(v == "0" || v.empty(),
                   "ZERO_OFFLOAD must be host, nvme, 1 or 0");
      }
    }
  }
  if (engine_cfg.offload_bandwidth == 0.0) {
    if (const char* env = std::getenv("ZERO_OFFLOAD_BW")) {
      engine_cfg.offload_bandwidth = std::strtod(env, nullptr);
    }
  }

  // Telemetry: explicit config wins; otherwise ZERO_TRACE activates it.
  obs::TelemetryOptions telemetry = options.engine.telemetry;
  telemetry.ResolvePaths();
  if (!telemetry.enabled) {
    const obs::TelemetryOptions env = obs::TelemetryOptions::FromEnv();
    if (env.enabled) telemetry = env;
  }
  if (telemetry.enabled) {
    // Fresh buffers + zeroed metrics so the artifacts describe this run
    // only. Safe here: no rank thread is recording yet.
    obs::SetTraceBufferCapacity(telemetry.trace_buffer_events);
    obs::ResetTrace();
    obs::Metrics().ResetValues();
    obs::EnableTracing();
  }
  // Flight recorder: config wins, ZERO_POSTMORTEM arms it even when full
  // telemetry is off (small bounded ring, flushed only on a fault).
  std::string postmortem_dir = telemetry.postmortem_dir;
  if (postmortem_dir.empty()) {
    if (const char* env = std::getenv("ZERO_POSTMORTEM")) {
      postmortem_dir = env;
    }
  }
  const bool flight_armed = !postmortem_dir.empty();
  const bool flight_owns_tracing = flight_armed && !obs::TracingEnabled();
  if (flight_armed) {
    obs::FlightRecorderOptions fr;
    fr.dir = postmortem_dir;
    obs::EnableFlightRecorder(fr);
  }
  // Rank-0 measurements feeding the step report, captured inside Run.
  double measured_state_bytes = 0;
  double measured_comm_bytes = 0;
  double measured_local_comm_bytes = 0;  // intra-node ledger (hpZ/qgZ)
  double measured_wire_int8 = 0;         // comm.wire.* counter deltas
  double measured_wire_scales = 0;
  bool measured_qwz = false, measured_hpz = false, measured_qgz = false;
  double measured_overlap_frac = -1.0;  // -1 = prefetch off
  std::string measured_offload_tier;    // empty = device-resident
  double measured_host_in_use = 0;
  double measured_host_peak = 0;
  double measured_offload_to_tier = 0;
  double measured_offload_to_device = 0;
  double measured_offload_hidden = -1.0;
  int comm_steps_measured = 0;
  std::vector<std::string> step_metric_snapshots;

  TrainResult result;
  result.losses.assign(static_cast<std::size_t>(options.steps), 0.0f);
  result.ranks.resize(static_cast<std::size_t>(world_size));
  std::mutex result_mutex;

  const comm::World::RunReport run = world.TryRun([&](comm::RankContext&
                                                          ctx) {
    // --- per-rank substrate ---
    alloc::DeviceMemory device_mem(options.cluster.device_capacity_bytes,
                                   "rank" + std::to_string(ctx.rank));
    alloc::CachingAllocator cache(device_mem);
    alloc::HostMemory host_mem;

    comm::Communicator mp = grid.MakeMpComm(ctx);
    comm::Communicator dp = grid.MakeDpComm(ctx);

    RankMetrics metrics;
    metrics.rank = ctx.rank;
    bool rank_oom = false;
    std::string oom_message;
    std::vector<float> local_losses(static_cast<std::size_t>(options.steps),
                                    0.0f);

    try {
      // --- ZeRO-R checkpoint policy ---
      std::optional<alloc::Arena> arena;
      if (options.zero_r.defrag_arena) {
        arena.emplace(device_mem, options.zero_r.arena_bytes, "ckpt-md");
      }
      std::unique_ptr<model::CheckpointStore> store;
      if (options.zero_r.partition_activations) {
        store = std::make_unique<PartitionedCheckpointStore>(
            mp, &cache, options.zero_r.cpu_offload ? &host_mem : nullptr,
            arena ? &*arena : nullptr);
      } else if (arena) {
        store = std::make_unique<ArenaCheckpointStore>(*arena);
      } else {
        store = std::make_unique<model::DeviceCheckpointStore>(&cache);
      }

      // --- model + engine ---
      model::GptSession session;
      session.device = &cache;
      session.checkpoints = store.get();
      session.mp = options.cluster.mp_degree > 1 ? &mp : nullptr;
      model::GptConfig model_cfg = options.model;
      model_cfg.activation_checkpointing =
          options.zero_r.activation_checkpointing;
      model::GptModel gpt(model_cfg, session);

      ZeroDpEngine engine(engine_cfg, gpt, dp, &cache, options.seed,
                          &host_mem);

      // One shared language (table seed); each DP column reads its own
      // shard (stream seed). MP ranks in a column must see identical
      // batches, so only the DP rank enters the stream seed.
      model::MarkovCorpus corpus(options.model.vocab,
                                 options.corpus_branching, options.seed,
                                 static_cast<std::uint64_t>(dp.rank()));

      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(result_mutex);
        result.psi = engine.partitioner().total();
        result.padded_psi = engine.partitioner().padded_total();
      }

      std::vector<float> local_validation;
      // Steady-state comm accounting: step 0 is warm-up (stage 3's first
      // step materializes cold caches), so the delta is rebased after it
      // and the report divides by the remaining steps.
      comm::CommDelta dp_delta(dp);
      std::optional<comm::CommDelta> local_delta;
      if (engine.local_comm() != nullptr) {
        local_delta.emplace(*engine.local_comm());
      }
      double wire_int8_base =
          obs::Metrics().counter("comm.wire.int8_bytes").value();
      double wire_scale_base =
          obs::Metrics().counter("comm.wire.scale_bytes").value();
      int steps_measured = 0;
      std::vector<std::string> local_snapshots;
      for (int s = 0; s < options.steps; ++s) {
        model::Batch batch =
            corpus.NextBatch(options.batch_per_rank, options.model.seq);
        local_losses[static_cast<std::size_t>(s)] = engine.TrainStep(batch);
        if (s == 0 && options.steps > 1) {
          dp_delta.Rebase();
          if (local_delta.has_value()) local_delta->Rebase();
          wire_int8_base =
              obs::Metrics().counter("comm.wire.int8_bytes").value();
          wire_scale_base =
              obs::Metrics().counter("comm.wire.scale_bytes").value();
        } else {
          ++steps_measured;
        }
        if (ctx.rank == 0 && (telemetry.enabled || flight_armed)) {
          std::string snapshot = obs::Metrics().SnapshotJson();
          if (flight_armed) obs::FlightRecorderStepSnapshot(s, snapshot);
          if (telemetry.enabled) {
            local_snapshots.push_back(std::move(snapshot));
          }
        }
        if (options.engine.checkpoint_every_n_steps > 0 &&
            (s + 1) % options.engine.checkpoint_every_n_steps == 0) {
          // Collective: every rank re-assembles the Nd-independent state;
          // rank 0 persists it (latest wins). Covers the DP dimension
          // only — elastic resume under MP > 1 is an open item.
          TRACE_SPAN("fault/checkpoint");
          TrainingState ckpt = engine.ExportState();
          if (ctx.rank == 0 && !options.engine.checkpoint_path.empty()) {
            ckpt.SaveToFile(options.engine.checkpoint_path);
          }
        }
        if (options.eval_every > 0 && (s + 1) % options.eval_every == 0) {
          // Identical validation stream on every rank (collective under
          // stage 3, so all ranks must participate regardless).
          model::MarkovCorpus validation(options.model.vocab,
                                         options.corpus_branching,
                                         options.seed, /*stream=*/999983);
          double val = 0;
          for (int k = 0; k < options.eval_batches; ++k) {
            val += engine.EvalLoss(validation.NextBatch(
                options.batch_per_rank, options.model.seq));
          }
          local_validation.push_back(
              static_cast<float>(val / options.eval_batches));
        }
      }
      metrics.model_states = engine.MeasureModelStates();
      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(result_mutex);
        result.validation_losses = std::move(local_validation);
        measured_state_bytes =
            static_cast<double>(metrics.model_states.total());
        measured_comm_bytes =
            static_cast<double>(dp_delta.Delta().bytes_sent);
        if (local_delta.has_value()) {
          measured_local_comm_bytes =
              static_cast<double>(local_delta->Delta().bytes_sent);
        }
        measured_wire_int8 =
            obs::Metrics().counter("comm.wire.int8_bytes").value() -
            wire_int8_base;
        measured_wire_scales =
            obs::Metrics().counter("comm.wire.scale_bytes").value() -
            wire_scale_base;
        measured_qwz = engine.qwz_active();
        measured_hpz = engine.hpz_active();
        measured_qgz = engine.qgz_active();
        if (engine_cfg.prefetch_lookahead > 0) {
          measured_overlap_frac =
              obs::Metrics().gauge("comm.overlap_frac").value();
        }
        if (engine_cfg.resolved_offload_tier() != alloc::TierKind::kDevice) {
          measured_offload_tier =
              alloc::TierKindName(engine_cfg.resolved_offload_tier());
          const alloc::HostStats hs = host_mem.Stats();
          measured_host_in_use = static_cast<double>(hs.in_use);
          measured_host_peak = static_cast<double>(hs.peak_in_use);
          if (const alloc::ChannelStats* cs =
                  engine.offload_channel_stats()) {
            measured_offload_to_tier =
                static_cast<double>(cs->bytes_to_tier);
            measured_offload_to_device =
                static_cast<double>(cs->bytes_to_device);
            measured_offload_hidden = cs->hidden_fraction();
          }
        }
        comm_steps_measured = steps_measured;
        step_metric_snapshots = std::move(local_snapshots);
      }
    } catch (const DeviceOomError& e) {
      // Experiment configs are symmetric across ranks, so every rank hits
      // the same OOM at the same point; record it instead of crashing.
      rank_oom = true;
      oom_message = e.what();
    }

    metrics.cache = cache.Stats();
    metrics.device = device_mem.Stats();
    metrics.host = host_mem.Stats();
    metrics.dp_comm = dp.stats();
    metrics.mp_comm = mp.stats();

    std::lock_guard<std::mutex> lock(result_mutex);
    result.ranks[static_cast<std::size_t>(ctx.rank)] = metrics;
    if (rank_oom && !result.oom) {
      result.oom = true;
      result.oom_message = oom_message;
    }
    if (!rank_oom && grid.MpRank(ctx.rank) == 0) {
      // Average losses over the DP group (MP ranks share the same loss).
      for (int s = 0; s < options.steps; ++s) {
        result.losses[static_cast<std::size_t>(s)] +=
            local_losses[static_cast<std::size_t>(s)] /
            static_cast<float>(options.cluster.dp_degree);
      }
    }
  });

  if (!run.ok()) {
    // Injected faults and comm failures are expected outcomes of a
    // fault-injection run: report them. Anything else is a real bug and
    // keeps the old throwing behavior.
    const std::exception_ptr root = run.RootCause();
    bool fault_like = false;
    std::string message = "unknown failure";
    try {
      std::rethrow_exception(root);
    } catch (const InjectedFaultError& e) {
      fault_like = true;
      message = e.what();
    } catch (const CommError& e) {
      fault_like = true;
      message = e.what();
    } catch (...) {
    }
    if (!fault_like) {
      if (flight_armed) obs::DisableFlightRecorder();
      if (flight_owns_tracing) obs::DisableTracing();
      std::rethrow_exception(root);
    }
    result.failed = true;
    result.failure_message = message;
    result.losses.clear();
    // Abort cascade epilogue: all rank threads have joined, so the rings
    // are stable — flush the black box before anything resets it.
    if (flight_armed) {
      result.postmortem_dir = obs::FlushFlightRecorder(message);
    }
  }
  if (flight_armed) obs::DisableFlightRecorder();
  if (flight_owns_tracing) obs::DisableTracing();

  if (result.oom) result.losses.clear();

  if (telemetry.enabled) {
    obs::DisableTracing();
    if (!telemetry.trace_path.empty()) {
      obs::WriteChromeTraceFile(telemetry.trace_path);
    }
    // Merged cross-rank view: built once, feeds both the timeline
    // artifact and the critical-path anatomy in the report.
    const obs::Timeline timeline = obs::BuildTimeline(obs::CollectEvents());
    if (!telemetry.timeline_path.empty()) {
      std::ofstream f(telemetry.timeline_path,
                      std::ios::binary | std::ios::trunc);
      if (f) {
        f << obs::TimelineChromeJson(timeline);
      } else {
        ZLOG_ERROR << "cannot open timeline output "
                   << telemetry.timeline_path;
      }
    }
    if (!telemetry.metrics_path.empty() && !step_metric_snapshots.empty()) {
      std::ofstream f(telemetry.metrics_path,
                      std::ios::binary | std::ios::trunc);
      if (f) {
        f << "[\n";
        for (std::size_t i = 0; i < step_metric_snapshots.size(); ++i) {
          f << step_metric_snapshots[i];
          if (i + 1 < step_metric_snapshots.size()) f << ",";
          f << "\n";
        }
        f << "]\n";
      } else {
        ZLOG_ERROR << "cannot open metrics output " << telemetry.metrics_path;
      }
    }
    if (!result.oom && comm_steps_measured > 0) {
      obs::StepReportInputs in;
      in.stage = static_cast<int>(options.engine.stage);
      in.nd = options.cluster.dp_degree;
      in.fp16 = options.engine.fp16;
      in.psi = static_cast<double>(result.psi);
      in.padded_psi = static_cast<double>(result.padded_psi);
      in.measured_state_bytes = measured_state_bytes;
      in.measured_comm_bytes = measured_comm_bytes;
      in.steps = comm_steps_measured;
      in.overlap_frac = measured_overlap_frac;
      in.offload_tier = measured_offload_tier;
      in.host_in_use_bytes = measured_host_in_use;
      in.host_peak_bytes = measured_host_peak;
      in.offload_bytes_to_tier = measured_offload_to_tier;
      in.offload_bytes_to_device = measured_offload_to_device;
      in.offload_hidden_frac = measured_offload_hidden;
      in.qwz = measured_qwz;
      in.hpz = measured_hpz;
      in.qgz = measured_qgz;
      in.quant_block = engine_cfg.quant_block;
      in.ranks_per_node = engine_cfg.ranks_per_node;
      in.measured_local_comm_bytes = measured_local_comm_bytes;
      in.wire_int8_bytes = measured_wire_int8;
      in.wire_scale_bytes = measured_wire_scales;
      in.world_size = world_size;
      in.trace_dropped_events =
          static_cast<double>(timeline.dropped_events);
      // Step anatomy: same warm-up convention as the comm ledger — drop
      // step 0 from the averages when more than one step was traced.
      const std::vector<obs::StepAnatomy> anatomy =
          obs::AnalyzeSteps(timeline);
      const obs::AnatomySummary summary =
          obs::SummarizeAnatomy(anatomy, anatomy.size() > 1 ? 1 : 0);
      in.anatomy_steps = summary.steps;
      in.straggler_rank = summary.straggler_rank;
      in.straggler_steps = summary.straggler_steps;
      for (const obs::RankAggregate& ra : summary.ranks) {
        obs::StepReportInputs::RankAnatomy a;
        a.rank = ra.rank;
        a.step_ms = ra.step_ms;
        a.compute_ms = ra.compute_ms;
        a.comm_ms = ra.comm_ms;
        a.stall_ms = ra.stall_ms;
        a.offload_ms = ra.offload_ms;
        a.critical_ms = ra.critical_ms;
        if (engine_cfg.prefetch_lookahead > 0) {
          a.overlap_frac =
              obs::Metrics()
                  .gauge("comm.overlap_frac.rank" + std::to_string(ra.rank))
                  .value();
        }
        in.anatomy_ranks.push_back(a);
      }
      obs::StepReport report = obs::BuildStepReport(in);
      if (telemetry.validate) {
        ZLOG_INFO << "step report: " << report.Summary();
        for (const std::string& d : report.divergences) {
          ZLOG_WARN << "paper-equation divergence: " << d;
        }
      }
      if (!telemetry.report_path.empty()) {
        std::ofstream f(telemetry.report_path,
                        std::ios::binary | std::ios::trunc);
        if (f) {
          f << report.ToJson() << "\n";
        } else {
          ZLOG_ERROR << "cannot open report output " << telemetry.report_path;
        }
      }
      result.report = std::move(report);
    }
  }
  return result;
}

}  // namespace zero::core
