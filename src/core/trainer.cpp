#include "core/trainer.hpp"

#include <algorithm>
#include <mutex>

#include "core/zero_r.hpp"

namespace zero::core {

std::size_t TrainResult::MaxPeakCached() const {
  std::size_t mx = 0;
  for (const RankMetrics& r : ranks) mx = std::max(mx, r.cache.peak_cached);
  return mx;
}

std::uint64_t TrainResult::TotalDpBytesSent() const {
  std::uint64_t total = 0;
  for (const RankMetrics& r : ranks) total += r.dp_comm.bytes_sent;
  return total;
}

std::uint64_t TrainResult::TotalMpBytesSent() const {
  std::uint64_t total = 0;
  for (const RankMetrics& r : ranks) total += r.mp_comm.bytes_sent;
  return total;
}

TrainResult TrainGpt(const TrainOptions& options) {
  const int world_size =
      options.cluster.dp_degree * options.cluster.mp_degree;
  ZERO_CHECK(world_size >= 1, "cluster must have at least one rank");
  ZERO_CHECK(!options.zero_r.partition_activations ||
                 options.zero_r.activation_checkpointing,
             "Pa requires activation checkpointing");
  ZERO_CHECK(!options.zero_r.cpu_offload ||
                 options.zero_r.partition_activations,
             "Pa+cpu requires Pa");

  comm::World world(world_size);
  comm::GridTopology grid(world_size, options.cluster.mp_degree);

  TrainResult result;
  result.losses.assign(static_cast<std::size_t>(options.steps), 0.0f);
  result.ranks.resize(static_cast<std::size_t>(world_size));
  std::mutex result_mutex;

  world.Run([&](comm::RankContext& ctx) {
    // --- per-rank substrate ---
    alloc::DeviceMemory device_mem(options.cluster.device_capacity_bytes,
                                   "rank" + std::to_string(ctx.rank));
    alloc::CachingAllocator cache(device_mem);
    alloc::HostMemory host_mem;

    comm::Communicator mp = grid.MakeMpComm(ctx);
    comm::Communicator dp = grid.MakeDpComm(ctx);

    RankMetrics metrics;
    metrics.rank = ctx.rank;
    bool rank_oom = false;
    std::string oom_message;
    std::vector<float> local_losses(static_cast<std::size_t>(options.steps),
                                    0.0f);

    try {
      // --- ZeRO-R checkpoint policy ---
      std::optional<alloc::Arena> arena;
      if (options.zero_r.defrag_arena) {
        arena.emplace(device_mem, options.zero_r.arena_bytes, "ckpt-md");
      }
      std::unique_ptr<model::CheckpointStore> store;
      if (options.zero_r.partition_activations) {
        store = std::make_unique<PartitionedCheckpointStore>(
            mp, &cache, options.zero_r.cpu_offload ? &host_mem : nullptr,
            arena ? &*arena : nullptr);
      } else if (arena) {
        store = std::make_unique<ArenaCheckpointStore>(*arena);
      } else {
        store = std::make_unique<model::DeviceCheckpointStore>(&cache);
      }

      // --- model + engine ---
      model::GptSession session;
      session.device = &cache;
      session.checkpoints = store.get();
      session.mp = options.cluster.mp_degree > 1 ? &mp : nullptr;
      model::GptConfig model_cfg = options.model;
      model_cfg.activation_checkpointing =
          options.zero_r.activation_checkpointing;
      model::GptModel gpt(model_cfg, session);

      ZeroDpEngine engine(options.engine, gpt, dp, &cache, options.seed);

      // One shared language (table seed); each DP column reads its own
      // shard (stream seed). MP ranks in a column must see identical
      // batches, so only the DP rank enters the stream seed.
      model::MarkovCorpus corpus(options.model.vocab,
                                 options.corpus_branching, options.seed,
                                 static_cast<std::uint64_t>(dp.rank()));

      std::vector<float> local_validation;
      for (int s = 0; s < options.steps; ++s) {
        model::Batch batch =
            corpus.NextBatch(options.batch_per_rank, options.model.seq);
        local_losses[static_cast<std::size_t>(s)] = engine.TrainStep(batch);
        if (options.eval_every > 0 && (s + 1) % options.eval_every == 0) {
          // Identical validation stream on every rank (collective under
          // stage 3, so all ranks must participate regardless).
          model::MarkovCorpus validation(options.model.vocab,
                                         options.corpus_branching,
                                         options.seed, /*stream=*/999983);
          double val = 0;
          for (int k = 0; k < options.eval_batches; ++k) {
            val += engine.EvalLoss(validation.NextBatch(
                options.batch_per_rank, options.model.seq));
          }
          local_validation.push_back(
              static_cast<float>(val / options.eval_batches));
        }
      }
      metrics.model_states = engine.MeasureModelStates();
      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(result_mutex);
        result.validation_losses = std::move(local_validation);
      }
    } catch (const DeviceOomError& e) {
      // Experiment configs are symmetric across ranks, so every rank hits
      // the same OOM at the same point; record it instead of crashing.
      rank_oom = true;
      oom_message = e.what();
    }

    metrics.cache = cache.Stats();
    metrics.device = device_mem.Stats();
    metrics.host = host_mem.Stats();
    metrics.dp_comm = dp.stats();
    metrics.mp_comm = mp.stats();

    std::lock_guard<std::mutex> lock(result_mutex);
    result.ranks[static_cast<std::size_t>(ctx.rank)] = metrics;
    if (rank_oom && !result.oom) {
      result.oom = true;
      result.oom_message = oom_message;
    }
    if (!rank_oom && grid.MpRank(ctx.rank) == 0) {
      // Average losses over the DP group (MP ranks share the same loss).
      for (int s = 0; s < options.steps; ++s) {
        result.losses[static_cast<std::size_t>(s)] +=
            local_losses[static_cast<std::size_t>(s)] /
            static_cast<float>(options.cluster.dp_degree);
      }
    }
  });

  if (result.oom) result.losses.clear();
  return result;
}

}  // namespace zero::core
