#include "core/state_checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace zero::core {

namespace {

constexpr std::uint64_t kMagic = 0x5A45524F434B5054ull;  // "ZEROCKPT"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::int64_t total_numel = 0;
  std::int64_t step_count = 0;
  float loss_scale = 1.0f;
  float pad = 0.0f;
};
static_assert(sizeof(Header) == 40, "header layout must stay stable");

}  // namespace

std::vector<std::byte> TrainingState::Serialize() const {
  ZERO_CHECK(master.size() == static_cast<std::size_t>(total_numel) &&
                 momentum.size() == master.size() &&
                 variance.size() == master.size(),
             "inconsistent state array sizes");
  Header header;
  header.total_numel = total_numel;
  header.step_count = step_count;
  header.loss_scale = loss_scale;

  const std::size_t array_bytes = master.size() * sizeof(float);
  std::vector<std::byte> out(sizeof(Header) + 3 * array_bytes);
  std::byte* p = out.data();
  std::memcpy(p, &header, sizeof(Header));
  p += sizeof(Header);
  std::memcpy(p, master.data(), array_bytes);
  p += array_bytes;
  std::memcpy(p, momentum.data(), array_bytes);
  p += array_bytes;
  std::memcpy(p, variance.data(), array_bytes);
  return out;
}

TrainingState TrainingState::Deserialize(std::span<const std::byte> bytes) {
  ZERO_CHECK(bytes.size() >= sizeof(Header), "checkpoint truncated");
  Header header;
  std::memcpy(&header, bytes.data(), sizeof(Header));
  ZERO_CHECK(header.magic == kMagic, "not a ZeRO checkpoint");
  ZERO_CHECK(header.version == kVersion, "unsupported checkpoint version");
  ZERO_CHECK(header.total_numel >= 0, "corrupt checkpoint header");

  const std::size_t array_bytes =
      static_cast<std::size_t>(header.total_numel) * sizeof(float);
  ZERO_CHECK(bytes.size() == sizeof(Header) + 3 * array_bytes,
             "checkpoint size does not match its header");

  TrainingState state;
  state.total_numel = header.total_numel;
  state.step_count = header.step_count;
  state.loss_scale = header.loss_scale;
  state.master.resize(static_cast<std::size_t>(header.total_numel));
  state.momentum.resize(state.master.size());
  state.variance.resize(state.master.size());
  const std::byte* p = bytes.data() + sizeof(Header);
  std::memcpy(state.master.data(), p, array_bytes);
  p += array_bytes;
  std::memcpy(state.momentum.data(), p, array_bytes);
  p += array_bytes;
  std::memcpy(state.variance.data(), p, array_bytes);
  return state;
}

void TrainingState::SaveToFile(const std::string& path) const {
  const std::vector<std::byte> bytes = Serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ZERO_CHECK(out.good(), "cannot open checkpoint file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ZERO_CHECK(out.good(), "checkpoint write failed: " + path);
}

TrainingState TrainingState::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ZERO_CHECK(in.good(), "cannot open checkpoint file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  ZERO_CHECK(in.good(), "checkpoint read failed: " + path);
  return Deserialize(bytes);
}

}  // namespace zero::core
