#include "core/state_checkpoint.hpp"

#include <cstddef>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace zero::core {

namespace {

constexpr std::uint64_t kMagic = 0x5A45524F434B5054ull;  // "ZEROCKPT"
// v2 extends the header with the dynamic loss scaler's full control
// loop; v1 checkpoints (40-byte header) still load with those fields
// defaulted to a freshly-backed-off scaler.
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kV1HeaderBytes = 40;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::int64_t total_numel = 0;
  std::int64_t step_count = 0;
  float loss_scale = 1.0f;
  float pad = 0.0f;
  // --- v2 fields (absent from v1 files) ---
  std::int32_t scaler_steps_since_backoff = 0;
  std::int32_t pad2 = 0;
  std::int64_t scaler_skipped = 0;
  std::int64_t scaler_good = 0;
};
static_assert(sizeof(Header) == 64, "header layout must stay stable");
static_assert(offsetof(Header, scaler_steps_since_backoff) == kV1HeaderBytes,
              "v2 fields must start exactly where the v1 header ended");

}  // namespace

std::vector<std::byte> TrainingState::Serialize() const {
  ZERO_CHECK(master.size() == static_cast<std::size_t>(total_numel) &&
                 momentum.size() == master.size() &&
                 variance.size() == master.size(),
             "inconsistent state array sizes");
  Header header;
  header.total_numel = total_numel;
  header.step_count = step_count;
  header.loss_scale = loss_scale;
  header.scaler_steps_since_backoff = scaler_steps_since_backoff;
  header.scaler_skipped = scaler_skipped;
  header.scaler_good = scaler_good;

  const std::size_t array_bytes = master.size() * sizeof(float);
  std::vector<std::byte> out(sizeof(Header) + 3 * array_bytes);
  std::byte* p = out.data();
  std::memcpy(p, &header, sizeof(Header));
  p += sizeof(Header);
  std::memcpy(p, master.data(), array_bytes);
  p += array_bytes;
  std::memcpy(p, momentum.data(), array_bytes);
  p += array_bytes;
  std::memcpy(p, variance.data(), array_bytes);
  return out;
}

TrainingState TrainingState::Deserialize(std::span<const std::byte> bytes) {
  ZERO_CHECK(bytes.size() >= kV1HeaderBytes, "checkpoint truncated");
  Header header;
  std::memcpy(&header, bytes.data(), kV1HeaderBytes);
  ZERO_CHECK(header.magic == kMagic, "not a ZeRO checkpoint");
  ZERO_CHECK(header.version == 1 || header.version == kVersion,
             "unsupported checkpoint version");
  ZERO_CHECK(header.total_numel >= 0, "corrupt checkpoint header");
  const std::size_t header_bytes =
      header.version == 1 ? kV1HeaderBytes : sizeof(Header);
  ZERO_CHECK(bytes.size() >= header_bytes, "checkpoint truncated");
  if (header.version == kVersion) {
    std::memcpy(&header, bytes.data(), sizeof(Header));
  }

  const std::size_t array_bytes =
      static_cast<std::size_t>(header.total_numel) * sizeof(float);
  ZERO_CHECK(bytes.size() == header_bytes + 3 * array_bytes,
             "checkpoint size does not match its header");

  TrainingState state;
  state.total_numel = header.total_numel;
  state.step_count = header.step_count;
  state.loss_scale = header.loss_scale;
  state.scaler_steps_since_backoff = header.scaler_steps_since_backoff;
  state.scaler_skipped = header.scaler_skipped;
  state.scaler_good = header.scaler_good;
  state.master.resize(static_cast<std::size_t>(header.total_numel));
  state.momentum.resize(state.master.size());
  state.variance.resize(state.master.size());
  const std::byte* p = bytes.data() + header_bytes;
  std::memcpy(state.master.data(), p, array_bytes);
  p += array_bytes;
  std::memcpy(state.momentum.data(), p, array_bytes);
  p += array_bytes;
  std::memcpy(state.variance.data(), p, array_bytes);
  return state;
}

void TrainingState::SaveToFile(const std::string& path) const {
  const std::vector<std::byte> bytes = Serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ZERO_CHECK(out.good(), "cannot open checkpoint file for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ZERO_CHECK(out.good(), "checkpoint write failed: " + path);
}

TrainingState TrainingState::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ZERO_CHECK(in.good(), "cannot open checkpoint file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  ZERO_CHECK(in.good(), "checkpoint read failed: " + path);
  return Deserialize(bytes);
}

}  // namespace zero::core
