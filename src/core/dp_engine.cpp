#include "core/dp_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "comm/topology.hpp"
#include "core/offload_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"
#include "tensor/parallel_for.hpp"
#include "tensor/quantize.hpp"

namespace zero::core {

using model::Phase;
using tensor::Tensor;

ZeroDpEngine::ZeroDpEngine(EngineConfig config, model::FlatParamModel& model,
                           comm::Communicator& dp,
                           alloc::CachingAllocator* device, std::uint64_t seed,
                           alloc::HostMemory* host_pool)
    : cfg_(config),
      model_(&model),
      dp_(&dp),
      device_(device),
      host_pool_(host_pool),
      part_(model.layout().total_numel(), dp.size()) {
  ZERO_CHECK(!cfg_.exact_reductions || !cfg_.fp16,
             "exact_reductions requires fp32 mode");
  ZERO_CHECK(cfg_.bucket_elems > 0, "bucket size must be positive");
  if (cfg_.intra_op_workers > 0) {
    // One engine per rank thread runs concurrently; divide the machine
    // so rank_threads x workers never oversubscribes it. (The worker
    // count is deliberately not part of the numeric contract — kernels
    // are bitwise-identical at any setting.)
    const int budget =
        std::max(1, tensor::HardwareConcurrency() / dp.size());
    tensor::SetIntraOpWorkers(std::min(cfg_.intra_op_workers, budget));
  }
  InitState(seed);
}

ZeroDpEngine::~ZeroDpEngine() = default;

void ZeroDpEngine::InitState(std::uint64_t seed) {
  const std::int64_t padded = part_.padded_total();
  const std::int64_t shard = part_.partition_size();
  const Range own = part_.PartitionRange(rank());

  // Deterministic full initialization, identical on every DP rank.
  std::vector<float> init(static_cast<std::size_t>(padded), 0.0f);
  model_->InitParameters(
      std::span<float>(init.data(), static_cast<std::size_t>(part_.total())),
      seed);

  ctx_.cfg = &cfg_;
  ctx_.model = model_;
  ctx_.dp = dp_;
  ctx_.device = device_;
  ctx_.part = &part_;
  // ---- resolve the node topology + ZeRO++ compression flags ----
  // Every node-aware schedule needs equal node sizes; an uneven DP
  // degree falls back to flat (NodeTopology itself degrades cleanly but
  // the two-level shard math would not).
  const bool nodes_uniform = cfg_.ranks_per_node > 1 && nd() > 1 &&
                             nd() % cfg_.ranks_per_node == 0;
  // exact_reductions is the bit-exact escape hatch: it disables every
  // lossy or re-bracketed path wholesale, qwZ/hpZ/qgZ included.
  const bool lossy_ok = cfg_.fp16 && !cfg_.exact_reductions;
  ctx_.qwz = cfg_.qwz && lossy_ok && nd() > 1;
  ctx_.hpz = cfg_.hpz && lossy_ok && nodes_uniform &&
             cfg_.stage == model::ZeroStage::kOsGP;
  ctx_.qgz = cfg_.qgz && lossy_ok && nodes_uniform &&
             (cfg_.stage == model::ZeroStage::kOsG ||
              cfg_.stage == model::ZeroStage::kOsGP);
  ctx_.quant_block =
      std::clamp<std::int64_t>(cfg_.quant_block, 1, tensor::kMaxQuantBlock);
  ctx_.hierarchical_allreduce =
      cfg_.hierarchical_comm && nodes_uniform && !cfg_.exact_reductions;
  if (ctx_.hierarchical_allreduce || ctx_.hpz || ctx_.qgz) {
    // Slice the DP group into node-sized blocks: the two-level gradient
    // all-reduce, the hpZ secondary shard and the qgZ intra-node fold
    // all run on the local slice (leaders only exist for the former).
    comm::NodeTopology topo(*dp_, cfg_.ranks_per_node);
    local_comm_.emplace(topo.MakeLocalComm(dp_->context()));
    if (ctx_.hierarchical_allreduce && topo.IsLeader(rank())) {
      leaders_comm_.emplace(topo.MakeLeadersComm(dp_->context()));
    }
    ctx_.local = &*local_comm_;
    ctx_.leaders = leaders_comm_.has_value() ? &*leaders_comm_ : nullptr;
    ctx_.node_size = cfg_.ranks_per_node;
  }
  strategy_ = MakeStageStrategy(ctx_);
  strategy_->InitParams(init);

  if (cfg_.accumulation_steps > 1) {
    acc_ = ctx_.NewDevice(strategy_->state_partitioned() ? shard : padded,
                          DType::kF32);
    acc_.FillZero();
  }
  if (cfg_.dynamic_loss_scale) {
    ZERO_CHECK(cfg_.fp16, "dynamic loss scaling requires fp16 mode");
    scaler_.emplace(cfg_.scaler);
  }

  // Optimizer: full for baseline DDP, this rank's partition otherwise.
  // The fp32 master copy is seeded from the *unrounded* initialization —
  // it is the authoritative weight state (Sec 3.1). With an offload
  // tier the K=12 bytes/param live behind the storage tier (host DRAM
  // or simulated NVMe) and stream through the OffloadEngine instead of
  // sitting on the device.
  const std::span<const float> opt_init =
      strategy_->state_partitioned()
          ? std::span<const float>(init.data() + own.begin,
                                   static_cast<std::size_t>(shard))
          : std::span<const float>(init);
  const alloc::TierKind tier_kind = cfg_.resolved_offload_tier();
  if (tier_kind == alloc::TierKind::kDevice) {
    opt_ = std::make_unique<optim::MixedPrecisionAdam>(cfg_.adam, device_,
                                                       opt_init);
  } else {
    if (tier_kind == alloc::TierKind::kHost && host_pool_ == nullptr) {
      owned_host_.emplace();
      host_pool_ = &*owned_host_;
    }
    tier_ = alloc::MakeStorageTier(tier_kind, host_pool_, device_,
                                   cfg_.offload_bandwidth);
    OffloadOptions opts;
    opts.slice_elems = cfg_.offload_slice_elems;
    opts.eager_grads =
        cfg_.offload_eager_grads && cfg_.accumulation_steps == 1;
    opts.max_inflight_bytes = cfg_.offload_max_inflight_bytes;
    auto offload = std::make_unique<OffloadEngine>(cfg_.adam, *tier_,
                                                   opt_init, opts);
    // Gradient slices stream to the tier as the backward reduction
    // finalizes them (rank-local: cannot perturb SPMD schedules).
    if (opts.eager_grads) ctx_.grad_stream = offload.get();
    opt_ = std::move(offload);
  }
}

const alloc::ChannelStats* ZeroDpEngine::offload_channel_stats() const {
  return tier_ != nullptr && tier_->channel() != nullptr
             ? &tier_->channel()->stats()
             : nullptr;
}

// ---------------------------------------------------------------------
// ParamProvider / GradSink
// ---------------------------------------------------------------------

std::span<const float> ZeroDpEngine::AcquireUnit(int u, Phase phase) {
  return strategy_->AcquireUnit(u, phase);
}

void ZeroDpEngine::ReleaseUnit(int u, Phase phase) {
  strategy_->ReleaseUnit(u, phase);
}

void ZeroDpEngine::EmitUnitGrad(int u, std::span<const float> grad) {
  const auto [ub, ue] = model_->layout().UnitRange(u);
  ZERO_CHECK(grad.size() == static_cast<std::size_t>(ue - ub),
             "unit gradient size mismatch");
  strategy_->EmitUnitGrad(u, grad);
}

// ---------------------------------------------------------------------
// Step orchestration
// ---------------------------------------------------------------------

float ZeroDpEngine::TrainStep(const model::Batch& batch) {
  TRACE_SPAN("engine/step");
  // Named injectable point: a crash/hang/slow rule scheduled "at the
  // step" fires here, before any collective of the step has started.
  dp_->FaultPoint("step");
  const std::uint64_t step_t0 = obs::TraceNowNs();
  ctx_.loss_scale = current_loss_scale();
  strategy_->OnStepBegin();

  float loss;
  {
    TRACE_SPAN("engine/fwd_bwd");
    loss = model_->Step(batch, *this, *this);
  }

  {
    TRACE_SPAN("engine/reduce_grads");
    strategy_->ReduceGradients();
  }

  if (cfg_.accumulation_steps > 1) {
    TRACE_SPAN("engine/accumulate");
    AccumulateReduced();
    if (++micro_ < cfg_.accumulation_steps) {
      return loss;  // mid-cycle micro-step: no update, no all-gather
    }
  } else {
    micro_ = 1;
  }

  {
    TRACE_SPAN("engine/apply_update");
    ApplyUpdate();
  }
  micro_ = 0;
  if (acc_.defined()) acc_.FillZero();
  ++steps_;

  static obs::Counter& steps_total = obs::Metrics().counter("engine.steps");
  static obs::Histogram& step_ms = obs::Metrics().histogram("engine.step_ms");
  static obs::Gauge& scale = obs::Metrics().gauge("engine.loss_scale");
  steps_total.Add();
  step_ms.Observe(static_cast<double>(obs::TraceNowNs() - step_t0) / 1e6);
  scale.Set(current_loss_scale());
  return loss;
}

float ZeroDpEngine::EvalLoss(const model::Batch& batch) {
  struct DiscardSink final : model::GradSink {
    void EmitUnitGrad(int, std::span<const float>) override {}
  };
  DiscardSink sink;
  return model_->Step(batch, *this, sink);
}

void ZeroDpEngine::AccumulateReduced() {
  std::span<float> acc = acc_.f32();
  if (cfg_.fp16) {
    std::span<const Half> src = strategy_->ReducedF16();
    ZERO_CHECK(src.size() == acc.size(), "accumulator size mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += src[i].ToFloat();
    }
  } else {
    std::span<const float> src = strategy_->ReducedF32();
    ZERO_CHECK(src.size() == acc.size(), "accumulator size mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += src[i];
  }
  // Stage 2/3 shard buffers are fully overwritten by the next flush and
  // stage 0/1 buffers by the next emission, so no zeroing is needed.
}

bool ZeroDpEngine::DetectGlobalOverflow() {
  bool local = false;
  auto scan_f32 = [&](std::span<const float> v) {
    for (float x : v) {
      if (!std::isfinite(x)) return true;
    }
    return false;
  };
  if (acc_.defined()) {
    local = scan_f32(acc_.f32());
  } else if (cfg_.fp16) {
    for (Half h : strategy_->ReducedF16()) {
      if (h.IsInf() || h.IsNan()) {
        local = true;
        break;
      }
    }
  } else {
    local = scan_f32(strategy_->ReducedF32());
  }
  // Every rank must agree before the scaler is consulted, or the SPMD
  // ranks would diverge on whether the update happened.
  float flag = local ? 1.0f : 0.0f;
  dp_->AllReduce(std::span<float>(&flag, 1), comm::ReduceOp::kMax);
  return flag > 0.5f;
}

float ZeroDpEngine::ComputeClipCoefficient(float base_scale) {
  float total_sq = 0.0f;
  if (acc_.defined()) {
    const auto v = acc_.f32();
    total_sq = tensor::SquaredNorm(v.data(),
                                   static_cast<std::int64_t>(v.size()));
  } else if (cfg_.fp16) {
    const auto v = strategy_->ReducedF16();
    total_sq = tensor::SquaredNormF16(v.data(),
                                      static_cast<std::int64_t>(v.size()));
  } else {
    const auto v = strategy_->ReducedF32();
    total_sq = tensor::SquaredNorm(v.data(),
                                   static_cast<std::int64_t>(v.size()));
  }
  if (strategy_->state_partitioned()) {
    // Partitioned stages each hold 1/Nd of the gradient: sum the shard
    // norms. (The baseline holds the full reduced gradient everywhere.)
    dp_->AllReduce(std::span<float>(&total_sq, 1), comm::ReduceOp::kSum);
  }
  const float norm =
      std::sqrt(std::max(total_sq, 0.0f)) * base_scale;  // unscaled norm
  last_grad_norm_ = norm;
  if (cfg_.max_grad_norm <= 0.0f || norm <= cfg_.max_grad_norm) {
    return 1.0f;
  }
  return cfg_.max_grad_norm / (norm + 1e-6f);
}

void ZeroDpEngine::ApplyUpdate() {
  const int accum = cfg_.accumulation_steps;
  // Reduced gradients carry a factor of loss_scale (fp16) and a sum over
  // Nd ranks and accum micro-steps; the optimizer divides it back out.
  const float base_scale =
      1.0f / (static_cast<float>(nd()) * static_cast<float>(accum) *
              (cfg_.fp16 ? current_loss_scale() : 1.0f));

  if (scaler_.has_value()) {
    bool overflow;
    {
      TRACE_SPAN("engine/overflow_detect");
      overflow = DetectGlobalOverflow();
    }
    if (!scaler_->Update(overflow)) {
      // Skip this update entirely; the scale has been backed off. The
      // strategy's post-update work (parameter all-gather, gradient
      // zeroing) is skipped with it — grads are overwritten next step.
      ++skipped_;
      static obs::Counter& skipped =
          obs::Metrics().counter("engine.skipped_steps");
      skipped.Add();
      // Gradient slices staged ahead for the offloaded update are for a
      // step that will never run.
      opt_->DiscardStagedGradients();
      return;
    }
  }

  float grad_scale = base_scale;
  if (cfg_.max_grad_norm > 0.0f) {
    TRACE_SPAN("engine/clip_norm");
    grad_scale *= ComputeClipCoefficient(base_scale);
  }

  if (acc_.defined()) {
    if (cfg_.fp16) {
      opt_->StepFromF32(strategy_->UpdateTargetF16(), acc_.f32(), grad_scale);
    } else {
      opt_->StepF32(strategy_->UpdateTargetF32(), acc_.f32(), grad_scale);
    }
  } else if (cfg_.fp16) {
    // MixedPrecisionAdam::Step divides by its loss_scale argument.
    opt_->Step(strategy_->UpdateTargetF16(), strategy_->ReducedF16(),
               1.0f / grad_scale);
  } else {
    opt_->StepF32(strategy_->UpdateTargetF32(), strategy_->ReducedF32(),
                  grad_scale);
  }

  strategy_->OnUpdateApplied();
}

// ---------------------------------------------------------------------
// Training-state checkpointing
// ---------------------------------------------------------------------

TrainingState ZeroDpEngine::ExportState() {
  ZERO_CHECK(micro_ == 0, "cannot export state mid accumulation cycle");
  TrainingState state;
  state.total_numel = part_.total();
  state.step_count = opt_->step_count();
  state.loss_scale = current_loss_scale();
  if (scaler_.has_value()) {
    const optim::DynamicLossScaler::State s = scaler_->Export();
    state.scaler_steps_since_backoff = s.steps_since_backoff;
    state.scaler_skipped = s.skipped;
    state.scaler_good = s.good;
  }

  const std::size_t total = static_cast<std::size_t>(part_.total());
  const std::size_t padded = static_cast<std::size_t>(part_.padded_total());
  const std::size_t shard = static_cast<std::size_t>(part_.partition_size());

  auto assemble = [&](optim::OptStateKind kind) {
    std::vector<float> full(total);
    if (!strategy_->state_partitioned()) {
      // Every rank already holds the full (padded) state.
      std::vector<float> local(padded);
      opt_->CopyStateOut(kind, local);
      std::memcpy(full.data(), local.data(), total * sizeof(float));
    } else {
      std::vector<float> local(shard);
      opt_->CopyStateOut(kind, local);
      std::vector<float> gathered(padded);
      dp_->AllGather(std::span<const float>(local),
                     std::span<float>(gathered));
      std::memcpy(full.data(), gathered.data(), total * sizeof(float));
    }
    return full;
  };

  state.master = assemble(optim::OptStateKind::kMaster);
  state.momentum = assemble(optim::OptStateKind::kMomentum);
  state.variance = assemble(optim::OptStateKind::kVariance);
  return state;
}

void ZeroDpEngine::ImportState(const TrainingState& state) {
  ZERO_CHECK(state.total_numel == part_.total(),
             "checkpoint is for a different model (numel mismatch)");
  const Range own = part_.PartitionRange(rank());
  const std::size_t total = static_cast<std::size_t>(part_.total());
  const std::size_t padded = static_cast<std::size_t>(part_.padded_total());

  auto scatter = [&](optim::OptStateKind kind, const std::vector<float>& full) {
    // Pad the full array so tail shards read zeros beyond total().
    std::vector<float> padded_full(padded, 0.0f);
    std::memcpy(padded_full.data(), full.data(), total * sizeof(float));
    if (!strategy_->state_partitioned()) {
      opt_->CopyStateIn(kind, padded_full);
    } else {
      opt_->CopyStateIn(
          kind, std::span<const float>(padded_full.data() + own.begin,
                                       static_cast<std::size_t>(own.size())));
    }
  };

  scatter(optim::OptStateKind::kMaster, state.master);
  scatter(optim::OptStateKind::kMomentum, state.momentum);
  scatter(optim::OptStateKind::kVariance, state.variance);
  opt_->set_step_count(state.step_count);
  steps_ = state.step_count;

  // Rebuild the working parameters from the (authoritative) master copy.
  std::vector<float> padded_master(padded, 0.0f);
  std::memcpy(padded_master.data(), state.master.data(),
              total * sizeof(float));
  strategy_->ImportMasterParams(padded_master);

  // Reset in-flight step state.
  strategy_->ResetInFlight();
  opt_->DiscardStagedGradients();
  if (acc_.defined()) acc_.FillZero();
  micro_ = 0;
  if (scaler_.has_value()) {
    // Resume the full control loop, not just the scale: the growth
    // countdown must pick up exactly where the checkpoint left it or
    // the next doubling lands on a different step.
    scaler_.emplace(cfg_.scaler);
    scaler_->Restore({state.loss_scale, state.scaler_steps_since_backoff,
                      state.scaler_skipped, state.scaler_good});
    skipped_ = state.scaler_skipped;
  }
}

float ZeroDpEngine::current_loss_scale() const {
  if (!cfg_.fp16) return 1.0f;
  return scaler_.has_value() ? scaler_->scale() : cfg_.loss_scale;
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

ModelStateReport ZeroDpEngine::MeasureModelStates() const {
  ModelStateReport r;
  r.param_bytes = strategy_->param_bytes();
  r.grad_bytes = strategy_->grad_bytes();
  r.optimizer_bytes = static_cast<std::size_t>(
      static_cast<double>(opt_->numel()) *
      optim::MixedPrecisionAdam::kStateBytesPerParam);
  r.optimizer_on_host =
      cfg_.resolved_offload_tier() != alloc::TierKind::kDevice;
  return r;
}

std::vector<float> ZeroDpEngine::GatherFullParams() {
  std::vector<float> out(static_cast<std::size_t>(part_.total()));
  strategy_->GatherFullParams(out);
  return out;
}

}  // namespace zero::core
