#include "core/dp_engine.hpp"

#include <cmath>
#include <cstring>

namespace zero::core {

using model::Phase;
using model::ZeroStage;
using tensor::Tensor;

namespace {
constexpr std::uint64_t kExactTagBase = 1;  // user tag space, per-call ++
}

ZeroDpEngine::ZeroDpEngine(EngineConfig config, model::FlatParamModel& model,
                           comm::Communicator& dp,
                           alloc::CachingAllocator* device, std::uint64_t seed)
    : cfg_(config),
      model_(&model),
      dp_(&dp),
      device_(device),
      part_(model.layout().total_numel(), dp.size()) {
  ZERO_CHECK(!cfg_.exact_reductions || !cfg_.fp16,
             "exact_reductions requires fp32 mode");
  ZERO_CHECK(cfg_.bucket_elems > 0, "bucket size must be positive");
  InitState(seed);
}

Tensor ZeroDpEngine::NewDevice(std::int64_t numel, DType dt) const {
  if (device_ != nullptr) {
    return Tensor::Device(*device_, {numel}, dt);
  }
  return Tensor::Heap({numel}, dt);
}

void ZeroDpEngine::InitState(std::uint64_t seed) {
  const DType dt = cfg_.fp16 ? DType::kF16 : DType::kF32;
  const std::int64_t padded = part_.padded_total();
  const std::int64_t shard = part_.partition_size();
  const Range own = part_.PartitionRange(rank());

  // Deterministic full initialization, identical on every DP rank.
  std::vector<float> init(static_cast<std::size_t>(padded), 0.0f);
  model_->InitParameters(
      std::span<float>(init.data(), static_cast<std::size_t>(part_.total())),
      seed);

  const bool partitioned_params = cfg_.stage == ZeroStage::kOsGP;
  const bool partitioned_grads = cfg_.stage == ZeroStage::kOsG ||
                                 cfg_.stage == ZeroStage::kOsGP;

  // Parameters.
  params_ = NewDevice(partitioned_params ? shard : padded, dt);
  {
    const float* src = partitioned_params ? init.data() + own.begin
                                          : init.data();
    const std::size_t n = static_cast<std::size_t>(params_.numel());
    if (cfg_.fp16) {
      FloatToHalf(src, params_.f16().data(), n);
    } else {
      std::memcpy(params_.f32().data(), src, n * sizeof(float));
    }
  }

  // Gradients.
  grads_ = NewDevice(partitioned_grads ? shard : padded, dt);
  grads_.FillZero();
  if (cfg_.stage == ZeroStage::kOs) {
    reduced_shard_ = NewDevice(shard, dt);
    reduced_shard_.FillZero();
  }
  if (cfg_.accumulation_steps > 1) {
    acc_ = NewDevice(cfg_.stage == ZeroStage::kNone ? padded : shard,
                     DType::kF32);
    acc_.FillZero();
  }
  if (cfg_.dynamic_loss_scale) {
    ZERO_CHECK(cfg_.fp16, "dynamic loss scaling requires fp16 mode");
    scaler_.emplace(cfg_.scaler);
  }

  // Optimizer: full for baseline DDP, this rank's partition otherwise.
  // The fp32 master copy is seeded from the *unrounded* initialization —
  // it is the authoritative weight state (Sec 3.1). With
  // offload_optimizer the K=12 bytes/param live in host memory instead
  // of the device.
  alloc::CachingAllocator* opt_device =
      cfg_.offload_optimizer ? nullptr : device_;
  if (cfg_.stage == ZeroStage::kNone) {
    opt_ = std::make_unique<optim::MixedPrecisionAdam>(
        cfg_.adam, opt_device, std::span<const float>(init));
  } else {
    opt_ = std::make_unique<optim::MixedPrecisionAdam>(
        cfg_.adam, opt_device,
        std::span<const float>(init.data() + own.begin,
                               static_cast<std::size_t>(shard)));
  }
}

// ---------------------------------------------------------------------
// ParamProvider
// ---------------------------------------------------------------------

std::span<const float> ZeroDpEngine::AcquireUnit(int u, Phase phase) {
  (void)phase;
  const auto [ub, ue] = model_->layout().UnitRange(u);
  const std::int64_t n = ue - ub;

  if (cfg_.stage != ZeroStage::kOsGP) {
    if (!cfg_.fp16) {
      // fp32, full copy resident: hand out a direct view.
      return params_.f32().subspan(static_cast<std::size_t>(ub),
                                   static_cast<std::size_t>(n));
    }
    // fp16, full copy resident: widen the unit into fp32 scratch — the
    // analog of tensor cores reading fp16 operands into fp32 compute.
    MaterializedUnit& mu = units_[u];
    if (mu.refcount == 0) {
      mu.f32.resize(static_cast<std::size_t>(n));
      HalfToFloat(params_.f16().data() + ub, mu.f32.data(),
                  static_cast<std::size_t>(n));
    }
    ++mu.refcount;
    return mu.f32;
  }

  // Stage 3: materialize the unit from its partition owners, on demand.
  MaterializedUnit& mu = units_[u];
  if (mu.refcount == 0) {
    const Range unit_range{ub, ue};
    const Range own = part_.PartitionRange(rank());
    if (cfg_.fp16) {
      mu.f16 = NewDevice(n, DType::kF16);
      for (const auto& [j, overlap] : part_.Overlaps(unit_range)) {
        std::span<Half> dst = mu.f16.f16().subspan(
            static_cast<std::size_t>(overlap.begin - ub),
            static_cast<std::size_t>(overlap.size()));
        if (j == rank()) {
          std::memcpy(dst.data(),
                      params_.f16().data() + (overlap.begin - own.begin),
                      dst.size_bytes());
        }
        dp_->Broadcast(dst, j);
      }
      mu.f32.resize(static_cast<std::size_t>(n));
      HalfToFloat(mu.f16.f16().data(), mu.f32.data(),
                  static_cast<std::size_t>(n));
    } else {
      mu.f32.assign(static_cast<std::size_t>(n), 0.0f);
      for (const auto& [j, overlap] : part_.Overlaps(unit_range)) {
        std::span<float> dst{mu.f32.data() + (overlap.begin - ub),
                             static_cast<std::size_t>(overlap.size())};
        if (j == rank()) {
          std::memcpy(dst.data(),
                      params_.f32().data() + (overlap.begin - own.begin),
                      dst.size_bytes());
        }
        dp_->Broadcast(dst, j);
      }
    }
  }
  ++mu.refcount;
  return mu.f32;
}

void ZeroDpEngine::ReleaseUnit(int u, Phase phase) {
  (void)phase;
  auto it = units_.find(u);
  if (it == units_.end()) {
    // fp32 stages 0-2 hand out direct views with nothing to release.
    ZERO_CHECK(cfg_.stage != ZeroStage::kOsGP && !cfg_.fp16,
               "ReleaseUnit without matching AcquireUnit");
    return;
  }
  ZERO_CHECK(it->second.refcount > 0, "ReleaseUnit refcount underflow");
  if (--it->second.refcount == 0) {
    // Stage 3: "the parameters can be discarded" (Sec 7.2.2) — this frees
    // the gathered fp16 device tensor immediately.
    units_.erase(it);
  }
}

// ---------------------------------------------------------------------
// GradSink
// ---------------------------------------------------------------------

void ZeroDpEngine::EmitUnitGrad(int u, std::span<const float> grad) {
  const auto [ub, ue] = model_->layout().UnitRange(u);
  ZERO_CHECK(grad.size() == static_cast<std::size_t>(ue - ub),
             "unit gradient size mismatch");
  if (cfg_.stage == ZeroStage::kNone || cfg_.stage == ZeroStage::kOs) {
    StoreFullGrad(u, grad);
  } else {
    BucketizeGrad(u, grad);
  }
}

void ZeroDpEngine::StoreFullGrad(int u, std::span<const float> grad) {
  const auto [ub, ue] = model_->layout().UnitRange(u);
  (void)ue;
  if (cfg_.fp16) {
    Half* dst = grads_.f16().data() + ub;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      dst[i] = Half(grad[i] * current_loss_scale());
    }
  } else {
    std::memcpy(grads_.f32().data() + ub, grad.data(), grad.size_bytes());
  }
}

void ZeroDpEngine::BucketizeGrad(int u, std::span<const float> grad) {
  const auto [ub, ue] = model_->layout().UnitRange(u);
  // Units tile the flat space and backward completes them from the top
  // down, so emissions form one descending contiguous frontier. The
  // bucketizer relies on this to know when a partition is complete.
  ZERO_CHECK(ue == emit_frontier_,
             "units must be emitted in descending contiguous order");
  emit_frontier_ = ub;

  for (const auto& [j, overlap] : part_.Overlaps(Range{ub, ue})) {
    auto [seg_it, created] = segments_.try_emplace(j);
    Segment& seg = seg_it->second;
    if (created) {
      seg.data = NewDevice(part_.partition_size(),
                           cfg_.fp16 ? DType::kF16 : DType::kF32);
      seg.data.FillZero();
    }
    const std::int64_t local = overlap.begin - part_.PartitionRange(j).begin;
    const float* src = grad.data() + (overlap.begin - ub);
    if (cfg_.fp16) {
      Half* dst = seg.data.f16().data() + local;
      for (std::int64_t i = 0; i < overlap.size(); ++i) {
        dst[i] = Half(src[i] * current_loss_scale());
      }
    } else {
      std::memcpy(seg.data.f32().data() + local, src,
                  static_cast<std::size_t>(overlap.size()) * sizeof(float));
    }
    seg.covered += overlap.size();
    ZERO_CHECK(seg.covered <= part_.PartitionRangeClipped(j).size(),
               "partition coverage overflow");
    if (seg.covered == part_.PartitionRangeClipped(j).size()) {
      FlushPartition(j);
    }
  }
}

void ZeroDpEngine::FlushPartition(int j) {
  auto it = segments_.find(j);
  ZERO_CHECK(it != segments_.end(), "flushing a partition with no segment");
  Segment& seg = it->second;
  const std::int64_t shard = part_.partition_size();

  // CB (Sec 6.2): issue the reduction in constant-size chunks so the
  // fused communication buffer does not grow with the model.
  for (std::int64_t off = 0; off < shard; off += cfg_.bucket_elems) {
    const std::int64_t len = std::min(cfg_.bucket_elems, shard - off);
    if (cfg_.fp16) {
      dp_->Reduce(seg.data.f16().subspan(static_cast<std::size_t>(off),
                                         static_cast<std::size_t>(len)),
                  j, comm::ReduceOp::kSum);
    } else if (cfg_.exact_reductions) {
      ExactReduceToRoot(
          seg.data.f32().subspan(static_cast<std::size_t>(off),
                                 static_cast<std::size_t>(len)),
          j);
    } else {
      dp_->Reduce(seg.data.f32().subspan(static_cast<std::size_t>(off),
                                         static_cast<std::size_t>(len)),
                  j, comm::ReduceOp::kSum);
    }
  }

  if (rank() == j) {
    // The reduced partition gradient lands in this rank's persistent
    // (1/Nd-sized) gradient store.
    std::memcpy(grads_.raw(), seg.data.raw(), grads_.nbytes());
  }
  // "After the reduction we no longer need the gradients and their
  // memory can be released" (Sec 5.2).
  segments_.erase(it);
}

// ---------------------------------------------------------------------
// Step orchestration
// ---------------------------------------------------------------------

float ZeroDpEngine::TrainStep(const model::Batch& batch) {
  // Padding between total() and padded_total() is never emitted; the
  // frontier starts at the top of the real parameter space.
  emit_frontier_ = part_.total();
  ZERO_CHECK(segments_.empty(), "stale gradient segments from a prior step");

  const float loss = model_->Step(batch, *this, *this);
  ZERO_CHECK(units_.empty(), "model leaked acquired units");

  ReduceGradients();

  if (cfg_.accumulation_steps > 1) {
    AccumulateReduced();
    if (++micro_ < cfg_.accumulation_steps) {
      return loss;  // mid-cycle micro-step: no update, no all-gather
    }
  } else {
    micro_ = 1;
  }

  ApplyUpdate();
  micro_ = 0;
  if (acc_.defined()) acc_.FillZero();
  ++steps_;
  return loss;
}

float ZeroDpEngine::EvalLoss(const model::Batch& batch) {
  struct DiscardSink final : model::GradSink {
    void EmitUnitGrad(int, std::span<const float>) override {}
  };
  DiscardSink sink;
  return model_->Step(batch, *this, sink);
}

void ZeroDpEngine::ReduceGradients() {
  const std::int64_t shard = part_.partition_size();
  switch (cfg_.stage) {
    case ZeroStage::kNone: {
      // Baseline DDP: all-reduce full gradients in place.
      if (cfg_.fp16) {
        dp_->AllReduce(grads_.f16(), comm::ReduceOp::kSum);
      } else if (cfg_.exact_reductions) {
        ExactAllReduceSum(grads_.f32());
      } else {
        dp_->AllReduce(grads_.f32(), comm::ReduceOp::kSum);
      }
      break;
    }
    case ZeroStage::kOs: {
      // Pos: reduce-scatter into this rank's reduced shard. Volume Psi;
      // the parameter all-gather after the update is the other Psi.
      if (cfg_.fp16) {
        dp_->ReduceScatter(grads_.f16(), reduced_shard_.f16(),
                           comm::ReduceOp::kSum);
      } else if (cfg_.exact_reductions) {
        for (int j = 0; j < nd(); ++j) {
          const Range pr = part_.PartitionRange(j);
          ExactReduceToRoot(
              grads_.f32().subspan(static_cast<std::size_t>(pr.begin),
                                   static_cast<std::size_t>(pr.size())),
              j);
        }
        const Range own = part_.PartitionRange(rank());
        std::memcpy(reduced_shard_.f32().data(),
                    grads_.f32().data() + own.begin,
                    static_cast<std::size_t>(shard) * sizeof(float));
      } else {
        dp_->ReduceScatter(grads_.f32(), reduced_shard_.f32(),
                           comm::ReduceOp::kSum);
      }
      break;
    }
    case ZeroStage::kOsG:
    case ZeroStage::kOsGP: {
      // Gradients were already reduced to their owners during backward
      // (bucketized Reduce at partition boundaries) and live in grads_.
      ZERO_CHECK(emit_frontier_ == 0 && segments_.empty(),
                 "backward did not cover the full parameter space");
      break;
    }
  }
}

std::span<const Half> ZeroDpEngine::ReducedF16() {
  if (cfg_.stage == ZeroStage::kOs) return reduced_shard_.f16();
  return grads_.f16();
}

std::span<const float> ZeroDpEngine::ReducedF32() {
  if (cfg_.stage == ZeroStage::kOs) return reduced_shard_.f32();
  return grads_.f32();
}

std::span<Half> ZeroDpEngine::UpdateTargetF16() {
  if (cfg_.stage == ZeroStage::kNone) return params_.f16();
  if (cfg_.stage == ZeroStage::kOsGP) return params_.f16();
  const Range own = part_.PartitionRange(rank());
  return params_.f16().subspan(static_cast<std::size_t>(own.begin),
                               static_cast<std::size_t>(own.size()));
}

std::span<float> ZeroDpEngine::UpdateTargetF32() {
  if (cfg_.stage == ZeroStage::kNone) return params_.f32();
  if (cfg_.stage == ZeroStage::kOsGP) return params_.f32();
  const Range own = part_.PartitionRange(rank());
  return params_.f32().subspan(static_cast<std::size_t>(own.begin),
                               static_cast<std::size_t>(own.size()));
}

void ZeroDpEngine::AccumulateReduced() {
  std::span<float> acc = acc_.f32();
  if (cfg_.fp16) {
    std::span<const Half> src = ReducedF16();
    ZERO_CHECK(src.size() == acc.size(), "accumulator size mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += src[i].ToFloat();
    }
  } else {
    std::span<const float> src = ReducedF32();
    ZERO_CHECK(src.size() == acc.size(), "accumulator size mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += src[i];
  }
  // Stage 2/3 shard buffers are fully overwritten by the next flush and
  // stage 0/1 buffers by the next emission, so no zeroing is needed.
}

bool ZeroDpEngine::DetectGlobalOverflow() {
  bool local = false;
  auto scan_f32 = [&](std::span<const float> v) {
    for (float x : v) {
      if (!std::isfinite(x)) return true;
    }
    return false;
  };
  if (acc_.defined()) {
    local = scan_f32(acc_.f32());
  } else if (cfg_.fp16) {
    for (Half h : ReducedF16()) {
      if (h.IsInf() || h.IsNan()) {
        local = true;
        break;
      }
    }
  } else {
    local = scan_f32(ReducedF32());
  }
  // Every rank must agree before the scaler is consulted, or the SPMD
  // ranks would diverge on whether the update happened.
  float flag = local ? 1.0f : 0.0f;
  dp_->AllReduce(std::span<float>(&flag, 1), comm::ReduceOp::kMax);
  return flag > 0.5f;
}

float ZeroDpEngine::ComputeClipCoefficient(float base_scale) {
  double local_sq = 0.0;
  if (acc_.defined()) {
    for (float x : acc_.f32()) local_sq += static_cast<double>(x) * x;
  } else if (cfg_.fp16) {
    for (Half h : ReducedF16()) {
      const double x = h.ToFloat();
      local_sq += x * x;
    }
  } else {
    for (float x : ReducedF32()) local_sq += static_cast<double>(x) * x;
  }
  float total_sq = static_cast<float>(local_sq);
  if (cfg_.stage != ZeroStage::kNone) {
    // Partitioned stages each hold 1/Nd of the gradient: sum the shard
    // norms. (Stage 0 holds the full reduced gradient on every rank.)
    dp_->AllReduce(std::span<float>(&total_sq, 1), comm::ReduceOp::kSum);
  }
  const float norm =
      std::sqrt(std::max(total_sq, 0.0f)) * base_scale;  // unscaled norm
  last_grad_norm_ = norm;
  if (cfg_.max_grad_norm <= 0.0f || norm <= cfg_.max_grad_norm) {
    return 1.0f;
  }
  return cfg_.max_grad_norm / (norm + 1e-6f);
}

void ZeroDpEngine::ApplyUpdate() {
  const int accum = cfg_.accumulation_steps;
  // Reduced gradients carry a factor of loss_scale (fp16) and a sum over
  // Nd ranks and accum micro-steps; the optimizer divides it back out.
  const float base_scale =
      1.0f / (static_cast<float>(nd()) * static_cast<float>(accum) *
              (cfg_.fp16 ? current_loss_scale() : 1.0f));

  if (scaler_.has_value()) {
    const bool overflow = DetectGlobalOverflow();
    if (!scaler_->Update(overflow)) {
      // Skip this update entirely; the scale has been backed off.
      ++skipped_;
      return;
    }
  }

  float grad_scale = base_scale;
  if (cfg_.max_grad_norm > 0.0f) {
    grad_scale *= ComputeClipCoefficient(base_scale);
  }

  if (acc_.defined()) {
    if (cfg_.fp16) {
      opt_->StepFromF32(UpdateTargetF16(), acc_.f32(), grad_scale);
    } else {
      opt_->StepF32(UpdateTargetF32(), acc_.f32(), grad_scale);
    }
  } else if (cfg_.fp16) {
    // MixedPrecisionAdam::Step divides by its loss_scale argument.
    opt_->Step(UpdateTargetF16(), ReducedF16(), 1.0f / grad_scale);
  } else {
    opt_->StepF32(UpdateTargetF32(), ReducedF32(), grad_scale);
  }

  if (cfg_.offload_optimizer) {
    // Account the PCIe round trip: reduced gradients in (2 or 4 bytes
    // per element) and updated fp16/fp32 parameters back out.
    const std::size_t elem = cfg_.fp16 ? 2 : 4;
    optimizer_transfer_bytes_ +=
        static_cast<std::uint64_t>(opt_->numel()) * elem * 2;
  }

  if (cfg_.stage == ZeroStage::kOs || cfg_.stage == ZeroStage::kOsG) {
    AllGatherParams();
  }
  if (cfg_.stage == ZeroStage::kOsG || cfg_.stage == ZeroStage::kOsGP) {
    grads_.FillZero();
  }
}

// ---------------------------------------------------------------------
// Training-state checkpointing
// ---------------------------------------------------------------------

TrainingState ZeroDpEngine::ExportState() {
  ZERO_CHECK(micro_ == 0, "cannot export state mid accumulation cycle");
  TrainingState state;
  state.total_numel = part_.total();
  state.step_count = opt_->step_count();
  state.loss_scale = current_loss_scale();

  const std::size_t total = static_cast<std::size_t>(part_.total());
  const std::size_t padded = static_cast<std::size_t>(part_.padded_total());
  const std::size_t shard = static_cast<std::size_t>(part_.partition_size());

  auto assemble = [&](std::span<const float> local) {
    std::vector<float> full(total);
    if (cfg_.stage == ZeroStage::kNone) {
      // Every rank already holds the full (padded) state.
      ZERO_CHECK(local.size() == padded, "unexpected full-state size");
      std::memcpy(full.data(), local.data(), total * sizeof(float));
    } else {
      ZERO_CHECK(local.size() == shard, "unexpected shard size");
      std::vector<float> gathered(padded);
      dp_->AllGather(local, std::span<float>(gathered));
      std::memcpy(full.data(), gathered.data(), total * sizeof(float));
    }
    return full;
  };

  state.master = assemble(opt_->master());
  state.momentum = assemble(opt_->momentum());
  state.variance = assemble(opt_->variance());
  return state;
}

void ZeroDpEngine::ImportState(const TrainingState& state) {
  ZERO_CHECK(state.total_numel == part_.total(),
             "checkpoint is for a different model (numel mismatch)");
  const Range own = part_.PartitionRange(rank());
  const std::size_t total = static_cast<std::size_t>(part_.total());
  const std::size_t padded = static_cast<std::size_t>(part_.padded_total());

  auto scatter = [&](std::span<float> local, const std::vector<float>& full) {
    // Pad the full array so tail shards read zeros beyond total().
    std::vector<float> padded_full(padded, 0.0f);
    std::memcpy(padded_full.data(), full.data(), total * sizeof(float));
    if (cfg_.stage == ZeroStage::kNone) {
      std::memcpy(local.data(), padded_full.data(), padded * sizeof(float));
    } else {
      std::memcpy(local.data(), padded_full.data() + own.begin,
                  static_cast<std::size_t>(own.size()) * sizeof(float));
    }
  };

  scatter(opt_->master_mutable(), state.master);
  scatter(opt_->momentum_mutable(), state.momentum);
  scatter(opt_->variance_mutable(), state.variance);
  opt_->set_step_count(state.step_count);
  steps_ = state.step_count;

  // Rebuild the working parameters from the (authoritative) master copy.
  std::vector<float> padded_master(padded, 0.0f);
  std::memcpy(padded_master.data(), state.master.data(),
              total * sizeof(float));
  const bool partitioned_params = cfg_.stage == ZeroStage::kOsGP;
  const float* src = partitioned_params ? padded_master.data() + own.begin
                                        : padded_master.data();
  const std::size_t n = static_cast<std::size_t>(params_.numel());
  if (cfg_.fp16) {
    FloatToHalf(src, params_.f16().data(), n);
  } else {
    std::memcpy(params_.f32().data(), src, n * sizeof(float));
  }

  // Reset in-flight step state.
  grads_.FillZero();
  if (acc_.defined()) acc_.FillZero();
  micro_ = 0;
  segments_.clear();
  if (scaler_.has_value()) {
    optim::DynamicLossScaler::Config cfg = cfg_.scaler;
    cfg.init_scale = std::min(std::max(state.loss_scale, cfg.min_scale),
                              cfg.max_scale);
    scaler_.emplace(cfg);
  }
}

float ZeroDpEngine::current_loss_scale() const {
  if (!cfg_.fp16) return 1.0f;
  return scaler_.has_value() ? scaler_->scale() : cfg_.loss_scale;
}

void ZeroDpEngine::AllGatherParams() {
  // Copy the owned chunk out first: AllGather writes the chunk into the
  // full buffer at this rank's offset, which would otherwise alias.
  const Range own = part_.PartitionRange(rank());
  const std::int64_t shard = part_.partition_size();
  if (cfg_.fp16) {
    std::vector<Half> chunk(static_cast<std::size_t>(shard));
    std::memcpy(chunk.data(), params_.f16().data() + own.begin,
                chunk.size() * sizeof(Half));
    dp_->AllGather(std::span<const Half>(chunk), params_.f16());
  } else {
    std::vector<float> chunk(static_cast<std::size_t>(shard));
    std::memcpy(chunk.data(), params_.f32().data() + own.begin,
                chunk.size() * sizeof(float));
    dp_->AllGather(std::span<const float>(chunk), params_.f32());
  }
}

// ---------------------------------------------------------------------
// Deterministic reductions (testing mode)
// ---------------------------------------------------------------------

void ZeroDpEngine::ExactAllReduceSum(std::span<float> data) {
  ExactReduceToRoot(data, 0);
  dp_->Broadcast(data, 0);
}

void ZeroDpEngine::ExactReduceToRoot(std::span<float> data, int root) {
  // Gather to root and sum in rank order 0..Nd-1: the bracketing is
  // independent of which collective algorithm a stage uses, so every
  // stage produces bit-identical sums.
  const std::uint64_t tag = kExactTagBase + p2p_tag_++;
  if (rank() == root) {
    std::vector<float> acc(data.size(), 0.0f);
    std::vector<float> incoming(data.size());
    for (int r = 0; r < nd(); ++r) {
      if (r == rank()) {
        for (std::size_t i = 0; i < data.size(); ++i) acc[i] += data[i];
      } else {
        dp_->Recv(r, std::span<float>(incoming), tag);
        for (std::size_t i = 0; i < data.size(); ++i) acc[i] += incoming[i];
      }
    }
    std::memcpy(data.data(), acc.data(), data.size_bytes());
  } else {
    dp_->Send(root, std::span<const float>(data.data(), data.size()), tag);
  }
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

ModelStateReport ZeroDpEngine::MeasureModelStates() const {
  ModelStateReport r;
  r.param_bytes = params_.nbytes();
  r.grad_bytes = grads_.nbytes();
  r.optimizer_bytes = static_cast<std::size_t>(
      static_cast<double>(opt_->numel()) *
      optim::MixedPrecisionAdam::kStateBytesPerParam);
  r.optimizer_on_host = cfg_.offload_optimizer;
  return r;
}

std::vector<float> ZeroDpEngine::GatherFullParams() {
  const std::int64_t total = part_.total();
  std::vector<float> out(static_cast<std::size_t>(total));
  if (cfg_.stage != ZeroStage::kOsGP) {
    if (cfg_.fp16) {
      HalfToFloat(params_.f16().data(), out.data(),
                  static_cast<std::size_t>(total));
    } else {
      std::memcpy(out.data(), params_.f32().data(), out.size() * sizeof(float));
    }
    return out;
  }
  for (int u = 0; u < model_->layout().num_units(); ++u) {
    const auto [ub, ue] = model_->layout().UnitRange(u);
    std::span<const float> p = AcquireUnit(u, Phase::kForward);
    std::memcpy(out.data() + ub, p.data(),
                static_cast<std::size_t>(ue - ub) * sizeof(float));
    ReleaseUnit(u, Phase::kForward);
  }
  return out;
}

}  // namespace zero::core
