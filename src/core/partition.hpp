// Flat-vector partitioning across the data-parallel group (Sec 5).
//
// The flat parameter space of the model (padded up to a multiple of Nd)
// is divided into Nd equal contiguous partitions; rank i owns partition
// i and is responsible for updating its optimizer states (Pos), holding
// its reduced gradients (Pg) and storing its parameters (Pp). Everything
// the stage engines do — bucketized gradient reduction at partition
// boundaries, per-unit parameter broadcast from owners — reduces to the
// range intersections this class computes.
#pragma once

#include <cstdint>
#include <vector>

namespace zero::core {

struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  [[nodiscard]] std::int64_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return end <= begin; }
  friend bool operator==(const Range&, const Range&) = default;
};

[[nodiscard]] Range Intersect(Range a, Range b);

class Partitioner {
 public:
  Partitioner(std::int64_t total, int num_partitions);

  [[nodiscard]] std::int64_t total() const { return total_; }
  // total rounded up so every partition has equal size; indices in
  // [total, padded) are padding owned by the tail partitions.
  [[nodiscard]] std::int64_t padded_total() const { return padded_; }
  [[nodiscard]] std::int64_t partition_size() const { return shard_; }
  [[nodiscard]] int num_partitions() const { return n_; }

  // Full (padded) range of partition j.
  [[nodiscard]] Range PartitionRange(int j) const;
  // Range of partition j clipped to real (non-padding) elements.
  [[nodiscard]] Range PartitionRangeClipped(int j) const;
  // Which partition owns flat index i.
  [[nodiscard]] int OwnerOf(std::int64_t index) const;
  // All (partition, overlap-range) pairs intersecting [begin, end).
  [[nodiscard]] std::vector<std::pair<int, Range>> Overlaps(Range r) const;

 private:
  std::int64_t total_;
  int n_;
  std::int64_t shard_;
  std::int64_t padded_;
};

}  // namespace zero::core
