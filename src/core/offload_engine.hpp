// Streaming optimizer-state offload (ZeRO-Offload / ZeRO-Infinity).
//
// This is the K-bytes-per-param eviction the paper's Sec 2.2.2 points
// at: the fp32 master weights and Adam moments live in a StorageTier
// (host DRAM or simulated NVMe) instead of device memory, and the
// update runs host-side — ZeRO-Offload's compute split. Per step, per
// 1/Nd shard, only 2 bytes/param of gradients cross to the tier and
// 2 bytes/param of updated fp16 parameters cross back; the 12
// bytes/param of state never touch the device again.
//
// The shard is processed as fixed-size slices through a double-buffered
// pipeline: while slice i runs its host Adam update, slice i+1's
// gradient fetch is already on the link and slice i-1's parameter
// writeback is draining. On top of that, when the engine is installed
// as the StageContext's GradStreamSink, gradient slices stream to the
// tier *during backward*, as the bucketized reduction finalizes them —
// scheduled by record/replay exactly like ParamPrefetcher: the first
// update records the order slices become final; later steps launch
// eager transfers in that order, each held until its slice is actually
// final (stalls, never skips), and stops early when the staging budget
// is exhausted — degradation toward blocking at-update transfers, never
// a correctness change.
//
// Bit-exactness: transfers move bytes verbatim and land at submit time
// (alloc/tier.hpp); decode, Adam, and the fp16 cast are elementwise
// with per-step bias correction, so slicing and slice *order* cannot
// change a single bit vs MixedPrecisionAdam over the same shard. The
// only observable difference between tiers is time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/tier.hpp"
#include "common/half.hpp"
#include "core/stages/stage_strategy.hpp"
#include "optim/adam.hpp"
#include "optim/shard_optimizer.hpp"

namespace zero::core {

struct OffloadOptions {
  // Streaming granularity in fp32 elements.
  std::int64_t slice_elems = 1 << 15;
  // Stream gradient slices during backward (requires being installed as
  // the grad-stream sink).
  bool eager_grads = true;
  // Budget for eagerly staged gradient bytes; 0 = unlimited.
  std::size_t max_inflight_bytes = 0;
};

class OffloadEngine final : public optim::ShardOptimizer,
                            public GradStreamSink {
 public:
  // `tier` must outlive the engine. `init` seeds the master weights.
  OffloadEngine(optim::AdamConfig cfg, alloc::StorageTier& tier,
                std::span<const float> init, OffloadOptions opts);
  ~OffloadEngine() override;

  // ---- ShardOptimizer ----
  void Step(std::span<Half> params_f16, std::span<const Half> grads_f16,
            float loss_scale) override;
  void StepFromF32(std::span<Half> params_f16, std::span<const float> grads,
                   float grad_scale) override;
  void StepF32(std::span<float> params_out, std::span<const float> grads,
               float grad_scale) override;
  [[nodiscard]] std::int64_t numel() const override { return numel_; }
  [[nodiscard]] std::int64_t step_count() const override { return t_; }
  void set_step_count(std::int64_t t) override { t_ = t; }
  void CopyStateOut(optim::OptStateKind kind, std::span<float> out) override;
  void CopyStateIn(optim::OptStateKind kind,
                   std::span<const float> in) override;
  [[nodiscard]] std::uint64_t transfer_bytes() const override;
  void DiscardStagedGradients() override;

  // ---- GradStreamSink ----
  void OnShardGradFinal(std::int64_t begin_elem, std::int64_t numel,
                        std::span<const std::byte> bytes) override;

  [[nodiscard]] const alloc::ChannelStats* channel_stats() const;

 private:
  enum class GradKind : unsigned char {
    kF16Scaled,  // fp16 bits, decoded via LUT then scaled
    kF32Scaled,  // fp32, scaled
  };

  [[nodiscard]] std::int64_t num_slices() const {
    return (numel_ + opts_.slice_elems - 1) / opts_.slice_elems;
  }
  [[nodiscard]] std::int64_t slice_begin(std::int64_t s) const {
    return s * opts_.slice_elems;
  }
  [[nodiscard]] std::int64_t slice_len(std::int64_t s) const {
    return std::min(opts_.slice_elems, numel_ - slice_begin(s));
  }

  void TryLaunchEager();
  void RunUpdate(std::span<Half> params_f16, std::span<float> params_f32,
                 std::span<const std::byte> grads, std::size_t grad_elem,
                 GradKind kind, float scale);
  void ResetStaging();
  void PublishMetrics();

  optim::AdamConfig cfg_;
  alloc::StorageTier* tier_;
  OffloadOptions opts_;
  std::int64_t numel_ = 0;
  std::int64_t t_ = 0;

  // Tier regions holding the fp32 state (numel * 4 bytes each).
  std::size_t master_rg_ = 0;
  std::size_t m_rg_ = 0;
  std::size_t v_rg_ = 0;
  bool resident_ = false;  // tier exposes the state host-addressably
  // In-place views of the regions when resident (host Adam operates on
  // them directly); empty for non-resident tiers.
  std::span<float> master_host_;
  std::span<float> m_host_;
  std::span<float> v_host_;

  // ---- eager gradient staging (record/replay) ----
  bool replaying_ = false;            // first update records, then replay
  std::vector<std::int32_t> schedule_;   // slice finality order, replayed
  std::vector<std::int32_t> recording_;  // this step's observed order
  std::size_t launch_pos_ = 0;           // next schedule_ index to launch
  std::vector<std::int64_t> slice_covered_;  // finalized elems per slice
  std::vector<std::byte> grad_host_;         // staged raw gradient bytes
  std::vector<alloc::TransferRequest> slice_req_;  // eager D2H in flight
  std::vector<bool> staged_;
  std::size_t staged_bytes_ = 0;
  std::size_t grad_elem_ = 0;  // element width observed this step

  // Per-pipeline-slot staging for non-resident tiers.
  struct Slot {
    std::vector<float> master, m, v;
    std::vector<alloc::TransferRequest> in_reqs;   // state fetches
    std::vector<alloc::TransferRequest> out_reqs;  // param + state stores
  };
  Slot slots_[2];
  std::vector<float> grad_f32_[2];  // decoded gradient slices

  // Last-published channel byte counts (metric deltas).
  std::uint64_t prev_to_tier_ = 0;
  std::uint64_t prev_to_device_ = 0;
};

}  // namespace zero::core
