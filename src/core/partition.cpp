#include "core/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace zero::core {

Range Intersect(Range a, Range b) {
  Range r{std::max(a.begin, b.begin), std::min(a.end, b.end)};
  if (r.empty()) return Range{0, 0};
  return r;
}

Partitioner::Partitioner(std::int64_t total, int num_partitions)
    : total_(total), n_(num_partitions) {
  ZERO_CHECK(total >= 0 && num_partitions >= 1, "bad partitioner arguments");
  shard_ = (total + n_ - 1) / n_;
  if (shard_ == 0) shard_ = 1;  // degenerate tiny models still get shards
  padded_ = shard_ * n_;
}

Range Partitioner::PartitionRange(int j) const {
  ZERO_CHECK(j >= 0 && j < n_, "partition index out of range");
  return Range{j * shard_, (j + 1) * shard_};
}

Range Partitioner::PartitionRangeClipped(int j) const {
  Range r = PartitionRange(j);
  r.begin = std::min(r.begin, total_);
  r.end = std::min(r.end, total_);
  return r;
}

int Partitioner::OwnerOf(std::int64_t index) const {
  ZERO_CHECK(index >= 0 && index < padded_, "flat index out of range");
  return static_cast<int>(index / shard_);
}

std::vector<std::pair<int, Range>> Partitioner::Overlaps(Range r) const {
  std::vector<std::pair<int, Range>> out;
  if (r.empty()) return out;
  const int first = OwnerOf(r.begin);
  const int last = OwnerOf(r.end - 1);
  for (int j = first; j <= last; ++j) {
    const Range overlap = Intersect(r, PartitionRange(j));
    if (!overlap.empty()) out.emplace_back(j, overlap);
  }
  return out;
}

}  // namespace zero::core
