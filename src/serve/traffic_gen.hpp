// Seeded open-loop synthetic traffic: exponential interarrival times at
// a configured QPS, multi-tenant mix, uniform prompt/output lengths.
// Open loop means arrivals never wait on the server — exactly the
// pressure model that exposes admission-control behaviour at
// thousands-of-QPS offered load.
//
// Determinism follows the `src/fault` splitmix64 discipline: one root
// seed, one Split stream for the arrival process, one Split stream per
// request for its content, so the same seed replays the same trace
// bit-identically on every rank and every run. The root seed comes from
// the `ZERO_SERVE_SEED` environment knob when set.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace zero::serve {

struct TrafficConfig {
  double qps = 1000.0;       // offered arrival rate
  double duration_s = 1.0;   // generation horizon (virtual seconds)
  std::int32_t tenants = 2;
  std::vector<double> tenant_weights;  // empty = uniform
  std::int32_t prompt_min = 4;
  std::int32_t prompt_max = 12;
  std::int32_t out_min = 2;
  std::int32_t out_max = 8;
  std::int64_t vocab = 64;
  std::uint64_t seed = 42;
  // Shared-prefix mode: each tenant gets `prefix_len` common
  // system-prompt tokens (seeded per tenant) prepended ahead of every
  // request's random tail — realistic hit traffic for the KV prefix
  // cache. 0 (default) reproduces the previous traces bit-identically;
  // the tail draws consume the same stream positions either way.
  std::int32_t prefix_len = 0;
};

// ZERO_SERVE_SEED when set and parseable, else `fallback`.
[[nodiscard]] std::uint64_t ServeSeedFromEnv(std::uint64_t fallback);

// All arrivals within [0, duration_s), sorted by arrival time, ids 0..n.
[[nodiscard]] std::vector<ServeRequest> GenerateOpenLoopTraffic(
    const TrafficConfig& config);

}  // namespace zero::serve
