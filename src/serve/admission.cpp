#include "serve/admission.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace zero::serve {

namespace {
std::int64_t RequestTokens(const ServeRequest& r) {
  return static_cast<std::int64_t>(r.prompt.size()) + r.max_new_tokens;
}
}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)) {
  ZERO_CHECK(config_.max_queue_requests > 0, "queue cap must be positive");
  ZERO_CHECK(config_.est_tokens_per_s > 0, "service-rate model must be > 0");
}

AdmissionController::TenantState& AdmissionController::Tenant(
    std::int32_t id) {
  ZERO_CHECK(id >= 0, "negative tenant id");
  while (tenants_.size() <= static_cast<std::size_t>(id)) {
    TenantState t;
    const std::size_t i = tenants_.size();
    if (i < config_.tenants.size()) t.policy = config_.tenants[i];
    t.bucket = t.policy.burst_tokens;
    tenants_.push_back(std::move(t));
  }
  return tenants_[static_cast<std::size_t>(id)];
}

RejectReason AdmissionController::Offer(ServeRequest request, double now_s) {
  auto& m = obs::Metrics();
  if (config_.record_metrics) m.counter("serve.requests.offered").Add();

  if (queued_requests_ >= config_.max_queue_requests) {
    if (config_.record_metrics) m.counter("serve.requests.rejected_queue").Add();
    return RejectReason::kQueueFull;
  }
  const std::int64_t cost = RequestTokens(request);
  if (config_.max_expected_wait_s > 0.0) {
    const double wait = static_cast<double>(queued_tokens_ + cost) /
                        config_.est_tokens_per_s;
    if (wait > config_.max_expected_wait_s) {
      if (config_.record_metrics) {
        m.counter("serve.requests.rejected_latency").Add();
      }
      return RejectReason::kLatencyBound;
    }
  }
  TenantState& t = Tenant(request.tenant);
  t.bucket = std::min(t.policy.burst_tokens,
                      t.bucket + (now_s - t.refilled_s) *
                                     t.policy.rate_tokens_per_s);
  t.refilled_s = now_s;
  if (t.bucket < static_cast<double>(cost)) {
    if (config_.record_metrics) {
      m.counter("serve.requests.rejected_throttle").Add();
    }
    return RejectReason::kThrottled;
  }
  t.bucket -= static_cast<double>(cost);
  t.queue.push_back(std::move(request));
  ++queued_requests_;
  queued_tokens_ += cost;
  if (config_.record_metrics) {
    m.counter("serve.requests.admitted").Add();
    m.gauge("serve.queue_depth").Set(static_cast<double>(queued_requests_));
  }
  return RejectReason::kNone;
}

std::optional<ServeRequest> AdmissionController::Next() {
  if (queued_requests_ == 0 || tenants_.empty()) return std::nullopt;
  // Round-robin over tenants starting after the last one served.
  for (std::size_t step = 0; step < tenants_.size(); ++step) {
    const std::size_t i = (rr_cursor_ + step) % tenants_.size();
    TenantState& t = tenants_[i];
    if (t.queue.empty()) continue;
    ServeRequest r = std::move(t.queue.front());
    t.queue.pop_front();
    --queued_requests_;
    queued_tokens_ -= RequestTokens(r);
    rr_cursor_ = i + 1;
    if (config_.record_metrics) {
      obs::Metrics().gauge("serve.queue_depth")
          .Set(static_cast<double>(queued_requests_));
    }
    return r;
  }
  return std::nullopt;
}

}  // namespace zero::serve
