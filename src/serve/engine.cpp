#include "serve/engine.hpp"

#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm_backend.hpp"

namespace zero::serve {

InferenceEngine::InferenceEngine(InferenceOptions options,
                                 model::GptSession session)
    : options_(options),
      model_(options.model, session),
      pool_(KvGeometry{options.model.layers, model_.kv_row_floats(),
                       options.kv_block_tokens},
            options.kv_max_blocks, session.device, options.record_metrics),
      kv_(&pool_, options.prefix_cache) {}

void InferenceEngine::LoadFullWeights(std::span<const float> full) {
  TRACE_SPAN("serve/load_weights");
  // Reshard into a staging shard, pack it into the configured backend's
  // precision, then let the staging copy die with scope.
  std::vector<float> local(
      static_cast<std::size_t>(model_.layout().total_numel()));
  model_.ImportFullParams(full, local);
  weights_ = model::ServingWeights(
      model_.layout(), local, tensor::GemmBackendByName(options_.weights));
  if (options_.record_metrics) {
    obs::Metrics()
        .gauge("serve.weight_bytes")
        .Set(static_cast<double>(weights_.weight_bytes()));
  }
  loaded_ = true;
}

void InferenceEngine::LoadState(const core::TrainingState& state) {
  ZERO_CHECK(state.total_numel ==
                 model::GptModel::FullParamNumel(options_.model),
             "checkpoint numel does not match the serving config (serving "
             "requires an mp=1-layout checkpoint)");
  LoadFullWeights(state.master);
}

void InferenceEngine::LoadCheckpointFile(const std::string& path) {
  LoadState(core::TrainingState::LoadFromFile(path));
}

int InferenceEngine::Decode(std::span<const model::DecodeToken> tokens,
                            std::span<float> logits_out) {
  TRACE_SPAN("serve/decode");
  ZERO_CHECK(loaded_, "Decode before weights were loaded");
  return model_.DecodeForward(tokens, weights_, kv_, logits_out);
}

}  // namespace zero::serve
