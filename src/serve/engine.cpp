#include "serve/engine.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace zero::serve {

InferenceEngine::InferenceEngine(InferenceOptions options,
                                 model::GptSession session)
    : options_(options),
      model_(options.model, session),
      params_(static_cast<std::size_t>(model_.layout().total_numel()), 0.0f),
      provider_(model_.layout(), params_),
      pool_(KvGeometry{options.model.layers, model_.kv_row_floats(),
                       options.kv_block_tokens},
            options.kv_max_blocks, session.device, options.record_metrics),
      kv_(&pool_) {}

void InferenceEngine::LoadFullWeights(std::span<const float> full) {
  TRACE_SPAN("serve/load_weights");
  model_.ImportFullParams(full, params_);
  loaded_ = true;
}

void InferenceEngine::LoadState(const core::TrainingState& state) {
  ZERO_CHECK(state.total_numel ==
                 model::GptModel::FullParamNumel(options_.model),
             "checkpoint numel does not match the serving config (serving "
             "requires an mp=1-layout checkpoint)");
  LoadFullWeights(state.master);
}

void InferenceEngine::LoadCheckpointFile(const std::string& path) {
  LoadState(core::TrainingState::LoadFromFile(path));
}

int InferenceEngine::Decode(std::span<const model::DecodeToken> tokens,
                            std::span<float> logits_out) {
  TRACE_SPAN("serve/decode");
  ZERO_CHECK(loaded_, "Decode before weights were loaded");
  return model_.DecodeForward(tokens, provider_, kv_, logits_out);
}

}  // namespace zero::serve
