#include "serve/traffic_gen.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace zero::serve {

namespace {
// Stream ids under the root seed. Request content streams start at
// kRequestStreamBase + request index, so a request's tokens do not
// depend on how many arrival samples preceded it.
constexpr std::uint64_t kArrivalStream = 1;
constexpr std::uint64_t kRequestStreamBase = 1000;
// Tenant system-prompt streams sit between the arrival stream and the
// per-request streams, keyed by tenant id.
constexpr std::uint64_t kTenantPrefixStreamBase = 500;
}  // namespace

std::uint64_t ServeSeedFromEnv(std::uint64_t fallback) {
  const char* env = std::getenv("ZERO_SERVE_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::uint64_t>(v);
}

std::vector<ServeRequest> GenerateOpenLoopTraffic(
    const TrafficConfig& config) {
  ZERO_CHECK(config.qps > 0.0 && config.duration_s > 0.0,
             "traffic needs positive qps and duration");
  ZERO_CHECK(config.tenants > 0, "traffic needs at least one tenant");
  ZERO_CHECK(config.prompt_min > 0 && config.prompt_max >= config.prompt_min,
             "bad prompt length range");
  ZERO_CHECK(config.out_min > 0 && config.out_max >= config.out_min,
             "bad output length range");
  ZERO_CHECK(config.tenant_weights.empty() ||
                 config.tenant_weights.size() ==
                     static_cast<std::size_t>(config.tenants),
             "tenant_weights must match tenant count");

  double weight_total = 0.0;
  for (double w : config.tenant_weights) weight_total += w;

  const Rng root(config.seed);
  Rng arrivals = root.Split(kArrivalStream);

  // Per-tenant shared system-prompt prefixes (empty when disabled).
  std::vector<std::vector<std::int32_t>> prefixes(
      static_cast<std::size_t>(config.tenants));
  if (config.prefix_len > 0) {
    for (std::int32_t ten = 0; ten < config.tenants; ++ten) {
      Rng p = root.Split(kTenantPrefixStreamBase +
                         static_cast<std::uint64_t>(ten));
      auto& pre = prefixes[static_cast<std::size_t>(ten)];
      pre.resize(static_cast<std::size_t>(config.prefix_len));
      for (auto& tok : pre) {
        tok = static_cast<std::int32_t>(
            p.NextBelow(static_cast<std::uint64_t>(config.vocab)));
      }
    }
  }

  std::vector<ServeRequest> out;
  double t = 0.0;
  for (std::uint64_t i = 0;; ++i) {
    // Exponential interarrival via inverse CDF; NextDouble is in [0, 1)
    // so 1-u is in (0, 1] and the log is finite.
    t += -std::log(1.0 - arrivals.NextDouble()) / config.qps;
    if (t >= config.duration_s) break;

    Rng req = root.Split(kRequestStreamBase + i);
    ServeRequest r;
    r.id = i;
    r.arrival_s = t;
    if (weight_total > 0.0) {
      double pick = req.NextDouble() * weight_total;
      r.tenant = config.tenants - 1;
      for (std::int32_t ten = 0; ten < config.tenants; ++ten) {
        pick -= config.tenant_weights[static_cast<std::size_t>(ten)];
        if (pick < 0.0) {
          r.tenant = ten;
          break;
        }
      }
    } else {
      r.tenant = static_cast<std::int32_t>(
          req.NextBelow(static_cast<std::uint64_t>(config.tenants)));
    }
    const std::int64_t plen =
        config.prompt_min +
        static_cast<std::int64_t>(req.NextBelow(static_cast<std::uint64_t>(
            config.prompt_max - config.prompt_min + 1)));
    // Tenant system prompt first, then the request's random tail. The
    // tail draws are identical with sharing on or off.
    const auto& pre = prefixes[static_cast<std::size_t>(r.tenant)];
    r.prompt = pre;
    r.prompt.resize(pre.size() + static_cast<std::size_t>(plen));
    for (std::size_t k = pre.size(); k < r.prompt.size(); ++k) {
      r.prompt[k] = static_cast<std::int32_t>(
          req.NextBelow(static_cast<std::uint64_t>(config.vocab)));
    }
    r.max_new_tokens =
        config.out_min +
        static_cast<std::int32_t>(req.NextBelow(static_cast<std::uint64_t>(
            config.out_max - config.out_min + 1)));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace zero::serve
