// Continuous-batching scheduler (the vLLM-style iteration-level loop):
// every step it packs a mixed batch of prefill chunks and single decode
// tokens into one model forward, bounded by a token budget, and commits
// the sampled results before planning the next step — no sequence waits
// for a batch-mate to finish.
//
// Sequence state machine:
//
//   queued (admission layer) ──admit──> running ──last token──> finished
//        ^                                 │
//        └──────── preempted <──evict──────┘   (KV-block pressure)
//
// A sequence's input stream is prompt ++ generated-so-far; `processed`
// counts how many of those tokens have K/V rows cached. Prefill feeds
// chunks of the stream (budget permitting), decode feeds exactly the
// last generated token, and a preempted sequence simply restarts with
// processed = 0 — deterministic greedy decode re-derives the same
// tokens, so eviction costs time, never correctness.
//
// Eviction policy: when an older sequence cannot get a KV block, the
// *youngest* running sequence (largest first-admission stamp) is
// preempted and its blocks freed. Preempted sequences keep their
// original stamp and readmit ahead of fresh arrivals, so age ranking is
// stable and the oldest sequence always makes progress — no starvation.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "model/gpt.hpp"
#include "serve/admission.hpp"
#include "serve/kv_cache.hpp"
#include "serve/request.hpp"

namespace zero::serve {

struct SchedulerConfig {
  std::int64_t max_running = 8;      // concurrent sequences in the batch
  std::int64_t max_step_tokens = 64; // prefill+decode budget per step
  std::int64_t max_seq = 0;          // model context length (required)
  bool record_metrics = true;
};

// One planned forward: tokens grouped per sequence, in plan order.
struct StepPlan {
  std::vector<model::DecodeToken> tokens;
  std::vector<std::uint64_t> group_request;  // request id per group
  std::vector<std::int64_t> group_chunk;     // tokens fed per group
  std::vector<bool> group_samples;  // group reached its stream end →
                                    // its logits row samples a token
  [[nodiscard]] bool empty() const { return tokens.empty(); }
  [[nodiscard]] std::size_t groups() const { return group_request.size(); }
};

class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(SchedulerConfig config, SlotKvCache* kv,
                           AdmissionController* admission);

  // True when nothing is running, preempted, or queued.
  [[nodiscard]] bool Idle() const;

  [[nodiscard]] StepPlan PlanStep();

  // Applies one executed plan: advances prefill progress, greedy-samples
  // from `logits` ([groups() x vocab], group order), finishes sequences
  // (returning their KV blocks immediately) and appends their outcomes.
  void CommitStep(const StepPlan& plan, const float* logits,
                  std::int64_t vocab, double now_s,
                  std::vector<RequestOutcome>& done);

  [[nodiscard]] std::int64_t running() const {
    return static_cast<std::int64_t>(running_.size());
  }
  [[nodiscard]] std::int64_t preempted() const {
    return static_cast<std::int64_t>(preempted_.size());
  }

  // Cumulative token accounting (also exported as serve.prefill_tokens
  // / serve.decode_tokens counters when metrics are on).
  [[nodiscard]] std::int64_t prefill_tokens() const { return prefill_tokens_; }
  [[nodiscard]] std::int64_t decode_tokens() const { return decode_tokens_; }
  // Prefix-cache outcome per (re)admission: a hit adopted at least one
  // published KV position.
  [[nodiscard]] std::int64_t prefix_hit_tokens() const {
    return prefix_hit_tokens_;
  }
  [[nodiscard]] std::int64_t prefix_hits() const { return prefix_hits_; }
  [[nodiscard]] std::int64_t prefix_misses() const { return prefix_misses_; }

 private:
  struct SeqState {
    ServeRequest req;
    std::int32_t slot = -1;
    std::uint64_t admit_stamp = 0;  // first admission; kept on readmit
    std::int64_t processed = 0;     // stream tokens with cached K/V
    std::vector<std::int32_t> generated;
    double first_token_s = -1.0;
    std::int64_t evictions = 0;
  };

  [[nodiscard]] static std::int64_t StreamLen(const SeqState& s) {
    return static_cast<std::int64_t>(s.req.prompt.size() + s.generated.size());
  }
  [[nodiscard]] static std::int32_t StreamToken(const SeqState& s,
                                                std::int64_t i) {
    const std::int64_t plen = static_cast<std::int64_t>(s.req.prompt.size());
    return i < plen ? s.req.prompt[static_cast<std::size_t>(i)]
                    : s.generated[static_cast<std::size_t>(i - plen)];
  }
  SeqState* FindRunning(std::uint64_t request_id);
  // Reserve KV blocks for `tokens` positions of `target`, evicting
  // younger sequences as needed. False if capacity cannot be found.
  bool ReserveBlocks(SeqState& target, std::int64_t tokens);
  void Evict(std::size_t running_idx);
  void AppendGroup(StepPlan& plan, SeqState& seq, std::int64_t chunk);
  void PublishTokenGauge();

  SchedulerConfig config_;
  SlotKvCache* kv_;
  AdmissionController* admission_;
  std::vector<SeqState> running_;   // unordered; age = admit_stamp
  std::deque<SeqState> preempted_;  // readmitted before fresh requests
  std::uint64_t next_stamp_ = 0;
  std::int64_t prefill_tokens_ = 0;
  std::int64_t decode_tokens_ = 0;
  std::int64_t prefix_hit_tokens_ = 0;
  std::int64_t prefix_hits_ = 0;
  std::int64_t prefix_misses_ = 0;
};

}  // namespace zero::serve
