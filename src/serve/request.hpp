// Request/response types shared across the serving subsystem: what the
// traffic generator emits, what the admission layer accepts or rejects,
// and what the continuous-batching scheduler hands back when a sequence
// finishes. All timestamps are *virtual* seconds — the serve loop
// advances a deterministic clock per step so seeded runs replay
// bit-identically regardless of host speed (wall-clock throughput is
// measured separately by the bench harness).
#pragma once

#include <cstdint>
#include <vector>

namespace zero::serve {

struct ServeRequest {
  std::uint64_t id = 0;
  std::int32_t tenant = 0;
  double arrival_s = 0.0;  // open-loop arrival instant (virtual)
  std::vector<std::int32_t> prompt;
  std::int32_t max_new_tokens = 1;
};

enum class RejectReason {
  kNone = 0,
  kThrottled,     // tenant token bucket empty
  kQueueFull,     // global queue-depth backpressure
  kLatencyBound,  // expected wait exceeds the latency SLO
};

struct RequestOutcome {
  std::uint64_t id = 0;
  std::int32_t tenant = 0;
  bool completed = false;
  RejectReason rejected = RejectReason::kNone;
  std::vector<std::int32_t> output;  // greedy-decoded tokens
  double arrival_s = 0.0;
  double first_token_s = -1.0;  // virtual TTFT instant, -1 if none
  double done_s = -1.0;
  std::int64_t evictions = 0;  // times this sequence lost its KV blocks
};

}  // namespace zero::serve
