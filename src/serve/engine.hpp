// Forward-only inference engine: loads a trainer checkpoint (v1 or v2
// header) into GptModel weights and runs batched incremental decode
// against a paged KV cache. Checkpoints store the mp=1 (full) parameter
// layout; an MP-sharded engine re-slices that vector per rank with the
// Megatron column/row rules (GptModel::ImportFullParams), so every MP
// degree serves the same global model — and, for configs inside the
// small-GEMM envelope (DESIGN.md §16), bit-exactly the logits of the
// same-degree eval forward.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/state_checkpoint.hpp"
#include "model/flat_model.hpp"
#include "model/gpt.hpp"
#include "model/serving_weights.hpp"
#include "serve/kv_cache.hpp"

namespace zero::serve {

struct InferenceOptions {
  model::GptConfig model;
  std::int64_t kv_block_tokens = 8;
  std::int64_t kv_max_blocks = 256;
  bool record_metrics = true;
  // GEMM backend for engine-resident weights ("fp32", "fp16", "int8" —
  // tensor/gemm_backend.hpp). fp32 serves bit-exact vs trainer eval;
  // fp16/int8 halve/quarter weight bytes with bounded logit error.
  std::string weights = "fp32";
  // Copy-on-write prefix sharing: requests whose token prefix matches a
  // published sequence adopt its full KV blocks and skip that prefill.
  bool prefix_cache = false;
};

class InferenceEngine {
 public:
  // `session.mp` non-null gives MP-sharded serving; `session.device`
  // non-null carves weights' KV blocks from that caching allocator.
  InferenceEngine(InferenceOptions options, model::GptSession session);

  // Full (mp=1 layout) fp32 weights; resharded for this rank, then
  // packed into the configured GEMM backend's precision. The fp32
  // staging copy is dropped after packing, so steady-state weight
  // memory is exactly the packed footprint.
  void LoadFullWeights(std::span<const float> full);
  // The master fp32 array of a trainer checkpoint is the full weight
  // vector. Rejects checkpoints whose numel does not match the config
  // (e.g. shards exported by an mp>1 training run).
  void LoadState(const core::TrainingState& state);
  void LoadCheckpointFile(const std::string& path);

  // One packed serving step over `tokens`; logits_out must hold
  // [groups x vocab]. Returns the group count.
  int Decode(std::span<const model::DecodeToken> tokens,
             std::span<float> logits_out);

  [[nodiscard]] model::GptModel& model() { return model_; }
  [[nodiscard]] SlotKvCache& kv() { return kv_; }
  [[nodiscard]] KvBlockPool& pool() { return pool_; }
  [[nodiscard]] bool loaded() const { return loaded_; }
  [[nodiscard]] const InferenceOptions& options() const { return options_; }
  [[nodiscard]] const model::ServingWeights& weights() const {
    return weights_;
  }

 private:
  InferenceOptions options_;
  model::GptModel model_;
  model::ServingWeights weights_;  // this rank's shard, backend-packed
  KvBlockPool pool_;
  SlotKvCache kv_;
  bool loaded_ = false;
};

}  // namespace zero::serve
