#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace zero::serve {

namespace {

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

double ServeSummary::decode_tokens_per_s() const {
  if (virtual_duration_s <= 0.0) return 0.0;
  std::int64_t generated = 0;
  for (const RequestOutcome& o : outcomes) {
    generated += static_cast<std::int64_t>(o.output.size());
  }
  return static_cast<double>(generated) / virtual_duration_s;
}

std::string ServeSummary::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"offered\": " << offered << ",\n";
  os << "  \"admitted\": " << admitted << ",\n";
  os << "  \"rejected_throttled\": " << rejected_throttled << ",\n";
  os << "  \"rejected_queue\": " << rejected_queue << ",\n";
  os << "  \"rejected_latency\": " << rejected_latency << ",\n";
  os << "  \"completed\": " << completed << ",\n";
  os << "  \"evictions\": " << evictions << ",\n";
  os << "  \"steps\": " << steps << ",\n";
  os << "  \"packed_tokens\": " << packed_tokens << ",\n";
  os << "  \"prefill_tokens\": " << prefill_tokens << ",\n";
  os << "  \"decode_tokens\": " << decode_tokens << ",\n";
  os << "  \"prefix_hit_tokens\": " << prefix_hit_tokens << ",\n";
  os << "  \"prefix_hits\": " << prefix_hits << ",\n";
  os << "  \"prefix_misses\": " << prefix_misses << ",\n";
  os << "  \"virtual_duration_s\": " << virtual_duration_s << ",\n";
  os << "  \"decode_tokens_per_s\": " << decode_tokens_per_s() << ",\n";
  os << "  \"ttft_p50_ms\": " << ttft_p50_ms << ",\n";
  os << "  \"ttft_p99_ms\": " << ttft_p99_ms << ",\n";
  os << "  \"e2e_p50_ms\": " << e2e_p50_ms << ",\n";
  os << "  \"e2e_p99_ms\": " << e2e_p99_ms << ",\n";
  os << "  \"kv_blocks_total\": " << kv_blocks_total << ",\n";
  os << "  \"kv_blocks_peak\": " << kv_blocks_peak << "\n";
  os << "}\n";
  return os.str();
}

ServeSummary ServeLoop(InferenceEngine& engine,
                       std::span<const ServeRequest> traffic,
                       const ServeOptions& options) {
  AdmissionController admission(options.admission);
  ContinuousBatchScheduler scheduler(options.scheduler, &engine.kv(),
                                     &admission);
  const std::int64_t vocab = engine.options().model.vocab;

  ServeSummary sum;
  sum.offered = static_cast<std::int64_t>(traffic.size());
  std::vector<float> logits;
  double vt = 0.0;
  std::size_t next = 0;
  std::int64_t stalls = 0;

  while (true) {
    // Deliver every arrival up to the current virtual instant. Bucket
    // refill uses the arrival instant itself so admission decisions do
    // not depend on step granularity.
    while (next < traffic.size() && traffic[next].arrival_s <= vt) {
      const ServeRequest& r = traffic[next];
      const RejectReason rej = admission.Offer(r, r.arrival_s);
      if (rej != RejectReason::kNone) {
        RequestOutcome out;
        out.id = r.id;
        out.tenant = r.tenant;
        out.rejected = rej;
        out.arrival_s = r.arrival_s;
        sum.outcomes.push_back(std::move(out));
      }
      ++next;
    }

    if (scheduler.Idle()) {
      if (next >= traffic.size()) break;
      vt = std::max(vt, traffic[next].arrival_s);
      continue;
    }

    TRACE_SPAN("serve/step");
    StepPlan plan = scheduler.PlanStep();
    if (plan.empty()) {
      // Transient pool pressure; nudge the clock so arrivals drain.
      vt += options.step_base_s;
      ZERO_CHECK(++stalls < 1000000, "serve loop stalled: no schedulable "
                                     "work but sequences remain");
      continue;
    }
    stalls = 0;
    logits.resize(plan.groups() * static_cast<std::size_t>(vocab));
    engine.Decode(plan.tokens, logits);
    vt += options.step_base_s +
          options.step_per_token_s * static_cast<double>(plan.tokens.size());
    scheduler.CommitStep(plan, logits.data(), vocab, vt, sum.outcomes);
    ++sum.steps;
    sum.packed_tokens += static_cast<std::int64_t>(plan.tokens.size());
  }

  sum.virtual_duration_s = vt;
  sum.prefill_tokens = scheduler.prefill_tokens();
  sum.decode_tokens = scheduler.decode_tokens();
  sum.prefix_hit_tokens = scheduler.prefix_hit_tokens();
  sum.prefix_hits = scheduler.prefix_hits();
  sum.prefix_misses = scheduler.prefix_misses();
  std::vector<double> ttft, e2e;
  for (const RequestOutcome& o : sum.outcomes) {
    switch (o.rejected) {
      case RejectReason::kNone:
        break;
      case RejectReason::kThrottled:
        ++sum.rejected_throttled;
        continue;
      case RejectReason::kQueueFull:
        ++sum.rejected_queue;
        continue;
      case RejectReason::kLatencyBound:
        ++sum.rejected_latency;
        continue;
    }
    ++sum.admitted;
    if (o.completed) {
      ++sum.completed;
      sum.evictions += o.evictions;
      ttft.push_back((o.first_token_s - o.arrival_s) * 1e3);
      e2e.push_back((o.done_s - o.arrival_s) * 1e3);
    }
  }
  sum.ttft_p50_ms = Percentile(ttft, 0.50);
  sum.ttft_p99_ms = Percentile(ttft, 0.99);
  sum.e2e_p50_ms = Percentile(e2e, 0.50);
  sum.e2e_p99_ms = Percentile(e2e, 0.99);
  sum.kv_blocks_total = static_cast<double>(engine.pool().capacity());
  sum.kv_blocks_peak = static_cast<double>(engine.pool().peak_used());
  return sum;
}

}  // namespace zero::serve
