// The serve loop: wires traffic → admission → continuous batching →
// engine, on a deterministic virtual clock. Each executed step costs
//   step_base_s + step_per_token_s * packed_tokens
// virtual seconds, so latency percentiles are a pure function of the
// traffic seed and the config — seeded benches replay bit-identically —
// while wall-clock throughput is measured around the loop by callers.
//
// Under MP-sharded serving every rank runs the same loop on the same
// traffic: all scheduler decisions are deterministic, and greedy
// sampling reads MP-all-reduced (replicated) logits, so the ranks stay
// in lockstep without a control channel.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/admission.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"

namespace zero::serve {

struct ServeOptions {
  SchedulerConfig scheduler;
  AdmissionConfig admission;
  double step_base_s = 1e-3;      // per-step virtual overhead
  double step_per_token_s = 5e-6; // per packed token
};

struct ServeSummary {
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_throttled = 0;
  std::int64_t rejected_queue = 0;
  std::int64_t rejected_latency = 0;
  std::int64_t completed = 0;
  std::int64_t evictions = 0;
  std::int64_t steps = 0;
  std::int64_t packed_tokens = 0;  // total prefill+decode tokens fed
  // packed_tokens split by phase: prefill positions carry prompt (or
  // replayed) tokens, decode positions carry one sampled token each.
  std::int64_t prefill_tokens = 0;
  std::int64_t decode_tokens = 0;
  // Prefix-cache outcomes (all zero when the prefix index is off).
  std::int64_t prefix_hit_tokens = 0;  // KV positions adopted, not computed
  std::int64_t prefix_hits = 0;        // admissions that adopted >= 1 token
  std::int64_t prefix_misses = 0;
  double virtual_duration_s = 0.0;
  double ttft_p50_ms = 0.0, ttft_p99_ms = 0.0;
  double e2e_p50_ms = 0.0, e2e_p99_ms = 0.0;
  double kv_blocks_total = 0.0, kv_blocks_peak = 0.0;
  std::vector<RequestOutcome> outcomes;  // completions + rejections

  // Tokens generated per virtual second (saturation throughput when the
  // offered load exceeds capacity).
  [[nodiscard]] double decode_tokens_per_s() const;
  [[nodiscard]] std::string ToJson() const;  // scalar fields only
};

// Runs until every request in `traffic` is completed or rejected.
ServeSummary ServeLoop(InferenceEngine& engine,
                       std::span<const ServeRequest> traffic,
                       const ServeOptions& options);

}  // namespace zero::serve
