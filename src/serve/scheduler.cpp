#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zero::serve {

ContinuousBatchScheduler::ContinuousBatchScheduler(
    SchedulerConfig config, SlotKvCache* kv, AdmissionController* admission)
    : config_(config), kv_(kv), admission_(admission) {
  ZERO_CHECK(config_.max_running > 0 && config_.max_step_tokens > 0,
             "scheduler needs positive batch and token budgets");
  ZERO_CHECK(config_.max_seq > 0, "scheduler needs the model context length");
}

bool ContinuousBatchScheduler::Idle() const {
  return running_.empty() && preempted_.empty() && !admission_->HasQueued();
}

ContinuousBatchScheduler::SeqState* ContinuousBatchScheduler::FindRunning(
    std::uint64_t request_id) {
  for (SeqState& s : running_) {
    if (s.req.id == request_id) return &s;
  }
  return nullptr;
}

void ContinuousBatchScheduler::Evict(std::size_t running_idx) {
  SeqState victim = std::move(running_[running_idx]);
  running_.erase(running_.begin() +
                 static_cast<std::ptrdiff_t>(running_idx));
  kv_->FreeSlot(victim.slot);
  victim.slot = -1;
  victim.processed = 0;  // re-prefills prompt + generated on readmission
  ++victim.evictions;
  preempted_.push_back(std::move(victim));
  if (config_.record_metrics) obs::Metrics().counter("serve.seq.evicted").Add();
}

bool ContinuousBatchScheduler::ReserveBlocks(SeqState& target,
                                             std::int64_t tokens) {
  // EnsureAppendable = capacity for [0, tokens) plus copy-on-write
  // exclusivity of the blocks about to be written (positions
  // [processed, tokens) — shared prefix blocks fork here).
  while (!kv_->EnsureAppendable(target.slot, target.processed,
                                tokens - target.processed)) {
    // Preempt the youngest sequence that is younger than the target.
    std::size_t victim = running_.size();
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].admit_stamp <= target.admit_stamp) continue;
      if (victim == running_.size() ||
          running_[i].admit_stamp > running_[victim].admit_stamp) {
        victim = i;
      }
    }
    if (victim == running_.size()) return false;
    Evict(victim);
  }
  return true;
}

void ContinuousBatchScheduler::AppendGroup(StepPlan& plan, SeqState& seq,
                                           std::int64_t chunk) {
  const std::int64_t plen = static_cast<std::int64_t>(seq.req.prompt.size());
  plan.group_request.push_back(seq.req.id);
  plan.group_chunk.push_back(chunk);
  plan.group_samples.push_back(seq.processed + chunk == StreamLen(seq));
  std::int64_t prefill = 0;
  for (std::int64_t i = seq.processed; i < seq.processed + chunk; ++i) {
    plan.tokens.push_back(model::DecodeToken{StreamToken(seq, i), seq.slot, i});
    if (i < plen) ++prefill;
  }
  prefill_tokens_ += prefill;
  decode_tokens_ += chunk - prefill;
  if (config_.record_metrics) {
    auto& m = obs::Metrics();
    if (prefill > 0) {
      m.counter("serve.prefill_tokens")
          .Add(static_cast<std::uint64_t>(prefill));
    }
    if (chunk - prefill > 0) {
      m.counter("serve.decode_tokens")
          .Add(static_cast<std::uint64_t>(chunk - prefill));
    }
  }
}

StepPlan ContinuousBatchScheduler::PlanStep() {
  TRACE_SPAN("serve/plan");
  StepPlan plan;
  std::int64_t budget = config_.max_step_tokens;

  // Phase 1: running sequences, oldest first. Iterate over a stamp-sorted
  // id snapshot — eviction only ever removes sequences younger than the
  // one being planned, so planned groups are never invalidated.
  {
    std::vector<std::uint64_t> order;
    order.reserve(running_.size());
    for (const SeqState& s : running_) order.push_back(s.req.id);
    std::sort(order.begin(), order.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                // running_ ids are unique; find is O(n) but batches are
                // small by construction (max_running).
                auto stamp = [this](std::uint64_t id) {
                  for (const SeqState& s : running_)
                    if (s.req.id == id) return s.admit_stamp;
                  return std::uint64_t{0};
                };
                return stamp(a) < stamp(b);
              });
    for (std::uint64_t id : order) {
      if (budget <= 0) break;
      SeqState* seq = FindRunning(id);
      if (seq == nullptr) continue;  // evicted by an older sequence
      const std::int64_t remaining = StreamLen(*seq) - seq->processed;
      const std::int64_t chunk = std::min(remaining, budget);
      if (chunk <= 0) continue;
      if (!ReserveBlocks(*seq, seq->processed + chunk)) continue;
      AppendGroup(plan, *seq, chunk);
      budget -= chunk;
    }
  }

  // Phase 2: admissions — preempted sequences first (they keep their
  // original age stamp), then fresh requests under tenant round-robin.
  // Admissions never evict; they stop at the first sign of pool pressure.
  while (budget > 0 &&
         static_cast<std::int64_t>(running_.size()) < config_.max_running) {
    SeqState seq;
    bool from_preempted = false;
    if (!preempted_.empty()) {
      seq = std::move(preempted_.front());
      preempted_.pop_front();
      from_preempted = true;
    } else {
      std::optional<ServeRequest> r = admission_->Next();
      if (!r.has_value()) break;
      seq.req = std::move(*r);
      seq.admit_stamp = next_stamp_++;
      const std::int64_t plen =
          static_cast<std::int64_t>(seq.req.prompt.size());
      ZERO_CHECK(plen < config_.max_seq, "prompt exceeds model context");
      seq.req.max_new_tokens = static_cast<std::int32_t>(std::min<std::int64_t>(
          seq.req.max_new_tokens, config_.max_seq - plen));
      const std::int64_t total = plen + seq.req.max_new_tokens;
      ZERO_CHECK(total <= kv_->pool().capacity() *
                              kv_->pool().geometry().block_tokens,
                 "request exceeds total KV pool capacity");
    }
    seq.slot = kv_->AllocSlot();
    if (kv_->prefix_index_enabled()) {
      // Adopt published KV blocks over the replay stream (prompt plus
      // any generated tokens a preempted sequence re-derives — the
      // stream is deterministic, so adoption is too, on every rank).
      std::vector<std::int32_t> stream(
          static_cast<std::size_t>(StreamLen(seq)));
      for (std::int64_t i = 0; i < StreamLen(seq); ++i) {
        stream[static_cast<std::size_t>(i)] = StreamToken(seq, i);
      }
      const std::int64_t adopted = kv_->AdoptPrefix(seq.slot, stream);
      seq.processed = adopted;
      prefix_hit_tokens_ += adopted;
      if (adopted > 0) {
        ++prefix_hits_;
      } else {
        ++prefix_misses_;
      }
      if (config_.record_metrics) {
        auto& m = obs::Metrics();
        if (adopted > 0) {
          m.counter("serve.kv.prefix_hit_tokens")
              .Add(static_cast<std::uint64_t>(adopted));
          m.counter("serve.kv.prefix_hits").Add();
        } else {
          m.counter("serve.kv.prefix_misses").Add();
        }
      }
    }
    const std::int64_t chunk = std::min(StreamLen(seq) - seq.processed,
                                        budget);
    if (!kv_->EnsureAppendable(seq.slot, seq.processed, chunk)) {
      kv_->FreeSlot(seq.slot);
      seq.slot = -1;
      seq.processed = 0;  // adopted blocks were released with the slot
      preempted_.push_front(std::move(seq));  // retains priority
      break;
    }
    if (from_preempted && config_.record_metrics) {
      obs::Metrics().counter("serve.seq.readmitted").Add();
    }
    AppendGroup(plan, seq, chunk);
    budget -= chunk;
    running_.push_back(std::move(seq));
  }

  if (config_.record_metrics && !plan.empty()) {
    auto& m = obs::Metrics();
    m.counter("serve.steps").Add();
    m.histogram("serve.step_tokens")
        .Observe(static_cast<double>(plan.tokens.size()));
  }
  return plan;
}

void ContinuousBatchScheduler::CommitStep(const StepPlan& plan,
                                          const float* logits,
                                          std::int64_t vocab, double now_s,
                                          std::vector<RequestOutcome>& done) {
  TRACE_SPAN("serve/commit");
  for (std::size_t g = 0; g < plan.groups(); ++g) {
    SeqState* seq = FindRunning(plan.group_request[g]);
    ZERO_CHECK(seq != nullptr, "committed group lost its sequence");
    const std::int64_t plen =
        static_cast<std::int64_t>(seq->req.prompt.size());
    const std::int64_t before = seq->processed;
    seq->processed += plan.group_chunk[g];
    if (kv_->prefix_index_enabled() && before < plen &&
        seq->processed >= plen) {
      // Prompt fully prefilled: publish its KV blocks for prefix reuse
      // (the index holds its own references, so publication survives
      // this sequence finishing or being evicted).
      kv_->PublishPrefix(seq->slot,
                         std::span<const std::int32_t>(seq->req.prompt));
    }
    if (!plan.group_samples[g]) continue;

    // Greedy sample: first-max argmax, deterministic across ranks since
    // MP all-reduced logits are replicated bitwise.
    const float* row = logits + static_cast<std::int64_t>(g) * vocab;
    std::int32_t best = 0;
    for (std::int64_t t = 1; t < vocab; ++t) {
      if (row[t] > row[best]) best = static_cast<std::int32_t>(t);
    }
    if (seq->first_token_s < 0.0) seq->first_token_s = now_s;
    seq->generated.push_back(best);

    if (static_cast<std::int32_t>(seq->generated.size()) >=
        seq->req.max_new_tokens) {
      RequestOutcome out;
      out.id = seq->req.id;
      out.tenant = seq->req.tenant;
      out.completed = true;
      out.output = seq->generated;
      out.arrival_s = seq->req.arrival_s;
      out.first_token_s = seq->first_token_s;
      out.done_s = now_s;
      out.evictions = seq->evictions;
      done.push_back(std::move(out));
      kv_->FreeSlot(seq->slot);
      if (config_.record_metrics) {
        auto& m = obs::Metrics();
        m.counter("serve.requests.completed").Add();
        m.histogram("serve.ttft_ms")
            .Observe((seq->first_token_s - seq->req.arrival_s) * 1e3);
        m.histogram("serve.e2e_ms")
            .Observe((now_s - seq->req.arrival_s) * 1e3);
      }
      for (std::size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].req.id == plan.group_request[g]) {
          running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }
  PublishTokenGauge();
}

void ContinuousBatchScheduler::PublishTokenGauge() {
  std::int64_t cached = 0;
  for (const SeqState& s : running_) cached += s.processed;
  kv_->pool().SetUsedTokens(cached);
  if (config_.record_metrics) {
    obs::Metrics().gauge("serve.running")
        .Set(static_cast<double>(running_.size()));
  }
}

}  // namespace zero::serve
