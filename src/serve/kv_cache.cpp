#include "serve/kv_cache.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace zero::serve {

KvBlockPool::KvBlockPool(KvGeometry geom, std::int64_t max_blocks,
                         alloc::CachingAllocator* device, bool record_metrics)
    : geom_(geom),
      max_blocks_(max_blocks),
      device_(device),
      record_metrics_(record_metrics) {
  ZERO_CHECK(max_blocks_ > 0, "KV pool needs at least one block");
  PublishGauges();
}

float* KvBlockPool::Acquire() {
  float* block = nullptr;
  if (!free_list_.empty()) {
    block = free_list_.back();
    free_list_.pop_back();
  } else {
    const std::int64_t allocated =
        static_cast<std::int64_t>(device_blocks_.size() + heap_blocks_.size());
    if (allocated >= max_blocks_) return nullptr;
    if (device_ != nullptr) {
      try {
        device_blocks_.push_back(device_->Malloc(geom_.block_bytes()));
      } catch (const DeviceOomError&) {
        return nullptr;  // treated as pool pressure, not a crash
      }
      block = reinterpret_cast<float*>(device_blocks_.back().data());
    } else {
      heap_blocks_.emplace_back(
          static_cast<std::size_t>(geom_.block_floats()), 0.0f);
      block = heap_blocks_.back().data();
    }
  }
  ++used_;
  if (used_ > peak_used_) peak_used_ = used_;
  PublishGauges();
  return block;
}

void KvBlockPool::Release(float* block) {
  ZERO_CHECK(block != nullptr && used_ > 0, "KV pool double free");
  free_list_.push_back(block);
  --used_;
  PublishGauges();
}

void KvBlockPool::SetUsedTokens(std::int64_t tokens) {
  used_tokens_ = tokens;
  PublishGauges();
}

void KvBlockPool::PublishGauges() const {
  if (!record_metrics_) return;
  auto& m = obs::Metrics();
  m.gauge("alloc.kv.blocks_total").Set(static_cast<double>(max_blocks_));
  m.gauge("alloc.kv.blocks_used").Set(static_cast<double>(used_));
  m.gauge("alloc.kv.blocks_peak").Set(static_cast<double>(peak_used_));
  const std::int64_t held_tokens = used_ * geom_.block_tokens;
  const double frag =
      held_tokens > 0
          ? 1.0 - static_cast<double>(used_tokens_) /
                      static_cast<double>(held_tokens)
          : 0.0;
  m.gauge("alloc.kv.fragmentation").Set(frag);
}

std::int32_t SlotKvCache::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::int32_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[static_cast<std::size_t>(s)].live = true;
    return s;
  }
  slots_.push_back(Slot{{}, true});
  return static_cast<std::int32_t>(slots_.size() - 1);
}

bool SlotKvCache::EnsureCapacity(std::int32_t slot, std::int64_t tokens) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  ZERO_CHECK(s.live, "EnsureCapacity on a retired slot");
  const std::int64_t need = pool_->geometry().blocks_for(tokens);
  while (static_cast<std::int64_t>(s.blocks.size()) < need) {
    float* b = pool_->Acquire();
    if (b == nullptr) return false;
    s.blocks.push_back(b);
  }
  return true;
}

void SlotKvCache::FreeSlot(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  ZERO_CHECK(s.live, "FreeSlot on a retired slot");
  for (float* b : s.blocks) pool_->Release(b);
  s.blocks.clear();
  s.live = false;
  free_slots_.push_back(slot);
}

std::int64_t SlotKvCache::slot_blocks(std::int32_t slot) const {
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  return static_cast<std::int64_t>(s.blocks.size());
}

float* SlotKvCache::Row(std::int32_t slot, std::int64_t layer,
                        std::int64_t pos, std::int64_t which) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const KvGeometry& g = pool_->geometry();
  const std::size_t block_idx = static_cast<std::size_t>(pos / g.block_tokens);
  ZERO_CHECK(s.live && block_idx < s.blocks.size(),
             "KV row access outside reserved blocks");
  const std::int64_t within = pos % g.block_tokens;
  return s.blocks[block_idx] +
         ((layer * 2 + which) * g.block_tokens + within) * g.row_floats;
}

float* SlotKvCache::KRow(std::int32_t slot, std::int64_t layer,
                         std::int64_t pos) {
  return Row(slot, layer, pos, 0);
}

float* SlotKvCache::VRow(std::int32_t slot, std::int64_t layer,
                         std::int64_t pos) {
  return Row(slot, layer, pos, 1);
}

}  // namespace zero::serve
