#include "serve/kv_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace zero::serve {

namespace {

// splitmix64 finalizer — the chained prefix hash below folds each token
// through it, so equal token prefixes hash equal on every rank (the
// hash sees token ids only, never rank-local K/V bytes).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t ChainTokens(std::uint64_t h,
                          std::span<const std::int32_t> tokens) {
  for (std::int32_t t : tokens) {
    h = Mix64(h ^ static_cast<std::uint32_t>(t));
  }
  return h;
}

constexpr std::uint64_t kPrefixHashSeed = 0x5eedf00dcafe17ull;

}  // namespace

KvBlockPool::KvBlockPool(KvGeometry geom, std::int64_t max_blocks,
                         alloc::CachingAllocator* device, bool record_metrics)
    : geom_(geom),
      max_blocks_(max_blocks),
      device_(device),
      record_metrics_(record_metrics) {
  ZERO_CHECK(max_blocks_ > 0, "KV pool needs at least one block");
  PublishGauges();
}

float* KvBlockPool::Acquire() {
  float* block = nullptr;
  if (!free_list_.empty()) {
    block = free_list_.back();
    free_list_.pop_back();
  } else {
    const std::int64_t allocated =
        static_cast<std::int64_t>(device_blocks_.size() + heap_blocks_.size());
    if (allocated >= max_blocks_) return nullptr;
    if (device_ != nullptr) {
      try {
        device_blocks_.push_back(device_->Malloc(geom_.block_bytes()));
      } catch (const DeviceOomError&) {
        return nullptr;  // treated as pool pressure, not a crash
      }
      block = reinterpret_cast<float*>(device_blocks_.back().data());
    } else {
      heap_blocks_.emplace_back(
          static_cast<std::size_t>(geom_.block_floats()), 0.0f);
      block = heap_blocks_.back().data();
    }
  }
  refs_[block] = 1;
  ++used_;
  if (used_ > peak_used_) peak_used_ = used_;
  PublishGauges();
  return block;
}

void KvBlockPool::AddRef(float* block) {
  auto it = refs_.find(block);
  ZERO_CHECK(it != refs_.end(), "AddRef on a block the pool does not hold");
  ++it->second;
}

void KvBlockPool::Release(float* block) {
  ZERO_CHECK(block != nullptr && used_ > 0, "KV pool double free");
  auto it = refs_.find(block);
  ZERO_CHECK(it != refs_.end() && it->second > 0, "KV pool double free");
  if (--it->second > 0) return;  // other holders keep the block alive
  refs_.erase(it);
  free_list_.push_back(block);
  --used_;
  PublishGauges();
}

std::int64_t KvBlockPool::RefCount(float* block) const {
  auto it = refs_.find(block);
  return it == refs_.end() ? 0 : it->second;
}

void KvBlockPool::SetUsedTokens(std::int64_t tokens) {
  used_tokens_ = tokens;
  PublishGauges();
}

void KvBlockPool::PublishGauges() const {
  if (!record_metrics_) return;
  auto& m = obs::Metrics();
  m.gauge("alloc.kv.blocks_total").Set(static_cast<double>(max_blocks_));
  m.gauge("alloc.kv.blocks_used").Set(static_cast<double>(used_));
  m.gauge("alloc.kv.blocks_peak").Set(static_cast<double>(peak_used_));
  const std::int64_t held_tokens = used_ * geom_.block_tokens;
  // Sharing can push cached tokens past physically held capacity, so
  // the starvation-side gauge clamps at zero.
  const double frag =
      held_tokens > 0
          ? std::max(0.0, 1.0 - static_cast<double>(used_tokens_) /
                                    static_cast<double>(held_tokens))
          : 0.0;
  m.gauge("alloc.kv.fragmentation").Set(frag);
}

std::int32_t SlotKvCache::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::int32_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[static_cast<std::size_t>(s)].live = true;
    return s;
  }
  slots_.push_back(Slot{{}, true});
  return static_cast<std::int32_t>(slots_.size() - 1);
}

float* SlotKvCache::AcquireBlock() {
  for (;;) {
    float* b = pool_->Acquire();
    if (b != nullptr) return b;
    if (!TryEvictIndexBlock()) return nullptr;
  }
}

bool SlotKvCache::EnsureCapacity(std::int32_t slot, std::int64_t tokens) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  ZERO_CHECK(s.live, "EnsureCapacity on a retired slot");
  const std::int64_t need = pool_->geometry().blocks_for(tokens);
  while (static_cast<std::int64_t>(s.blocks.size()) < need) {
    float* b = AcquireBlock();
    if (b == nullptr) return false;
    s.blocks.push_back(b);
  }
  return true;
}

bool SlotKvCache::EnsureAppendable(std::int32_t slot, std::int64_t from_pos,
                                   std::int64_t new_tokens) {
  if (new_tokens <= 0) return true;
  if (!EnsureCapacity(slot, from_pos + new_tokens)) return false;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const KvGeometry& g = pool_->geometry();
  const std::int64_t first = from_pos / g.block_tokens;
  const std::int64_t last = (from_pos + new_tokens - 1) / g.block_tokens;
  for (std::int64_t b = first; b <= last; ++b) {
    float* old = s.blocks[static_cast<std::size_t>(b)];
    if (pool_->RefCount(old) <= 1) continue;
    // Copy-on-write fork: the block is shared (other slots or the
    // prefix index read it), so appending into it must not be visible
    // to them. Whole-block copy keeps already-cached positions of this
    // partially-filled block bitwise intact.
    float* fresh = AcquireBlock();
    if (fresh == nullptr) return false;
    std::memcpy(fresh, old,
                static_cast<std::size_t>(g.block_floats()) * sizeof(float));
    pool_->Release(old);
    s.blocks[static_cast<std::size_t>(b)] = fresh;
  }
  return true;
}

void SlotKvCache::FreeSlot(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  ZERO_CHECK(s.live, "FreeSlot on a retired slot");
  for (float* b : s.blocks) pool_->Release(b);
  s.blocks.clear();
  s.live = false;
  free_slots_.push_back(slot);
}

std::int64_t SlotKvCache::AdoptPrefix(std::int32_t slot,
                                      std::span<const std::int32_t> tokens) {
  if (!prefix_index_) return 0;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  ZERO_CHECK(s.live && s.blocks.empty(),
             "prefix adoption needs a fresh slot");
  const std::int64_t bt = pool_->geometry().block_tokens;
  // Cap: leave at least one token to prefill so the sequence still
  // produces a logits row (and a first sampled token).
  const std::int64_t limit = static_cast<std::int64_t>(tokens.size()) - 1;
  std::uint64_t h = kPrefixHashSeed;
  std::int64_t depth = 0;  // full blocks adopted
  while ((depth + 1) * bt <= limit) {
    const auto chunk = tokens.subspan(static_cast<std::size_t>(depth * bt),
                                      static_cast<std::size_t>(bt));
    const std::uint64_t hn = ChainTokens(h, chunk);
    auto it = index_.find(hn);
    if (it == index_.end()) break;
    if (!std::equal(it->second.tokens.begin(), it->second.tokens.end(),
                    chunk.begin(), chunk.end())) {
      break;  // 64-bit hash collision: treat as a miss
    }
    pool_->AddRef(it->second.block);
    s.blocks.push_back(it->second.block);
    h = hn;
    ++depth;
  }
  std::int64_t adopted = depth * bt;
  // Partial tail published under the parent (block-aligned) prefix:
  // share it for the common run of its tokens. The adopter's first
  // append then lands inside this shared block, which is exactly the
  // copy-on-write fork EnsureAppendable performs.
  auto tit = tail_index_.find(h);
  if (tit != tail_index_.end()) {
    const std::int64_t tail_cap =
        std::min<std::int64_t>(
            static_cast<std::int64_t>(tit->second.tokens.size()),
            limit - adopted);
    std::int64_t lcp = 0;
    while (lcp < tail_cap &&
           tit->second.tokens[static_cast<std::size_t>(lcp)] ==
               tokens[static_cast<std::size_t>(adopted + lcp)]) {
      ++lcp;
    }
    if (lcp > 0) {
      pool_->AddRef(tit->second.block);
      s.blocks.push_back(tit->second.block);
      adopted += lcp;
    }
  }
  return adopted;
}

void SlotKvCache::PublishPrefix(std::int32_t slot,
                                std::span<const std::int32_t> tokens) {
  if (!prefix_index_) return;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  ZERO_CHECK(s.live, "PublishPrefix on a retired slot");
  const std::int64_t bt = pool_->geometry().block_tokens;
  const std::int64_t len = static_cast<std::int64_t>(tokens.size());
  std::uint64_t h = kPrefixHashSeed;
  std::int64_t depth = 0;
  for (; (depth + 1) * bt <= len; ++depth) {
    const auto chunk = tokens.subspan(static_cast<std::size_t>(depth * bt),
                                      static_cast<std::size_t>(bt));
    h = ChainTokens(h, chunk);
    if (index_.find(h) != index_.end()) continue;  // first publication wins
    ZERO_CHECK(depth < static_cast<std::int64_t>(s.blocks.size()),
               "PublishPrefix past the slot's blocks");
    float* block = s.blocks[static_cast<std::size_t>(depth)];
    pool_->AddRef(block);
    index_.emplace(
        h, PrefixEntry{block, std::vector<std::int32_t>(chunk.begin(),
                                                        chunk.end())});
    index_fifo_.push_back(IndexRef{h, false});
  }
  const std::int64_t tail_len = len - depth * bt;
  if (tail_len > 0 && tail_index_.find(h) == tail_index_.end()) {
    ZERO_CHECK(depth < static_cast<std::int64_t>(s.blocks.size()),
               "PublishPrefix past the slot's blocks");
    float* block = s.blocks[static_cast<std::size_t>(depth)];
    pool_->AddRef(block);
    const auto tail = tokens.subspan(static_cast<std::size_t>(depth * bt));
    tail_index_.emplace(
        h, PrefixEntry{block, std::vector<std::int32_t>(tail.begin(),
                                                        tail.end())});
    index_fifo_.push_back(IndexRef{h, true});
  }
  PublishIndexGauge();
}

bool SlotKvCache::TryEvictIndexBlock() {
  for (auto fit = index_fifo_.begin(); fit != index_fifo_.end(); ++fit) {
    auto& map = fit->tail ? tail_index_ : index_;
    auto it = map.find(fit->key);
    ZERO_CHECK(it != map.end(), "prefix index fifo out of sync");
    // Only blocks with no live readers may be dropped — freeing a block
    // other slots still attend against would corrupt their sequences.
    if (pool_->RefCount(it->second.block) != 1) continue;
    pool_->Release(it->second.block);
    map.erase(it);
    index_fifo_.erase(fit);
    PublishIndexGauge();
    return true;
  }
  return false;
}

void SlotKvCache::PublishIndexGauge() const {
  if (!pool_->record_metrics()) return;
  obs::Metrics()
      .gauge("serve.kv.prefix_index_blocks")
      .Set(static_cast<double>(index_.size()));
}

std::int64_t SlotKvCache::slot_blocks(std::int32_t slot) const {
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  return static_cast<std::int64_t>(s.blocks.size());
}

float* SlotKvCache::block_at(std::int32_t slot, std::int64_t i) const {
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  return s.blocks.at(static_cast<std::size_t>(i));
}

float* SlotKvCache::Row(std::int32_t slot, std::int64_t layer,
                        std::int64_t pos, std::int64_t which) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const KvGeometry& g = pool_->geometry();
  const std::size_t block_idx = static_cast<std::size_t>(pos / g.block_tokens);
  ZERO_CHECK(s.live && block_idx < s.blocks.size(),
             "KV row access outside reserved blocks");
  const std::int64_t within = pos % g.block_tokens;
  return s.blocks[block_idx] +
         ((layer * 2 + which) * g.block_tokens + within) * g.row_floats;
}

float* SlotKvCache::KRow(std::int32_t slot, std::int64_t layer,
                         std::int64_t pos) {
  return Row(slot, layer, pos, 0);
}

float* SlotKvCache::VRow(std::int32_t slot, std::int64_t layer,
                         std::int64_t pos) {
  return Row(slot, layer, pos, 1);
}

}  // namespace zero::serve
