// Multi-tenant admission control in front of the batching scheduler:
//
//   1. Queue-depth backpressure — a global cap on queued requests; past
//      it, arrivals bounce immediately (kQueueFull).
//   2. Bounded-latency rejection — the expected wait of the queue
//      (queued tokens / modeled service rate) must stay under the SLO,
//      otherwise admitting the request would only breach its own
//      deadline (kLatencyBound).
//   3. Per-tenant token buckets — each tenant refills at its contracted
//      tokens/s with a burst allowance; a request costs prompt +
//      max_new_tokens. An empty bucket throttles that tenant without
//      touching the others (kThrottled).
//
// Admitted requests land in per-tenant FIFO queues; the scheduler drains
// them with a round-robin cursor across tenants, so a tenant flooding
// the system cannot starve a sparse one — fairness is enforced at
// dequeue, rate at enqueue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/request.hpp"

namespace zero::serve {

struct TenantPolicy {
  double rate_tokens_per_s = 1e12;  // effectively unlimited by default
  double burst_tokens = 1e12;
};

struct AdmissionConfig {
  std::vector<TenantPolicy> tenants;  // indexed by tenant id; short = default
  std::int64_t max_queue_requests = 1024;
  double max_expected_wait_s = 0.0;   // 0 disables the latency bound
  double est_tokens_per_s = 100000;   // service-rate model for the bound
  bool record_metrics = true;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  // Admits into the tenant's queue or returns the rejection reason.
  RejectReason Offer(ServeRequest request, double now_s);

  // Next request under round-robin tenant fairness; nullopt when empty.
  [[nodiscard]] std::optional<ServeRequest> Next();

  [[nodiscard]] bool HasQueued() const { return queued_requests_ > 0; }
  [[nodiscard]] std::int64_t queue_depth() const { return queued_requests_; }
  [[nodiscard]] std::int64_t queued_tokens() const { return queued_tokens_; }

 private:
  struct TenantState {
    TenantPolicy policy;
    double bucket = 0.0;
    double refilled_s = 0.0;
    std::deque<ServeRequest> queue;
  };
  TenantState& Tenant(std::int32_t id);

  AdmissionConfig config_;
  std::vector<TenantState> tenants_;
  std::int64_t queued_requests_ = 0;
  std::int64_t queued_tokens_ = 0;
  std::size_t rr_cursor_ = 0;
};

}  // namespace zero::serve
