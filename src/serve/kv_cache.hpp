// Paged KV cache for incremental decode, carved from the caching
// allocator in fixed-size blocks (the inference-time analogue of the
// paper's residual-state analysis: KV rows are what bound serving batch
// size, so they get block-granular alloc/free and finished sequences
// return their blocks to the pool immediately).
//
// Layout: one block holds `block_tokens` positions for every layer,
//   [layer 0..L) × [K|V] × [token 0..block_tokens) × [row_floats],
// so a sequence needs ceil(len / block_tokens) blocks regardless of
// depth, and a row pointer is one multiply away from the block base.
// Rows hold only this MP rank's local heads (row_floats = hidden / mp).
//
// Pool pressure is exported through `alloc.kv.*` gauges: blocks
// total/used/peak plus internal fragmentation (the fraction of token
// capacity in held blocks that no cached row occupies yet).
#pragma once

#include <cstdint>
#include <vector>

#include "alloc/caching_allocator.hpp"
#include "model/gpt.hpp"

namespace zero::serve {

struct KvGeometry {
  std::int64_t layers = 1;
  std::int64_t row_floats = 1;    // hidden / mp on the owning rank
  std::int64_t block_tokens = 8;  // positions per block

  [[nodiscard]] std::int64_t block_floats() const {
    return layers * 2 * block_tokens * row_floats;
  }
  [[nodiscard]] std::size_t block_bytes() const {
    return static_cast<std::size_t>(block_floats()) * sizeof(float);
  }
  [[nodiscard]] std::int64_t blocks_for(std::int64_t tokens) const {
    return (tokens + block_tokens - 1) / block_tokens;
  }
};

// Fixed-capacity pool of KV blocks. Backed by the caching allocator when
// a device is present (each block is one CachedBlock, so Fig-7-style
// cache accounting sees serving pressure too); heap otherwise. Released
// blocks go to an internal freelist for exact reuse.
class KvBlockPool {
 public:
  KvBlockPool(KvGeometry geom, std::int64_t max_blocks,
              alloc::CachingAllocator* device, bool record_metrics);

  // Returns a block base pointer, or nullptr when the pool is exhausted
  // (capacity reached, or the device allocator is out of memory).
  [[nodiscard]] float* Acquire();
  void Release(float* block);

  [[nodiscard]] const KvGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::int64_t capacity() const { return max_blocks_; }
  [[nodiscard]] std::int64_t used() const { return used_; }
  [[nodiscard]] std::int64_t peak_used() const { return peak_used_; }

  // Fragmentation gauge input: tokens actually cached in held blocks.
  void SetUsedTokens(std::int64_t tokens);

 private:
  void PublishGauges() const;

  KvGeometry geom_;
  std::int64_t max_blocks_ = 0;
  alloc::CachingAllocator* device_ = nullptr;
  bool record_metrics_ = true;
  std::vector<alloc::CachedBlock> device_blocks_;
  std::vector<std::vector<float>> heap_blocks_;
  std::vector<float*> free_list_;
  std::int64_t used_ = 0;
  std::int64_t peak_used_ = 0;
  std::int64_t used_tokens_ = 0;
};

// Slot table mapping sequence handles to block lists; the KvCache the
// model's DecodeForward reads and appends through.
class SlotKvCache final : public model::KvCache {
 public:
  explicit SlotKvCache(KvBlockPool* pool) : pool_(pool) {}

  [[nodiscard]] std::int32_t AllocSlot();
  // Acquires blocks until the slot covers `tokens` positions. Returns
  // false (leaving already-held blocks in place) if the pool runs dry.
  [[nodiscard]] bool EnsureCapacity(std::int32_t slot, std::int64_t tokens);
  // Returns every block of the slot to the pool and retires the slot.
  void FreeSlot(std::int32_t slot);

  [[nodiscard]] std::int64_t slot_blocks(std::int32_t slot) const;
  [[nodiscard]] KvBlockPool& pool() { return *pool_; }

  float* KRow(std::int32_t slot, std::int64_t layer,
              std::int64_t pos) override;
  float* VRow(std::int32_t slot, std::int64_t layer,
              std::int64_t pos) override;

 private:
  struct Slot {
    std::vector<float*> blocks;
    bool live = false;
  };
  float* Row(std::int32_t slot, std::int64_t layer, std::int64_t pos,
             std::int64_t which);

  KvBlockPool* pool_;
  std::vector<Slot> slots_;
  std::vector<std::int32_t> free_slots_;
};

}  // namespace zero::serve
