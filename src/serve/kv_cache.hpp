// Paged KV cache for incremental decode, carved from the caching
// allocator in fixed-size blocks (the inference-time analogue of the
// paper's residual-state analysis: KV rows are what bound serving batch
// size, so they get block-granular alloc/free and finished sequences
// return their blocks to the pool immediately).
//
// Layout: one block holds `block_tokens` positions for every layer,
//   [layer 0..L) × [K|V] × [token 0..block_tokens) × [row_floats],
// so a sequence needs ceil(len / block_tokens) blocks regardless of
// depth, and a row pointer is one multiply away from the block base.
// Rows hold only this MP rank's local heads (row_floats = hidden / mp).
//
// Blocks are refcounted so full prefix blocks can be shared
// copy-on-write between sequences whose token prefixes match: a
// hash-keyed index maps the chained hash of each block-aligned token
// prefix to the block holding its K/V rows. Sharing is sound because
// K/V rows are a pure function of the token prefix and the weights —
// bitwise, inside the small-GEMM envelope DESIGN.md §16 describes — so
// an adopted block is indistinguishable from recomputing prefill.
// Writers must hold a block exclusively: EnsureAppendable forks any
// shared block in the write range (whole-block copy) before the model
// appends to it. The index holds its own reference per published
// block; when the pool runs dry, index-only blocks (refcount 1) are
// dropped oldest-published-first before the caller sees pressure.
//
// Pool pressure is exported through `alloc.kv.*` gauges: blocks
// total/used/peak plus internal fragmentation (the fraction of token
// capacity in held blocks that no cached row occupies yet);
// `serve.kv.prefix_index_blocks` tracks published prefix blocks.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "alloc/caching_allocator.hpp"
#include "model/gpt.hpp"

namespace zero::serve {

struct KvGeometry {
  std::int64_t layers = 1;
  std::int64_t row_floats = 1;    // hidden / mp on the owning rank
  std::int64_t block_tokens = 8;  // positions per block

  [[nodiscard]] std::int64_t block_floats() const {
    return layers * 2 * block_tokens * row_floats;
  }
  [[nodiscard]] std::size_t block_bytes() const {
    return static_cast<std::size_t>(block_floats()) * sizeof(float);
  }
  [[nodiscard]] std::int64_t blocks_for(std::int64_t tokens) const {
    return (tokens + block_tokens - 1) / block_tokens;
  }
};

// Fixed-capacity pool of refcounted KV blocks. Backed by the caching
// allocator when a device is present (each block is one CachedBlock, so
// Fig-7-style cache accounting sees serving pressure too); heap
// otherwise. Fully released blocks go to an internal freelist for exact
// reuse.
class KvBlockPool {
 public:
  KvBlockPool(KvGeometry geom, std::int64_t max_blocks,
              alloc::CachingAllocator* device, bool record_metrics);

  // Returns a block base pointer with refcount 1, or nullptr when the
  // pool is exhausted (capacity reached, or the device allocator is out
  // of memory).
  [[nodiscard]] float* Acquire();
  // Adds a reference to a held block (prefix sharing).
  void AddRef(float* block);
  // Drops one reference; the block returns to the freelist when the
  // last reference goes away.
  void Release(float* block);
  [[nodiscard]] std::int64_t RefCount(float* block) const;

  [[nodiscard]] const KvGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::int64_t capacity() const { return max_blocks_; }
  [[nodiscard]] std::int64_t used() const { return used_; }
  [[nodiscard]] std::int64_t peak_used() const { return peak_used_; }
  [[nodiscard]] bool record_metrics() const { return record_metrics_; }

  // Fragmentation gauge input: tokens actually cached in held blocks.
  void SetUsedTokens(std::int64_t tokens);

 private:
  void PublishGauges() const;

  KvGeometry geom_;
  std::int64_t max_blocks_ = 0;
  alloc::CachingAllocator* device_ = nullptr;
  bool record_metrics_ = true;
  std::vector<alloc::CachedBlock> device_blocks_;
  std::vector<std::vector<float>> heap_blocks_;
  std::vector<float*> free_list_;
  std::unordered_map<float*, std::int32_t> refs_;
  std::int64_t used_ = 0;
  std::int64_t peak_used_ = 0;
  std::int64_t used_tokens_ = 0;
};

// Slot table mapping sequence handles to block lists; the KvCache the
// model's DecodeForward reads and appends through. With the prefix
// index enabled it also owns the prefix-sharing machinery: AdoptPrefix
// seeds a fresh slot with published blocks, PublishPrefix registers a
// prefilled prompt's full blocks, EnsureAppendable performs
// copy-on-write forks ahead of appends.
class SlotKvCache final : public model::KvCache {
 public:
  explicit SlotKvCache(KvBlockPool* pool, bool prefix_index = false)
      : pool_(pool), prefix_index_(prefix_index) {}

  [[nodiscard]] std::int32_t AllocSlot();
  // Acquires blocks until the slot covers `tokens` positions. Returns
  // false (leaving already-held blocks in place) if the pool runs dry.
  [[nodiscard]] bool EnsureCapacity(std::int32_t slot, std::int64_t tokens);
  // EnsureCapacity for positions [0, from_pos + new_tokens), plus
  // exclusivity of every block overlapping the write range
  // [from_pos, from_pos + new_tokens): shared blocks are forked
  // (whole-block copy) so the model may append through KRow/VRow.
  // Acquisitions retry after dropping index-only blocks. False on dry
  // pool, leaving the slot consistent (some blocks may already be
  // forked — contents are unchanged either way).
  [[nodiscard]] bool EnsureAppendable(std::int32_t slot,
                                      std::int64_t from_pos,
                                      std::int64_t new_tokens);
  // Returns every block of the slot to the pool and retires the slot.
  void FreeSlot(std::int32_t slot);

  // Seeds a fresh (blockless) slot with the longest run of published
  // full blocks matching `tokens`, then — if a partially-filled tail
  // block is published under the same parent prefix — shares that too,
  // up to the longest common run of its tokens. Capped so at least one
  // token is left to prefill. Returns the number of adopted positions
  // (0 when the index is disabled or cold).
  [[nodiscard]] std::int64_t AdoptPrefix(std::int32_t slot,
                                         std::span<const std::int32_t> tokens);
  // Registers a fully prefilled prompt in the index: every full block
  // under its chained token hash, plus the partially-filled tail block
  // (if any) under the parent hash. First publication wins; the index
  // takes one reference per newly published block. No-op when the
  // index is disabled.
  void PublishPrefix(std::int32_t slot, std::span<const std::int32_t> tokens);
  // Drops the oldest published block held only by the index, freeing
  // it. False when every published block still has live readers.
  bool TryEvictIndexBlock();

  [[nodiscard]] std::int64_t slot_blocks(std::int32_t slot) const;
  [[nodiscard]] float* block_at(std::int32_t slot, std::int64_t i) const;
  [[nodiscard]] std::int64_t index_blocks() const {
    return static_cast<std::int64_t>(index_.size() + tail_index_.size());
  }
  [[nodiscard]] bool prefix_index_enabled() const { return prefix_index_; }
  [[nodiscard]] KvBlockPool& pool() { return *pool_; }

  float* KRow(std::int32_t slot, std::int64_t layer,
              std::int64_t pos) override;
  float* VRow(std::int32_t slot, std::int64_t layer,
              std::int64_t pos) override;

 private:
  struct Slot {
    std::vector<float*> blocks;
    bool live = false;
  };
  struct PrefixEntry {
    float* block = nullptr;
    std::vector<std::int32_t> tokens;  // the block's tokens (collision guard)
  };
  struct IndexRef {
    std::uint64_t key = 0;
    bool tail = false;
  };

  float* Row(std::int32_t slot, std::int64_t layer, std::int64_t pos,
             std::int64_t which);
  // Acquire, dropping index-only blocks oldest-first while dry.
  [[nodiscard]] float* AcquireBlock();
  void PublishIndexGauge() const;

  KvBlockPool* pool_;
  bool prefix_index_ = false;
  std::vector<Slot> slots_;
  std::vector<std::int32_t> free_slots_;
  // Full blocks keyed by the chained hash of the block-aligned token
  // prefix they complete; partial tail blocks keyed by the chained hash
  // of their *parent* (block-aligned) prefix.
  std::unordered_map<std::uint64_t, PrefixEntry> index_;
  std::unordered_map<std::uint64_t, PrefixEntry> tail_index_;
  std::deque<IndexRef> index_fifo_;  // publication order (eviction)
};

}  // namespace zero::serve
