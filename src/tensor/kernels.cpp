#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "alloc/scratch.hpp"
#include "common/error.hpp"
#include "tensor/parallel_for.hpp"

namespace zero::tensor {

namespace {

// ---------------------------------------------------------------------------
// Blocking parameters.
//
// The micro-kernel computes a kMr x kNr register tile: 4x32 floats is 8
// AVX-512 (or 16 AVX2) accumulator vectors, leaving room for the A
// broadcast and B loads. Panel sizes keep the packed B strip (kKc x kNr
// = 16 KiB) L1-resident and the packed A block (kMc x kKc = 128 KiB)
// L2-resident.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 32;
constexpr std::int64_t kMc = 256;
constexpr std::int64_t kKc = 128;
constexpr std::int64_t kNc = 4096;

// Below this flop count the packing overhead dominates; use a direct
// strided path (attention runs many tiny per-head GEMMs).
constexpr std::int64_t kSmallGemmFlops = 1 << 15;

// Chunk sizes for deterministic parallel partitioning. These are part
// of each kernel's numeric contract: partials are combined in
// chunk-index order, so results are bitwise-stable for any worker
// count (the chunking depends only on the problem shape).
constexpr std::int64_t kElemChunk = 1 << 13;  // elementwise kernels
constexpr std::int64_t kRedChunk = 1 << 14;   // scalar reductions
constexpr std::int64_t kRowChunk = 64;        // column-reduction partials
constexpr std::int64_t kCeRowChunk = 16;      // cross-entropy rows

std::int64_t RowGrain(std::int64_t cols) {
  return std::max<std::int64_t>(1, kElemChunk / std::max<std::int64_t>(cols, 1));
}

// op(A)[i, kk] for A stored row-major as [m, k] (or [k, m] transposed).
inline float OpA(const float* a, bool trans, std::int64_t m, std::int64_t k,
                 std::int64_t i, std::int64_t kk) {
  return trans ? a[kk * m + i] : a[i * k + kk];
}

// op(B)[kk, j] for B stored row-major as [k, n] (or [n, k] transposed).
inline float OpB(const float* b, bool trans, std::int64_t k, std::int64_t n,
                 std::int64_t kk, std::int64_t j) {
  return trans ? b[j * k + kk] : b[kk * n + j];
}

// Direct path for small problems: every C element is one serial dot
// product, row-partitioned. No zero-multiplicand skipping — 0 * Inf
// must produce NaN for the loss-scaler's overflow detection.
void SmallGemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const float* a, const float* b,
               float* c) {
  ParallelFor(0, m, RowGrain(n * k), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          acc += OpA(a, trans_a, m, k, i, kk) * OpB(b, trans_b, k, n, kk, j);
        }
        ci[j] += alpha * acc;
      }
    }
  });
}

// Packs rows [i0, i0+mc) x k-range [p0, p0+kc) of op(A) into micro-panels
// of kMr rows: dst[(panel * kc + kk) * kMr + r], zero-padded past mc.
// alpha is folded in here (the seed kernel multiplied it into A too).
void PackA(const float* a, bool trans, std::int64_t m, std::int64_t k,
           std::int64_t i0, std::int64_t mc, std::int64_t p0, std::int64_t kc,
           float alpha, float* dst) {
  const std::int64_t panels = (mc + kMr - 1) / kMr;
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dp = dst + p * kc * kMr;
    const std::int64_t rbase = i0 + p * kMr;
    const std::int64_t rvalid = std::min<std::int64_t>(kMr, i0 + mc - rbase);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      float* drow = dp + kk * kMr;
      for (std::int64_t r = 0; r < rvalid; ++r) {
        drow[r] = alpha * OpA(a, trans, m, k, rbase + r, p0 + kk);
      }
      for (std::int64_t r = rvalid; r < kMr; ++r) drow[r] = 0.0f;
    }
  }
}

// Packs k-range [p0, p0+kc) x cols [j0, j0+nc) of op(B) into micro-panels
// of kNr columns: dst[(panel * kc + kk) * kNr + j], zero-padded past nc.
void PackB(const float* b, bool trans, std::int64_t k, std::int64_t n,
           std::int64_t p0, std::int64_t kc, std::int64_t j0, std::int64_t nc,
           float* dst) {
  const std::int64_t panels = (nc + kNr - 1) / kNr;
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dp = dst + p * kc * kNr;
    const std::int64_t cbase = j0 + p * kNr;
    const std::int64_t cvalid = std::min<std::int64_t>(kNr, j0 + nc - cbase);
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      float* drow = dp + kk * kNr;
      for (std::int64_t j = 0; j < cvalid; ++j) {
        drow[j] = OpB(b, trans, k, n, p0 + kk, cbase + j);
      }
      for (std::int64_t j = cvalid; j < kNr; ++j) drow[j] = 0.0f;
    }
  }
}

// C_tile[mr_e, nr_e] += packed-A panel x packed-B panel. The accumulator
// tile lives in registers across the whole kc loop; compile-time bounds
// let the compiler unroll and vectorize the j loop. Padded lanes (r >=
// mr_e, j >= nr_e) compute garbage that is never written back.
void MicroKernel(std::int64_t kc, const float* pa, const float* pb, float* c,
                 std::int64_t ldc, std::int64_t mr_e, std::int64_t nr_e) {
  float acc[kMr][kNr] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = pa + kk * kMr;
    const float* brow = pb + kk * kNr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (std::int64_t j = 0; j < kNr; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  if (mr_e == kMr && nr_e == kNr) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      float* cr = c + r * ldc;
      for (std::int64_t j = 0; j < kNr; ++j) cr[j] += acc[r][j];
    }
  } else {
    for (std::int64_t r = 0; r < mr_e; ++r) {
      float* cr = c + r * ldc;
      for (std::int64_t j = 0; j < nr_e; ++j) cr[j] += acc[r][j];
    }
  }
}

void PackedGemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, const float* b,
                float* c) {
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t b_panels = (nc_max + kNr - 1) / kNr;
  float* pb = scratch.AllocateT<float>(
      static_cast<std::size_t>(b_panels * kKc * kNr));
  const std::int64_t n_iblocks = (m + kMc - 1) / kMc;

  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    const std::int64_t jr_panels = (nc + kNr - 1) / kNr;
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t kc = std::min(kKc, k - pc);
      PackB(b, trans_b, k, n, pc, kc, jc, nc, pb);
      // Row blocks are independent: each C element accumulates its
      // kc-panel contribution in the same serial order no matter which
      // worker owns the block (the pc loop is a barrier).
      ParallelFor(0, n_iblocks, 1, [&](std::int64_t ib0, std::int64_t ib1) {
        alloc::ScratchArena& task_scratch = alloc::ThreadScratch();
        alloc::ScratchGuard task_guard(task_scratch);
        float* pa = task_scratch.AllocateT<float>(
            static_cast<std::size_t>(((kMc + kMr - 1) / kMr) * kMr * kKc));
        for (std::int64_t ib = ib0; ib < ib1; ++ib) {
          const std::int64_t i0 = ib * kMc;
          const std::int64_t mc = std::min(kMc, m - i0);
          PackA(a, trans_a, m, k, i0, mc, pc, kc, alpha, pa);
          const std::int64_t ir_panels = (mc + kMr - 1) / kMr;
          for (std::int64_t jr = 0; jr < jr_panels; ++jr) {
            const float* pbp = pb + jr * kc * kNr;
            const std::int64_t j0 = jc + jr * kNr;
            const std::int64_t nr_e = std::min<std::int64_t>(kNr, n - j0);
            for (std::int64_t ir = 0; ir < ir_panels; ++ir) {
              const std::int64_t r0 = i0 + ir * kMr;
              const std::int64_t mr_e = std::min<std::int64_t>(kMr, m - r0);
              MicroKernel(kc, pa + ir * kc * kMr, pbp, c + r0 * n + j0, n,
                          mr_e, nr_e);
            }
          }
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Mixed-precision weight operands. A reader maps a flat element index of
// the [n, k] weight matrix to fp32; Decode() handles a contiguous run
// (one weight row's k-slice) so the blocked path can use the bulk
// AVX-512 half decoder inside PackB instead of a per-element gather.
struct HalfWeightReader {
  const Half* w;
  const float* lut;
  float operator()(std::int64_t idx) const { return lut[w[idx].bits()]; }
  void Decode(std::int64_t idx, std::int64_t len, float* dst) const {
    HalfToFloat(w + idx, dst, static_cast<std::size_t>(len));
  }
};

struct QuantWeightReader {
  const std::int8_t* codes;
  const float* scales;
  std::int64_t qblock;
  float operator()(std::int64_t idx) const {
    return static_cast<float>(codes[idx]) * scales[idx / qblock];
  }
  void Decode(std::int64_t idx, std::int64_t len, float* dst) const {
    // Split the run at quant-block boundaries so the inner loop is a
    // contiguous int8->fp32 convert against one broadcast scale — the
    // form the compiler vectorizes — instead of a per-element division
    // for the scale index. Same expression per element, bitwise equal
    // to the scalar reader.
    std::int64_t i = idx;
    std::int64_t o = 0;
    while (o < len) {
      const float s = scales[i / qblock];
      const std::int64_t run = std::min(len - o, qblock - i % qblock);
      const std::int8_t* cp = codes + i;
      float* dp = dst + o;
      for (std::int64_t j = 0; j < run; ++j) {
        dp[j] = static_cast<float>(cp[j]) * s;
      }
      i += run;
      o += run;
    }
  }
};

// Direct path: the small regime bounds the weight tile (n * k <=
// kSmallGemmFlops elements), so it is bulk-decoded into thread scratch
// and fed to the *same* SmallGemm that fp32 callers reach — bitwise the
// decoded-fp32 result by construction. (A separate reader-based dot
// product is not equivalent in practice: the compiler contracts the two
// loop bodies into FMAs differently, and the last-ulp drift would break
// the §16 envelope the serving tests pin.)
template <class Reader>
void SmallGemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                      float alpha, const float* a, const Reader& w,
                      float* c) {
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  float* wf = scratch.AllocateT<float>(static_cast<std::size_t>(n * k));
  w.Decode(0, n * k, wf);
  SmallGemm(false, true, m, n, k, alpha, a, wf, c);
}

// PackB twin for a transposed reduced-precision weight operand: panel
// column j is weight row (j0 + ...), whose k-range [p0, p0+kc) is
// contiguous in W — decoded in one bulk call, then scattered into the
// kNr-interleaved panel. This is where the fp16 decode fuses into the
// pack step.
template <class Reader>
void PackWeightT(const Reader& w, std::int64_t k, std::int64_t p0,
                 std::int64_t kc, std::int64_t j0, std::int64_t nc,
                 float* dst) {
  float tmp[kKc];
  const std::int64_t panels = (nc + kNr - 1) / kNr;
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dp = dst + p * kc * kNr;
    const std::int64_t cbase = j0 + p * kNr;
    const std::int64_t cvalid = std::min<std::int64_t>(kNr, j0 + nc - cbase);
    for (std::int64_t j = 0; j < cvalid; ++j) {
      w.Decode((cbase + j) * k + p0, kc, tmp);
      for (std::int64_t kk = 0; kk < kc; ++kk) dp[kk * kNr + j] = tmp[kk];
    }
    for (std::int64_t j = cvalid; j < kNr; ++j) {
      for (std::int64_t kk = 0; kk < kc; ++kk) dp[kk * kNr + j] = 0.0f;
    }
  }
}

// PackedGemm twin with the B pack swapped for PackWeightT; the blocking
// loops, A packing and micro-kernel are shared, so the float pipeline is
// element-for-element the fp32 one.
template <class Reader>
void PackedGemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                       float alpha, const float* a, const Reader& w,
                       float* c) {
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t b_panels = (nc_max + kNr - 1) / kNr;
  float* pb = scratch.AllocateT<float>(
      static_cast<std::size_t>(b_panels * kKc * kNr));
  const std::int64_t n_iblocks = (m + kMc - 1) / kMc;

  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    const std::int64_t jr_panels = (nc + kNr - 1) / kNr;
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t kc = std::min(kKc, k - pc);
      PackWeightT(w, k, pc, kc, jc, nc, pb);
      ParallelFor(0, n_iblocks, 1, [&](std::int64_t ib0, std::int64_t ib1) {
        alloc::ScratchArena& task_scratch = alloc::ThreadScratch();
        alloc::ScratchGuard task_guard(task_scratch);
        float* pa = task_scratch.AllocateT<float>(
            static_cast<std::size_t>(((kMc + kMr - 1) / kMr) * kMr * kKc));
        for (std::int64_t ib = ib0; ib < ib1; ++ib) {
          const std::int64_t i0 = ib * kMc;
          const std::int64_t mc = std::min(kMc, m - i0);
          PackA(a, false, m, k, i0, mc, pc, kc, alpha, pa);
          const std::int64_t ir_panels = (mc + kMr - 1) / kMr;
          for (std::int64_t jr = 0; jr < jr_panels; ++jr) {
            const float* pbp = pb + jr * kc * kNr;
            const std::int64_t j0 = jc + jr * kNr;
            const std::int64_t nr_e = std::min<std::int64_t>(kNr, n - j0);
            for (std::int64_t ir = 0; ir < ir_panels; ++ir) {
              const std::int64_t r0 = i0 + ir * kMr;
              const std::int64_t mr_e = std::min<std::int64_t>(kMr, m - r0);
              MicroKernel(kc, pa + ir * kc * kMr, pbp, c + r0 * n + j0, n,
                          mr_e, nr_e);
            }
          }
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Pre-packed fp16 panels: the tile walk below is the B-side blocking of
// PackedGemm verbatim (jc outer over kNc column blocks, pc inner over
// kKc k-blocks), so a matrix encoded in this order can be consumed by
// the packed GEMM with a single contiguous bulk decode per tile in
// place of the strided per-call pack. `fn(jc, nc, pc, kc, base)` sees
// each tile's geometry and its element offset into the panel stream;
// returns the total panel element count.
template <class Fn>
std::int64_t ForEachPanelTile(std::int64_t n, std::int64_t k, Fn&& fn) {
  std::int64_t base = 0;
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    const std::int64_t panels = (nc + kNr - 1) / kNr;
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const std::int64_t kc = std::min(kKc, k - pc);
      fn(jc, nc, pc, kc, base);
      base += panels * kc * kNr;
    }
  }
  return base;
}

// PackedGemmWeightT with the per-call B pack replaced by a bulk decode
// of the pre-packed tile: pb receives bitwise the floats PackWeightT
// would have produced (padding included — padded lanes are stored as
// fp16 zero), and everything downstream is shared.
void PackedGemmHalfPanelsT(std::int64_t m, std::int64_t n, std::int64_t k,
                           float alpha, const float* a, const Half* panels,
                           float* c) {
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t b_panels = (nc_max + kNr - 1) / kNr;
  float* pb = scratch.AllocateT<float>(
      static_cast<std::size_t>(b_panels * kKc * kNr));
  const std::int64_t n_iblocks = (m + kMc - 1) / kMc;

  ForEachPanelTile(n, k, [&](std::int64_t jc, std::int64_t nc,
                             std::int64_t pc, std::int64_t kc,
                             std::int64_t base) {
    const std::int64_t jr_panels = (nc + kNr - 1) / kNr;
    HalfToFloat(panels + base, pb,
                static_cast<std::size_t>(jr_panels * kc * kNr));
    ParallelFor(0, n_iblocks, 1, [&](std::int64_t ib0, std::int64_t ib1) {
      alloc::ScratchArena& task_scratch = alloc::ThreadScratch();
      alloc::ScratchGuard task_guard(task_scratch);
      float* pa = task_scratch.AllocateT<float>(
          static_cast<std::size_t>(((kMc + kMr - 1) / kMr) * kMr * kKc));
      for (std::int64_t ib = ib0; ib < ib1; ++ib) {
        const std::int64_t i0 = ib * kMc;
        const std::int64_t mc = std::min(kMc, m - i0);
        PackA(a, false, m, k, i0, mc, pc, kc, alpha, pa);
        const std::int64_t ir_panels = (mc + kMr - 1) / kMr;
        for (std::int64_t jr = 0; jr < jr_panels; ++jr) {
          const float* pbp = pb + jr * kc * kNr;
          const std::int64_t j0 = jc + jr * kNr;
          const std::int64_t nr_e = std::min<std::int64_t>(kNr, n - j0);
          for (std::int64_t ir = 0; ir < ir_panels; ++ir) {
            const std::int64_t r0 = i0 + ir * kMr;
            const std::int64_t mr_e = std::min<std::int64_t>(kMr, m - r0);
            MicroKernel(kc, pa + ir * kc * kMr, pbp, c + r0 * n + j0, n,
                        mr_e, nr_e);
          }
        }
      }
    });
  });
}

template <class Reader>
void GemmWeightTImpl(std::int64_t m, std::int64_t n, std::int64_t k,
                     float alpha, const float* a, const Reader& w, float beta,
                     float* c) {
  if (beta == 0.0f) {
    ParallelFor(0, m * n, kElemChunk, [&](std::int64_t b0, std::int64_t e0) {
      std::memset(c + b0, 0, static_cast<std::size_t>(e0 - b0) * sizeof(float));
    });
  } else if (beta != 1.0f) {
    Scale(c, beta, m * n);
  }
  if (m <= 0 || n <= 0 || k <= 0) return;

  if (m * n * k <= kSmallGemmFlops) {
    SmallGemmWeightT(m, n, k, alpha, a, w, c);
  } else {
    PackedGemmWeightT(m, n, k, alpha, a, w, c);
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (beta == 0.0f) {
    ParallelFor(0, m * n, kElemChunk, [&](std::int64_t b0, std::int64_t e0) {
      std::memset(c + b0, 0, static_cast<std::size_t>(e0 - b0) * sizeof(float));
    });
  } else if (beta != 1.0f) {
    Scale(c, beta, m * n);
  }
  if (m <= 0 || n <= 0 || k <= 0) return;

  if (m * n * k <= kSmallGemmFlops) {
    SmallGemm(trans_a, trans_b, m, n, k, alpha, a, b, c);
  } else {
    PackedGemm(trans_a, trans_b, m, n, k, alpha, a, b, c);
  }
}

void GemmHalfWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                     float alpha, const float* a, const Half* w, float beta,
                     float* c) {
  GemmWeightTImpl(m, n, k, alpha, a,
                  HalfWeightReader{w, HalfDecodeTable()}, beta, c);
}

void GemmQuantWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                      float alpha, const float* a, const std::int8_t* codes,
                      const float* scales, std::int64_t qblock, float beta,
                      float* c) {
  GemmWeightTImpl(m, n, k, alpha, a, QuantWeightReader{codes, scales, qblock},
                  beta, c);
}

std::int64_t HalfPanelElems(std::int64_t n, std::int64_t k) {
  return ForEachPanelTile(n, k,
                          [](std::int64_t, std::int64_t, std::int64_t,
                             std::int64_t, std::int64_t) {});
}

void PackHalfPanelsT(const float* w, std::int64_t n, std::int64_t k,
                     Half* dst) {
  // Encode every row with the same bulk round-to-nearest-even converter
  // the flat fp16 encoding uses, then scatter once into panel slots —
  // load-time only, so clarity beats cleverness here.
  std::vector<Half> rows(static_cast<std::size_t>(n * k));
  FloatToHalf(w, rows.data(), rows.size());
  ForEachPanelTile(n, k, [&](std::int64_t jc, std::int64_t nc,
                             std::int64_t pc, std::int64_t kc,
                             std::int64_t base) {
    const std::int64_t panels = (nc + kNr - 1) / kNr;
    for (std::int64_t p = 0; p < panels; ++p) {
      Half* dp = dst + base + p * kc * kNr;
      const std::int64_t cbase = jc + p * kNr;
      const std::int64_t cvalid = std::min<std::int64_t>(kNr, jc + nc - cbase);
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        Half* drow = dp + kk * kNr;
        for (std::int64_t j = 0; j < cvalid; ++j) {
          drow[j] = rows[static_cast<std::size_t>((cbase + j) * k + pc + kk)];
        }
        for (std::int64_t j = cvalid; j < kNr; ++j) {
          drow[j] = Half::FromBits(0);
        }
      }
    }
  });
}

void DecodeHalfPanelRow(const Half* panels, std::int64_t n, std::int64_t k,
                        std::int64_t row, float* dst) {
  const float* lut = HalfDecodeTable();
  ForEachPanelTile(n, k, [&](std::int64_t jc, std::int64_t nc,
                             std::int64_t pc, std::int64_t kc,
                             std::int64_t base) {
    if (row < jc || row >= jc + nc) return;
    const std::int64_t p = (row - jc) / kNr;
    const std::int64_t j = (row - jc) % kNr;
    const Half* dp = panels + base + p * kc * kNr + j;
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      dst[pc + kk] = lut[dp[kk * kNr].bits()];
    }
  });
}

void GemmHalfPanelsT(std::int64_t m, std::int64_t n, std::int64_t k,
                     float alpha, const float* a, const Half* panels,
                     float beta, float* c) {
  if (beta == 0.0f) {
    ParallelFor(0, m * n, kElemChunk, [&](std::int64_t b0, std::int64_t e0) {
      std::memset(c + b0, 0, static_cast<std::size_t>(e0 - b0) * sizeof(float));
    });
  } else if (beta != 1.0f) {
    Scale(c, beta, m * n);
  }
  if (m <= 0 || n <= 0 || k <= 0) return;

  if (m * n * k <= kSmallGemmFlops) {
    // Same policy as SmallGemmWeightT: materialize the bounded tile
    // row-major and run the identical SmallGemm (bitwise the fp32
    // result; see the FMA-contraction note there).
    alloc::ScratchArena& scratch = alloc::ThreadScratch();
    alloc::ScratchGuard guard(scratch);
    float* wf = scratch.AllocateT<float>(static_cast<std::size_t>(n * k));
    for (std::int64_t row = 0; row < n; ++row) {
      DecodeHalfPanelRow(panels, n, k, row, wf + row * k);
    }
    SmallGemm(false, true, m, n, k, alpha, a, wf, c);
  } else {
    PackedGemmHalfPanelsT(m, n, k, alpha, a, panels, c);
  }
}

void AddBiasRows(float* x, const float* bias, std::int64_t rows,
                 std::int64_t cols) {
  ParallelFor(0, rows, RowGrain(cols), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float* xr = x + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) xr[c] += bias[c];
    }
  });
}

void BiasGradFromRows(const float* dy, float* dbias, std::int64_t rows,
                      std::int64_t cols) {
  const std::int64_t nchunks = (rows + kRowChunk - 1) / kRowChunk;
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  float* partials =
      scratch.AllocateT<float>(static_cast<std::size_t>(nchunks * cols));
  ParallelFor(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      float* p = partials + ch * cols;
      std::memset(p, 0, static_cast<std::size_t>(cols) * sizeof(float));
      const std::int64_t r1 = std::min(rows, (ch + 1) * kRowChunk);
      for (std::int64_t r = ch * kRowChunk; r < r1; ++r) {
        const float* dyr = dy + r * cols;
        for (std::int64_t c = 0; c < cols; ++c) p[c] += dyr[c];
      }
    }
  });
  for (std::int64_t ch = 0; ch < nchunks; ++ch) {
    const float* p = partials + ch * cols;
    for (std::int64_t c = 0; c < cols; ++c) dbias[c] += p[c];
  }
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

inline float GeluVal(float v) {
  const float u = kGeluC * (v + kGeluA * v * v * v);
  return 0.5f * v * (1.0f + std::tanh(u));
}

inline float GeluGrad(float v) {
  const float u = kGeluC * (v + kGeluA * v * v * v);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
  return 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
}
}  // namespace

void GeluForward(const float* x, float* y, std::int64_t n) {
  ParallelFor(0, n, kElemChunk, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) y[i] = GeluVal(x[i]);
  });
}

void GeluBackward(const float* x, const float* dy, float* dx,
                  std::int64_t n) {
  ParallelFor(0, n, kElemChunk, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) dx[i] = dy[i] * GeluGrad(x[i]);
  });
}

void BiasGeluForward(const float* x, const float* bias, float* z, float* y,
                     std::int64_t rows, std::int64_t cols) {
  ParallelFor(0, rows, RowGrain(cols), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* zr = z + r * cols;
      float* yr = y + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        const float v = xr[c] + bias[c];
        zr[c] = v;
        yr[c] = GeluVal(v);
      }
    }
  });
}

void BiasGeluBackward(const float* z, const float* dy, float* dx,
                      float* dbias, std::int64_t rows, std::int64_t cols) {
  const std::int64_t nchunks = (rows + kRowChunk - 1) / kRowChunk;
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  float* partials =
      scratch.AllocateT<float>(static_cast<std::size_t>(nchunks * cols));
  ParallelFor(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      float* p = partials + ch * cols;
      std::memset(p, 0, static_cast<std::size_t>(cols) * sizeof(float));
      const std::int64_t r1 = std::min(rows, (ch + 1) * kRowChunk);
      for (std::int64_t r = ch * kRowChunk; r < r1; ++r) {
        const float* zr = z + r * cols;
        const float* dyr = dy + r * cols;
        float* dxr = dx + r * cols;
        for (std::int64_t c = 0; c < cols; ++c) {
          const float g = dyr[c] * GeluGrad(zr[c]);
          dxr[c] = g;
          p[c] += g;
        }
      }
    }
  });
  for (std::int64_t ch = 0; ch < nchunks; ++ch) {
    const float* p = partials + ch * cols;
    for (std::int64_t c = 0; c < cols; ++c) dbias[c] += p[c];
  }
}

void BiasReluForward(const float* x, const float* bias, float* z, float* y,
                     std::int64_t rows, std::int64_t cols) {
  ParallelFor(0, rows, RowGrain(cols), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* zr = z + r * cols;
      float* yr = y + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        const float v = xr[c] + bias[c];
        zr[c] = v;
        yr[c] = v > 0.0f ? v : 0.0f;
      }
    }
  });
}

void BiasReluBackward(const float* z, const float* dy, float* dx,
                      float* dbias, std::int64_t rows, std::int64_t cols) {
  const std::int64_t nchunks = (rows + kRowChunk - 1) / kRowChunk;
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  float* partials =
      scratch.AllocateT<float>(static_cast<std::size_t>(nchunks * cols));
  ParallelFor(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      float* p = partials + ch * cols;
      std::memset(p, 0, static_cast<std::size_t>(cols) * sizeof(float));
      const std::int64_t r1 = std::min(rows, (ch + 1) * kRowChunk);
      for (std::int64_t r = ch * kRowChunk; r < r1; ++r) {
        const float* zr = z + r * cols;
        const float* dyr = dy + r * cols;
        float* dxr = dx + r * cols;
        for (std::int64_t c = 0; c < cols; ++c) {
          const float g = zr[c] > 0.0f ? dyr[c] : 0.0f;
          dxr[c] = g;
          p[c] += g;
        }
      }
    }
  });
  for (std::int64_t ch = 0; ch < nchunks; ++ch) {
    const float* p = partials + ch * cols;
    for (std::int64_t c = 0; c < cols; ++c) dbias[c] += p[c];
  }
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float* y, float* mean, float* rstd, std::int64_t rows,
                      std::int64_t cols, float eps) {
  ParallelFor(0, rows, RowGrain(cols), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float mu = 0.0f;
      for (std::int64_t c = 0; c < cols; ++c) mu += xr[c];
      mu /= static_cast<float>(cols);
      float var = 0.0f;
      for (std::int64_t c = 0; c < cols; ++c) {
        const float d = xr[c] - mu;
        var += d * d;
      }
      var /= static_cast<float>(cols);
      const float rs = 1.0f / std::sqrt(var + eps);
      mean[r] = mu;
      rstd[r] = rs;
      float* yr = y + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) {
        yr[c] = (xr[c] - mu) * rs * gamma[c] + beta[c];
      }
    }
  });
}

void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dy, float* dx,
                       float* dgamma, float* dbeta, std::int64_t rows,
                       std::int64_t cols) {
  const std::int64_t nchunks = (rows + kRowChunk - 1) / kRowChunk;
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  // Per-chunk [dgamma; dbeta] partials, combined in chunk order below.
  float* partials =
      scratch.AllocateT<float>(static_cast<std::size_t>(nchunks * 2 * cols));
  ParallelFor(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      float* pg = partials + ch * 2 * cols;
      float* pb = pg + cols;
      std::memset(pg, 0, static_cast<std::size_t>(2 * cols) * sizeof(float));
      const std::int64_t r1 = std::min(rows, (ch + 1) * kRowChunk);
      for (std::int64_t r = ch * kRowChunk; r < r1; ++r) {
        const float* xr = x + r * cols;
        const float* dyr = dy + r * cols;
        float* dxr = dx + r * cols;
        const float mu = mean[r];
        const float rs = rstd[r];

        float sum_dy_g = 0.0f;   // sum of dy * gamma
        float sum_dy_gx = 0.0f;  // sum of dy * gamma * xhat
        for (std::int64_t c = 0; c < cols; ++c) {
          const float xhat = (xr[c] - mu) * rs;
          const float g = dyr[c] * gamma[c];
          sum_dy_g += g;
          sum_dy_gx += g * xhat;
          pg[c] += dyr[c] * xhat;
          pb[c] += dyr[c];
        }
        const float inv_cols = 1.0f / static_cast<float>(cols);
        for (std::int64_t c = 0; c < cols; ++c) {
          const float xhat = (xr[c] - mu) * rs;
          const float g = dyr[c] * gamma[c];
          dxr[c] = rs * (g - inv_cols * (sum_dy_g + xhat * sum_dy_gx));
        }
      }
    }
  });
  for (std::int64_t ch = 0; ch < nchunks; ++ch) {
    const float* pg = partials + ch * 2 * cols;
    const float* pb = pg + cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      dgamma[c] += pg[c];
      dbeta[c] += pb[c];
    }
  }
}

namespace {
// One row, in place — shared by the softmax entry points so the causal
// kernel can fuse masking without a nested parallel call.
inline void SoftmaxRow(float* xr, std::int64_t cols) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, xr[c]);
  float sum = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) {
    xr[c] = std::exp(xr[c] - mx);
    sum += xr[c];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t c = 0; c < cols; ++c) xr[c] *= inv;
}
}  // namespace

void SoftmaxRows(float* x, std::int64_t rows, std::int64_t cols) {
  ParallelFor(0, rows, RowGrain(cols), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) SoftmaxRow(x + r * cols, cols);
  });
}

void SoftmaxBackwardRows(const float* y, const float* dy, float* dx,
                         std::int64_t rows, std::int64_t cols) {
  ParallelFor(0, rows, RowGrain(cols), [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* yr = y + r * cols;
      const float* dyr = dy + r * cols;
      float* dxr = dx + r * cols;
      float dot = 0.0f;
      for (std::int64_t c = 0; c < cols; ++c) dot += yr[c] * dyr[c];
      for (std::int64_t c = 0; c < cols; ++c) {
        dxr[c] = yr[c] * (dyr[c] - dot);
      }
    }
  });
}

void CausalMaskedSoftmax(float* scores, std::int64_t batch_heads,
                         std::int64_t q_len, std::int64_t k_len) {
  ZERO_CHECK(k_len >= q_len, "causal mask assumes k_len >= q_len");
  const std::int64_t offset = k_len - q_len;
  ParallelFor(0, batch_heads * q_len, RowGrain(k_len),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  const std::int64_t i = r % q_len;
                  float* row = scores + r * k_len;
                  for (std::int64_t j = offset + i + 1; j < k_len; ++j) {
                    row[j] = -std::numeric_limits<float>::infinity();
                  }
                  SoftmaxRow(row, k_len);
                }
              });
}

float CrossEntropyLoss(const float* logits, const std::int32_t* targets,
                       std::int64_t rows, std::int64_t vocab, float* dlogits) {
  const std::int64_t nchunks = (rows + kCeRowChunk - 1) / kCeRowChunk;
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  double* partials =
      scratch.AllocateT<double>(static_cast<std::size_t>(nchunks));
  const float inv_rows = 1.0f / static_cast<float>(rows);
  ParallelFor(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    // Probability rows live in the executing thread's scratch, not a
    // per-call heap vector (this runs rows x per step at vocab size).
    alloc::ScratchArena& task_scratch = alloc::ThreadScratch();
    alloc::ScratchGuard task_guard(task_scratch);
    float* probs =
        task_scratch.AllocateT<float>(static_cast<std::size_t>(vocab));
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      double total = 0.0;
      const std::int64_t r1 = std::min(rows, (ch + 1) * kCeRowChunk);
      for (std::int64_t r = ch * kCeRowChunk; r < r1; ++r) {
        const float* lr = logits + r * vocab;
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t c = 0; c < vocab; ++c) mx = std::max(mx, lr[c]);
        double sum = 0.0;
        for (std::int64_t c = 0; c < vocab; ++c) {
          probs[c] = std::exp(lr[c] - mx);
          sum += probs[c];
        }
        const std::int32_t t = targets[r];
        ZERO_CHECK(t >= 0 && t < vocab, "target out of vocab range");
        const double pt = static_cast<double>(probs[t]) / sum;
        total += -std::log(std::max(pt, 1e-30));
        if (dlogits != nullptr) {
          float* dr = dlogits + r * vocab;
          const float inv_sum = static_cast<float>(1.0 / sum);
          for (std::int64_t c = 0; c < vocab; ++c) {
            dr[c] = probs[c] * inv_sum * inv_rows;
          }
          dr[t] -= inv_rows;
        }
      }
      partials[ch] = total;
    }
  });
  double total = 0.0;
  for (std::int64_t ch = 0; ch < nchunks; ++ch) total += partials[ch];
  return static_cast<float>(total / static_cast<double>(rows));
}

void EmbeddingGather(const float* table, const std::int32_t* ids, float* out,
                     std::int64_t n_ids, std::int64_t dim) {
  ParallelFor(0, n_ids, RowGrain(dim), [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      std::memcpy(out + i * dim,
                  table + static_cast<std::int64_t>(ids[i]) * dim,
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  });
}

void EmbeddingScatterAdd(float* dtable, const std::int32_t* ids,
                         const float* dout, std::int64_t n_ids,
                         std::int64_t dim) {
  for (std::int64_t i = 0; i < n_ids; ++i) {
    float* dst = dtable + static_cast<std::int64_t>(ids[i]) * dim;
    const float* src = dout + i * dim;
    for (std::int64_t d = 0; d < dim; ++d) dst[d] += src[d];
  }
}

void Axpy(float a, const float* x, float* y, std::int64_t n) {
  ParallelFor(0, n, kElemChunk, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) y[i] += a * x[i];
  });
}

void Scale(float* x, float a, std::int64_t n) {
  ParallelFor(0, n, kElemChunk, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) x[i] *= a;
  });
}

namespace {
// Shared shape of the deterministic scalar reductions: fixed kRedChunk
// element chunks accumulate in double, partials combine in chunk order.
template <typename ChunkFn>
float ChunkedReduce(std::int64_t n, const ChunkFn& chunk_fn) {
  const std::int64_t nchunks = (n + kRedChunk - 1) / kRedChunk;
  if (nchunks <= 0) return 0.0f;
  alloc::ScratchArena& scratch = alloc::ThreadScratch();
  alloc::ScratchGuard guard(scratch);
  double* partials =
      scratch.AllocateT<double>(static_cast<std::size_t>(nchunks));
  ParallelFor(0, nchunks, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ch = c0; ch < c1; ++ch) {
      partials[ch] =
          chunk_fn(ch * kRedChunk, std::min(n, (ch + 1) * kRedChunk));
    }
  });
  double acc = 0.0;
  for (std::int64_t ch = 0; ch < nchunks; ++ch) acc += partials[ch];
  return static_cast<float>(acc);
}
}  // namespace

float SquaredNorm(const float* x, std::int64_t n) {
  return ChunkedReduce(n, [&](std::int64_t b, std::int64_t e) {
    double acc = 0.0;
    for (std::int64_t i = b; i < e; ++i) {
      acc += static_cast<double>(x[i]) * x[i];
    }
    return acc;
  });
}

float SquaredNormF16(const Half* x, std::int64_t n) {
  const float* lut = HalfDecodeTable();
  return ChunkedReduce(n, [&](std::int64_t b, std::int64_t e) {
    double acc = 0.0;
    for (std::int64_t i = b; i < e; ++i) {
      const double v = lut[x[i].bits()];
      acc += v * v;
    }
    return acc;
  });
}

float Dot(const float* a, const float* b, std::int64_t n) {
  return ChunkedReduce(n, [&](std::int64_t b0, std::int64_t e0) {
    double acc = 0.0;
    for (std::int64_t i = b0; i < e0; ++i) {
      acc += static_cast<double>(a[i]) * b[i];
    }
    return acc;
  });
}

void CastHalfToFloat(const Half* src, float* dst, std::int64_t n) {
  ParallelFor(0, n, kElemChunk, [&](std::int64_t b, std::int64_t e) {
    HalfToFloat(src + b, dst + b, static_cast<std::size_t>(e - b));
  });
}

void CastFloatToHalf(const float* src, Half* dst, std::int64_t n) {
  ParallelFor(0, n, kElemChunk, [&](std::int64_t b, std::int64_t e) {
    FloatToHalf(src + b, dst + b, static_cast<std::size_t>(e - b));
  });
}

}  // namespace zero::tensor
