#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace zero::tensor {

namespace {

// Blocked i-k-j GEMM core for the no-transpose case: streams B rows,
// accumulates into C rows — the cache-friendly ordering for row-major.
void GemmNN(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
            const float* a, const float* b, float* c) {
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::int64_t i1 = std::min(i0 + kBlock, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::int64_t k1 = std::min(k0 + kBlock, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float aik = alpha * a[i * k + kk];
          if (aik == 0.0f) continue;
          const float* bk = b + kk * n;
          for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    Scale(c, beta, m * n);
  }

  if (!trans_a && !trans_b) {
    GemmNN(m, n, k, alpha, a, b, c);
    return;
  }

  if (!trans_a && trans_b) {
    // C[i,j] += alpha * A[i,:] . B[j,:]  (B is [n, k]) — dot of two rows.
    for (std::int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
        ci[j] += alpha * acc;
      }
    }
    return;
  }

  if (trans_a && !trans_b) {
    // C[i,j] += alpha * sum_kk A[kk,i] * B[kk,j]  (A is [k, m]).
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* ak = a + kk * m;
      const float* bk = b + kk * n;
      for (std::int64_t i = 0; i < m; ++i) {
        const float av = alpha * ak[i];
        if (av == 0.0f) continue;
        float* ci = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bk[j];
      }
    }
    return;
  }

  // trans_a && trans_b: C[i,j] += alpha * sum_kk A[kk,i] * B[j,kk].
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a[kk * m + i] * bj[kk];
      ci[j] += alpha * acc;
    }
  }
}

void AddBiasRows(float* x, const float* bias, std::int64_t rows,
                 std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* xr = x + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) xr[c] += bias[c];
  }
}

void BiasGradFromRows(const float* dy, float* dbias, std::int64_t rows,
                      std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* dyr = dy + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) dbias[c] += dyr[c];
  }
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

void GeluForward(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float u = kGeluC * (v + kGeluA * v * v * v);
    y[i] = 0.5f * v * (1.0f + std::tanh(u));
  }
}

void GeluBackward(const float* x, const float* dy, float* dx,
                  std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float u = kGeluC * (v + kGeluA * v * v * v);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
    const float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    dx[i] = dy[i] * grad;
  }
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float* y, float* mean, float* rstd, std::int64_t rows,
                      std::int64_t cols, float eps) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float mu = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) mu += xr[c];
    mu /= static_cast<float>(cols);
    float var = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = xr[c] - mu;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float rs = 1.0f / std::sqrt(var + eps);
    mean[r] = mu;
    rstd[r] = rs;
    float* yr = y + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      yr[c] = (xr[c] - mu) * rs * gamma[c] + beta[c];
    }
  }
}

void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dy, float* dx,
                       float* dgamma, float* dbeta, std::int64_t rows,
                       std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    const float* dyr = dy + r * cols;
    float* dxr = dx + r * cols;
    const float mu = mean[r];
    const float rs = rstd[r];

    float sum_dy_g = 0.0f;   // sum of dy * gamma
    float sum_dy_gx = 0.0f;  // sum of dy * gamma * xhat
    for (std::int64_t c = 0; c < cols; ++c) {
      const float xhat = (xr[c] - mu) * rs;
      const float g = dyr[c] * gamma[c];
      sum_dy_g += g;
      sum_dy_gx += g * xhat;
      dgamma[c] += dyr[c] * xhat;
      dbeta[c] += dyr[c];
    }
    const float inv_cols = 1.0f / static_cast<float>(cols);
    for (std::int64_t c = 0; c < cols; ++c) {
      const float xhat = (xr[c] - mu) * rs;
      const float g = dyr[c] * gamma[c];
      dxr[c] = rs * (g - inv_cols * (sum_dy_g + xhat * sum_dy_gx));
    }
  }
}

void SoftmaxRows(float* x, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* xr = x + r * cols;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, xr[c]);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      xr[c] = std::exp(xr[c] - mx);
      sum += xr[c];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t c = 0; c < cols; ++c) xr[c] *= inv;
  }
}

void SoftmaxBackwardRows(const float* y, const float* dy, float* dx,
                         std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * cols;
    const float* dyr = dy + r * cols;
    float* dxr = dx + r * cols;
    float dot = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) dot += yr[c] * dyr[c];
    for (std::int64_t c = 0; c < cols; ++c) {
      dxr[c] = yr[c] * (dyr[c] - dot);
    }
  }
}

void CausalMaskedSoftmax(float* scores, std::int64_t batch_heads,
                         std::int64_t q_len, std::int64_t k_len) {
  ZERO_CHECK(k_len >= q_len, "causal mask assumes k_len >= q_len");
  const std::int64_t offset = k_len - q_len;
  for (std::int64_t b = 0; b < batch_heads; ++b) {
    for (std::int64_t i = 0; i < q_len; ++i) {
      float* row = scores + (b * q_len + i) * k_len;
      for (std::int64_t j = offset + i + 1; j < k_len; ++j) {
        row[j] = -std::numeric_limits<float>::infinity();
      }
      SoftmaxRows(row, 1, k_len);
    }
  }
}

float CrossEntropyLoss(const float* logits, const std::int32_t* targets,
                       std::int64_t rows, std::int64_t vocab, float* dlogits) {
  double total = 0.0;
  const float inv_rows = 1.0f / static_cast<float>(rows);
  std::vector<float> probs(static_cast<std::size_t>(vocab));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* lr = logits + r * vocab;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < vocab; ++c) mx = std::max(mx, lr[c]);
    double sum = 0.0;
    for (std::int64_t c = 0; c < vocab; ++c) {
      probs[static_cast<std::size_t>(c)] = std::exp(lr[c] - mx);
      sum += probs[static_cast<std::size_t>(c)];
    }
    const std::int32_t t = targets[r];
    ZERO_CHECK(t >= 0 && t < vocab, "target out of vocab range");
    const double pt =
        static_cast<double>(probs[static_cast<std::size_t>(t)]) / sum;
    total += -std::log(std::max(pt, 1e-30));
    if (dlogits != nullptr) {
      float* dr = dlogits + r * vocab;
      const float inv_sum = static_cast<float>(1.0 / sum);
      for (std::int64_t c = 0; c < vocab; ++c) {
        dr[c] = probs[static_cast<std::size_t>(c)] * inv_sum * inv_rows;
      }
      dr[t] -= inv_rows;
    }
  }
  return static_cast<float>(total / static_cast<double>(rows));
}

void EmbeddingGather(const float* table, const std::int32_t* ids, float* out,
                     std::int64_t n_ids, std::int64_t dim) {
  for (std::int64_t i = 0; i < n_ids; ++i) {
    std::memcpy(out + i * dim, table + static_cast<std::int64_t>(ids[i]) * dim,
                static_cast<std::size_t>(dim) * sizeof(float));
  }
}

void EmbeddingScatterAdd(float* dtable, const std::int32_t* ids,
                         const float* dout, std::int64_t n_ids,
                         std::int64_t dim) {
  for (std::int64_t i = 0; i < n_ids; ++i) {
    float* dst = dtable + static_cast<std::int64_t>(ids[i]) * dim;
    const float* src = dout + i * dim;
    for (std::int64_t d = 0; d < dim; ++d) dst[d] += src[d];
  }
}

void Axpy(float a, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Scale(float* x, float a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] *= a;
}

float SquaredNorm(const float* x, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * x[i];
  }
  return static_cast<float>(acc);
}

float Dot(const float* a, const float* b, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

}  // namespace zero::tensor
