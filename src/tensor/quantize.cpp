#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "tensor/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include <immintrin.h>
#define ZERO_QUANT_AVX512 1
#else
#define ZERO_QUANT_AVX512 0
#endif

namespace zero::tensor {
namespace {

// fp16 bit patterns for the poison scales (see header policy).
constexpr std::uint16_t kScaleInfBits = 0x7C00u;
constexpr std::uint16_t kScaleNanBits = 0x7E00u;

struct BlockClass {
  float scale = 0.0f;           // decoded fp16 scale actually stored
  std::uint16_t bits = 0;       // fp16 scale bits on the wire
  enum Kind { kZero, kNormal, kPoison } kind = kZero;
};

// Classify one block: absmax over finite elements, non-finite detection,
// and the fp16 scale that will be used by BOTH quantize and dequantize
// (round-tripping through fp16 here is what makes the error bound hold).
BlockClass ClassifyBlock(const float* x, std::int64_t len) {
  float amax = 0.0f;
  bool nonfinite = false;
  bool nan = false;
  std::int64_t i = 0;
#if ZERO_QUANT_AVX512
  __m512i vamax = _mm512_setzero_si512();
  const __m512i abs_mask = _mm512_set1_epi32(0x7FFFFFFF);
  const __m512i exp_all = _mm512_set1_epi32(0x7F800000);
  for (; i + 16 <= len; i += 16) {
    const __m512i bits = _mm512_loadu_si512(x + i);
    const __m512i abs = _mm512_and_si512(bits, abs_mask);
    if (_mm512_cmpge_epu32_mask(abs, exp_all) != 0) {
      nonfinite = true;
      if (_mm512_cmpgt_epu32_mask(abs, exp_all) != 0) nan = true;
    }
    // Finite |x| compare exactly as unsigned ints, so an integer max is
    // an exact fp max over the finite lanes (non-finite lanes poison the
    // block anyway).
    vamax = _mm512_max_epu32(vamax, abs);
  }
  if (!nonfinite) {
    const std::uint32_t m = _mm512_reduce_max_epu32(vamax);
    float f;
    std::memcpy(&f, &m, sizeof(f));
    amax = f;
  }
#endif
  for (; i < len; ++i) {
    const float v = x[i];
    if (!std::isfinite(v)) {
      nonfinite = true;
      if (std::isnan(v)) nan = true;
      continue;
    }
    amax = std::max(amax, std::fabs(v));
  }
  BlockClass c;
  if (nonfinite) {
    c.kind = BlockClass::kPoison;
    c.bits = nan ? kScaleNanBits : kScaleInfBits;
    c.scale = Half::FromBits(c.bits).ToFloat();
    return c;
  }
  const Half hs(amax / 127.0f);
  const float s = hs.ToFloat();
  if (s == 0.0f) {
    c.kind = BlockClass::kZero;
    c.bits = 0;
    c.scale = 0.0f;
    return c;
  }
  if (!std::isfinite(s)) {  // amax/127 overflowed fp16 (fp32 inputs)
    c.kind = BlockClass::kPoison;
    c.bits = kScaleInfBits;
    c.scale = Half::FromBits(c.bits).ToFloat();
    return c;
  }
  c.kind = BlockClass::kNormal;
  c.bits = hs.bits();
  c.scale = s;
  return c;
}

// code[i] = clamp(nearbyint(x[i] / s), -127, 127) for a normal block.
void EncodeBlock(const float* x, std::int64_t len, float s,
                 std::int8_t* codes) {
  std::int64_t i = 0;
#if ZERO_QUANT_AVX512
  const __m512 vs = _mm512_set1_ps(s);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  for (; i + 16 <= len; i += 16) {
    const __m512 q = _mm512_div_ps(_mm512_loadu_ps(x + i), vs);
    __m512i c = _mm512_cvtps_epi32(q);  // round-to-nearest-even (MXCSR)
    c = _mm512_max_epi32(lo, _mm512_min_epi32(hi, c));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + i),
                     _mm512_cvtepi32_epi8(c));
  }
#endif
  for (; i < len; ++i) {
    long c = std::lrintf(x[i] / s);
    if (c < -127) c = -127;
    if (c > 127) c = 127;
    codes[i] = static_cast<std::int8_t>(c);
  }
}

// dst[i] = code[i] * s (add = accumulate instead of overwrite).
template <bool kAdd>
void DecodeBlock(const std::int8_t* codes, std::int64_t len, float s,
                 float* dst) {
  std::int64_t i = 0;
#if ZERO_QUANT_AVX512
  const __m512 vs = _mm512_set1_ps(s);
  for (; i + 16 <= len; i += 16) {
    const __m128i c8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m512 v =
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(c8)), vs);
    if constexpr (kAdd) {
      _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i), v));
    } else {
      _mm512_storeu_ps(dst + i, v);
    }
  }
#endif
  for (; i < len; ++i) {
    const float v = static_cast<float>(codes[i]) * s;
    if constexpr (kAdd) {
      dst[i] = dst[i] + v;
    } else {
      dst[i] = v;
    }
  }
}

struct WireView {
  Half* scales;
  std::int8_t* codes;
};
WireView ViewWire(std::byte* wire, std::int64_t n, std::int64_t block) {
  return {reinterpret_cast<Half*>(wire),
          reinterpret_cast<std::int8_t*>(wire + 2 * QuantBlocks(n, block))};
}
struct ConstWireView {
  const Half* scales;
  const std::int8_t* codes;
};
ConstWireView ViewWire(const std::byte* wire, std::int64_t n,
                       std::int64_t block) {
  return {reinterpret_cast<const Half*>(wire),
          reinterpret_cast<const std::int8_t*>(wire +
                                               2 * QuantBlocks(n, block))};
}

void CheckShape(std::int64_t n, std::int64_t block) {
  ZERO_CHECK(n >= 0, "negative element count");
  ZERO_CHECK(block >= 1 && block <= kMaxQuantBlock,
             "quant block " + std::to_string(block) + " out of [1, " +
                 std::to_string(kMaxQuantBlock) + "]");
}

void QuantizeF32Impl(const float* src, std::int64_t n, std::int64_t block,
                     std::byte* wire) {
  CheckShape(n, block);
  WireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    const BlockClass c = ClassifyBlock(src + off, len);
    w.scales[b] = Half::FromBits(c.bits);
    switch (c.kind) {
      case BlockClass::kZero:
        std::memset(w.codes + off, 0, static_cast<std::size_t>(len));
        break;
      case BlockClass::kPoison:
        std::memset(w.codes + off, 1, static_cast<std::size_t>(len));
        break;
      case BlockClass::kNormal:
        EncodeBlock(src + off, len, c.scale, w.codes + off);
        break;
    }
  }
}

template <bool kAdd>
void DequantizeF32Impl(const std::byte* wire, std::int64_t n,
                       std::int64_t block, float* dst) {
  CheckShape(n, block);
  ConstWireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    DecodeBlock<kAdd>(w.codes + off, len, w.scales[b].ToFloat(), dst + off);
  }
}

}  // namespace

void QuantizeF32(const float* src, std::int64_t n, std::int64_t block,
                 std::byte* wire) {
  TRACE_SPAN("tensor/quantize");
  QuantizeF32Impl(src, n, block, wire);
}

void DequantizeF32(const std::byte* wire, std::int64_t n, std::int64_t block,
                   float* dst) {
  TRACE_SPAN("tensor/dequantize");
  DequantizeF32Impl<false>(wire, n, block, dst);
}

void DequantizeAddF32(const std::byte* wire, std::int64_t n,
                      std::int64_t block, float* dst) {
  TRACE_SPAN("tensor/dequantize");
  DequantizeF32Impl<true>(wire, n, block, dst);
}

void QuantizeHalf(const Half* src, std::int64_t n, std::int64_t block,
                  std::byte* wire) {
  TRACE_SPAN("tensor/quantize");
  CheckShape(n, block);
  alignas(64) float buf[kMaxQuantBlock];
  WireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    CastHalfToFloat(src + off, buf, len);
    const BlockClass c = ClassifyBlock(buf, len);
    w.scales[b] = Half::FromBits(c.bits);
    switch (c.kind) {
      case BlockClass::kZero:
        std::memset(w.codes + off, 0, static_cast<std::size_t>(len));
        break;
      case BlockClass::kPoison:
        std::memset(w.codes + off, 1, static_cast<std::size_t>(len));
        break;
      case BlockClass::kNormal:
        EncodeBlock(buf, len, c.scale, w.codes + off);
        break;
    }
  }
}

void DequantizeHalf(const std::byte* wire, std::int64_t n, std::int64_t block,
                    Half* dst) {
  TRACE_SPAN("tensor/dequantize");
  CheckShape(n, block);
  alignas(64) float buf[kMaxQuantBlock];
  ConstWireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    const float s = w.scales[b].ToFloat();
    DecodeBlock<false>(w.codes + off, len, s, buf);
    // The fp16 scale rounds amax/127 either way, so 127*s can exceed the
    // largest finite fp16 (65504) by up to half a scale ulp and the
    // narrowing below would turn a finite block's extremes into Inf.
    // Saturate those — and only those — blocks; poison blocks keep their
    // non-finite scale and must pass NaN/Inf through untouched.
    if (std::isfinite(s) && s * 127.0f > 65504.0f) {
      for (std::int64_t i = 0; i < len; ++i) {
        buf[i] = std::clamp(buf[i], -65504.0f, 65504.0f);
      }
    }
    CastFloatToHalf(buf, dst + off, len);
  }
}

// ---- scalar reference implementations ------------------------------------
// Same structure with the vector bodies compiled out; kept in one
// translation unit so policy changes cannot drift between the paths.

namespace {

BlockClass ClassifyBlockScalar(const float* x, std::int64_t len) {
  float amax = 0.0f;
  bool nonfinite = false;
  bool nan = false;
  for (std::int64_t i = 0; i < len; ++i) {
    const float v = x[i];
    if (!std::isfinite(v)) {
      nonfinite = true;
      if (std::isnan(v)) nan = true;
      continue;
    }
    amax = std::max(amax, std::fabs(v));
  }
  BlockClass c;
  if (nonfinite) {
    c.kind = BlockClass::kPoison;
    c.bits = nan ? kScaleNanBits : kScaleInfBits;
    c.scale = Half::FromBits(c.bits).ToFloat();
    return c;
  }
  const Half hs(amax / 127.0f);
  const float s = hs.ToFloat();
  if (s == 0.0f) {
    c.kind = BlockClass::kZero;
    return c;
  }
  if (!std::isfinite(s)) {
    c.kind = BlockClass::kPoison;
    c.bits = kScaleInfBits;
    c.scale = Half::FromBits(c.bits).ToFloat();
    return c;
  }
  c.kind = BlockClass::kNormal;
  c.bits = hs.bits();
  c.scale = s;
  return c;
}

}  // namespace

void QuantizeF32Scalar(const float* src, std::int64_t n, std::int64_t block,
                       std::byte* wire) {
  CheckShape(n, block);
  WireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    const BlockClass c = ClassifyBlockScalar(src + off, len);
    w.scales[b] = Half::FromBits(c.bits);
    if (c.kind == BlockClass::kZero) {
      std::memset(w.codes + off, 0, static_cast<std::size_t>(len));
    } else if (c.kind == BlockClass::kPoison) {
      std::memset(w.codes + off, 1, static_cast<std::size_t>(len));
    } else {
      for (std::int64_t i = 0; i < len; ++i) {
        long q = std::lrintf(src[off + i] / c.scale);
        if (q < -127) q = -127;
        if (q > 127) q = 127;
        w.codes[off + i] = static_cast<std::int8_t>(q);
      }
    }
  }
}

void DequantizeF32Scalar(const std::byte* wire, std::int64_t n,
                         std::int64_t block, float* dst) {
  CheckShape(n, block);
  ConstWireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    const float s = w.scales[b].ToFloat();
    for (std::int64_t i = 0; i < len; ++i) {
      dst[off + i] = static_cast<float>(w.codes[off + i]) * s;
    }
  }
}

void DequantizeAddF32Scalar(const std::byte* wire, std::int64_t n,
                            std::int64_t block, float* dst) {
  CheckShape(n, block);
  ConstWireView w = ViewWire(wire, n, block);
  const std::int64_t blocks = QuantBlocks(n, block);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    const float s = w.scales[b].ToFloat();
    for (std::int64_t i = 0; i < len; ++i) {
      dst[off + i] = dst[off + i] + static_cast<float>(w.codes[off + i]) * s;
    }
  }
}

}  // namespace zero::tensor
