#include "tensor/gemm_backend.hpp"

#include <cstring>
#include <mutex>

#include "common/error.hpp"
#include "common/half.hpp"
#include "tensor/kernels.hpp"
#include "tensor/quantize.hpp"

namespace zero::tensor {

std::size_t GemmBackend::PackedMatrixBytes(std::int64_t n,
                                           std::int64_t k) const {
  return PackedBytes(n * k);
}

void GemmBackend::PackMatrix(const float* src, std::int64_t n, std::int64_t k,
                             std::byte* dst) const {
  Pack(src, n * k, dst);
}

void GemmBackend::DecodeMatrixRow(const std::byte* packed, std::int64_t n,
                                  std::int64_t k, std::int64_t row,
                                  float* dst) const {
  ZERO_CHECK(row >= 0 && row < n, "matrix row decode out of range");
  Decode(packed, row * k, k, dst);
}

void GemmBackend::MatrixGemmWeightT(std::int64_t m, std::int64_t n,
                                    std::int64_t k, float alpha,
                                    const float* a, const std::byte* packed,
                                    float beta, float* c) const {
  GemmWeightT(m, n, k, alpha, a, packed, /*off=*/0, beta, c);
}

const char* WeightPrecisionName(WeightPrecision p) {
  switch (p) {
    case WeightPrecision::kF32: return "fp32";
    case WeightPrecision::kF16: return "fp16";
    case WeightPrecision::kInt8: return "int8";
  }
  return "?";
}

namespace {

class F32Backend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "fp32"; }
  [[nodiscard]] WeightPrecision precision() const override {
    return WeightPrecision::kF32;
  }
  [[nodiscard]] std::size_t PackedBytes(std::int64_t n) const override {
    return static_cast<std::size_t>(n) * sizeof(float);
  }
  void Pack(const float* src, std::int64_t n, std::byte* dst) const override {
    std::memcpy(dst, src, PackedBytes(n));
  }
  void Decode(const std::byte* packed, std::int64_t off, std::int64_t count,
              float* dst) const override {
    std::memcpy(dst, reinterpret_cast<const float*>(packed) + off,
                static_cast<std::size_t>(count) * sizeof(float));
  }
  void GemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const std::byte* packed,
                   std::int64_t off, float beta, float* c) const override {
    // Exact passthrough: identical floats through the identical kernel
    // and dispatch, so the fp32 serving path stays memcmp-bit-exact
    // with the provider-backed forward.
    Gemm(false, true, m, n, k, alpha, a,
         reinterpret_cast<const float*>(packed) + off, beta, c);
  }
};

class F16Backend final : public GemmBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "fp16"; }
  [[nodiscard]] WeightPrecision precision() const override {
    return WeightPrecision::kF16;
  }
  [[nodiscard]] std::size_t PackedBytes(std::int64_t n) const override {
    return static_cast<std::size_t>(n) * sizeof(Half);
  }
  void Pack(const float* src, std::int64_t n, std::byte* dst) const override {
    FloatToHalf(src, reinterpret_cast<Half*>(dst),
                static_cast<std::size_t>(n));
  }
  void Decode(const std::byte* packed, std::int64_t off, std::int64_t count,
              float* dst) const override {
    HalfToFloat(reinterpret_cast<const Half*>(packed) + off, dst,
                static_cast<std::size_t>(count));
  }
  void GemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const std::byte* packed,
                   std::int64_t off, float beta, float* c) const override {
    GemmHalfWeightT(m, n, k, alpha, a,
                    reinterpret_cast<const Half*>(packed) + off, beta, c);
  }

  // Matrix entries pre-pack into the GEMM's micro-panel layout at load
  // time (kernels.hpp panel entry points): per call the B pack becomes
  // one contiguous bulk fp16 decode instead of a strided walk, which is
  // where the fp16 serving throughput win comes from. Bitwise equal to
  // the flat encoding through the shared kernels.
  [[nodiscard]] std::size_t PackedMatrixBytes(
      std::int64_t n, std::int64_t k) const override {
    return static_cast<std::size_t>(HalfPanelElems(n, k)) * sizeof(Half);
  }
  void PackMatrix(const float* src, std::int64_t n, std::int64_t k,
                  std::byte* dst) const override {
    PackHalfPanelsT(src, n, k, reinterpret_cast<Half*>(dst));
  }
  void DecodeMatrixRow(const std::byte* packed, std::int64_t n,
                       std::int64_t k, std::int64_t row,
                       float* dst) const override {
    ZERO_CHECK(row >= 0 && row < n, "matrix row decode out of range");
    DecodeHalfPanelRow(reinterpret_cast<const Half*>(packed), n, k, row, dst);
  }
  void MatrixGemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                         float alpha, const float* a, const std::byte* packed,
                         float beta, float* c) const override {
    GemmHalfPanelsT(m, n, k, alpha, a,
                    reinterpret_cast<const Half*>(packed), beta, c);
  }
};

// Packed layout (self-describing, 8-byte aligned):
//   [ int64 n ][ float scale[ceil(n/block)] ][ int8 code[n] ]
// Codes and scales come from tensor/quantize's fp32 quantizer (same
// rounding, same poison-block policy); the fp16 wire scales are
// pre-decoded to fp32 once at pack time so the GEMM reader is one
// multiply per element.
class Int8Backend final : public GemmBackend {
 public:
  explicit Int8Backend(std::int64_t block) : block_(block) {}

  [[nodiscard]] std::string_view name() const override { return "int8"; }
  [[nodiscard]] WeightPrecision precision() const override {
    return WeightPrecision::kInt8;
  }
  [[nodiscard]] std::size_t PackedBytes(std::int64_t n) const override {
    return sizeof(std::int64_t) +
           static_cast<std::size_t>(QuantBlocks(n, block_)) * sizeof(float) +
           static_cast<std::size_t>(n);
  }
  void Pack(const float* src, std::int64_t n, std::byte* dst) const override {
    std::vector<std::byte> wire(QuantWireBytes(n, block_));
    QuantizeF32(src, n, block_, wire.data());
    std::memcpy(dst, &n, sizeof(n));
    const std::int64_t blocks = QuantBlocks(n, block_);
    const Half* wire_scales = reinterpret_cast<const Half*>(wire.data());
    float* scales = reinterpret_cast<float*>(dst + sizeof(n));
    for (std::int64_t b = 0; b < blocks; ++b) {
      scales[b] = wire_scales[b].ToFloat();
    }
    std::memcpy(dst + sizeof(n) + static_cast<std::size_t>(blocks) *
                                      sizeof(float),
                wire.data() + static_cast<std::size_t>(2 * blocks),
                static_cast<std::size_t>(n));
  }
  void Decode(const std::byte* packed, std::int64_t off, std::int64_t count,
              float* dst) const override {
    const View v = ViewOf(packed);
    ZERO_CHECK(off >= 0 && off + count <= v.n,
               "int8 weight decode outside the packed tensor");
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int64_t e = off + i;
      dst[i] = static_cast<float>(v.codes[e]) * v.scales[e / block_];
    }
  }
  void GemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const std::byte* packed,
                   std::int64_t off, float beta, float* c) const override {
    const View v = ViewOf(packed);
    ZERO_CHECK(off % block_ == 0,
               "int8 weight GEMM needs a block-aligned matrix offset");
    ZERO_CHECK(off >= 0 && off + n * k <= v.n,
               "int8 weight GEMM outside the packed tensor");
    GemmQuantWeightT(m, n, k, alpha, a, v.codes + off,
                     v.scales + off / block_, block_, beta, c);
  }

 private:
  struct View {
    std::int64_t n;
    const float* scales;
    const std::int8_t* codes;
  };
  [[nodiscard]] View ViewOf(const std::byte* packed) const {
    View v;
    std::memcpy(&v.n, packed, sizeof(v.n));
    v.scales = reinterpret_cast<const float*>(packed + sizeof(v.n));
    v.codes = reinterpret_cast<const std::int8_t*>(
        packed + sizeof(v.n) +
        static_cast<std::size_t>(QuantBlocks(v.n, block_)) * sizeof(float));
    return v;
  }
  std::int64_t block_;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<GemmBackend>> backends;

  Registry() {
    backends.push_back(std::make_unique<F32Backend>());
    backends.push_back(std::make_unique<F16Backend>());
    backends.push_back(std::make_unique<Int8Backend>(64));
  }
};

Registry& TheRegistry() {
  static Registry r;
  return r;
}

}  // namespace

void RegisterGemmBackend(std::unique_ptr<GemmBackend> backend) {
  ZERO_CHECK(backend != nullptr, "null GEMM backend registration");
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.backends) {
    if (b->name() == backend->name()) {
      b = std::move(backend);
      return;
    }
  }
  r.backends.push_back(std::move(backend));
}

const GemmBackend& GemmBackendByName(std::string_view name) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.backends) {
    if (b->name() == name) return *b;
  }
  std::string known;
  for (const auto& b : r.backends) {
    if (!known.empty()) known += ", ";
    known += std::string(b->name());
  }
  throw Error("unknown GEMM backend '" + std::string(name) +
              "' (registered: " + known + ")");
}

std::vector<std::string> GemmBackendNames() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const auto& b : r.backends) names.emplace_back(b->name());
  return names;
}

}  // namespace zero::tensor
