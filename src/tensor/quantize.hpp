// Blockwise symmetric int8 quantization (ZeRO++ qwZ/qgZ wire format).
//
// A tensor of n elements is split into ceil(n/block) blocks; each block
// carries one fp16 scale (absmax/127) followed by one int8 code per
// element: x ~= code * scale with |error| <= absmax/127 per element.
// The wire layout for a message is
//
//   [ Half scale[blocks] ][ int8 code[n] ]
//
// i.e. 2*blocks + n bytes — a ~3.8x reduction over the fp16 payload at
// the default block size of 64 and ~7.8x over fp32.
//
// Edge-case policy (property-tested in tests/tensor/quantize_test.cpp):
//  - absmax == 0 (or so small the fp16 scale rounds to 0): scale = 0,
//    all codes 0, dequantizes to exact +0.
//  - any non-finite element in a block: the scale is stored as fp16 NaN
//    (if a NaN was present) or Inf, and every code is 1 — the whole
//    block dequantizes to NaN/Inf so the engine's overflow detection
//    still fires after a quantized hop.
//  - amax/127 overflows fp16 (amax > ~8.3e6, fp32 inputs only): treated
//    as the non-finite case.
//
// Determinism: the public entry points dispatch to AVX-512 bodies when
// the build targets them and are bit-identical to the *Scalar reference
// implementations (division + round-to-nearest-even in both paths).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/half.hpp"

namespace zero::tensor {

// Largest supported quantization block (bounds the on-stack fp32
// staging buffer used by the fp16 entry points).
inline constexpr std::int64_t kMaxQuantBlock = 4096;

[[nodiscard]] constexpr std::int64_t QuantBlocks(std::int64_t n,
                                                 std::int64_t block) {
  return block > 0 ? (n + block - 1) / block : 0;
}

// Bytes of one quantized message of n elements: fp16 scales + int8 codes.
[[nodiscard]] constexpr std::size_t QuantWireBytes(std::int64_t n,
                                                   std::int64_t block) {
  return static_cast<std::size_t>(2 * QuantBlocks(n, block) + n);
}

// fp32 <-> wire.
void QuantizeF32(const float* src, std::int64_t n, std::int64_t block,
                 std::byte* wire);
void DequantizeF32(const std::byte* wire, std::int64_t n, std::int64_t block,
                   float* dst);
// dst[i] += dequant(i) — the qgZ owner-side fold of a remote node's
// quantized partial sum (mul then add, never FMA, so the scalar and
// vector paths round identically).
void DequantizeAddF32(const std::byte* wire, std::int64_t n,
                      std::int64_t block, float* dst);

// fp16 <-> wire. Decodes through fp32 and produces exactly the codes the
// f32 path would over the decoded values; dequantization rounds back to
// fp16 with round-to-nearest-even.
void QuantizeHalf(const Half* src, std::int64_t n, std::int64_t block,
                  std::byte* wire);
void DequantizeHalf(const std::byte* wire, std::int64_t n, std::int64_t block,
                    Half* dst);

// Scalar reference implementations (always compiled; used by the
// vector-vs-scalar bit-equality tests).
void QuantizeF32Scalar(const float* src, std::int64_t n, std::int64_t block,
                       std::byte* wire);
void DequantizeF32Scalar(const std::byte* wire, std::int64_t n,
                         std::int64_t block, float* dst);
void DequantizeAddF32Scalar(const std::byte* wire, std::int64_t n,
                            std::int64_t block, float* dst);

}  // namespace zero::tensor
