// Flat dense tensors over pluggable storage.
//
// A Tensor is a dtype + shape over a contiguous buffer that lives in one
// of three places:
//   - heap:   plain host vector (tests, reference math);
//   - device: a CachedBlock from a rank's CachingAllocator, so it counts
//     against simulated device capacity (parameters, gradients,
//     optimizer state, activations);
//   - arena:  a non-owning slice of a pre-allocated contiguous Arena —
//     the ZeRO-R MD placement for long-lived tensors (Sec 6.3).
//
// Compute happens in fp32; fp16 tensors convert at the edges, exactly as
// mixed-precision training does (Sec 3.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "alloc/arena.hpp"
#include "alloc/caching_allocator.hpp"
#include "common/dtype.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"

namespace zero::tensor {

using Shape = std::vector<std::int64_t>;

[[nodiscard]] std::int64_t NumelOf(const Shape& shape);
[[nodiscard]] std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Heap-backed.
  static Tensor Heap(Shape shape, DType dtype);
  // Device-backed: bytes come from (and are returned to) `alloc`.
  static Tensor Device(alloc::CachingAllocator& alloc, Shape shape,
                       DType dtype);
  // Arena-backed: bytes are a bump slice of `arena`; lifetime of the data
  // is the arena's current generation (until arena.Reset()).
  static Tensor InArena(alloc::Arena& arena, Shape shape, DType dtype);

  [[nodiscard]] bool defined() const { return numel_ >= 0; }
  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return numel_; }
  [[nodiscard]] DType dtype() const { return dtype_; }
  [[nodiscard]] std::size_t nbytes() const {
    return static_cast<std::size_t>(numel_) * SizeOf(dtype_);
  }
  [[nodiscard]] std::int64_t dim(int i) const {
    return shape_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::byte* raw();
  [[nodiscard]] const std::byte* raw() const;

  [[nodiscard]] std::span<float> f32();
  [[nodiscard]] std::span<const float> f32() const;
  [[nodiscard]] std::span<Half> f16();
  [[nodiscard]] std::span<const Half> f16() const;

  void FillZero();
  void FillConstant(float value);
  // N(0, stddev) initialization from a deterministic stream.
  void FillGaussian(Rng& rng, float stddev);

  // Element-wise copy with dtype conversion if needed. Shapes must have
  // equal numel.
  void CopyFrom(const Tensor& src);

  // Reads element i as float regardless of dtype (test convenience).
  [[nodiscard]] float At(std::int64_t i) const;
  void Set(std::int64_t i, float v);

  // Frees device storage early (keeps metadata); used by ZeRO's
  // "release gradients after reduction" and "discard gathered
  // parameters" schedules.
  void ReleaseStorage();
  [[nodiscard]] bool has_storage() const;

 private:
  struct External {
    std::byte* data = nullptr;
  };
  using Backing =
      std::variant<std::monostate, std::vector<std::byte>, alloc::CachedBlock,
                   External>;

  Shape shape_;
  std::int64_t numel_ = -1;
  DType dtype_ = DType::kF32;
  Backing backing_;
};

}  // namespace zero::tensor
