// fp32 compute kernels (forward + backward) for the transformer runtime.
//
// These are the CPU stand-ins for the cuBLAS/cuDNN calls the paper's
// implementation makes. The GEMM is a packed, register-blocked
// micro-kernel (BLIS-style: A/B panels are packed into contiguous tile
// buffers from thread-local scratch so all four transpose cases hit the
// same cache-friendly inner loop), and the large kernels partition their
// output rows across the opt-in intra-op worker pool (parallel_for.hpp).
//
// Determinism contract: every kernel returns bitwise-identical results
// at any worker count. Elementwise and per-row kernels get this for
// free (each output element is produced by exactly one chunk in serial
// order); reductions (bias grads, dgamma/dbeta, squared norms, the
// cross-entropy total) use fixed-size chunks whose partials are
// combined in chunk-index order on the calling thread. This is what
// keeps the ZeRO stage-equivalence tests exact while the kernels run
// parallel. Nothing here requires -ffast-math, and NaN/Inf propagate
// exactly (0 * Inf = NaN is preserved — the fp16 overflow detection in
// the loss scaler depends on seeing it).
#pragma once

#include <cstdint>

#include "common/half.hpp"

namespace zero::tensor {

// C[m,n] = alpha * op(A)[m,k] * op(B)[k,n] + beta * C[m,n].
// op(X) = X or X^T according to the trans flags; dimensions m/n/k always
// refer to the post-op shapes. Row-major storage.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

// Mixed-precision GEMMs for reduced-precision serving weights. The
// weight operand W is stored [n, k] row-major and used transposed (the
// shape every projection in the model keeps), so
//   C[m,n] = alpha * A[m,k] * W[n,k]^T + beta * C[m,n]
// with A fp32 activations. No persistent fp32 copy of W exists: the
// blocked path decodes each weight row's k-slice in bulk (the AVX-512
// LUT decoder) inside the B pack step, and the small path bulk-decodes
// the (bounded) weight tile into thread scratch. Both paths produce
// bitwise the result of decoding W to fp32 and calling
// Gemm(false, true, ...) — same dispatch threshold, same kernels, same
// summation order.
void GemmHalfWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                     float alpha, const float* a, const Half* w, float beta,
                     float* c);
// Blockwise-int8 weight operand: element i of W decodes to
// codes[i] * scales[i / qblock] (scales pre-decoded to fp32, matching
// tensor/quantize's dequantization bitwise).
void GemmQuantWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                      float alpha, const float* a, const std::int8_t* codes,
                      const float* scales, std::int64_t qblock, float beta,
                      float* c);

// Pre-packed fp16 weight panels. Weights are static across a serving
// run, so re-packing the B operand on every GEMM call is pure waste:
// these entry points encode a [n, k] weight matrix ONCE into the exact
// micro-panel layout the packed GEMM's B-pack produces (kNr-column
// panels per (column-block, k-block) tile, zero-padded past n), stored
// as fp16. The per-call GEMM then replaces the strided pack walk with
// one contiguous bulk AVX-512 decode of the current tile straight into
// the panel buffer — identical fp32 panel contents through the
// identical micro-kernel (and the identical small-GEMM dispatch), so
// results stay bitwise equal to GemmHalfWeightT on the row-major
// encoding while the per-step weight traffic halves and the pack
// becomes a linear fp16 stream.
[[nodiscard]] std::int64_t HalfPanelElems(std::int64_t n, std::int64_t k);
void PackHalfPanelsT(const float* w, std::int64_t n, std::int64_t k,
                     Half* dst);
// Decodes row `row` of the panel-packed [n, k] matrix to fp32 —
// embedding gathers and the small-GEMM tile materialization.
void DecodeHalfPanelRow(const Half* panels, std::int64_t n, std::int64_t k,
                        std::int64_t row, float* dst);
void GemmHalfPanelsT(std::int64_t m, std::int64_t n, std::int64_t k,
                     float alpha, const float* a, const Half* panels,
                     float beta, float* c);

// x[rows, cols] += bias[cols] broadcast over rows.
void AddBiasRows(float* x, const float* bias, std::int64_t rows,
                 std::int64_t cols);
// dbias[cols] += sum over rows of dy[rows, cols].
void BiasGradFromRows(const float* dy, float* dbias, std::int64_t rows,
                      std::int64_t cols);

// tanh-approximation GELU, the variant GPT-2 uses.
void GeluForward(const float* x, float* y, std::int64_t n);
void GeluBackward(const float* x, const float* dy, float* dx, std::int64_t n);

// Fused bias + activation epilogues: one pass over the activations
// instead of separate bias-add and activation kernels.
//   forward:  z = x + bias (saved for backward), y = act(z); z may alias x.
//   backward: dx = dy * act'(z), dbias[cols] += column sums of dx;
//             dx may alias dy.
void BiasGeluForward(const float* x, const float* bias, float* z, float* y,
                     std::int64_t rows, std::int64_t cols);
void BiasGeluBackward(const float* z, const float* dy, float* dx,
                      float* dbias, std::int64_t rows, std::int64_t cols);
void BiasReluForward(const float* x, const float* bias, float* z, float* y,
                     std::int64_t rows, std::int64_t cols);
void BiasReluBackward(const float* z, const float* dy, float* dx,
                      float* dbias, std::int64_t rows, std::int64_t cols);

// Row-wise layer norm over `cols` features. mean/rstd ([rows]) are saved
// for backward.
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float* y, float* mean, float* rstd, std::int64_t rows,
                      std::int64_t cols, float eps);
// dgamma/dbeta are accumulated (+=); dx is overwritten.
void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dy, float* dx,
                       float* dgamma, float* dbeta, std::int64_t rows,
                       std::int64_t cols);

// In-place row-wise softmax.
void SoftmaxRows(float* x, std::int64_t rows, std::int64_t cols);
// dx from saved softmax output y. dx may alias dy.
void SoftmaxBackwardRows(const float* y, const float* dy, float* dx,
                         std::int64_t rows, std::int64_t cols);

// scores[b, i, j] for b in [0, batch_heads): mask j > i to -inf, then
// softmax each row — causal attention.
void CausalMaskedSoftmax(float* scores, std::int64_t batch_heads,
                         std::int64_t q_len, std::int64_t k_len);

// Mean cross-entropy over rows; writes dlogits = (softmax - onehot)/rows.
// dlogits may be null (loss only). Probability rows live in thread-local
// scratch — no per-call allocation.
float CrossEntropyLoss(const float* logits, const std::int32_t* targets,
                       std::int64_t rows, std::int64_t vocab, float* dlogits);

// out[i, :] = table[ids[i], :].
void EmbeddingGather(const float* table, const std::int32_t* ids, float* out,
                     std::int64_t n_ids, std::int64_t dim);
// dtable[ids[i], :] += dout[i, :]. Serial: ids may repeat, so row
// partitioning would race on dtable.
void EmbeddingScatterAdd(float* dtable, const std::int32_t* ids,
                         const float* dout, std::int64_t n_ids,
                         std::int64_t dim);

void Axpy(float a, const float* x, float* y, std::int64_t n);
void Scale(float* x, float a, std::int64_t n);
[[nodiscard]] float SquaredNorm(const float* x, std::int64_t n);
[[nodiscard]] float SquaredNormF16(const Half* x, std::int64_t n);
[[nodiscard]] float Dot(const float* a, const float* b, std::int64_t n);

// Bulk fp16 <-> fp32 conversion, row-partitioned over the worker pool.
// Same bit-exact semantics as the serial common/half.hpp converters
// (LUT decode, round-to-nearest-even encode).
void CastHalfToFloat(const Half* src, float* dst, std::int64_t n);
void CastFloatToHalf(const float* src, Half* dst, std::int64_t n);

}  // namespace zero::tensor
