// fp32 compute kernels (forward + backward) for the transformer runtime.
//
// These are the CPU stand-ins for the cuBLAS/cuDNN calls the paper's
// implementation makes. The GEMM is a packed, register-blocked
// micro-kernel (BLIS-style: A/B panels are packed into contiguous tile
// buffers from thread-local scratch so all four transpose cases hit the
// same cache-friendly inner loop), and the large kernels partition their
// output rows across the opt-in intra-op worker pool (parallel_for.hpp).
//
// Determinism contract: every kernel returns bitwise-identical results
// at any worker count. Elementwise and per-row kernels get this for
// free (each output element is produced by exactly one chunk in serial
// order); reductions (bias grads, dgamma/dbeta, squared norms, the
// cross-entropy total) use fixed-size chunks whose partials are
// combined in chunk-index order on the calling thread. This is what
// keeps the ZeRO stage-equivalence tests exact while the kernels run
// parallel. Nothing here requires -ffast-math, and NaN/Inf propagate
// exactly (0 * Inf = NaN is preserved — the fp16 overflow detection in
// the loss scaler depends on seeing it).
#pragma once

#include <cstdint>

#include "common/half.hpp"

namespace zero::tensor {

// C[m,n] = alpha * op(A)[m,k] * op(B)[k,n] + beta * C[m,n].
// op(X) = X or X^T according to the trans flags; dimensions m/n/k always
// refer to the post-op shapes. Row-major storage.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

// x[rows, cols] += bias[cols] broadcast over rows.
void AddBiasRows(float* x, const float* bias, std::int64_t rows,
                 std::int64_t cols);
// dbias[cols] += sum over rows of dy[rows, cols].
void BiasGradFromRows(const float* dy, float* dbias, std::int64_t rows,
                      std::int64_t cols);

// tanh-approximation GELU, the variant GPT-2 uses.
void GeluForward(const float* x, float* y, std::int64_t n);
void GeluBackward(const float* x, const float* dy, float* dx, std::int64_t n);

// Fused bias + activation epilogues: one pass over the activations
// instead of separate bias-add and activation kernels.
//   forward:  z = x + bias (saved for backward), y = act(z); z may alias x.
//   backward: dx = dy * act'(z), dbias[cols] += column sums of dx;
//             dx may alias dy.
void BiasGeluForward(const float* x, const float* bias, float* z, float* y,
                     std::int64_t rows, std::int64_t cols);
void BiasGeluBackward(const float* z, const float* dy, float* dx,
                      float* dbias, std::int64_t rows, std::int64_t cols);
void BiasReluForward(const float* x, const float* bias, float* z, float* y,
                     std::int64_t rows, std::int64_t cols);
void BiasReluBackward(const float* z, const float* dy, float* dx,
                      float* dbias, std::int64_t rows, std::int64_t cols);

// Row-wise layer norm over `cols` features. mean/rstd ([rows]) are saved
// for backward.
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float* y, float* mean, float* rstd, std::int64_t rows,
                      std::int64_t cols, float eps);
// dgamma/dbeta are accumulated (+=); dx is overwritten.
void LayerNormBackward(const float* x, const float* gamma, const float* mean,
                       const float* rstd, const float* dy, float* dx,
                       float* dgamma, float* dbeta, std::int64_t rows,
                       std::int64_t cols);

// In-place row-wise softmax.
void SoftmaxRows(float* x, std::int64_t rows, std::int64_t cols);
// dx from saved softmax output y. dx may alias dy.
void SoftmaxBackwardRows(const float* y, const float* dy, float* dx,
                         std::int64_t rows, std::int64_t cols);

// scores[b, i, j] for b in [0, batch_heads): mask j > i to -inf, then
// softmax each row — causal attention.
void CausalMaskedSoftmax(float* scores, std::int64_t batch_heads,
                         std::int64_t q_len, std::int64_t k_len);

// Mean cross-entropy over rows; writes dlogits = (softmax - onehot)/rows.
// dlogits may be null (loss only). Probability rows live in thread-local
// scratch — no per-call allocation.
float CrossEntropyLoss(const float* logits, const std::int32_t* targets,
                       std::int64_t rows, std::int64_t vocab, float* dlogits);

// out[i, :] = table[ids[i], :].
void EmbeddingGather(const float* table, const std::int32_t* ids, float* out,
                     std::int64_t n_ids, std::int64_t dim);
// dtable[ids[i], :] += dout[i, :]. Serial: ids may repeat, so row
// partitioning would race on dtable.
void EmbeddingScatterAdd(float* dtable, const std::int32_t* ids,
                         const float* dout, std::int64_t n_ids,
                         std::int64_t dim);

void Axpy(float a, const float* x, float* y, std::int64_t n);
void Scale(float* x, float a, std::int64_t n);
[[nodiscard]] float SquaredNorm(const float* x, std::int64_t n);
[[nodiscard]] float SquaredNormF16(const Half* x, std::int64_t n);
[[nodiscard]] float Dot(const float* a, const float* b, std::int64_t n);

// Bulk fp16 <-> fp32 conversion, row-partitioned over the worker pool.
// Same bit-exact semantics as the serial common/half.hpp converters
// (LUT decode, round-to-nearest-even encode).
void CastHalfToFloat(const Half* src, float* dst, std::int64_t n);
void CastFloatToHalf(const float* src, Half* dst, std::int64_t n);

}  // namespace zero::tensor
