// Runtime-dispatched GEMM backends for reduced-precision serving
// weights, registered and selected by name (the Dali idiom: every
// precision implements one interface, a registry maps names to
// implementations, and callers pick one at load time — the hot path
// then runs identical call sites for every precision).
//
// A backend owns the *encoding* of a weight tensor plus the matching
// GEMM against it:
//
//   C[m,n] = alpha * A[m,k] * W[n,k]^T + beta * C
//
// with A fp32 activations and W a packed weight matrix in the backend's
// native storage. Built-in backends:
//
//   "fp32"  — passthrough: stores the identical floats and calls the
//             identical tensor::Gemm, so serving through it stays
//             memcmp-bit-exact with the fp32 provider path.
//   "fp16"  — Half storage (2 bytes/elem), decoded inside the GEMM's
//             pack step (kernels.hpp GemmHalfWeightT) — no fp32 copy of
//             the weights is ever materialized. Shaped matrices are
//             pre-packed into the GEMM's micro-panel layout at load
//             (PackHalfPanelsT), so the per-call B pack is one
//             contiguous bulk decode.
//   "int8"  — blockwise-int8 codes (tensor/quantize wire discipline)
//             with the per-block scales pre-decoded to fp32; ~4x
//             smaller than fp32, bounded per-element error absmax/127.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace zero::tensor {

enum class WeightPrecision : unsigned char { kF32, kF16, kInt8 };

[[nodiscard]] const char* WeightPrecisionName(WeightPrecision p);

class GemmBackend {
 public:
  virtual ~GemmBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual WeightPrecision precision() const = 0;

  // Bytes of packed storage an n-element weight tensor needs.
  [[nodiscard]] virtual std::size_t PackedBytes(std::int64_t n) const = 0;

  // Encode n fp32 weights into `dst` (PackedBytes(n) bytes, at least
  // 4-byte aligned).
  virtual void Pack(const float* src, std::int64_t n, std::byte* dst) const = 0;

  // Decode elements [off, off+count) of a packed tensor back to fp32 —
  // embedding-row gathers and the equivalence tests.
  virtual void Decode(const std::byte* packed, std::int64_t off,
                      std::int64_t count, float* dst) const = 0;

  // C[m,n] = alpha * A[m,k] * W[n,k]^T + beta * C for the weight matrix
  // starting at element `off` of the packed tensor.
  virtual void GemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                           float alpha, const float* a,
                           const std::byte* packed, std::int64_t off,
                           float beta, float* c) const = 0;

  // Shape-aware matrix encoding: a [n, k] weight matrix packed as one
  // unit, with the shape known at pack time. The defaults reuse the
  // flat row-major encoding above; a backend overrides them when a
  // bespoke layout pays (fp16 stores pre-packed GEMM micro-panels, so
  // the per-call B pack collapses to one contiguous bulk decode). Every
  // override must keep MatrixGemmWeightT bitwise equal to GemmWeightT
  // on the flat encoding of the same floats — the layout is a storage
  // choice, never a numerics choice.
  [[nodiscard]] virtual std::size_t PackedMatrixBytes(std::int64_t n,
                                                      std::int64_t k) const;
  virtual void PackMatrix(const float* src, std::int64_t n, std::int64_t k,
                          std::byte* dst) const;
  // Row `row` of the [n, k] matrix back to fp32 (embedding gathers).
  virtual void DecodeMatrixRow(const std::byte* packed, std::int64_t n,
                               std::int64_t k, std::int64_t row,
                               float* dst) const;
  virtual void MatrixGemmWeightT(std::int64_t m, std::int64_t n,
                                 std::int64_t k, float alpha, const float* a,
                                 const std::byte* packed, float beta,
                                 float* c) const;
};

// Registers a backend under backend->name(); replaces an existing
// registration of the same name (latest wins, so tests can shadow).
void RegisterGemmBackend(std::unique_ptr<GemmBackend> backend);

// Lookup by name; throws ZeroError on unknown names, listing what is
// registered. The returned reference stays valid for process lifetime.
[[nodiscard]] const GemmBackend& GemmBackendByName(std::string_view name);

// Registered names, registration order (built-ins first).
[[nodiscard]] std::vector<std::string> GemmBackendNames();

}  // namespace zero::tensor
