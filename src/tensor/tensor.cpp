#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

#include "tensor/kernels.hpp"

namespace zero::tensor {

std::int64_t NumelOf(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    ZERO_CHECK(d >= 0, "negative dimension");
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::Heap(Shape shape, DType dtype) {
  Tensor t;
  t.numel_ = NumelOf(shape);
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.backing_ = std::vector<std::byte>(t.nbytes());
  return t;
}

Tensor Tensor::Device(alloc::CachingAllocator& alloc, Shape shape,
                      DType dtype) {
  Tensor t;
  t.numel_ = NumelOf(shape);
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.backing_ = alloc.Malloc(t.nbytes() == 0 ? 1 : t.nbytes());
  return t;
}

Tensor Tensor::InArena(alloc::Arena& arena, Shape shape, DType dtype) {
  Tensor t;
  t.numel_ = NumelOf(shape);
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.backing_ = External{arena.Allocate(t.nbytes() == 0 ? 1 : t.nbytes())};
  return t;
}

std::byte* Tensor::raw() {
  if (auto* v = std::get_if<std::vector<std::byte>>(&backing_)) {
    return v->data();
  }
  if (auto* b = std::get_if<alloc::CachedBlock>(&backing_)) {
    return b->data();
  }
  if (auto* e = std::get_if<External>(&backing_)) {
    return e->data;
  }
  throw Error("accessing storage of an undefined or released tensor");
}

const std::byte* Tensor::raw() const {
  return const_cast<Tensor*>(this)->raw();
}

std::span<float> Tensor::f32() {
  ZERO_CHECK(dtype_ == DType::kF32, "tensor is not fp32");
  return {reinterpret_cast<float*>(raw()), static_cast<std::size_t>(numel_)};
}

std::span<const float> Tensor::f32() const {
  ZERO_CHECK(dtype_ == DType::kF32, "tensor is not fp32");
  return {reinterpret_cast<const float*>(raw()),
          static_cast<std::size_t>(numel_)};
}

std::span<Half> Tensor::f16() {
  ZERO_CHECK(dtype_ == DType::kF16, "tensor is not fp16");
  return {reinterpret_cast<Half*>(raw()), static_cast<std::size_t>(numel_)};
}

std::span<const Half> Tensor::f16() const {
  ZERO_CHECK(dtype_ == DType::kF16, "tensor is not fp16");
  return {reinterpret_cast<const Half*>(raw()),
          static_cast<std::size_t>(numel_)};
}

void Tensor::FillZero() { std::memset(raw(), 0, nbytes()); }

void Tensor::FillConstant(float value) {
  if (dtype_ == DType::kF32) {
    for (float& x : f32()) x = value;
  } else {
    const Half h(value);
    for (Half& x : f16()) x = h;
  }
}

void Tensor::FillGaussian(Rng& rng, float stddev) {
  if (dtype_ == DType::kF32) {
    for (float& x : f32()) x = rng.NextGaussian() * stddev;
  } else {
    for (Half& x : f16()) x = Half(rng.NextGaussian() * stddev);
  }
}

void Tensor::CopyFrom(const Tensor& src) {
  ZERO_CHECK(numel_ == src.numel_, "CopyFrom numel mismatch: " +
                                       ShapeToString(shape_) + " vs " +
                                       ShapeToString(src.shape_));
  if (dtype_ == src.dtype_) {
    std::memcpy(raw(), src.raw(), nbytes());
  } else if (dtype_ == DType::kF32 && src.dtype_ == DType::kF16) {
    CastHalfToFloat(src.f16().data(), f32().data(), numel_);
  } else {
    CastFloatToHalf(src.f32().data(), f16().data(), numel_);
  }
}

float Tensor::At(std::int64_t i) const {
  ZERO_CHECK(i >= 0 && i < numel_, "index out of range");
  if (dtype_ == DType::kF32) return f32()[static_cast<std::size_t>(i)];
  return f16()[static_cast<std::size_t>(i)].ToFloat();
}

void Tensor::Set(std::int64_t i, float v) {
  ZERO_CHECK(i >= 0 && i < numel_, "index out of range");
  if (dtype_ == DType::kF32) {
    f32()[static_cast<std::size_t>(i)] = v;
  } else {
    f16()[static_cast<std::size_t>(i)] = Half(v);
  }
}

void Tensor::ReleaseStorage() { backing_ = std::monostate{}; }

bool Tensor::has_storage() const {
  return !std::holds_alternative<std::monostate>(backing_);
}

}  // namespace zero::tensor
