// Opt-in intra-op worker pool for the CPU kernels.
//
// Design constraints, in order:
//   1. Determinism. Work is split into fixed chunks whose boundaries
//      depend only on (begin, end, grain) — never on the worker count —
//      and every output element is produced by exactly one chunk with
//      its serial accumulation order intact. A kernel therefore returns
//      bitwise-identical results at 1 worker, N workers, or with the
//      pool disabled, which is what keeps the ZeRO stage-equivalence
//      tests exact. Reductions that need cross-chunk combining (bias
//      grads, squared norms) write per-chunk partials and combine them
//      in chunk-index order on the calling thread.
//   2. No oversubscription. The runtime is thread-per-rank SPMD, so the
//      engine clamps the worker budget to hardware_concurrency / ranks
//      (see EngineConfig::intra_op_workers); the default is serial.
//   3. TSan-cleanliness. Publication of the job, chunk claiming, and
//      consumption of the results all go through a mutex/condvar pair —
//      no lock-free cleverness to audit.
//
// Each calling thread owns its own lazily-spawned pool (rank threads
// never share workers, so there is no cross-rank convoying), and the
// calling thread participates in chunk execution. Nested ParallelFor
// calls from inside a worker degrade to serial execution.
#pragma once

#include <cstdint>
#include <functional>

namespace zero::tensor {

// Hardware threads visible to the process (>= 1).
[[nodiscard]] int HardwareConcurrency();

// Global intra-op worker budget. 0 resets to the environment default
// (ZERO_INTRAOP_WORKERS, else 1 = serial). Values are clamped to
// [1, HardwareConcurrency() * 4] defensively.
void SetIntraOpWorkers(int n);
[[nodiscard]] int IntraOpWorkers();

// Runs fn over [begin, end) split into chunks of `grain` indices.
// fn(b, e) must handle any sub-range; chunk boundaries are fixed by
// (begin, end, grain) alone. Exceptions thrown by fn are rethrown on
// the calling thread after all chunks complete.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

// RAII worker-count override for tests and benches.
class IntraOpWorkersGuard {
 public:
  explicit IntraOpWorkersGuard(int n) : prev_(IntraOpWorkers()) {
    SetIntraOpWorkers(n);
  }
  ~IntraOpWorkersGuard() { SetIntraOpWorkers(prev_); }
  IntraOpWorkersGuard(const IntraOpWorkersGuard&) = delete;
  IntraOpWorkersGuard& operator=(const IntraOpWorkersGuard&) = delete;

 private:
  int prev_;
};

}  // namespace zero::tensor
