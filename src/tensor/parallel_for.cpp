#include "tensor/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace zero::tensor {

namespace {

int EnvWorkers() {
  const char* s = std::getenv("ZERO_INTRAOP_WORKERS");
  if (s == nullptr) return 1;
  const long v = std::strtol(s, nullptr, 10);
  if (v < 1) return 1;
  return static_cast<int>(std::min<long>(v, HardwareConcurrency() * 4));
}

std::atomic<int>& ConfiguredWorkers() {
  static std::atomic<int> workers{EnvWorkers()};
  return workers;
}

// Set while a pool worker (or the caller, inside a chunk) is executing
// kernel code: nested ParallelFor calls run serially instead of
// deadlocking on or oversubscribing the pool.
thread_local bool tl_in_parallel_region = false;

class WorkerPool {
 public:
  explicit WorkerPool(int helpers) {
    // Workers inherit the owning thread's rank tag so their log lines
    // and trace events land in the owner's process lane; the trace name
    // distinguishes the worker lanes ("r<rank> w<i>").
    const int owner_rank = GetThreadLogRank();
    threads_.reserve(static_cast<std::size_t>(helpers));
    for (int i = 0; i < helpers; ++i) {
      threads_.emplace_back([this, owner_rank, i] {
        SetThreadLogRank(owner_rank);
        obs::SetThreadTraceName(
            (owner_rank >= 0 ? "r" + std::to_string(owner_rank) + " w"
                             : "w") +
            std::to_string(i));
        WorkerLoop();
      });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] int helpers() const {
    return static_cast<int>(threads_.size());
  }

  void Run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           std::int64_t nchunks,
           const std::function<void(std::int64_t, std::int64_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      begin_ = begin;
      end_ = end;
      grain_ = grain;
      nchunks_ = nchunks;
      fn_ = &fn;
      completed_ = 0;
      error_ = nullptr;
      next_ = 0;
      epoch_snapshot_ = ++epoch_;
    }
    cv_work_.notify_all();

    RunChunks(epoch_snapshot_);

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return completed_ == nchunks_; });
    if (error_ != nullptr) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void WorkerLoop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
      }
      RunChunks(seen);
    }
  }

  // Claims and runs chunks of the job identified by `epoch`. Claiming
  // happens under mu_ with an epoch check, so a straggler that loops
  // around after the caller has already published a new job (or is
  // about to) exits instead of touching the fresh job's fields.
  void RunChunks(std::uint64_t epoch) {
    tl_in_parallel_region = true;
    for (;;) {
      std::int64_t b = 0;
      std::int64_t e = 0;
      const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (epoch_ != epoch || next_ >= nchunks_) break;
        const std::int64_t c = next_++;
        b = begin_ + c * grain_;
        e = std::min(b + grain_, end_);
        fn = fn_;
      }
      std::exception_ptr err = nullptr;
      try {
        (*fn)(b, e);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (err != nullptr && error_ == nullptr) error_ = err;
      if (++completed_ == nchunks_) cv_done_.notify_all();
    }
    tl_in_parallel_region = false;
  }

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_snapshot_ = 0;  // caller's copy of its job's epoch

  // Current job; all fields written and read under mu_.
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t nchunks_ = 0;
  const std::function<void(std::int64_t, std::int64_t)>* fn_ = nullptr;
  std::int64_t next_ = 0;
  std::int64_t completed_ = 0;
  std::exception_ptr error_ = nullptr;
};

// Each calling thread lazily owns a pool sized to the current budget;
// resized (recreated) when the budget changes between calls.
WorkerPool* ThreadPool(int helpers) {
  thread_local std::unique_ptr<WorkerPool> pool;
  if (pool == nullptr || pool->helpers() != helpers) {
    pool = std::make_unique<WorkerPool>(helpers);
  }
  return pool.get();
}

}  // namespace

int HardwareConcurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void SetIntraOpWorkers(int n) {
  if (n <= 0) {
    ConfiguredWorkers().store(EnvWorkers(), std::memory_order_relaxed);
    return;
  }
  ConfiguredWorkers().store(std::min(n, HardwareConcurrency() * 4),
                            std::memory_order_relaxed);
}

int IntraOpWorkers() {
  return ConfiguredWorkers().load(std::memory_order_relaxed);
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t nchunks = (end - begin + grain - 1) / grain;
  const int workers = IntraOpWorkers();
  if (workers <= 1 || nchunks <= 1 || tl_in_parallel_region) {
    // Serial path: one call per chunk keeps the execution identical to
    // the parallel path for any fn (chunk boundaries are part of the
    // contract, not an implementation detail).
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const std::int64_t b = begin + c * grain;
      fn(b, std::min(b + grain, end));
    }
    return;
  }
  const int helpers =
      static_cast<int>(std::min<std::int64_t>(workers - 1, nchunks - 1));
  // Only the pooled path gets a span: the serial path above runs inside
  // tight per-kernel loops where even a disabled span's check would show
  // up in the kernel microbenchmarks.
  TRACE_SPAN("tensor/parallel_for");
  ThreadPool(helpers)->Run(begin, end, grain, nchunks, fn);
}

}  // namespace zero::tensor
