// Error taxonomy for the runtime. Device OOM is a first-class, expected
// outcome in this codebase — the paper's max-model-size and max-batch
// experiments (Table 2, Figures 6-8) are defined by the boundary where
// allocation fails — so it gets its own type that carries the allocator
// state needed to distinguish "truly full" from "fragmented" (Sec 3.2).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace zero {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Allocation failed on a simulated device.
class DeviceOomError : public Error {
 public:
  DeviceOomError(std::size_t requested, std::size_t free_total,
                 std::size_t largest_free_block, const std::string& context)
      : Error(Format(requested, free_total, largest_free_block, context)),
        requested_(requested),
        free_total_(free_total),
        largest_free_block_(largest_free_block) {}

  [[nodiscard]] std::size_t requested() const { return requested_; }
  [[nodiscard]] std::size_t free_total() const { return free_total_; }
  [[nodiscard]] std::size_t largest_free_block() const {
    return largest_free_block_;
  }
  // True when the failure is the Sec 3.2 pathology: enough free bytes in
  // total, but no contiguous block large enough.
  [[nodiscard]] bool due_to_fragmentation() const {
    return free_total_ >= requested_;
  }

 private:
  static std::string Format(std::size_t requested, std::size_t free_total,
                            std::size_t largest, const std::string& context);

  std::size_t requested_;
  std::size_t free_total_;
  std::size_t largest_free_block_;
};

class ShapeError : public Error {
 public:
  using Error::Error;
};

class CommError : public Error {
 public:
  using Error::Error;
};

// ---- fault-tolerance taxonomy (src/fault/, comm detection paths) ----
//
// Failures surface on *surviving* ranks as one of three CommError
// subclasses, so recovery code can tell root causes from collateral:
//   - PeerFailedError: the awaited peer was declared dead (its thread
//     unwound with an exception, or its heartbeat went silent past the
//     configured deadline). Root-cause signal on the detector side.
//   - CommTimeoutError: the wait exceeded the stall bound while the peer
//     was still heartbeating — a lost/dropped message, not a dead rank.
//   - StepAbortedError: another rank already detected a failure and the
//     world is cooperatively tearing the step down; purely collateral.

// A peer rank is dead (observed crash or heartbeat silence).
class PeerFailedError : public CommError {
 public:
  PeerFailedError(int failed_rank, const std::string& what)
      : CommError(what), failed_rank_(failed_rank) {}
  [[nodiscard]] int failed_rank() const { return failed_rank_; }

 private:
  int failed_rank_;
};

// A blocking wait starved past the stall bound with the peer still alive
// (lost-message pathology rather than rank death).
class CommTimeoutError : public CommError {
 public:
  using CommError::CommError;
};

// The in-flight step is being torn down because some rank failed; the
// thrower is a healthy survivor unwinding cooperatively.
class StepAbortedError : public CommError {
 public:
  using CommError::CommError;
};

// Thrown by the fault injector to simulate a rank death (crash or the
// unblocking of a hung rank after the world aborted). Escapes the rank
// body by design; World::Run marks the rank dead when it does.
class InjectedFaultError : public Error {
 public:
  using Error::Error;
};

class ConfigError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace zero

// Invariant check that survives release builds; violations indicate a bug
// in this library, not user error.
#define ZERO_CHECK(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::zero::detail::CheckFailed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)
