// Error taxonomy for the runtime. Device OOM is a first-class, expected
// outcome in this codebase — the paper's max-model-size and max-batch
// experiments (Table 2, Figures 6-8) are defined by the boundary where
// allocation fails — so it gets its own type that carries the allocator
// state needed to distinguish "truly full" from "fragmented" (Sec 3.2).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace zero {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Allocation failed on a simulated device.
class DeviceOomError : public Error {
 public:
  DeviceOomError(std::size_t requested, std::size_t free_total,
                 std::size_t largest_free_block, const std::string& context)
      : Error(Format(requested, free_total, largest_free_block, context)),
        requested_(requested),
        free_total_(free_total),
        largest_free_block_(largest_free_block) {}

  [[nodiscard]] std::size_t requested() const { return requested_; }
  [[nodiscard]] std::size_t free_total() const { return free_total_; }
  [[nodiscard]] std::size_t largest_free_block() const {
    return largest_free_block_;
  }
  // True when the failure is the Sec 3.2 pathology: enough free bytes in
  // total, but no contiguous block large enough.
  [[nodiscard]] bool due_to_fragmentation() const {
    return free_total_ >= requested_;
  }

 private:
  static std::string Format(std::size_t requested, std::size_t free_total,
                            std::size_t largest, const std::string& context);

  std::size_t requested_;
  std::size_t free_total_;
  std::size_t largest_free_block_;
};

class ShapeError : public Error {
 public:
  using Error::Error;
};

class CommError : public Error {
 public:
  using Error::Error;
};

class ConfigError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace zero

// Invariant check that survives release builds; violations indicate a bug
// in this library, not user error.
#define ZERO_CHECK(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::zero::detail::CheckFailed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)
