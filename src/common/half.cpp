#include "common/half.hpp"

#include <cmath>

namespace zero {

std::uint16_t Half::FromFloat(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));

  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t exp32 = (x >> 23) & 0xFFu;
  std::uint32_t mant = x & 0x007FFFFFu;

  if (exp32 == 0xFFu) {  // Inf / NaN
    if (mant != 0) {
      // Preserve a quiet NaN; keep a nonzero mantissa.
      return static_cast<std::uint16_t>(sign | 0x7C00u | 0x0200u |
                                        (mant >> 13));
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // Re-bias exponent: fp32 bias 127, fp16 bias 15.
  int exp = static_cast<int>(exp32) - 127 + 15;

  if (exp >= 0x1F) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exp <= 0) {
    // Subnormal half (or underflow to zero). Shift in the implicit bit.
    if (exp < -10) {
      return static_cast<std::uint16_t>(sign);  // rounds to +-0
    }
    mant |= 0x00800000u;  // implicit leading 1
    const int shift = 14 - exp;  // 14..24
    const std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t result = q;
    if (rem > halfway || (rem == halfway && (q & 1u))) {
      ++result;  // round to nearest even; may carry into the normal range
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal number: keep top 10 mantissa bits, round to nearest even.
  std::uint32_t result =
      (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) {
    ++result;  // carry may bump exponent, including into Inf — that is correct
  }
  return static_cast<std::uint16_t>(sign | result);
}

float Half::ToFloatImpl(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x03FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      out = sign | ((127 - 15 - e) << 23) | ((m & 0x03FFu) << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }

  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

void FloatToHalf(const float* src, Half* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half(src[i]);
}

void HalfToFloat(const Half* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i].ToFloat();
}

}  // namespace zero
