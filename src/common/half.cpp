#include "common/half.hpp"

#include <cmath>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace zero {

std::uint16_t Half::FromFloat(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));

  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t exp32 = (x >> 23) & 0xFFu;
  std::uint32_t mant = x & 0x007FFFFFu;

  if (exp32 == 0xFFu) {  // Inf / NaN
    if (mant != 0) {
      // Preserve a quiet NaN; keep a nonzero mantissa.
      return static_cast<std::uint16_t>(sign | 0x7C00u | 0x0200u |
                                        (mant >> 13));
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // Re-bias exponent: fp32 bias 127, fp16 bias 15.
  int exp = static_cast<int>(exp32) - 127 + 15;

  if (exp >= 0x1F) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exp <= 0) {
    // Subnormal half (or underflow to zero). Shift in the implicit bit.
    if (exp < -10) {
      return static_cast<std::uint16_t>(sign);  // rounds to +-0
    }
    mant |= 0x00800000u;  // implicit leading 1
    const int shift = 14 - exp;  // 14..24
    const std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t result = q;
    if (rem > halfway || (rem == halfway && (q & 1u))) {
      ++result;  // round to nearest even; may carry into the normal range
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal number: keep top 10 mantissa bits, round to nearest even.
  std::uint32_t result =
      (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) {
    ++result;  // carry may bump exponent, including into Inf — that is correct
  }
  return static_cast<std::uint16_t>(sign | result);
}

float Half::ToFloatImpl(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x03FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      out = sign | ((127 - 15 - e) << 23) | ((m & 0x03FFu) << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }

  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

const float* HalfDecodeTable() {
  struct Table {
    float v[1u << 16];
    Table() {
      for (std::uint32_t b = 0; b < (1u << 16); ++b) {
        v[b] = Half::ToFloatImpl(static_cast<std::uint16_t>(b));
      }
    }
  };
  static const Table table;  // thread-safe one-time init
  return table.v;
}

// The bulk converters carry a bit-exactness contract with the scalar
// Half conversions (tests/common/half_lut_test.cpp checks it, decode
// exhaustively). The AVX-512 paths below were verified to satisfy it:
//  - decode: pure integer rebiasing; subnormals via the exact
//    as_float(magic + (mant << 13)) - as_float(magic) identity (every
//    half subnormal is representable in fp32, so the subtraction is
//    exact); Inf/NaN reconstructed with OR, so NaN payloads survive.
//  - encode: VCVTPS2PH rounds to nearest-even and quiets SNaNs by
//    setting the same 0x0200 bit FromFloat sets.
void FloatToHalf(const float* src, Half* dst, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(src + i);
    const __m256i h =
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
#endif
  for (; i < n; ++i) {
    dst[i] = Half::FromBits(Half::FromFloat(src[i]));
  }
}

void HalfToFloat(const Half* src, float* dst, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX512F__)
  const __m512i sign_mask = _mm512_set1_epi32(0x8000);
  const __m512i exp_mask = _mm512_set1_epi32(0x7C00);
  const __m512i mant_mask = _mm512_set1_epi32(0x03FF);
  const __m512i exp_adj = _mm512_set1_epi32((127 - 15) << 23);
  const __m512i infnan = _mm512_set1_epi32(0x7F800000);
  const __m512i magic = _mm512_set1_epi32(0x38800000);  // 2^-14
  for (; i + 16 <= n; i += 16) {
    const __m256i h16 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m512i h = _mm512_cvtepu16_epi32(h16);
    const __m512i sign = _mm512_slli_epi32(_mm512_and_si512(h, sign_mask), 16);
    const __m512i exp = _mm512_and_si512(h, exp_mask);
    const __m512i mant = _mm512_and_si512(h, mant_mask);
    const __m512i mant13 = _mm512_slli_epi32(mant, 13);
    const __m512i norm = _mm512_add_epi32(
        _mm512_slli_epi32(_mm512_or_si512(exp, mant), 13), exp_adj);
    const __m512 subf =
        _mm512_sub_ps(_mm512_castsi512_ps(_mm512_add_epi32(magic, mant13)),
                      _mm512_castsi512_ps(magic));
    const __m512i special = _mm512_or_si512(infnan, mant13);
    const __mmask16 is_sub =
        _mm512_cmpeq_epi32_mask(exp, _mm512_setzero_si512());
    const __mmask16 is_special = _mm512_cmpeq_epi32_mask(exp, exp_mask);
    __m512i out = _mm512_mask_blend_epi32(is_sub, norm, _mm512_castps_si512(subf));
    out = _mm512_mask_blend_epi32(is_special, out, special);
    out = _mm512_or_si512(out, sign);
    _mm512_storeu_ps(dst + i, _mm512_castsi512_ps(out));
  }
#endif
  const float* table = HalfDecodeTable();
  for (; i < n; ++i) dst[i] = table[src[i].bits()];
}

}  // namespace zero
