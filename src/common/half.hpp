// IEEE 754 binary16 ("half") implemented in software.
//
// The paper's mixed-precision training (Sec 3.1) stores parameters,
// gradients and activations in fp16 while keeping fp32 master copies of
// the optimizer state. Reproducing the 2-byte footprint and the rounding
// behaviour requires a real 16-bit type; this one stores the canonical
// bit pattern and converts with round-to-nearest-even, so fp16 tensors
// occupy exactly 2*N bytes of simulated device memory and accumulate the
// same class of rounding error the paper's runs did.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

namespace zero {

class Half {
 public:
  constexpr Half() = default;
  explicit Half(float f) : bits_(FromFloat(f)) {}

  static constexpr Half FromBits(std::uint16_t b) {
    Half h;
    h.bits_ = b;
    return h;
  }

  [[nodiscard]] float ToFloat() const { return ToFloatImpl(bits_); }
  explicit operator float() const { return ToFloat(); }

  [[nodiscard]] std::uint16_t bits() const { return bits_; }

  [[nodiscard]] bool IsNan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool IsInf() const {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }
  [[nodiscard]] bool IsZero() const { return (bits_ & 0x7FFFu) == 0; }

  friend bool operator==(Half a, Half b) {
    if (a.IsNan() || b.IsNan()) return false;
    if (a.IsZero() && b.IsZero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) { return !(a == b); }

  // Arithmetic is performed in fp32 and rounded back, which matches how
  // GPU tensor cores accumulate in higher precision.
  friend Half operator+(Half a, Half b) { return Half(a.ToFloat() + b.ToFloat()); }
  friend Half operator-(Half a, Half b) { return Half(a.ToFloat() - b.ToFloat()); }
  friend Half operator*(Half a, Half b) { return Half(a.ToFloat() * b.ToFloat()); }
  friend Half operator/(Half a, Half b) { return Half(a.ToFloat() / b.ToFloat()); }

  static std::uint16_t FromFloat(float f);
  static float ToFloatImpl(std::uint16_t bits);

  static constexpr float kMax = 65504.0f;
  static constexpr float kMinNormal = 6.103515625e-05f;       // 2^-14
  static constexpr float kMinSubnormal = 5.9604644775390625e-08f;  // 2^-24
  static constexpr float kEpsilon = 9.765625e-04f;            // 2^-10

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly two bytes");

// All 65536 half bit patterns decoded to fp32, indexed by Half::bits().
// Built once on first use from ToFloatImpl, so table entries are
// bit-identical to the scalar decoder (including NaN payloads — the
// hardware F16C path quiets signalling NaNs and would not be).
const float* HalfDecodeTable();

// Bulk conversion helpers used by the tensor library's cast kernels.
// Vectorized where the build targets AVX-512, with the decode LUT /
// scalar round-to-nearest-even encoder as the portable path. Every
// variant is bit-exact with the one-at-a-time Half conversions,
// including NaN payloads.
void FloatToHalf(const float* src, Half* dst, std::size_t n);
void HalfToFloat(const Half* src, float* dst, std::size_t n);

}  // namespace zero
