// Minimal leveled logger. Multi-rank code logs with a rank prefix; output
// is serialized with a process-wide mutex so interleaved rank logs stay
// line-atomic.
//
// Every line carries a monotonic timestamp (seconds since process start)
// and, when the emitting thread has a rank tag, the rank:
//
//   [zero INFO  +12.345s r3] stage-3 all-gather complete
//
// The initial level comes from ZERO_LOG_LEVEL (debug/info/warn/error,
// case-insensitive; default warn); SetLogLevel overrides at runtime.
// World::Run tags each SPMD rank thread via SetThreadLogRank, and the
// intra-op worker pool inherits its owner's tag, so telemetry (obs/) and
// log lines agree on which rank did what.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace zero {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// "debug"/"info"/"warn"/"warning"/"error" (any case) or "0".."3";
// nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Per-thread rank tag stamped onto log lines and telemetry events.
// -1 (the default) means untagged. Inherited by nothing automatically —
// thread spawners that want attribution must propagate it.
void SetThreadLogRank(int rank);
[[nodiscard]] int GetThreadLogRank();

// Monotonic seconds since process start (the log-line clock).
[[nodiscard]] double LogUptimeSeconds();

namespace detail {
void Emit(LogLevel level, const std::string& message);
// The exact line Emit writes (sans trailing newline); split out so the
// format is testable.
[[nodiscard]] std::string FormatLogLine(LogLevel level, double uptime_s,
                                        int rank, const std::string& message);
}

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) detail::Emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= GetLogLevel()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace zero

#define ZLOG_DEBUG ::zero::LogLine(::zero::LogLevel::kDebug)
#define ZLOG_INFO ::zero::LogLine(::zero::LogLevel::kInfo)
#define ZLOG_WARN ::zero::LogLine(::zero::LogLevel::kWarn)
#define ZLOG_ERROR ::zero::LogLine(::zero::LogLevel::kError)
