// Minimal leveled logger. Multi-rank code logs with a rank prefix; output
// is serialized with a process-wide mutex so interleaved rank logs stay
// line-atomic.
#pragma once

#include <sstream>
#include <string>

namespace zero {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void Emit(LogLevel level, const std::string& message);
}

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) detail::Emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= GetLogLevel()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace zero

#define ZLOG_DEBUG ::zero::LogLine(::zero::LogLevel::kDebug)
#define ZLOG_INFO ::zero::LogLine(::zero::LogLevel::kInfo)
#define ZLOG_WARN ::zero::LogLine(::zero::LogLevel::kWarn)
#define ZLOG_ERROR ::zero::LogLine(::zero::LogLevel::kError)
