// Element types used throughout the runtime. The paper's memory
// accounting (Sec 3.1) hinges on the 2-byte/4-byte split between fp16
// working tensors and fp32 optimizer state, so byte sizes live here as
// the single source of truth.
#pragma once

#include <cstddef>
#include <string_view>

namespace zero {

enum class DType : unsigned char {
  kF16,
  kF32,
};

[[nodiscard]] constexpr std::size_t SizeOf(DType t) {
  switch (t) {
    case DType::kF16:
      return 2;
    case DType::kF32:
      return 4;
  }
  return 0;  // unreachable
}

[[nodiscard]] constexpr std::string_view Name(DType t) {
  switch (t) {
    case DType::kF16:
      return "f16";
    case DType::kF32:
      return "f32";
  }
  return "?";
}

}  // namespace zero
