// ASCII table printer used by the bench harnesses to emit the paper's
// tables/figures as aligned rows (so bench output can be diffed against
// EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace zero {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with %.4g.
  Table& AddRow(const std::string& label, const std::vector<double>& values);

  void Print(std::ostream& os) const;
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zero
