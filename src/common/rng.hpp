// Deterministic, seed-splittable RNG. Every rank, layer and experiment
// derives its stream from a root seed so multi-rank runs are exactly
// reproducible regardless of thread scheduling — a prerequisite for the
// ZeRO-vs-DDP numerical-equivalence tests.
#pragma once

#include <cmath>
#include <cstdint>

namespace zero {

// splitmix64: tiny, passes BigCrush for this use, and cheap to fork.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  float NextFloat() { return static_cast<float>(NextDouble()); }

  // Uniform integer in [0, n).
  std::uint64_t NextBelow(std::uint64_t n) { return NextU64() % n; }

  // Standard normal via Box-Muller (no cached second sample: determinism
  // beats the factor-of-two here).
  float NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(6.283185307179586 * u2));
  }

  // Fork an independent stream (e.g., per rank or per layer).
  [[nodiscard]] Rng Split(std::uint64_t stream_id) const {
    Rng child(state_ ^ (0xD6E8FEB86659FD93ull * (stream_id + 1)));
    child.NextU64();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace zero
