// Byte / flop unit helpers. The paper mixes decimal GB (interconnect
// bandwidth, "16TB of memory") with binary device capacities (32GB V100
// cards are 32 GiB usable minus reserve); we keep both spellings explicit
// so simulator numbers are auditable against the paper's arithmetic.
#pragma once

#include <cstdint>
#include <string>

namespace zero {

constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;
constexpr std::uint64_t TiB = 1024ull * GiB;

constexpr std::uint64_t KB = 1000ull;
constexpr std::uint64_t MB = 1000ull * KB;
constexpr std::uint64_t GB = 1000ull * MB;
constexpr std::uint64_t TB = 1000ull * GB;

constexpr double kGigaflop = 1e9;
constexpr double kTeraflop = 1e12;
constexpr double kPetaflop = 1e15;

// "7.5B parameters" style counts.
constexpr std::uint64_t Billion(double x) {
  return static_cast<std::uint64_t>(x * 1e9);
}
constexpr std::uint64_t Million(double x) {
  return static_cast<std::uint64_t>(x * 1e6);
}

// Human-readable byte strings for bench output ("31.4 GB", "16.6 GB").
std::string FormatBytes(double bytes);
std::string FormatCount(double count);  // 7.5B, 128B, 1.0T

}  // namespace zero
