#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/error.hpp"
#include "common/units.hpp"

namespace zero {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {

void Emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[zero %-5s] %s\n", LevelName(level), message.c_str());
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::string full = std::string("ZERO_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line) + ": " + msg;
  Emit(LogLevel::kError, full);
  throw Error(full);
}

}  // namespace detail

std::string FormatBytes(double bytes) {
  char buf[64];
  const char* unit = "B";
  double v = bytes;
  if (bytes >= 1e12) {
    v = bytes / 1e12;
    unit = "TB";
  } else if (bytes >= 1e9) {
    v = bytes / 1e9;
    unit = "GB";
  } else if (bytes >= 1e6) {
    v = bytes / 1e6;
    unit = "MB";
  } else if (bytes >= 1e3) {
    v = bytes / 1e3;
    unit = "KB";
  }
  std::snprintf(buf, sizeof(buf), "%.4g %s", v, unit);
  return buf;
}

std::string FormatCount(double count) {
  char buf[64];
  if (count >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.3gT", count / 1e12);
  } else if (count >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3gB", count / 1e9);
  } else if (count >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gM", count / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", count);
  }
  return buf;
}

std::string DeviceOomError::Format(std::size_t requested,
                                   std::size_t free_total, std::size_t largest,
                                   const std::string& context) {
  std::string s = "device OOM";
  if (!context.empty()) s += " (" + context + ")";
  s += ": requested " + FormatBytes(static_cast<double>(requested)) +
       ", free " + FormatBytes(static_cast<double>(free_total)) +
       ", largest contiguous block " +
       FormatBytes(static_cast<double>(largest));
  if (free_total >= requested) {
    s += " [fragmentation: total free would satisfy the request]";
  }
  return s;
}

}  // namespace zero
