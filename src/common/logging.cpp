#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"
#include "common/units.hpp"

namespace zero {

namespace {
std::mutex g_emit_mutex;
thread_local int tl_log_rank = -1;

int InitialLevel() {
  if (const char* env = std::getenv("ZERO_LOG_LEVEL")) {
    if (std::optional<LogLevel> parsed = ParseLogLevel(env)) {
      return static_cast<int>(*parsed);
    }
    std::fprintf(stderr,
                 "[zero WARN ] ignoring unrecognized ZERO_LOG_LEVEL=\"%s\" "
                 "(want debug/info/warn/error)\n",
                 env);
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int>& Level() {
  static std::atomic<int> level{InitialLevel()};
  return level;
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so "+0.000s" really means process
// start, not first log line.
const bool g_epoch_primed = (ProcessEpoch(), true);

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  Level().store(static_cast<int>(level));
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(Level().load()); }

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower += AsciiLower(c);
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

void SetThreadLogRank(int rank) { tl_log_rank = rank; }

int GetThreadLogRank() { return tl_log_rank; }

double LogUptimeSeconds() {
  (void)g_epoch_primed;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessEpoch())
      .count();
}

namespace detail {

std::string FormatLogLine(LogLevel level, double uptime_s, int rank,
                          const std::string& message) {
  char head[64];
  if (rank >= 0) {
    std::snprintf(head, sizeof(head), "[zero %-5s +%.3fs r%d] ",
                  LevelName(level), uptime_s, rank);
  } else {
    std::snprintf(head, sizeof(head), "[zero %-5s +%.3fs] ",
                  LevelName(level), uptime_s);
  }
  return head + message;
}

void Emit(LogLevel level, const std::string& message) {
  const std::string line =
      FormatLogLine(level, LogUptimeSeconds(), tl_log_rank, message);
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::string full = std::string("ZERO_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line) + ": " + msg;
  Emit(LogLevel::kError, full);
  throw Error(full);
}

}  // namespace detail

std::string FormatBytes(double bytes) {
  char buf[64];
  const char* unit = "B";
  double v = bytes;
  if (bytes >= 1e12) {
    v = bytes / 1e12;
    unit = "TB";
  } else if (bytes >= 1e9) {
    v = bytes / 1e9;
    unit = "GB";
  } else if (bytes >= 1e6) {
    v = bytes / 1e6;
    unit = "MB";
  } else if (bytes >= 1e3) {
    v = bytes / 1e3;
    unit = "KB";
  }
  std::snprintf(buf, sizeof(buf), "%.4g %s", v, unit);
  return buf;
}

std::string FormatCount(double count) {
  char buf[64];
  if (count >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.3gT", count / 1e12);
  } else if (count >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3gB", count / 1e9);
  } else if (count >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gM", count / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", count);
  }
  return buf;
}

std::string DeviceOomError::Format(std::size_t requested,
                                   std::size_t free_total, std::size_t largest,
                                   const std::string& context) {
  std::string s = "device OOM";
  if (!context.empty()) s += " (" + context + ")";
  s += ": requested " + FormatBytes(static_cast<double>(requested)) +
       ", free " + FormatBytes(static_cast<double>(free_total)) +
       ", largest contiguous block " +
       FormatBytes(static_cast<double>(largest));
  if (free_total >= requested) {
    s += " [fragmentation: total free would satisfy the request]";
  }
  return s;
}

}  // namespace zero
