#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace zero {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  ZERO_CHECK(cells.size() == header_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::AddRow(const std::string& label,
                     const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    cells.emplace_back(buf);
  }
  return AddRow(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  auto emit_rule = [&]() {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '|';
    }
    os << '\n';
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace zero
