// Storage tiers for optimizer state (ZeRO-Offload / ZeRO-Infinity).
//
// The fp32 master weights and Adam moments — K=12 bytes/param, the
// dominant term of the paper's Sec 3.1 memory accounting — do not have
// to live on the device. This header abstracts *where* they live behind
// a small contract:
//
//   StorageTier     owns persistent byte regions in one tier (device,
//                   host DRAM, or simulated NVMe) and moves slices of
//                   them across the device link.
//   TransferChannel a serialized, configurable-bandwidth link. Like the
//                   rest of the runtime, the simulation moves real bytes
//                   eagerly — a submitted copy lands immediately — and
//                   the channel models *time*: each transfer occupies
//                   the link for bytes/bandwidth, queued FIFO behind
//                   earlier transfers.
//   TransferRequest waitable handle mirroring comm::CommRequest. Wait()
//                   blocks out the remaining simulated link time, so
//                   overlap is physically real: link time that elapses
//                   while the caller computes is never waited on, and
//                   the channel ledger splits active time into hidden
//                   and exposed accordingly.
//
// Because bytes land at submit time, tiering is structurally incapable
// of changing results — the only observable difference between tiers is
// when Wait() returns. That is the bit-exactness argument the offload
// engine builds on (DESIGN.md §13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "alloc/caching_allocator.hpp"
#include "alloc/host_memory.hpp"

namespace zero::alloc {

enum class TierKind : unsigned char {
  kDevice,  // state stays in device memory (the non-offloaded baseline)
  kHost,    // host DRAM behind a PCIe-like link (ZeRO-Offload)
  kNvme,    // simulated NVMe behind a slower link (ZeRO-Infinity)
};

[[nodiscard]] const char* TierKindName(TierKind kind);

enum class TransferDirection : unsigned char {
  kToTier,    // device -> tier (D2H)
  kToDevice,  // tier -> device (H2D)
};

struct ChannelStats {
  std::uint64_t bytes_to_tier = 0;
  std::uint64_t bytes_to_device = 0;
  std::uint64_t active_ns = 0;   // simulated time the link was busy
  std::uint64_t exposed_ns = 0;  // link time callers actually waited out
  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_to_tier + bytes_to_device;
  }
  // Fraction of link time hidden behind compute; 1.0 when idle.
  [[nodiscard]] double hidden_fraction() const {
    if (active_ns == 0) return 1.0;
    return 1.0 - static_cast<double>(exposed_ns) /
                     static_cast<double>(active_ns);
  }
};

class TransferChannel;

// Waitable handle for one link transfer. Default-constructed requests
// are already done (used by the device tier, which has no link to
// cross). Copyable: all copies share one completion state.
class TransferRequest {
 public:
  TransferRequest() = default;

  // Blocks until the simulated link has delivered the transfer; the
  // blocked-out time is charged to the channel's exposed ledger.
  void Wait();
  // Non-blocking completion probe.
  [[nodiscard]] bool Test();
  [[nodiscard]] bool done() const;

 private:
  friend class TransferChannel;
  struct Ticket {
    TransferChannel* channel = nullptr;
    std::uint64_t ready_ns = 0;  // absolute completion time on the link
    bool complete = false;
  };
  std::shared_ptr<Ticket> ticket_;
};

// A serialized device<->tier link of fixed bandwidth. Single-threaded:
// each rank owns its own channels, mirroring how each GPU owns its PCIe
// lanes. `bytes_per_second == 0` means an instant link (transfers
// complete at submit; unit tests default to this so they never sleep).
class TransferChannel {
 public:
  explicit TransferChannel(double bytes_per_second)
      : bytes_per_second_(bytes_per_second) {}
  TransferChannel(const TransferChannel&) = delete;
  TransferChannel& operator=(const TransferChannel&) = delete;

  [[nodiscard]] TransferRequest Submit(TransferDirection dir,
                                       std::size_t bytes);

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }

 private:
  friend class TransferRequest;
  void WaitUntil(std::uint64_t ready_ns);

  double bytes_per_second_;
  std::uint64_t link_free_ns_ = 0;  // when the link finishes its queue
  ChannelStats stats_;
};

// Persistent storage for optimizer-state regions in one tier.
//
// Regions are zero-initialized at creation. Host-addressable tiers
// expose their bytes via ResidentBytes (host Adam operates on them in
// place — ZeRO-Offload's compute split); tiers that are not
// byte-addressable from the CPU (NVMe) return an empty span and must be
// accessed through FetchAsync/StoreAsync staging.
//
// Fetch/Store move region bytes across the tier's link. SubmitToTier /
// SubmitToDevice account link traffic whose wire format differs from
// the stored fp32 bytes (fp16 gradients in, fp16 parameters out — the
// casts happen host-side in ZeRO-Offload), without touching a region.
class StorageTier {
 public:
  virtual ~StorageTier() = default;

  [[nodiscard]] virtual TierKind kind() const = 0;

  [[nodiscard]] virtual std::size_t CreateRegion(std::size_t bytes) = 0;
  virtual void ReleaseRegion(std::size_t region) = 0;
  [[nodiscard]] virtual std::span<std::byte> ResidentBytes(
      std::size_t region) = 0;

  [[nodiscard]] virtual TransferRequest FetchAsync(
      std::size_t region, std::size_t offset, std::span<std::byte> dst) = 0;
  [[nodiscard]] virtual TransferRequest StoreAsync(
      std::size_t region, std::size_t offset,
      std::span<const std::byte> src) = 0;

  [[nodiscard]] virtual TransferRequest SubmitToTier(std::size_t bytes) = 0;
  [[nodiscard]] virtual TransferRequest SubmitToDevice(std::size_t bytes) = 0;

  // The simulated link; null for the device tier (state never crosses
  // a link).
  [[nodiscard]] virtual TransferChannel* channel() = 0;
};

// Device tier: regions live in device memory (through `device` when
// provided, heap otherwise); every request is immediately done.
class DeviceTier final : public StorageTier {
 public:
  explicit DeviceTier(CachingAllocator* device) : device_(device) {}

  [[nodiscard]] TierKind kind() const override { return TierKind::kDevice; }
  [[nodiscard]] std::size_t CreateRegion(std::size_t bytes) override;
  void ReleaseRegion(std::size_t region) override;
  [[nodiscard]] std::span<std::byte> ResidentBytes(std::size_t region) override;
  [[nodiscard]] TransferRequest FetchAsync(std::size_t region,
                                           std::size_t offset,
                                           std::span<std::byte> dst) override;
  [[nodiscard]] TransferRequest StoreAsync(
      std::size_t region, std::size_t offset,
      std::span<const std::byte> src) override;
  [[nodiscard]] TransferRequest SubmitToTier(std::size_t bytes) override;
  [[nodiscard]] TransferRequest SubmitToDevice(std::size_t bytes) override;
  [[nodiscard]] TransferChannel* channel() override { return nullptr; }

 private:
  struct Region {
    CachedBlock block;               // when device-backed
    std::vector<std::byte> heap;     // when heap-backed
    std::span<std::byte> bytes;
  };
  CachingAllocator* device_;
  std::map<std::size_t, Region> regions_;
  std::size_t next_region_ = 1;
};

// Host tier: regions live in a HostMemory pool (so alloc.host.* metrics
// see the K bytes/param and the streaming traffic) behind a PCIe-speed
// link.
class HostTier final : public StorageTier {
 public:
  HostTier(HostMemory* pool, double bytes_per_second)
      : pool_(pool), channel_(bytes_per_second) {}
  ~HostTier() override;

  [[nodiscard]] TierKind kind() const override { return TierKind::kHost; }
  [[nodiscard]] std::size_t CreateRegion(std::size_t bytes) override;
  void ReleaseRegion(std::size_t region) override;
  [[nodiscard]] std::span<std::byte> ResidentBytes(std::size_t region) override;
  [[nodiscard]] TransferRequest FetchAsync(std::size_t region,
                                           std::size_t offset,
                                           std::span<std::byte> dst) override;
  [[nodiscard]] TransferRequest StoreAsync(
      std::size_t region, std::size_t offset,
      std::span<const std::byte> src) override;
  [[nodiscard]] TransferRequest SubmitToTier(std::size_t bytes) override;
  [[nodiscard]] TransferRequest SubmitToDevice(std::size_t bytes) override;
  [[nodiscard]] TransferChannel* channel() override { return &channel_; }

 private:
  HostMemory* pool_;
  TransferChannel channel_;
  std::vector<std::size_t> regions_;  // outstanding pool handles
};

// Simulated NVMe tier: regions live in tier-private storage that is not
// CPU-addressable (ResidentBytes is empty by contract) behind a slower
// link; all access goes through Fetch/Store staging. Occupancy and
// traffic are reported under `alloc.nvme.*`.
class NvmeTier final : public StorageTier {
 public:
  explicit NvmeTier(double bytes_per_second);
  ~NvmeTier() override;

  [[nodiscard]] TierKind kind() const override { return TierKind::kNvme; }
  [[nodiscard]] std::size_t CreateRegion(std::size_t bytes) override;
  void ReleaseRegion(std::size_t region) override;
  [[nodiscard]] std::span<std::byte> ResidentBytes(std::size_t region) override;
  [[nodiscard]] TransferRequest FetchAsync(std::size_t region,
                                           std::size_t offset,
                                           std::span<std::byte> dst) override;
  [[nodiscard]] TransferRequest StoreAsync(
      std::size_t region, std::size_t offset,
      std::span<const std::byte> src) override;
  [[nodiscard]] TransferRequest SubmitToTier(std::size_t bytes) override;
  [[nodiscard]] TransferRequest SubmitToDevice(std::size_t bytes) override;
  [[nodiscard]] TransferChannel* channel() override { return &channel_; }

 private:
  struct Region {
    std::vector<std::byte> bytes;
  };
  TransferChannel channel_;
  std::map<std::size_t, Region> regions_;
  std::size_t next_region_ = 1;
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
  void PublishGauges() const;
};

// Builds the tier for `kind`. `host` backs the host tier (required for
// kHost); `device` backs device-tier regions (may be null). `bandwidth`
// is the link speed in bytes/second (0 = instant).
[[nodiscard]] std::unique_ptr<StorageTier> MakeStorageTier(
    TierKind kind, HostMemory* host, CachingAllocator* device,
    double bandwidth);

}  // namespace zero::alloc
