#include "alloc/device_memory.hpp"

#include "obs/metrics.hpp"

#include <utility>

namespace zero::alloc {

Allocation::Allocation(DeviceMemory* owner, std::size_t offset,
                       std::size_t size)
    : owner_(owner), offset_(offset), size_(size) {}

Allocation::~Allocation() { Release(); }

Allocation::Allocation(Allocation&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      offset_(other.offset_),
      size_(other.size_) {}

Allocation& Allocation::operator=(Allocation&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = std::exchange(other.owner_, nullptr);
    offset_ = other.offset_;
    size_ = other.size_;
  }
  return *this;
}

std::byte* Allocation::data() {
  ZERO_CHECK(owner_ != nullptr, "dereferencing a released Allocation");
  return owner_->storage_.data() + offset_;
}

const std::byte* Allocation::data() const {
  ZERO_CHECK(owner_ != nullptr, "dereferencing a released Allocation");
  return owner_->storage_.data() + offset_;
}

void Allocation::Release() {
  if (owner_ != nullptr) {
    owner_->Free(offset_, size_);
    owner_ = nullptr;
  }
}

DeviceMemory::DeviceMemory(std::size_t capacity, std::string name,
                           FitPolicy policy)
    : capacity_(AlignUp(capacity)),
      name_(std::move(name)),
      policy_(policy),
      storage_(capacity_) {
  free_blocks_[0] = capacity_;
}

std::map<std::size_t, std::size_t>::const_iterator DeviceMemory::FindBlock(
    std::size_t need) const {
  if (policy_ == FitPolicy::kFirstFit) {
    for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
      if (it->second >= need) return it;
    }
    return free_blocks_.end();
  }
  // Best fit: smallest block that satisfies the request.
  auto best = free_blocks_.end();
  std::size_t best_size = 0;
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second >= need &&
        (best == free_blocks_.end() || it->second < best_size)) {
      best = it;
      best_size = it->second;
    }
  }
  return best;
}

Allocation DeviceMemory::Allocate(std::size_t bytes) {
  const std::size_t need = AlignUp(bytes);
  auto it = FindBlock(need);
  if (it == free_blocks_.end()) {
    ++failed_allocs_;
    const DeviceStats s = Stats();
    static obs::Counter& failed = obs::Metrics().counter("alloc.device.oom");
    failed.Add();
    // Fragmentation at the moment of failure is the interesting sample:
    // it distinguishes "genuinely out of memory" from "memory is there
    // but shredded" (the ZeRO-R MD motivation).
    static obs::Histogram& frag =
        obs::Metrics().histogram("alloc.fragmentation_pct");
    frag.Observe(s.ExternalFragmentation() * 100.0);
    throw DeviceOomError(need, s.free_total, s.largest_free_block, name_);
  }
  const std::size_t offset = it->first;
  const std::size_t block_size = it->second;
  free_blocks_.erase(offset);
  if (block_size > need) {
    free_blocks_[offset + need] = block_size - need;
  }
  live_blocks_[offset] = need;
  in_use_ += need;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  ++total_allocs_;
  return Allocation(this, offset, need);
}

bool DeviceMemory::CanAllocate(std::size_t bytes) const {
  return FindBlock(AlignUp(bytes)) != free_blocks_.end();
}

void DeviceMemory::Free(std::size_t offset, std::size_t size) {
  auto live = live_blocks_.find(offset);
  ZERO_CHECK(live != live_blocks_.end() && live->second == size,
             "double free or corrupted allocation in " + name_);
  live_blocks_.erase(live);
  in_use_ -= size;
  ++total_frees_;

  // Insert and coalesce with neighbors.
  auto [it, inserted] = free_blocks_.emplace(offset, size);
  ZERO_CHECK(inserted, "free block overlaps existing free block");
  // Merge with successor.
  auto next = std::next(it);
  if (next != free_blocks_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_blocks_.erase(next);
  }
  // Merge with predecessor.
  if (it != free_blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_blocks_.erase(it);
    }
  }
}

DeviceStats DeviceMemory::Stats() const {
  DeviceStats s;
  s.capacity = capacity_;
  s.in_use = in_use_;
  s.peak_in_use = peak_in_use_;
  s.free_total = capacity_ - in_use_;
  for (const auto& [offset, size] : free_blocks_) {
    s.largest_free_block = std::max(s.largest_free_block, size);
  }
  s.num_allocations = live_blocks_.size();
  s.total_allocs = total_allocs_;
  s.total_frees = total_frees_;
  s.failed_allocs = failed_allocs_;
  return s;
}

void DeviceMemory::ResetPeak() { peak_in_use_ = in_use_; }

}  // namespace zero::alloc
