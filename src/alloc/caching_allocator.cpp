#include "alloc/caching_allocator.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

namespace zero::alloc {

CachedBlock::CachedBlock(CachingAllocator* owner, std::size_t id,
                         std::byte* data, std::size_t size)
    : owner_(owner), id_(id), data_(data), size_(size) {}

CachedBlock::~CachedBlock() { Release(); }

CachedBlock::CachedBlock(CachedBlock&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      id_(other.id_),
      data_(other.data_),
      size_(other.size_) {}

CachedBlock& CachedBlock::operator=(CachedBlock&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = std::exchange(other.owner_, nullptr);
    id_ = other.id_;
    data_ = other.data_;
    size_ = other.size_;
  }
  return *this;
}

void CachedBlock::Release() {
  if (owner_ != nullptr) {
    owner_->Free(id_);
    owner_ = nullptr;
  }
}

CachingAllocator::CachingAllocator(DeviceMemory& device) : device_(device) {}

CachedBlock CachingAllocator::Malloc(std::size_t bytes) {
  const std::size_t need = DeviceMemory::AlignUp(bytes);

  // 1. Exact-or-larger parked block. PyTorch splits blocks when the
  //    remainder is large; we reuse whole blocks when the waste is small
  //    (<= 25%) to keep behaviour simple and deterministic.
  auto it = bins_.lower_bound(need);
  if (it != bins_.end() && it->first <= need + need / 4) {
    const std::size_t id = it->second;
    bins_.erase(it);
    Segment& seg = segments_.at(id);
    seg.parked = false;
    stats_.live_bytes += seg.size;
    stats_.peak_live = std::max(stats_.peak_live, stats_.live_bytes);
    ++stats_.cache_hits;
    static obs::Counter& hits = obs::Metrics().counter("alloc.cache.hits");
    hits.Add();
    return CachedBlock(this, id, seg.allocation.data(), seg.size);
  }

  // 2. Fresh device allocation; on OOM, flush the cache and retry once
  //    (the empty_cache fallback PyTorch performs before surfacing OOM).
  ++stats_.cache_misses;
  static obs::Counter& misses = obs::Metrics().counter("alloc.cache.misses");
  misses.Add();
  Allocation alloc;
  try {
    alloc = device_.Allocate(need);
  } catch (const DeviceOomError&) {
    EmptyCache();
    alloc = device_.Allocate(need);  // may rethrow — genuine OOM
  }

  const std::size_t id = next_id_++;
  Segment seg;
  seg.size = alloc.size();
  seg.allocation = std::move(alloc);
  seg.parked = false;
  auto [pos, inserted] = segments_.emplace(id, std::move(seg));
  ZERO_CHECK(inserted, "segment id collision");

  stats_.cached_bytes += pos->second.size;
  stats_.peak_cached = std::max(stats_.peak_cached, stats_.cached_bytes);
  stats_.live_bytes += pos->second.size;
  stats_.peak_live = std::max(stats_.peak_live, stats_.live_bytes);
  return CachedBlock(this, id, pos->second.allocation.data(),
                     pos->second.size);
}

void CachingAllocator::Free(std::size_t id) {
  auto it = segments_.find(id);
  ZERO_CHECK(it != segments_.end(), "freeing unknown cached block");
  Segment& seg = it->second;
  ZERO_CHECK(!seg.parked, "double free of cached block");
  seg.parked = true;
  stats_.live_bytes -= seg.size;
  bins_.emplace(seg.size, id);
}

void CachingAllocator::EmptyCache() {
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second.parked) {
      stats_.cached_bytes -= it->second.size;
      it = segments_.erase(it);  // Allocation dtor frees device bytes
    } else {
      ++it;
    }
  }
  bins_.clear();
}

void CachingAllocator::ResetPeak() {
  stats_.peak_cached = stats_.cached_bytes;
  stats_.peak_live = stats_.live_bytes;
}

}  // namespace zero::alloc
