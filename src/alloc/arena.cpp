#include "alloc/arena.hpp"

#include <algorithm>

namespace zero::alloc {

Arena::Arena(DeviceMemory& device, std::size_t capacity, std::string name)
    : block_(device.Allocate(capacity)), name_(std::move(name)) {}

std::byte* Arena::Allocate(std::size_t bytes) {
  const std::size_t need = DeviceMemory::AlignUp(bytes);
  if (used_ + need > block_.size()) {
    throw DeviceOomError(need, block_.size() - used_, block_.size() - used_,
                         "arena " + name_);
  }
  std::byte* p = block_.data() + used_;
  used_ += need;
  peak_used_ = std::max(peak_used_, used_);
  return p;
}

}  // namespace zero::alloc
