// A PyTorch-style caching allocator layered over DeviceMemory.
//
// Figure 7 of the paper reports the "maximum memory cached by PyTorch"
// per iteration: the CUDA caching allocator never returns freed blocks to
// the driver, it keeps them binned for reuse, so the cached high-water is
// the true footprint a training config needs. This class reproduces that
// behaviour: Free() parks the block in a size-binned cache; Malloc()
// first tries an exact-bin reuse, then a larger cached block (split), and
// only then the underlying DeviceMemory. `peak_cached()` is the Figure 7
// metric; `EmptyCache()` models torch.cuda.empty_cache().
//
// The interleaving of short- and long-lived tensors through this cache is
// also what produces the Sec 3.2 fragmentation pathology that ZeRO-R's MD
// (contiguous arenas, arena.hpp) exists to fix.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "alloc/device_memory.hpp"

namespace zero::alloc {

struct CacheStats {
  std::size_t cached_bytes = 0;    // bytes held from the device, live + parked
  std::size_t peak_cached = 0;     // Fig 7's "max cache allocated"
  std::size_t live_bytes = 0;      // bytes handed out to tensors
  std::size_t peak_live = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t splits = 0;
};

class CachingAllocator;

// Move-only handle analogous to Allocation but owned by the cache.
class CachedBlock {
 public:
  CachedBlock() = default;
  CachedBlock(CachingAllocator* owner, std::size_t id, std::byte* data,
              std::size_t size);
  ~CachedBlock();

  CachedBlock(CachedBlock&& other) noexcept;
  CachedBlock& operator=(CachedBlock&& other) noexcept;
  CachedBlock(const CachedBlock&) = delete;
  CachedBlock& operator=(const CachedBlock&) = delete;

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool valid() const { return owner_ != nullptr; }

  void Release();

 private:
  CachingAllocator* owner_ = nullptr;
  std::size_t id_ = 0;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class CachingAllocator {
 public:
  explicit CachingAllocator(DeviceMemory& device);

  // Throws DeviceOomError if neither the cache nor the device can satisfy
  // the request (after an implicit EmptyCache retry, as PyTorch does).
  [[nodiscard]] CachedBlock Malloc(std::size_t bytes);

  // Return all parked blocks to the device.
  void EmptyCache();

  [[nodiscard]] CacheStats Stats() const { return stats_; }
  [[nodiscard]] DeviceMemory& device() { return device_; }

  void ResetPeak();

 private:
  friend class CachedBlock;
  void Free(std::size_t id);

  struct Segment {
    Allocation allocation;
    std::size_t size = 0;
    bool parked = false;  // in the free bins, not handed out
  };

  DeviceMemory& device_;
  std::map<std::size_t, Segment> segments_;        // id -> segment
  std::multimap<std::size_t, std::size_t> bins_;   // size -> id (parked only)
  std::size_t next_id_ = 1;
  CacheStats stats_;
};

}  // namespace zero::alloc
