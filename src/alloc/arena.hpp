// Contiguous pre-allocated arenas — the mechanism behind ZeRO-R's MD
// (memory defragmentation, Sec 6.3).
//
// The paper's insight: fragmentation comes from interleaving short-lived
// tensors (recomputed activations, activation gradients) with long-lived
// ones (activation checkpoints, parameter gradients). MD pre-allocates
// one contiguous chunk per long-lived class and copies tensors into it as
// they are produced, so the general allocator only ever sees short-lived
// traffic and stays unfragmented.
//
// An Arena grabs a single contiguous block from DeviceMemory up front and
// bump-allocates within it; Reset() recycles it each iteration.
#pragma once

#include <cstddef>
#include <string>

#include "alloc/device_memory.hpp"

namespace zero::alloc {

class Arena {
 public:
  Arena(DeviceMemory& device, std::size_t capacity, std::string name);

  // Bump allocation; throws DeviceOomError (with the arena's name as
  // context) when the arena is exhausted. Pointers remain valid until
  // Reset().
  [[nodiscard]] std::byte* Allocate(std::size_t bytes);

  [[nodiscard]] bool CanAllocate(std::size_t bytes) const {
    return used_ + DeviceMemory::AlignUp(bytes) <= block_.size();
  }

  // Invalidates all pointers handed out so far.
  void Reset() { used_ = 0; }

  [[nodiscard]] std::size_t capacity() const { return block_.size(); }
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t peak_used() const { return peak_used_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Allocation block_;
  std::string name_;
  std::size_t used_ = 0;
  std::size_t peak_used_ = 0;
};

}  // namespace zero::alloc
