// Thread-local kernel scratch — heap-side sibling of alloc::Arena.
//
// The tensor kernels need short-lived temporaries on the hot path: GEMM
// pack panels, cross-entropy probability rows, partial buffers for
// deterministic chunked reductions. Allocating them per call (the seed's
// std::vector-per-CrossEntropyLoss pattern) costs a malloc/free pair per
// kernel invocation at vocab size, rows x per step. ScratchArena applies
// the same bump-allocation discipline Arena uses for ZeRO-R's MD chunks,
// but heap-backed and thread-local, so every rank thread and every
// intra-op worker owns one and kernels never contend or allocate.
//
// Unlike Arena, growth never invalidates live pointers: capacity is a
// chain of blocks and a new block is appended when the current one is
// exhausted. ScratchGuard saves/restores the bump cursor RAII-style so
// nested kernels compose (a GEMM inside a model step inside a test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace zero::alloc {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  // 64-byte aligned bump allocation; pointers stay valid until the
  // enclosing mark is restored (or forever, if no guard is active).
  [[nodiscard]] std::byte* Allocate(std::size_t bytes);

  template <typename T>
  [[nodiscard]] T* AllocateT(std::size_t count) {
    return reinterpret_cast<T*>(Allocate(count * sizeof(T)));
  }

  [[nodiscard]] Mark Save() const { return {block_, used_}; }
  void Restore(Mark m) {
    block_ = m.block;
    used_ = m.used;
  }

  [[nodiscard]] std::size_t capacity() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  std::vector<Block> blocks_;
  std::size_t block_ = 0;  // index of the block the cursor is in
  std::size_t used_ = 0;   // bytes consumed in blocks_[block_]
};

class ScratchGuard {
 public:
  explicit ScratchGuard(ScratchArena& arena)
      : arena_(arena), mark_(arena.Save()) {}
  ~ScratchGuard() { arena_.Restore(mark_); }
  ScratchGuard(const ScratchGuard&) = delete;
  ScratchGuard& operator=(const ScratchGuard&) = delete;

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

// The calling thread's scratch arena (lazily constructed).
[[nodiscard]] ScratchArena& ThreadScratch();

}  // namespace zero::alloc
