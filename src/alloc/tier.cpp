#include "alloc/tier.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zero::alloc {

const char* TierKindName(TierKind kind) {
  switch (kind) {
    case TierKind::kDevice:
      return "device";
    case TierKind::kHost:
      return "host";
    case TierKind::kNvme:
      return "nvme";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TransferRequest / TransferChannel

void TransferRequest::Wait() {
  if (ticket_ == nullptr || ticket_->complete) return;
  ticket_->channel->WaitUntil(ticket_->ready_ns);
  ticket_->complete = true;
}

bool TransferRequest::Test() {
  if (ticket_ == nullptr || ticket_->complete) return true;
  if (obs::TraceNowNs() >= ticket_->ready_ns) {
    ticket_->complete = true;
    return true;
  }
  return false;
}

bool TransferRequest::done() const {
  return ticket_ == nullptr || ticket_->complete;
}

TransferRequest TransferChannel::Submit(TransferDirection dir,
                                        std::size_t bytes) {
  if (dir == TransferDirection::kToTier) {
    stats_.bytes_to_tier += bytes;
  } else {
    stats_.bytes_to_device += bytes;
  }
  TransferRequest req;
  if (bytes_per_second_ <= 0.0) return req;  // instant link: already done

  const std::uint64_t now = obs::TraceNowNs();
  const auto duration_ns = static_cast<std::uint64_t>(
      static_cast<double>(bytes) / bytes_per_second_ * 1e9);
  const std::uint64_t start = std::max(now, link_free_ns_);
  link_free_ns_ = start + duration_ns;
  stats_.active_ns += duration_ns;

  req.ticket_ = std::make_shared<TransferRequest::Ticket>();
  req.ticket_->channel = this;
  req.ticket_->ready_ns = link_free_ns_;
  return req;
}

void TransferChannel::WaitUntil(std::uint64_t ready_ns) {
  const std::uint64_t now = obs::TraceNowNs();
  if (now >= ready_ns) return;
  const std::uint64_t remaining = ready_ns - now;
  stats_.exposed_ns += remaining;
  std::this_thread::sleep_for(std::chrono::nanoseconds(remaining));
}

// ---------------------------------------------------------------------------
// DeviceTier

std::size_t DeviceTier::CreateRegion(std::size_t bytes) {
  Region r;
  if (device_ != nullptr) {
    r.block = device_->Malloc(bytes);
    std::memset(r.block.data(), 0, bytes);
    r.bytes = {r.block.data(), bytes};
  } else {
    r.heap.resize(bytes);
    r.bytes = {r.heap.data(), bytes};
  }
  const std::size_t id = next_region_++;
  regions_.emplace(id, std::move(r));
  return id;
}

void DeviceTier::ReleaseRegion(std::size_t region) {
  auto it = regions_.find(region);
  ZERO_CHECK(it != regions_.end(), "releasing unknown device-tier region");
  regions_.erase(it);
}

std::span<std::byte> DeviceTier::ResidentBytes(std::size_t region) {
  auto it = regions_.find(region);
  ZERO_CHECK(it != regions_.end(), "addressing unknown device-tier region");
  return it->second.bytes;
}

TransferRequest DeviceTier::FetchAsync(std::size_t region, std::size_t offset,
                                       std::span<std::byte> dst) {
  const std::span<std::byte> src = ResidentBytes(region);
  ZERO_CHECK(offset + dst.size() <= src.size(), "device-tier fetch overflow");
  std::memcpy(dst.data(), src.data() + offset, dst.size());
  return {};
}

TransferRequest DeviceTier::StoreAsync(std::size_t region, std::size_t offset,
                                       std::span<const std::byte> src) {
  const std::span<std::byte> dst = ResidentBytes(region);
  ZERO_CHECK(offset + src.size() <= dst.size(), "device-tier store overflow");
  std::memcpy(dst.data() + offset, src.data(), src.size());
  return {};
}

TransferRequest DeviceTier::SubmitToTier(std::size_t) { return {}; }
TransferRequest DeviceTier::SubmitToDevice(std::size_t) { return {}; }

// ---------------------------------------------------------------------------
// HostTier

HostTier::~HostTier() {
  for (const std::size_t handle : regions_) pool_->ReleaseRegion(handle);
}

std::size_t HostTier::CreateRegion(std::size_t bytes) {
  const std::size_t handle = pool_->CreateRegion(bytes);
  regions_.push_back(handle);
  return handle;
}

void HostTier::ReleaseRegion(std::size_t region) {
  auto it = std::find(regions_.begin(), regions_.end(), region);
  ZERO_CHECK(it != regions_.end(), "releasing unknown host-tier region");
  regions_.erase(it);
  pool_->ReleaseRegion(region);
}

std::span<std::byte> HostTier::ResidentBytes(std::size_t region) {
  return pool_->RegionBytes(region);
}

TransferRequest HostTier::FetchAsync(std::size_t region, std::size_t offset,
                                     std::span<std::byte> dst) {
  const std::span<std::byte> src = pool_->RegionBytes(region);
  ZERO_CHECK(offset + dst.size() <= src.size(), "host-tier fetch overflow");
  std::memcpy(dst.data(), src.data() + offset, dst.size());
  pool_->NoteFromHost(dst.size());
  return channel_.Submit(TransferDirection::kToDevice, dst.size());
}

TransferRequest HostTier::StoreAsync(std::size_t region, std::size_t offset,
                                     std::span<const std::byte> src) {
  const std::span<std::byte> dst = pool_->RegionBytes(region);
  ZERO_CHECK(offset + src.size() <= dst.size(), "host-tier store overflow");
  std::memcpy(dst.data() + offset, src.data(), src.size());
  pool_->NoteToHost(src.size());
  return channel_.Submit(TransferDirection::kToTier, src.size());
}

TransferRequest HostTier::SubmitToTier(std::size_t bytes) {
  pool_->NoteToHost(bytes);
  return channel_.Submit(TransferDirection::kToTier, bytes);
}

TransferRequest HostTier::SubmitToDevice(std::size_t bytes) {
  pool_->NoteFromHost(bytes);
  return channel_.Submit(TransferDirection::kToDevice, bytes);
}

// ---------------------------------------------------------------------------
// NvmeTier

NvmeTier::NvmeTier(double bytes_per_second) : channel_(bytes_per_second) {}

NvmeTier::~NvmeTier() {
  in_use_ = 0;
  regions_.clear();
  PublishGauges();
}

void NvmeTier::PublishGauges() const {
  obs::Metrics().gauge("alloc.nvme.in_use").Set(static_cast<double>(in_use_));
  obs::Metrics().gauge("alloc.nvme.peak").Set(
      static_cast<double>(peak_in_use_));
}

std::size_t NvmeTier::CreateRegion(std::size_t bytes) {
  const std::size_t id = next_region_++;
  regions_.emplace(id, Region{std::vector<std::byte>(bytes)});
  in_use_ += bytes;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  PublishGauges();
  return id;
}

void NvmeTier::ReleaseRegion(std::size_t region) {
  auto it = regions_.find(region);
  ZERO_CHECK(it != regions_.end(), "releasing unknown nvme region");
  in_use_ -= it->second.bytes.size();
  regions_.erase(it);
  PublishGauges();
}

std::span<std::byte> NvmeTier::ResidentBytes(std::size_t) {
  // NVMe is not CPU-addressable: callers must stage through Fetch/Store.
  return {};
}

TransferRequest NvmeTier::FetchAsync(std::size_t region, std::size_t offset,
                                     std::span<std::byte> dst) {
  auto it = regions_.find(region);
  ZERO_CHECK(it != regions_.end(), "fetching unknown nvme region");
  ZERO_CHECK(offset + dst.size() <= it->second.bytes.size(),
             "nvme fetch overflow");
  std::memcpy(dst.data(), it->second.bytes.data() + offset, dst.size());
  return channel_.Submit(TransferDirection::kToDevice, dst.size());
}

TransferRequest NvmeTier::StoreAsync(std::size_t region, std::size_t offset,
                                     std::span<const std::byte> src) {
  auto it = regions_.find(region);
  ZERO_CHECK(it != regions_.end(), "storing to unknown nvme region");
  ZERO_CHECK(offset + src.size() <= it->second.bytes.size(),
             "nvme store overflow");
  std::memcpy(it->second.bytes.data() + offset, src.data(), src.size());
  return channel_.Submit(TransferDirection::kToTier, src.size());
}

TransferRequest NvmeTier::SubmitToTier(std::size_t bytes) {
  return channel_.Submit(TransferDirection::kToTier, bytes);
}

TransferRequest NvmeTier::SubmitToDevice(std::size_t bytes) {
  return channel_.Submit(TransferDirection::kToDevice, bytes);
}

// ---------------------------------------------------------------------------

std::unique_ptr<StorageTier> MakeStorageTier(TierKind kind, HostMemory* host,
                                             CachingAllocator* device,
                                             double bandwidth) {
  switch (kind) {
    case TierKind::kDevice:
      return std::make_unique<DeviceTier>(device);
    case TierKind::kHost:
      ZERO_CHECK(host != nullptr, "host tier requires a HostMemory pool");
      return std::make_unique<HostTier>(host, bandwidth);
    case TierKind::kNvme:
      return std::make_unique<NvmeTier>(bandwidth);
  }
  ZERO_CHECK(false, "unknown storage tier");
  return nullptr;
}

}  // namespace zero::alloc
