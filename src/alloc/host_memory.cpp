#include "alloc/host_memory.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace zero::alloc {

HostMemory::HostMemory(std::string metric_prefix)
    : metric_prefix_(std::move(metric_prefix)) {}

void HostMemory::AddInUse(std::size_t bytes) {
  stats_.in_use += bytes;
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  PublishGauges();
}

void HostMemory::SubInUse(std::size_t bytes) {
  stats_.in_use -= bytes;
  PublishGauges();
}

void HostMemory::PublishGauges() {
  obs::Metrics()
      .gauge(metric_prefix_ + ".in_use")
      .Set(static_cast<double>(stats_.in_use));
  obs::Metrics()
      .gauge(metric_prefix_ + ".peak")
      .Set(static_cast<double>(stats_.peak_in_use));
}

void HostMemory::NoteToHost(std::size_t bytes) {
  stats_.bytes_to_host += bytes;
  obs::Metrics()
      .counter(metric_prefix_ + ".bytes_to_host")
      .Add(static_cast<std::uint64_t>(bytes));
}

void HostMemory::NoteFromHost(std::size_t bytes) {
  stats_.bytes_from_host += bytes;
  obs::Metrics()
      .counter(metric_prefix_ + ".bytes_from_host")
      .Add(static_cast<std::uint64_t>(bytes));
}

std::size_t HostMemory::Offload(const std::byte* src, std::size_t bytes) {
  std::vector<std::byte> buf(bytes);
  std::memcpy(buf.data(), src, bytes);
  const std::size_t handle = next_handle_++;
  buffers_.emplace(handle, std::move(buf));
  AddInUse(bytes);
  NoteToHost(bytes);
  return handle;
}

void HostMemory::Restore(std::size_t handle, std::byte* dst) {
  auto it = buffers_.find(handle);
  ZERO_CHECK(it != buffers_.end(), "restoring unknown host buffer");
  std::memcpy(dst, it->second.data(), it->second.size());
  SubInUse(it->second.size());
  NoteFromHost(it->second.size());
  buffers_.erase(it);
}

std::size_t HostMemory::SizeOfHandle(std::size_t handle) const {
  auto it = buffers_.find(handle);
  ZERO_CHECK(it != buffers_.end(), "querying unknown host buffer");
  return it->second.size();
}

std::size_t HostMemory::CreateRegion(std::size_t bytes) {
  const std::size_t handle = next_handle_++;
  regions_.emplace(handle, std::vector<std::byte>(bytes));
  AddInUse(bytes);
  return handle;
}

void HostMemory::ReleaseRegion(std::size_t handle) {
  auto it = regions_.find(handle);
  ZERO_CHECK(it != regions_.end(), "releasing unknown host region");
  SubInUse(it->second.size());
  regions_.erase(it);
}

std::span<std::byte> HostMemory::RegionBytes(std::size_t handle) {
  auto it = regions_.find(handle);
  ZERO_CHECK(it != regions_.end(), "addressing unknown host region");
  return {it->second.data(), it->second.size()};
}

}  // namespace zero::alloc
