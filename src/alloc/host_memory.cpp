#include "alloc/host_memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace zero::alloc {

std::size_t HostMemory::Offload(const std::byte* src, std::size_t bytes) {
  std::vector<std::byte> buf(bytes);
  std::memcpy(buf.data(), src, bytes);
  const std::size_t handle = next_handle_++;
  buffers_.emplace(handle, std::move(buf));
  stats_.in_use += bytes;
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  stats_.bytes_to_host += bytes;
  return handle;
}

void HostMemory::Restore(std::size_t handle, std::byte* dst) {
  auto it = buffers_.find(handle);
  ZERO_CHECK(it != buffers_.end(), "restoring unknown host buffer");
  std::memcpy(dst, it->second.data(), it->second.size());
  stats_.in_use -= it->second.size();
  stats_.bytes_from_host += it->second.size();
  buffers_.erase(it);
}

std::size_t HostMemory::SizeOfHandle(std::size_t handle) const {
  auto it = buffers_.find(handle);
  ZERO_CHECK(it != buffers_.end(), "querying unknown host buffer");
  return it->second.size();
}

}  // namespace zero::alloc
