#include "alloc/scratch.hpp"

#include <algorithm>

namespace zero::alloc {

namespace {
constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinBlock = 1u << 16;  // 64 KiB

std::size_t AlignUp(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

std::byte* ScratchArena::Allocate(std::size_t bytes) {
  bytes = AlignUp(std::max<std::size_t>(bytes, 1));
  // Advance to the first block (current or later) with room; append a
  // fresh block when none fits. Earlier blocks keep their contents —
  // growth never moves memory.
  while (block_ < blocks_.size() &&
         used_ + bytes > blocks_[block_].size) {
    ++block_;
    used_ = 0;
  }
  if (block_ == blocks_.size()) {
    std::size_t grow = blocks_.empty() ? kMinBlock : capacity();
    grow = std::max(AlignUp(bytes), grow);
    Block b;
    // operator new guarantees alignment only to max_align_t; over-allocate
    // and align the cursor start instead of the pointer for simplicity.
    b.data = std::make_unique<std::byte[]>(grow + kAlign);
    b.size = grow;
    blocks_.push_back(std::move(b));
    used_ = 0;
  }
  Block& blk = blocks_[block_];
  const auto base = reinterpret_cast<std::uintptr_t>(blk.data.get());
  const std::uintptr_t aligned_base = (base + kAlign - 1) & ~(kAlign - 1);
  std::byte* out = reinterpret_cast<std::byte*>(aligned_base) + used_;
  used_ += bytes;
  return out;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

ScratchArena& ThreadScratch() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace zero::alloc
