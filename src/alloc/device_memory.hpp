// Simulated device (GPU) memory.
//
// The paper's headline experiments are memory experiments: max model size
// (Table 2, Fig 6), max cached memory (Fig 7), fragmentation-induced OOM
// with >30% free (Sec 3.2), and defragmentation via contiguous
// pre-allocation (Sec 6.3). To make those *measurable* rather than
// asserted, every "device" tensor in this runtime is carved out of a
// DeviceMemory: a fixed-capacity region managed by a real free-list
// allocator. Allocation failure, fragmentation and high-water marks are
// produced mechanistically, just at MiB scale instead of 32 GiB.
//
// The region is backed by actual host bytes so tensors can read/write
// through their allocation — the simulation is about *capacity*, not
// about faking data.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace zero::alloc {

enum class FitPolicy : unsigned char {
  kFirstFit,  // fastest, fragments more — models a naive allocator
  kBestFit,   // what most caching allocators approximate
};

struct DeviceStats {
  std::size_t capacity = 0;
  std::size_t in_use = 0;            // bytes currently allocated
  std::size_t peak_in_use = 0;       // high-water of in_use
  std::size_t free_total = 0;        // capacity - in_use (incl. padding)
  std::size_t largest_free_block = 0;
  std::size_t num_allocations = 0;   // live blocks
  std::uint64_t total_allocs = 0;    // lifetime counters
  std::uint64_t total_frees = 0;
  std::uint64_t failed_allocs = 0;
  // Fraction of free memory unusable for a request of largest_free_block+1.
  [[nodiscard]] double ExternalFragmentation() const {
    if (free_total == 0) return 0.0;
    return 1.0 - static_cast<double>(largest_free_block) /
                     static_cast<double>(free_total);
  }
};

class DeviceMemory;

// RAII handle to a device allocation. Move-only; frees on destruction.
class Allocation {
 public:
  Allocation() = default;
  Allocation(DeviceMemory* owner, std::size_t offset, std::size_t size);
  ~Allocation();

  Allocation(Allocation&& other) noexcept;
  Allocation& operator=(Allocation&& other) noexcept;
  Allocation(const Allocation&) = delete;
  Allocation& operator=(const Allocation&) = delete;

  [[nodiscard]] std::byte* data();
  [[nodiscard]] const std::byte* data() const;
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] bool valid() const { return owner_ != nullptr; }

  void Release();  // explicit early free

 private:
  DeviceMemory* owner_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

class DeviceMemory {
 public:
  // `name` appears in OOM messages ("rank 3 device").
  DeviceMemory(std::size_t capacity, std::string name,
               FitPolicy policy = FitPolicy::kBestFit);

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  // Throws DeviceOomError when no contiguous block fits. All sizes are
  // rounded up to kAlignment, matching CUDA's 256-byte granularity.
  [[nodiscard]] Allocation Allocate(std::size_t bytes);

  // Non-throwing probe used by max-model-size searches.
  [[nodiscard]] bool CanAllocate(std::size_t bytes) const;

  [[nodiscard]] DeviceStats Stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void ResetPeak();

  static constexpr std::size_t kAlignment = 256;
  static std::size_t AlignUp(std::size_t bytes) {
    if (bytes == 0) bytes = 1;
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

 private:
  friend class Allocation;
  void Free(std::size_t offset, std::size_t size);
  [[nodiscard]] std::map<std::size_t, std::size_t>::const_iterator FindBlock(
      std::size_t need) const;

  std::size_t capacity_;
  std::string name_;
  FitPolicy policy_;
  std::vector<std::byte> storage_;
  std::map<std::size_t, std::size_t> free_blocks_;  // offset -> size
  std::map<std::size_t, std::size_t> live_blocks_;  // offset -> size
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t total_frees_ = 0;
  std::uint64_t failed_allocs_ = 0;
};

}  // namespace zero::alloc
