// Host (CPU) memory pool used by Pa+cpu activation-checkpoint offload
// (Sec 6.1) and by the tiered optimizer-state storage (ZeRO-Offload /
// ZeRO-Infinity). Host memory is effectively unbounded relative to
// device memory in the paper's setting, so this pool only tracks usage
// and transfer volume — the quantity that matters for the Sec 8
// analysis ("2x added data movement to and from CPU memory compared to
// Pa").
//
// Two allocation idioms share the pool:
//   - Offload/Restore: one-shot round trips (activation checkpoints).
//     Restore consumes the handle.
//   - CreateRegion/ReleaseRegion: persistent zero-initialized regions
//     (offloaded fp32 optimizer shards) addressed in place via
//     RegionBytes; streaming traffic that crosses the simulated PCIe
//     link on their behalf is reported through NoteToHost/NoteFromHost.
//
// Usage and transfer volume are mirrored into the metrics registry
// (`<prefix>.in_use`, `.peak`, `.bytes_to_host`, `.bytes_from_host`)
// matching device_memory's instrumentation, so the step report can
// surface host pressure next to device pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace zero::alloc {

struct HostStats {
  std::size_t in_use = 0;
  std::size_t peak_in_use = 0;
  std::uint64_t bytes_to_host = 0;    // device -> host copies
  std::uint64_t bytes_from_host = 0;  // host -> device copies
};

class HostMemory {
 public:
  // `metric_prefix` names this pool's registry series; pools backing
  // different tiers use distinct prefixes so their traffic is not
  // conflated.
  explicit HostMemory(std::string metric_prefix = "alloc.host");
  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  // Copies `bytes` from `src` into a fresh host buffer; returns a handle.
  [[nodiscard]] std::size_t Offload(const std::byte* src, std::size_t bytes);

  // Copies the stored buffer back into `dst` (which must be >= its size)
  // and releases the host buffer.
  void Restore(std::size_t handle, std::byte* dst);

  [[nodiscard]] std::size_t SizeOfHandle(std::size_t handle) const;

  // Persistent zero-initialized region; stays alive until ReleaseRegion.
  // Creation moves no data across the link, so only occupancy changes.
  [[nodiscard]] std::size_t CreateRegion(std::size_t bytes);
  void ReleaseRegion(std::size_t handle);
  [[nodiscard]] std::span<std::byte> RegionBytes(std::size_t handle);

  // Accounting hooks for link traffic that reads/writes regions in
  // place (the streaming offload engine copies directly out of
  // RegionBytes; these keep the pool's transfer ledger honest).
  void NoteToHost(std::size_t bytes);
  void NoteFromHost(std::size_t bytes);

  [[nodiscard]] HostStats Stats() const { return stats_; }
  void ResetPeak() {
    stats_.peak_in_use = stats_.in_use;
    PublishGauges();
  }

 private:
  void AddInUse(std::size_t bytes);
  void SubInUse(std::size_t bytes);
  void PublishGauges();

  std::map<std::size_t, std::vector<std::byte>> buffers_;
  std::map<std::size_t, std::vector<std::byte>> regions_;
  std::size_t next_handle_ = 1;
  HostStats stats_;
  std::string metric_prefix_;
};

}  // namespace zero::alloc
