// Host (CPU) memory pool used by Pa+cpu activation-checkpoint offload
// (Sec 6.1). Host memory is effectively unbounded relative to device
// memory in the paper's setting, so this pool only tracks usage and
// transfer volume — the quantity that matters for the Sec 8 analysis
// ("2x added data movement to and from CPU memory compared to Pa").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace zero::alloc {

struct HostStats {
  std::size_t in_use = 0;
  std::size_t peak_in_use = 0;
  std::uint64_t bytes_to_host = 0;    // device -> host copies
  std::uint64_t bytes_from_host = 0;  // host -> device copies
};

class HostMemory {
 public:
  HostMemory() = default;
  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  // Copies `bytes` from `src` into a fresh host buffer; returns a handle.
  [[nodiscard]] std::size_t Offload(const std::byte* src, std::size_t bytes);

  // Copies the stored buffer back into `dst` (which must be >= its size)
  // and releases the host buffer.
  void Restore(std::size_t handle, std::byte* dst);

  [[nodiscard]] std::size_t SizeOfHandle(std::size_t handle) const;
  [[nodiscard]] HostStats Stats() const { return stats_; }
  void ResetPeak() { stats_.peak_in_use = stats_.in_use; }

 private:
  std::map<std::size_t, std::vector<std::byte>> buffers_;
  std::size_t next_handle_ = 1;
  HostStats stats_;
};

}  // namespace zero::alloc
