// One training-job configuration for the simulator: the model, the
// parallelism layout and the ZeRO optimizations in force. This is the
// cartesian product the paper's evaluation sweeps (Tables 5-10).
#pragma once

#include "model/transformer_spec.hpp"

namespace zero::sim {

struct JobConfig {
  model::TransformerSpec model;
  int gpus = 400;
  int mp = 1;                    // tensor model parallelism degree
  std::int64_t batch_per_gpu = 8;
  model::ZeroStage stage = model::ZeroStage::kOsG;
  bool activation_checkpointing = true;
  bool pa = false;               // partitioned activation checkpoints
  bool pa_cpu = false;           // + host offload
  bool constant_buffers = true;  // CB
  bool defrag = true;            // MD
  // Stage-3 parameter-gather look-ahead (Sec 7.2.2's pipelining). 2+
  // hides the extra 1 Psi broadcast traffic behind compute; 0 exposes
  // it. Mirrors EngineConfig::prefetch_lookahead.
  int prefetch_lookahead = 2;

  [[nodiscard]] int dp() const { return gpus / mp; }
  [[nodiscard]] std::int64_t psi() const { return model.NumParameters(); }
  // Per-device parameter count (MP splits the model vertically first).
  [[nodiscard]] double psi_local() const {
    return static_cast<double>(psi()) / mp;
  }

  // The paper's five ZeRO-R ablation configs (Table 3).
  static JobConfig WithConfigId(JobConfig base, int config_id);
};

}  // namespace zero::sim
