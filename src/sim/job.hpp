// One training-job configuration for the simulator: the model, the
// parallelism layout and the ZeRO optimizations in force. This is the
// cartesian product the paper's evaluation sweeps (Tables 5-10).
#pragma once

#include "model/transformer_spec.hpp"

namespace zero::sim {

// Where the fp32 optimizer state lives (sim-side mirror of
// alloc::TierKind; zero_sim deliberately does not link the runtime
// allocator). kHost is ZeRO-Offload's split, kNvme the ZeRO-Infinity
// direction the paper's Sec 2.2.2 contrasts with.
enum class OffloadTier : unsigned char {
  kNone,  // device-resident (the paper's default)
  kHost,  // host DRAM behind PCIe
  kNvme,  // NVMe behind a slower link; state streams through host
};

struct JobConfig {
  model::TransformerSpec model;
  int gpus = 400;
  int mp = 1;                    // tensor model parallelism degree
  std::int64_t batch_per_gpu = 8;
  model::ZeroStage stage = model::ZeroStage::kOsG;
  bool activation_checkpointing = true;
  bool pa = false;               // partitioned activation checkpoints
  bool pa_cpu = false;           // + host offload
  bool constant_buffers = true;  // CB
  bool defrag = true;            // MD
  // Stage-3 parameter-gather look-ahead (Sec 7.2.2's pipelining). 2+
  // hides the extra 1 Psi broadcast traffic behind compute; 0 exposes
  // it. Mirrors EngineConfig::prefetch_lookahead.
  int prefetch_lookahead = 2;
  // Optimizer-state storage tier. Mirrors EngineConfig::offload_tier:
  // K*Psi/Nd moves off the device in exchange for 4 B/param/step of
  // fp16 wire traffic (plus the 24 B/param fp32 state stream for NVMe).
  OffloadTier optimizer_tier = OffloadTier::kNone;
  // ZeRO++ communication compression (arXiv:2306.10209). Mirrors the
  // EngineConfig knobs of the same names; the cost model rewrites the
  // DP wire volume exactly as the runtime does. ranks_per_node must
  // divide dp() for hpz/qgz to engage (the engine's own gate).
  bool qwz = false;              // int8 parameter gathers
  bool hpz = false;              // intra-node secondary param shard (stage 3)
  bool qgz = false;              // hierarchical int8 gradient reduce
  std::int64_t quant_block = 64;
  int ranks_per_node = 1;

  [[nodiscard]] int dp() const { return gpus / mp; }
  [[nodiscard]] std::int64_t psi() const { return model.NumParameters(); }
  // Per-device parameter count (MP splits the model vertically first).
  [[nodiscard]] double psi_local() const {
    return static_cast<double>(psi()) / mp;
  }

  // The paper's five ZeRO-R ablation configs (Table 3).
  static JobConfig WithConfigId(JobConfig base, int config_id);
};

}  // namespace zero::sim
