#include "sim/netsim.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace zero::sim {

NetworkSimulator::NetworkSimulator(NetTopology topology)
    : topology_(topology) {
  ZERO_CHECK(topology_.nodes >= 1 && topology_.gpus_per_node >= 1,
             "degenerate topology");
  ZERO_CHECK(topology_.nvswitch_port_bw > 0 && topology_.node_uplink_bw > 0,
             "link bandwidths must be positive");
}

double NetworkSimulator::StepTime(
    const std::vector<Transfer>& transfers) const {
  // Link load accounting. Keys: GPU egress/ingress ports (NVSwitch), and
  // node uplink (egress) / downlink (ingress) for cross-node flows.
  std::map<std::pair<int, int>, double> gpu_out;   // (gpu, 0)
  std::map<std::pair<int, int>, double> gpu_in;    // (gpu, 1)
  std::map<int, double> node_up;
  std::map<int, double> node_down;

  for (const Transfer& t : transfers) {
    ZERO_CHECK(t.src >= 0 && t.src < topology_.total_gpus() && t.dst >= 0 &&
                   t.dst < topology_.total_gpus(),
               "transfer endpoint out of range");
    if (t.src == t.dst || t.bytes <= 0) continue;
    gpu_out[{t.src, 0}] += t.bytes;
    gpu_in[{t.dst, 1}] += t.bytes;
    const int src_node = topology_.NodeOf(t.src);
    const int dst_node = topology_.NodeOf(t.dst);
    if (src_node != dst_node) {
      node_up[src_node] += t.bytes;
      node_down[dst_node] += t.bytes;
    }
  }

  double worst = 0.0;
  // Per-flow NIC cap on cross-node transfers.
  for (const Transfer& t : transfers) {
    if (t.src == t.dst || t.bytes <= 0) continue;
    if (topology_.NodeOf(t.src) != topology_.NodeOf(t.dst)) {
      worst = std::max(worst, t.bytes / topology_.nic_bw);
    }
  }
  for (const auto& [key, bytes] : gpu_out) {
    worst = std::max(worst, bytes / topology_.nvswitch_port_bw);
  }
  for (const auto& [key, bytes] : gpu_in) {
    worst = std::max(worst, bytes / topology_.nvswitch_port_bw);
  }
  for (const auto& [node, bytes] : node_up) {
    worst = std::max(worst, bytes / topology_.node_uplink_bw);
  }
  for (const auto& [node, bytes] : node_down) {
    worst = std::max(worst, bytes / topology_.node_uplink_bw);
  }
  return worst;
}

std::vector<Transfer> NetworkSimulator::RingStep(
    const std::vector<int>& members, double chunk_bytes) const {
  std::vector<Transfer> transfers;
  transfers.reserve(members.size());
  const std::size_t p = members.size();
  for (std::size_t i = 0; i < p; ++i) {
    transfers.push_back(
        Transfer{members[i], members[(i + 1) % p], chunk_bytes});
  }
  return transfers;
}

double NetworkSimulator::RingReduceScatter(const std::vector<int>& members,
                                           double bytes) const {
  const auto p = static_cast<double>(members.size());
  if (members.size() <= 1) return 0.0;
  const double chunk = bytes / p;
  const double step = StepTime(RingStep(members, chunk));
  return (p - 1) * (step + topology_.per_step_latency);
}

double NetworkSimulator::RingAllGather(const std::vector<int>& members,
                                       double bytes) const {
  return RingReduceScatter(members, bytes);  // identical schedule shape
}

double NetworkSimulator::RingAllReduce(const std::vector<int>& members,
                                       double bytes) const {
  return RingReduceScatter(members, bytes) + RingAllGather(members, bytes);
}

double NetworkSimulator::RingBroadcast(const std::vector<int>& members,
                                       double bytes) const {
  // Pipelined in p chunks: p-1 + p-1 overlapping steps; bounded below by
  // one full message over the slowest hop. Model as p steps of one
  // chunk each plus pipeline fill.
  const auto p = static_cast<double>(members.size());
  if (members.size() <= 1) return 0.0;
  const double chunk = bytes / p;
  const double step = StepTime(RingStep(members, chunk));
  return (2 * p - 2) * (step + topology_.per_step_latency) / 2.0 + step;
}

double NetworkSimulator::ConcurrentRingAllReduce(
    const std::vector<std::vector<int>>& rings, double bytes) const {
  if (rings.empty()) return 0.0;
  const auto p = static_cast<double>(rings.front().size());
  if (rings.front().size() <= 1) return 0.0;
  const double chunk = bytes / p;
  // One synchronized step of ALL rings at once: their flows contend.
  std::vector<Transfer> transfers;
  for (const auto& ring : rings) {
    ZERO_CHECK(ring.size() == rings.front().size(),
               "concurrent rings must have equal size");
    auto step = RingStep(ring, chunk);
    transfers.insert(transfers.end(), step.begin(), step.end());
  }
  const double step = StepTime(transfers);
  return 2 * (p - 1) * (step + topology_.per_step_latency);
}

double NetworkSimulator::AllReduceBusBandwidth(
    const std::vector<int>& members, double bytes) const {
  const double t = RingAllReduce(members, bytes);
  if (t <= 0) return 0.0;
  // Conventional "bus bandwidth" normalization: 2*(p-1)/p * bytes moved
  // per rank over the measured time.
  const auto p = static_cast<double>(members.size());
  return 2.0 * (p - 1) / p * bytes / t;
}

std::vector<int> ContiguousGroup(int first_gpu, int size) {
  std::vector<int> members(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) members[static_cast<std::size_t>(i)] = first_gpu + i;
  return members;
}

std::vector<int> StridedGroup(int column, int stride, int count) {
  std::vector<int> members(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    members[static_cast<std::size_t>(i)] = column + i * stride;
  }
  return members;
}

}  // namespace zero::sim
