#include "sim/pipeline_model.hpp"

#include "common/error.hpp"

namespace zero::sim {

PipelineEstimate EstimatePipeline(const ClusterSpec& cluster,
                                  const PipelineConfig& config) {
  (void)cluster;
  ZERO_CHECK(config.stages >= 1 && config.micro_batches >= 1,
             "degenerate pipeline");
  PipelineEstimate est;
  const double psi = static_cast<double>(config.model.NumParameters());
  const double per_stage_psi = psi / config.stages;
  const auto& m = config.model;
  const double p = config.stages;
  const double mm = config.micro_batches;

  switch (config.scheme) {
    case PipelineScheme::kGpipe: {
      // Parameters partitioned across stages; mixed-precision states
      // (16 bytes/param) per stage.
      est.param_state_bytes = 16.0 * per_stage_psi;
      // All micro-batches' activation checkpoints for this stage's
      // layers are live until the backward flush: one [b, s, h]
      // checkpoint per layer per micro-batch.
      const double layers_per_stage =
          static_cast<double>(m.layers) / config.stages;
      est.activation_bytes = 2.0 *
                             static_cast<double>(config.micro_batch_size) *
                             static_cast<double>(m.seq) *
                             static_cast<double>(m.hidden) *
                             layers_per_stage * mm;
      est.bubble_fraction = (p - 1.0) / (mm + p - 1.0);
      est.weight_versions = 1.0;
      est.equivalent_to_sync_sgd = true;
      break;
    }
    case PipelineScheme::kPipeDream: {
      // 1F1B keeps at most P in-flight micro-batches of activations, but
      // stashes up to P weight versions to stay consistent per
      // micro-batch — fp16 weights per extra version.
      est.weight_versions = p;
      est.param_state_bytes = 16.0 * per_stage_psi +        // live state
                              2.0 * per_stage_psi * (p - 1);  // stashes
      const double layers_per_stage =
          static_cast<double>(m.layers) / config.stages;
      est.activation_bytes = 2.0 *
                             static_cast<double>(config.micro_batch_size) *
                             static_cast<double>(m.seq) *
                             static_cast<double>(m.hidden) *
                             layers_per_stage * p;
      est.bubble_fraction = 0.0;  // hidden in steady state
      est.equivalent_to_sync_sgd = false;  // stale weights
      break;
    }
  }
  est.total_bytes = est.param_state_bytes + est.activation_bytes;
  return est;
}

}  // namespace zero::sim
