#include "sim/search.hpp"

#include "common/error.hpp"

namespace zero::sim {

std::int64_t MaxBatchPerGpu(const ClusterSpec& cluster, JobConfig job,
                            std::int64_t limit) {
  job.batch_per_gpu = 1;
  if (!Fits(cluster, job)) return 0;
  // Exponential probe then binary search.
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (hi <= limit) {
    job.batch_per_gpu = hi;
    if (!Fits(cluster, job)) break;
    lo = hi;
    hi *= 2;
  }
  hi = std::min(hi, limit + 1);
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    job.batch_per_gpu = mid;
    if (Fits(cluster, job)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::int64_t MaxLayers(const ClusterSpec& cluster, JobConfig job,
                       std::int64_t limit) {
  job.model.layers = 1;
  if (!Fits(cluster, job)) return 0;
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (hi <= limit) {
    job.model.layers = hi;
    if (!Fits(cluster, job)) break;
    lo = hi;
    hi *= 2;
  }
  hi = std::min(hi, limit + 1);
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    job.model.layers = mid;
    if (Fits(cluster, job)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<ThroughputEstimate> BestThroughput(const ClusterSpec& cluster,
                                                 JobConfig job) {
  const std::int64_t best_batch = MaxBatchPerGpu(cluster, job);
  if (best_batch == 0) return std::nullopt;
  job.batch_per_gpu = best_batch;
  return EstimateThroughput(cluster, job);
}

int MinGpusToFit(const ClusterSpec& cluster, JobConfig job, int limit) {
  ZERO_CHECK(job.mp >= 1, "MP degree must be positive");
  auto fits_at = [&](std::int64_t gpus) {
    job.gpus = static_cast<int>(gpus);
    return Fits(cluster, job);
  };
  // More GPUs never hurt feasibility (every partitioned term shrinks
  // with Nd), so the predicate is monotone: exponential probe in
  // multiples of mp, then binary search on the multiplier.
  std::int64_t lo = 1;  // multiplier of mp; lo does not fit (yet)
  if (fits_at(job.mp)) return job.mp;
  std::int64_t hi = 2;
  while (hi * job.mp <= limit && !fits_at(hi * job.mp)) {
    lo = hi;
    hi *= 2;
  }
  if (hi * job.mp > limit) return 0;
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (fits_at(mid * job.mp)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return static_cast<int>(hi * job.mp);
}

double TheoreticalMaxParams(double capacity_bytes, model::ZeroStage stage,
                            int mp, int nd) {
  // Per-parameter bytes for one data-parallel device (Fig 1).
  const model::ModelStateBytes per_param =
      model::PerDeviceModelStates(1.0, stage, nd);
  return capacity_bytes * mp / per_param.total();
}

}  // namespace zero::sim
