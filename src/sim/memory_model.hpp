// Per-GPU memory model (Sec 3, Sec 5.4, Sec 6.1) used by Table 1/2 and
// Figures 1, 6, 7, and by the max-batch/max-model searches behind
// Figures 2-4 and 8.
#pragma once

#include "sim/cluster.hpp"
#include "sim/job.hpp"

namespace zero::sim {

struct MemoryBreakdown {
  double params = 0;       // fp16 parameters
  double grads = 0;        // fp16 gradients
  double optimizer = 0;    // device-resident fp32 master+m+v (K = 12)
  double checkpoints = 0;  // stored activation checkpoints
  double working = 0;      // live activations of one (or all) block(s)
  double logits = 0;       // output projection activations
  double buffers = 0;      // fused communication buffers (CB)
  // Off-device tiers (JobConfig::optimizer_tier, pa_cpu): the same
  // bytes the device fields would hold, relocated per Sec 6.1 /
  // ZeRO-Offload / ZeRO-Infinity. Zero when everything is on-device.
  double host_optimizer = 0;    // K*Psi/Nd in host DRAM
  double nvme_optimizer = 0;    // K*Psi/Nd on NVMe
  double host_checkpoints = 0;  // Pa+cpu activation checkpoints
  [[nodiscard]] double model_states() const {
    return params + grads + optimizer;
  }
  [[nodiscard]] double activations() const {
    return checkpoints + working + logits;
  }
  // Per-GPU *device* bytes; the off-device tiers have their own totals.
  [[nodiscard]] double total() const {
    return model_states() + activations() + buffers;
  }
  [[nodiscard]] double host_total() const {
    return host_optimizer + host_checkpoints;
  }
  [[nodiscard]] double nvme_total() const { return nvme_optimizer; }
};

// Constant fused-buffer size used when CB is enabled (Sec 6.2).
inline constexpr double kConstantBufferBytes = 256.0 * MB;

MemoryBreakdown EstimateMemory(const ClusterSpec& cluster,
                               const JobConfig& job);

// Per-tier feasibility: device memory, this GPU's share of node DRAM,
// and its share of the node's NVMe array.
struct FitsReport {
  bool device = false;
  bool host = false;
  bool nvme = false;
  [[nodiscard]] bool all() const { return device && host && nvme; }
};

FitsReport CheckFits(const ClusterSpec& cluster, const JobConfig& job);

// True when the job fits every tier it uses.
bool Fits(const ClusterSpec& cluster, const JobConfig& job);

}  // namespace zero::sim
