// Per-GPU memory model (Sec 3, Sec 5.4, Sec 6.1) used by Table 1/2 and
// Figures 1, 6, 7, and by the max-batch/max-model searches behind
// Figures 2-4 and 8.
#pragma once

#include "sim/cluster.hpp"
#include "sim/job.hpp"

namespace zero::sim {

struct MemoryBreakdown {
  double params = 0;       // fp16 parameters
  double grads = 0;        // fp16 gradients
  double optimizer = 0;    // fp32 master + momentum + variance (K = 12)
  double checkpoints = 0;  // stored activation checkpoints
  double working = 0;      // live activations of one (or all) block(s)
  double logits = 0;       // output projection activations
  double buffers = 0;      // fused communication buffers (CB)
  [[nodiscard]] double model_states() const {
    return params + grads + optimizer;
  }
  [[nodiscard]] double activations() const {
    return checkpoints + working + logits;
  }
  [[nodiscard]] double total() const {
    return model_states() + activations() + buffers;
  }
};

// Constant fused-buffer size used when CB is enabled (Sec 6.2).
inline constexpr double kConstantBufferBytes = 256.0 * MB;

MemoryBreakdown EstimateMemory(const ClusterSpec& cluster,
                               const JobConfig& job);

// True when the job fits in per-device memory.
bool Fits(const ClusterSpec& cluster, const JobConfig& job);

}  // namespace zero::sim
