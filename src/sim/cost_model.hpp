// Per-step time and throughput model (Sec 7, Sec 8, Sec 10).
//
// step_time = compute + exposed MP communication + exposed DP
// communication + exposed host-offload transfers, with:
//   - compute = step flops / (peak * eff(batch, local width)), the
//     saturating arithmetic-intensity curve that produces both the
//     baseline's small-batch collapse and ZeRO's super-linear scaling;
//   - MP all-reduces (2 fwd + 2 bwd + 2 recompute per block, Sec 8) are
//     synchronous and fully exposed, over NVSwitch inside a node and
//     over InfiniBand once the MP group spans nodes — the Sec 10.2
//     bandwidth cliff;
//   - DP gradient traffic (2*Psi for stages 0-2, 3*Psi for stage 3,
//     Sec 7) overlaps with backward up to cluster.dp_overlap;
//   - Pa adds one all-gather per block (Sec 8); Pa+cpu adds 2x slice
//     transfers over PCIe, partially hidden.
#pragma once

#include "sim/cluster.hpp"
#include "sim/job.hpp"

namespace zero::sim {

struct ThroughputEstimate {
  double step_seconds = 0;
  double tflops_per_gpu = 0;       // achieved, hardware flops incl. recompute
  double aggregate_pflops = 0;
  // breakdown (seconds)
  double compute_s = 0;
  double mp_comm_s = 0;            // exposed
  double dp_comm_s = 0;            // exposed
  double offload_s = 0;            // exposed
  double efficiency = 0;           // eff() used for compute
};

// Fraction of peak the GEMMs achieve for this job.
double Efficiency(const ClusterSpec& cluster, const JobConfig& job);

// Per-rank optimizer-tier link traffic per step in bytes: ZeRO-Offload's
// fp16 wire format (gradients to the tier + updated parameters back,
// 4 B/param of this rank's shard); the NVMe tier additionally streams
// the K = 12 B/param fp32 state in and back out each update because it
// is not host-addressable. 0 when the optimizer is device-resident.
double OptimizerOffloadBytesPerStep(const JobConfig& job);

// Exposed (non-overlapped) off-device transfer seconds per step: Pa+cpu
// checkpoint slices over PCIe, plus the optimizer-tier stream. One
// definition shared by the analytic model and the simulated-network
// bridge (they previously carried duplicate copies of this formula).
double ExposedOffloadSeconds(const ClusterSpec& cluster, const JobConfig& job,
                             double compute_s);

// ZeRO++ rewrite of the per-rank DP wire volume: the ratio of the job's
// compressed volume to the same job with qwz/hpz/qgz cleared (1.0 when
// no flag engages — the gates mirror ZeroDpEngine::InitState). Shared by
// the analytic model and the packet-level bridge so both price
// compression identically.
double DpCompressionScale(const JobConfig& job);

// Multiplier on cluster.dp_overlap: 1.0 for stages 0-2; for stage 3 the
// volume-weighted overlap split — gradient traffic and backward gathers
// hide behind the bucketizer/compute, forward gathers hide only as far
// as prefetch_lookahead pipelines them. Collapses to the historical
// (2 + min(1, lookahead/2)) / 3 when no ZeRO++ flag engages.
double DpOverlapCoefficient(const JobConfig& job);

ThroughputEstimate EstimateThroughput(const ClusterSpec& cluster,
                                      const JobConfig& job);

}  // namespace zero::sim
