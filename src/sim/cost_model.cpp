#include "sim/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace zero::sim {

namespace {

// Per-rank DP wire bytes per step, split by what hides it. Nominal
// volumes (no (Nd-1)/Nd ring factor), matching the analytic model's
// historical accounting.
struct DpVolumeSplit {
  double grads = 0;  // reduce path: hidden by the bucketizer
  double fwd = 0;    // stage-3 forward gathers: prefetch-dependent
  double bwd = 0;    // stage-3 backward gathers: hidden by the bucketizer
  double ag = 0;     // stage-1/2 step-end all-gather
  [[nodiscard]] double total() const { return grads + fwd + bwd + ag; }
};

DpVolumeSplit DpVolume(const JobConfig& job, bool compressed) {
  using model::ZeroStage;
  DpVolumeSplit v;
  if (job.dp() <= 1) return v;
  const double psi = job.psi_local();
  if (job.stage == ZeroStage::kNone) {
    v.grads = 2.0 * 4.0 * psi;  // fp32 all-reduce
    return v;
  }
  const double e = 2.0;  // fp16 wire elements
  // ZeRO++ gates, mirroring ZeroDpEngine::InitState.
  const bool nodes_ok = job.ranks_per_node > 1 &&
                        job.dp() % job.ranks_per_node == 0;
  const bool qwz = compressed && job.qwz;
  const bool hpz = compressed && job.hpz && nodes_ok &&
                   job.stage == ZeroStage::kOsGP;
  const bool qgz = compressed && job.qgz && nodes_ok &&
                   (job.stage == ZeroStage::kOsG ||
                    job.stage == ZeroStage::kOsGP);
  const double qe =
      1.0 + 2.0 / static_cast<double>(
                      job.quant_block > 0 ? job.quant_block : 64);
  v.grads = e * psi;
  if (qgz) {
    // Only the (nodes-1) quantized relay shards cross the DP fabric.
    const double nodes = static_cast<double>(job.dp()) / job.ranks_per_node;
    v.grads = (nodes - 1.0) / job.dp() * qe * psi;
  }
  if (job.stage == ZeroStage::kOsGP) {
    v.fwd = (qwz ? qe : e) * psi;
    v.bwd = hpz ? 0.0 : (qwz ? qe : e) * psi;
  } else {
    v.ag = (qwz ? qe : e) * psi;
  }
  return v;
}

}  // namespace

double DpCompressionScale(const JobConfig& job) {
  const double plain = DpVolume(job, /*compressed=*/false).total();
  if (plain <= 0.0) return 1.0;
  return DpVolume(job, /*compressed=*/true).total() / plain;
}

double DpOverlapCoefficient(const JobConfig& job) {
  if (job.stage != model::ZeroStage::kOsGP || job.dp() <= 1) return 1.0;
  const DpVolumeSplit v = DpVolume(job, /*compressed=*/true);
  if (v.total() <= 0.0) return 1.0;
  // Gradient traffic and backward gathers hide behind the bucketizer;
  // forward gathers hide only as far as the prefetcher pipelines them
  // (lookahead >= 2 pipelines fully, 0 exposes them cold).
  const double hidden =
      std::min(1.0, static_cast<double>(job.prefetch_lookahead) / 2.0);
  return (v.grads + v.bwd + hidden * v.fwd) / v.total();
}

double Efficiency(const ClusterSpec& cluster, const JobConfig& job) {
  const double tokens = static_cast<double>(job.batch_per_gpu) *
                        static_cast<double>(job.model.seq);
  const double w = static_cast<double>(job.model.hidden) / job.mp;
  const double f_tokens = tokens / (tokens + cluster.tokens_half);
  const double f_width = w / (w + cluster.width_half);
  return cluster.eff_max * f_tokens * f_width;
}

double OptimizerOffloadBytesPerStep(const JobConfig& job) {
  if (job.optimizer_tier == OffloadTier::kNone) return 0.0;
  // The rank's optimizer shard: full model for the unpartitioned
  // baseline, Psi/Nd under Pos and above.
  const double shard = job.stage == model::ZeroStage::kNone
                           ? job.psi_local()
                           : job.psi_local() / job.dp();
  // fp16 gradients in + fp16 parameters out (the fp32 casts happen on
  // the host — ZeRO-Offload's compute split).
  double bytes = 4.0 * shard;
  if (job.optimizer_tier == OffloadTier::kNvme) {
    // The fp32 state itself streams through the link both ways.
    bytes += 24.0 * shard;
  }
  return bytes;
}

double ExposedOffloadSeconds(const ClusterSpec& cluster, const JobConfig& job,
                             double compute_s) {
  double exposed = 0.0;
  if (job.pa_cpu) {
    // Pa+cpu checkpoint slices: out during forward, back during
    // backward, synchronous per-layer copies on the critical path.
    const double slice = 2.0 * static_cast<double>(job.batch_per_gpu) *
                         static_cast<double>(job.model.seq) *
                         static_cast<double>(job.model.hidden) *
                         static_cast<double>(job.model.layers) / job.mp;
    const double t = 2.0 * slice / cluster.pcie_bw;
    exposed += std::max(0.0, t - cluster.offload_overlap * compute_s);
  }
  if (job.optimizer_tier != OffloadTier::kNone) {
    const double bw = job.optimizer_tier == OffloadTier::kNvme
                          ? cluster.nvme_bw
                          : cluster.pcie_bw;
    const double t = OptimizerOffloadBytesPerStep(job) / bw;
    exposed +=
        std::max(0.0, t - cluster.optimizer_offload_overlap * compute_s);
  }
  return exposed;
}

ThroughputEstimate EstimateThroughput(const ClusterSpec& cluster,
                                      const JobConfig& job) {
  ZERO_CHECK(job.batch_per_gpu >= 1, "batch must be positive");
  ThroughputEstimate out;
  const auto& m = job.model;
  const double b = static_cast<double>(job.batch_per_gpu);
  const double s = static_cast<double>(m.seq);
  const double h = static_cast<double>(m.hidden);
  const double l = static_cast<double>(m.layers);
  const int mp = job.mp;

  // --- compute ---
  const double flops_per_gpu =
      m.StepFlops(job.batch_per_gpu, job.activation_checkpointing) / mp;
  out.efficiency = Efficiency(cluster, job);
  out.compute_s = flops_per_gpu / (cluster.peak_flops * out.efficiency);

  // --- model-parallel communication (fully exposed) ---
  double mp_time = 0;
  if (mp > 1) {
    const double msg = 2.0 * b * s * h;  // fp16 activation tensor
    const double ring = 2.0 * msg * (mp - 1) / mp;  // all-reduce volume
    const int per_block =
        job.activation_checkpointing ? 6 : 4;  // 2 fwd (+2 recompute) +2 bwd
    double volume = l * per_block * ring;
    if (job.pa) {
      // One extra all-gather per block before recompute (Sec 8): volume
      // = message size.
      volume += l * msg * (mp - 1) / mp;
    }
    mp_time = volume / cluster.MpBandwidth(mp);
  }
  out.mp_comm_s = mp_time;

  // --- data-parallel communication (overlapped with backward) ---
  double dp_time = 0;
  double overlap = cluster.dp_overlap;
  if (job.dp() > 1) {
    // ZeRO moves fp16 gradients/parameters (2 Psi for stages 0-2,
    // 3 Psi for stage 3, Sec 7, rewritten by any active ZeRO++ path);
    // the 2019 DDP baseline all-reduced fp32 gradients, and (without
    // MP) without ZeRO's bucketized compute overlap.
    if (job.stage == model::ZeroStage::kNone && mp == 1) overlap = 0.0;
    overlap *= DpOverlapCoefficient(job);
    const double volume = DpVolume(job, /*compressed=*/true).total();
    dp_time = volume / cluster.DpBandwidth();
  }
  out.dp_comm_s = std::max(0.0, dp_time - overlap * out.compute_s);

  // --- off-device transfers (Pa+cpu + the optimizer tier) ---
  out.offload_s = ExposedOffloadSeconds(cluster, job, out.compute_s);

  out.step_seconds =
      out.compute_s + out.mp_comm_s + out.dp_comm_s + out.offload_s;
  out.tflops_per_gpu = flops_per_gpu / out.step_seconds / 1e12;
  out.aggregate_pflops = out.tflops_per_gpu * job.gpus / 1e3;
  return out;
}

}  // namespace zero::sim
