// Automatic ZeRO-stage selection.
//
// The paper's Table 1 implies a policy the text states informally: use
// the *lowest* stage whose per-device model states fit, because higher
// stages only add communication (stage 3's 1.5x) or scheduling
// complexity without memory benefit once the model fits. This helper
// encodes that policy over the memory model, including headroom for
// activations and buffers.
#pragma once

#include <optional>

#include "sim/memory_model.hpp"

namespace zero::sim {

struct StageRecommendation {
  model::ZeroStage stage = model::ZeroStage::kNone;
  MemoryBreakdown memory;   // at the chosen stage
  bool fits = false;        // false: nothing fits, not even stage 3
};

// Chooses the lowest stage under which `job` (its stage field is
// ignored) fits the cluster's devices. Tries kNone, kOs, kOsG, kOsGP in
// order; `fits == false` means even full partitioning is not enough
// (add MP, shrink the batch, or add devices).
StageRecommendation RecommendStage(const ClusterSpec& cluster,
                                   JobConfig job);

}  // namespace zero::sim
