#include "sim/paper_configs.hpp"

#include "common/error.hpp"

namespace zero::sim {

JobConfig JobConfig::WithConfigId(JobConfig base, int config_id) {
  // Table 3: the five ZeRO configurations of the ablation figures.
  base.constant_buffers = true;  // CB in every config
  base.defrag = true;            // MD in every config
  base.activation_checkpointing = true;
  switch (config_id) {
    case 1:  // Pos, CB + MD
      base.stage = model::ZeroStage::kOs;
      base.pa = false;
      base.pa_cpu = false;
      break;
    case 2:  // Pos, CB + MD + Pa
      base.stage = model::ZeroStage::kOs;
      base.pa = true;
      base.pa_cpu = false;
      break;
    case 3:  // Pos+g, CB + MD
      base.stage = model::ZeroStage::kOsG;
      base.pa = false;
      base.pa_cpu = false;
      break;
    case 4:  // Pos+g, CB + MD + Pa
      base.stage = model::ZeroStage::kOsG;
      base.pa = true;
      base.pa_cpu = false;
      break;
    case 5:  // Pos+g, CB + MD + Pa+cpu
      base.stage = model::ZeroStage::kOsG;
      base.pa = true;
      base.pa_cpu = true;
      break;
    default:
      throw ConfigError("ZeRO config id must be 1..5");
  }
  return base;
}

JobConfig PaperRun::ToJob() const {
  JobConfig job;
  job.model.layers = layers;
  job.model.hidden = hidden;
  job.model.heads = heads;
  job.model.seq = 1024;
  job.model.vocab = 50257;
  job.gpus = gpus;
  job.mp = mp;
  job.batch_per_gpu = batch_per_gpu;
  job.activation_checkpointing = true;
  if (is_zero) {
    // ZeRO-100B: Pos+g plus ZeRO-R (Sec 10.1).
    job.stage = model::ZeroStage::kOsG;
    job.pa = mp > 1;
  } else {
    // Megatron / DDP baseline: plain replicated data parallelism, with
    // model-size-proportional fused buffers and no defragmentation —
    // CB and MD are ZeRO-R features (Sec 6.2/6.3).
    job.stage = model::ZeroStage::kNone;
    job.pa = false;
    job.constant_buffers = false;
    job.defrag = false;
  }
  return job;
}

const std::vector<PaperRun>& Figure2Runs() {
  // Appendix Table 5.
  static const std::vector<PaperRun> runs = {
      {"1.5B", 1.5e9, true, 400, 1, 48, 1600, 16, 24},
      {"1.5B", 1.5e9, false, 400, 2, 48, 1600, 16, 16},
      {"8B", 8e9, true, 400, 4, 72, 3072, 24, 64},
      {"8B", 8e9, false, 400, 8, 72, 3072, 24, 8},
      {"40B", 40e9, true, 400, 4, 88, 6144, 32, 12},
      {"40B", 40e9, false, 384, 32, 88, 6144, 64, 4},
      {"60B", 60e9, true, 400, 16, 132, 6144, 32, 64},
      {"60B", 60e9, false, 384, 64, 132, 6144, 64, 4},
      {"80B", 80e9, true, 400, 16, 100, 8192, 64, 32},
      {"80B", 80e9, false, 384, 128, 100, 8192, 128, 4},
      {"100B", 100e9, true, 400, 16, 125, 8192, 64, 32},
      {"100B", 100e9, false, 384, 128, 125, 8192, 128, 2},
      {"120B", 120e9, true, 400, 16, 150, 8192, 64, 24},
      {"120B", 120e9, false, 384, 128, 150, 8192, 128, 2},
      {"140B", 140e9, true, 400, 16, 175, 8192, 64, 16},
      {"140B", 140e9, false, 384, 128, 175, 8192, 128, 2},
      {"170B", 170e9, true, 400, 16, 212, 8192, 64, 12},
      {"170B", 170e9, false, 256, 256, 212, 8192, 256, 2},
  };
  return runs;
}

const std::vector<PaperRun>& Figure3Runs() {
  // Appendix Table 6.
  static const std::vector<PaperRun> runs = {
      {"60B/64", 60e9, true, 64, 16, 75, 8192, 32, 16},
      {"60B/128", 60e9, true, 128, 16, 75, 8192, 32, 48},
      {"60B/256", 60e9, true, 256, 16, 75, 8192, 32, 48},
      {"60B/400", 60e9, true, 400, 16, 75, 8192, 32, 64},
  };
  return runs;
}

const std::vector<PaperRun>& Figure4Runs() {
  // Appendix Table 10 (all MP = 1, 128 GPUs).
  static const std::vector<PaperRun> runs = {
      {"1.16B", 1.16e9, true, 128, 1, 24, 1920, 16, 24},
      {"1.5B", 1.5e9, true, 128, 1, 34, 1920, 16, 24},
      {"2.5B", 2.5e9, true, 128, 1, 54, 1920, 16, 24},
      {"4B", 4e9, true, 128, 1, 64, 2304, 24, 16},
      {"6B", 6e9, true, 128, 1, 52, 3072, 24, 12},
      {"8B", 8e9, true, 128, 1, 72, 3072, 24, 8},
      {"10B", 10e9, true, 128, 1, 50, 4096, 32, 6},
      {"11B", 11e9, true, 128, 1, 54, 4096, 32, 4},
      {"12B", 12e9, true, 128, 1, 58, 4096, 32, 4},
      {"13B", 13e9, true, 128, 1, 62, 4096, 32, 2},
      {"1.16B-base", 1.16e9, false, 128, 1, 24, 1920, 16, 8},
      {"1.38B-base", 1.38e9, false, 128, 1, 40, 1536, 16, 1},
  };
  return runs;
}

const std::vector<PaperRun>& Figure7Runs() {
  // Appendix Table 8.
  static const std::vector<PaperRun> runs = {
      {"40B", 40e9, true, 400, 16, 50, 8192, 32, 16},
      {"100B", 100e9, true, 400, 16, 125, 8192, 64, 32},
  };
  return runs;
}

const std::vector<PaperRun>& Figure8Runs() {
  // Appendix Table 9.
  static const std::vector<PaperRun> runs = {
      {"60B", 60e9, true, 128, 16, 75, 8192, 64, 8},
      {"170B", 170e9, true, 400, 16, 212, 8192, 64, 12},
  };
  return runs;
}

PaperRun Figure6BaseRun() {
  // Figure 6 grows a hidden-8192, MP-16 model until it no longer fits;
  // 400 GPUs as in the 170B row of Table 9.
  return {"fig6-base", 0.0, true, 400, 16, 75, 8192, 64, 16};
}

}  // namespace zero::sim
