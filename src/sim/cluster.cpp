#include "sim/cluster.hpp"

// ClusterSpec is a plain aggregate; this translation unit exists so the
// library has a home for future non-inline topology logic and so the
// header's defaults are compiled (and warned about) exactly once.
namespace zero::sim {}
