#include "sim/memory_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace zero::sim {

MemoryBreakdown EstimateMemory(const ClusterSpec& cluster,
                               const JobConfig& job) {
  ZERO_CHECK(job.gpus % job.mp == 0, "gpus must divide by MP degree");
  MemoryBreakdown mem;
  const auto& m = job.model;
  const double b = static_cast<double>(job.batch_per_gpu);
  const double s = static_cast<double>(m.seq);
  const double h = static_cast<double>(m.hidden);
  const double l = static_cast<double>(m.layers);
  const double heads = static_cast<double>(m.heads);
  const double v = static_cast<double>(m.vocab);
  const int mp = job.mp;
  const int nd = job.dp();

  // --- model states (Fig 1 equations over the per-device shard) ---
  const model::ModelStateBytes states =
      model::PerDeviceModelStates(job.psi_local(), job.stage, nd);
  mem.params = states.parameters;
  mem.grads = states.gradients;
  mem.optimizer = states.optimizer;
  // A storage tier relocates the K*Psi/Nd fp32 state off the device
  // (ZeRO-Offload / ZeRO-Infinity); the wire traffic it costs is the
  // cost model's ExposedOffloadSeconds.
  if (job.optimizer_tier == OffloadTier::kHost) {
    mem.host_optimizer = mem.optimizer;
    mem.optimizer = 0.0;
  } else if (job.optimizer_tier == OffloadTier::kNvme) {
    mem.nvme_optimizer = mem.optimizer;
    mem.optimizer = 0.0;
  }

  // --- activations ---
  // Per-layer working activations split by what Megatron-style MP can
  // shard: the [b, s, h] tensors at block boundaries (ln outputs,
  // residuals, attention/MLP outputs — about six per block) are
  // replicated on every MP rank (the Sec 4.2.1 insight Pa exploits),
  // while head-sharded attention internals and the 4h MLP interior
  // divide by mp.
  const double replicated_per_layer = 6.0 * 2.0 * b * s * h;
  const double sharded_per_layer =
      (m.ActivationBytes(job.batch_per_gpu) / l +
       2.0 * b * heads * s * s) /
      mp;
  if (job.activation_checkpointing) {
    // One fp16 checkpoint (the block input) per layer: 2*b*s*h bytes,
    // replicated across MP ranks unless Pa partitions it (Sec 6.1), and
    // moved to host entirely under Pa+cpu.
    double ckpt = 2.0 * b * s * h * l;
    if (job.pa) ckpt /= mp;
    if (job.pa_cpu) {
      mem.host_checkpoints = ckpt;
      ckpt = 0.0;
    }
    mem.checkpoints = ckpt;
    // Recompute materializes one block's activations at a time.
    mem.working = replicated_per_layer + sharded_per_layer;
  } else {
    // Full activation set for all layers stays resident.
    mem.working = l * (replicated_per_layer + sharded_per_layer);
  }
  // Output logits (vocabulary-parallel under MP, as Megatron shards the
  // embedding classifier).
  mem.logits = 2.0 * b * s * v / mp;

  // --- temporary buffers (Sec 6.2) ---
  if (job.constant_buffers) {
    mem.buffers = std::min(kConstantBufferBytes, 4.0 * job.psi_local());
  } else {
    // Fused fp32 buffer proportional to the local model size.
    mem.buffers = 4.0 * job.psi_local();
  }

  // --- fragmentation reserve (Sec 3.2 / 6.3) ---
  // Without MD, interleaved lifetimes strand a sizable fraction of
  // memory (the paper observed OOM with >30% free in extreme cases).
  if (!job.defrag) {
    const double stranded = 0.25 * mem.activations();
    mem.working += stranded;
  }

  (void)cluster;
  return mem;
}

FitsReport CheckFits(const ClusterSpec& cluster, const JobConfig& job) {
  const MemoryBreakdown mem = EstimateMemory(cluster, job);
  const double gpus = static_cast<double>(cluster.gpus_per_node);
  FitsReport r;
  r.device = mem.total() <= cluster.usable_memory();
  r.host = mem.host_total() <= cluster.host_memory_per_node / gpus;
  r.nvme = mem.nvme_total() <= cluster.nvme_per_node / gpus;
  return r;
}

bool Fits(const ClusterSpec& cluster, const JobConfig& job) {
  return CheckFits(cluster, job).all();
}

}  // namespace zero::sim
