#include "sim/step_scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace zero::sim {

namespace {

// Record phases only for the first and last few layers so the timeline
// stays readable for 200-layer models.
bool ShouldRecord(std::int64_t layer, std::int64_t layers) {
  return layer < 2 || layer >= layers - 2;
}

}  // namespace

ScheduledStep ScheduleStep(const ClusterSpec& cluster, const JobConfig& job) {
  ZERO_CHECK(job.model.layers >= 1, "model must have at least one layer");
  ScheduledStep out;
  const auto& m = job.model;
  const std::int64_t layers = m.layers;
  const int mp = job.mp;
  const double eff = Efficiency(cluster, job);
  const double flops_rate = cluster.peak_flops * eff;

  // Per-layer compute times (forward; backward ~ 2x forward).
  const double fwd_flops_total = m.ForwardFlops(job.batch_per_gpu) / mp;
  const double layer_fwd_s = fwd_flops_total / flops_rate /
                             static_cast<double>(layers);
  const double layer_bwd_s = 2.0 * layer_fwd_s;

  // Synchronous MP all-reduce time per layer pass (2 all-reduces of the
  // [b, s, h] activation, ring volume 2*(mp-1)/mp each).
  double mp_per_pass_s = 0;
  double pa_gather_s = 0;
  if (mp > 1) {
    const double msg = 2.0 * static_cast<double>(job.batch_per_gpu) *
                       static_cast<double>(m.seq) *
                       static_cast<double>(m.hidden);
    const double bw = cluster.MpBandwidth(mp);
    mp_per_pass_s = 2.0 * (2.0 * msg * (mp - 1) / mp) / bw;
    if (job.pa) pa_gather_s = msg * (mp - 1) / mp / bw;
  }

  // DP communication per layer: gradient reduction (ring, fp16), and for
  // stage 3 the parameter fetches on forward and backward.
  const int nd = job.dp();
  const double layer_param_bytes = 2.0 * job.psi_local() / layers;
  const double ring = nd > 1 ? static_cast<double>(nd - 1) / nd : 0.0;
  const double dp_bw = cluster.DpBandwidth();
  const double layer_grad_reduce_s =
      nd > 1 ? layer_param_bytes * ring / dp_bw : 0.0;
  const double layer_param_fetch_s =
      (nd > 1 && job.stage == model::ZeroStage::kOsGP)
          ? layer_param_bytes * ring / dp_bw
          : 0.0;

  // Pa+cpu PCIe copies: each layer's checkpoint slice out during
  // forward, back in before recompute.
  const double slice_bytes =
      job.pa_cpu ? 2.0 * static_cast<double>(job.batch_per_gpu) *
                       static_cast<double>(m.seq) *
                       static_cast<double>(m.hidden) / mp
                 : 0.0;
  const double pcie_s = slice_bytes / cluster.pcie_bw;

  // --- engine cursors (persist across iterations: steady state) ---
  double t_compute = 0;  // compute engine free time
  double t_comm = 0;     // dp comm engine free time
  double t_pcie = 0;     // host link free time
  bool measuring = false;
  double iter_base = 0;
  double compute_work = 0;  // busy durations, excluding stall time

  auto record = [&](const char* what, std::int64_t layer, double start,
                    double end, PhaseRecord::Engine engine) {
    if (!measuring || !ShouldRecord(layer, layers)) return;
    out.timeline.push_back(PhaseRecord{
        std::string(what) + " L" + std::to_string(layer),
        start - iter_base, end - iter_base, engine});
  };

  auto comm_run = [&](double ready, double duration) {
    const double start = std::max(t_comm, ready);
    t_comm = start + duration;
    if (measuring) out.dp_comm_busy_s += duration;
    return start;
  };

  // One full training iteration over the persistent engine cursors. The
  // first iteration warms the pipeline; the second is measured, so the
  // post-update parameter all-gather and stage-3 fetch prefetches
  // overlap the next forward exactly as they do in steady state.
  auto run_iteration = [&] {
    // Stage-3 forward fetch pipeline: fetch layer l while computing l-1.
    std::vector<double> fetch_done(static_cast<std::size_t>(layers), 0.0);
    if (layer_param_fetch_s > 0) {
      for (std::int64_t l = 0; l < layers; ++l) {
        const double start = comm_run(0.0, layer_param_fetch_s);
        fetch_done[static_cast<std::size_t>(l)] =
            start + layer_param_fetch_s;
        record("fetch", l, start, fetch_done[static_cast<std::size_t>(l)],
               PhaseRecord::Engine::kComm);
      }
    }

    // ---- forward ----
    for (std::int64_t l = 0; l < layers; ++l) {
      double start = t_compute;
      if (layer_param_fetch_s > 0) {
        start = std::max(start, fetch_done[static_cast<std::size_t>(l)]);
      }
      const double dur = layer_fwd_s + mp_per_pass_s;
      t_compute = start + dur;
      if (measuring) {
        out.mp_comm_s += mp_per_pass_s;
        compute_work += dur;
      }
      record("fwd", l, start, t_compute, PhaseRecord::Engine::kCompute);
      if (pcie_s > 0) {
        const double p_start = std::max(t_pcie, t_compute);
        t_pcie = p_start + pcie_s;
        if (measuring) out.pcie_busy_s += pcie_s;
        record("offload", l, p_start, t_pcie, PhaseRecord::Engine::kPcie);
      }
    }

    // ---- backward (reverse layer order) ----
    for (std::int64_t l = layers - 1; l >= 0; --l) {
      double start = t_compute;
      if (pcie_s > 0) {
        // The checkpoint slice must be back before recompute; the
        // restore can run while the previous layer's backward computes.
        const double p_start = std::max(t_pcie, start - layer_bwd_s);
        const double p_done = p_start + pcie_s;
        t_pcie = p_done;
        if (measuring) out.pcie_busy_s += pcie_s;
        record("restore", l, p_start, p_done, PhaseRecord::Engine::kPcie);
        start = std::max(start, p_done);
      }
      double dur = layer_bwd_s + mp_per_pass_s;
      if (job.activation_checkpointing) {
        dur += layer_fwd_s + mp_per_pass_s;  // recompute pass
        if (measuring) out.mp_comm_s += mp_per_pass_s;
        if (job.pa) dur += pa_gather_s;
      }
      if (measuring) out.mp_comm_s += mp_per_pass_s;
      // Stage-3 backward re-fetch, prefetched on the comm engine.
      if (layer_param_fetch_s > 0) {
        const double f_start = comm_run(0.0, layer_param_fetch_s);
        start = std::max(start, f_start + layer_param_fetch_s);
      }
      t_compute = start + dur;
      if (measuring) compute_work += dur;
      record("bwd", l, start, t_compute, PhaseRecord::Engine::kCompute);

      // Gradient reduction: stages 2/3 enqueue per layer as backward
      // produces it; stages 0/1 reduce everything at the end.
      if (nd > 1 && (job.stage == model::ZeroStage::kOsG ||
                     job.stage == model::ZeroStage::kOsGP)) {
        const double r_start = comm_run(t_compute, layer_grad_reduce_s);
        record("dp-reduce", l, r_start, r_start + layer_grad_reduce_s,
               PhaseRecord::Engine::kComm);
      }
    }

    if (nd > 1 && (job.stage == model::ZeroStage::kNone ||
                   job.stage == model::ZeroStage::kOs)) {
      // One fused all-reduce / reduce-scatter of the whole gradient.
      const double bytes =
          (job.stage == model::ZeroStage::kNone ? 2.0 : 1.0) * 2.0 *
          job.psi_local() * ring;
      (void)comm_run(t_compute, bytes / dp_bw);
    }

    // Optimizer update: waits for the gradient reductions to drain, then
    // runs elementwise over K bytes of state at HBM speed.
    const double hbm_bw = 900e9;
    const double opt_bytes = 16.0 * job.psi_local() / std::max(1, nd);
    const double opt_s = 2.0 * opt_bytes / hbm_bw;
    t_compute = std::max(t_compute, t_comm) + opt_s;
    if (measuring) compute_work += opt_s;

    if (nd > 1 && (job.stage == model::ZeroStage::kOs ||
                   job.stage == model::ZeroStage::kOsG)) {
      // Post-update parameter all-gather; consumed by the *next*
      // forward, so it rides the comm engine into the next iteration.
      (void)comm_run(t_compute, 2.0 * job.psi_local() * ring / dp_bw);
    }
  };

  run_iteration();  // warm-up: fills the pipeline
  iter_base = t_compute;
  measuring = true;
  run_iteration();

  out.compute_busy_s = compute_work;
  out.exposed_pcie_s = std::max(0.0, t_pcie - t_compute);
  out.total_s = std::max(t_compute, t_pcie) - iter_base;
  // Whatever the wall clock spent beyond useful compute and exposed PCIe
  // is time stalled on data-parallel communication (gradient reductions
  // the optimizer had to wait for, stage-3 parameter fetch stalls).
  out.exposed_dp_s =
      std::max(0.0, out.total_s - compute_work - out.exposed_pcie_s);
  const double step_flops =
      m.StepFlops(job.batch_per_gpu, job.activation_checkpointing) / mp;
  out.tflops_per_gpu = step_flops / out.total_s / 1e12;
  return out;
}

}  // namespace zero::sim
