#include "sim/auto_stage.hpp"

namespace zero::sim {

StageRecommendation RecommendStage(const ClusterSpec& cluster,
                                   JobConfig job) {
  StageRecommendation rec;
  for (model::ZeroStage stage :
       {model::ZeroStage::kNone, model::ZeroStage::kOs,
        model::ZeroStage::kOsG, model::ZeroStage::kOsGP}) {
    job.stage = stage;
    rec.stage = stage;
    rec.memory = EstimateMemory(cluster, job);
    if (rec.memory.total() <= cluster.usable_memory()) {
      rec.fits = true;
      return rec;
    }
  }
  rec.fits = false;  // reports stage 3's breakdown for diagnostics
  return rec;
}

}  // namespace zero::sim
