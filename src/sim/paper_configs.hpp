// The paper's experiment configurations, transcribed from Table 3 (ZeRO
// configs C1-C5) and the appendix Tables 4-10 (model shapes, GPU counts,
// MP degrees and batch sizes for every figure). Benches replay exactly
// these configurations through the simulator.
#pragma once

#include <string>
#include <vector>

#include "sim/job.hpp"

namespace zero::sim {

struct PaperRun {
  std::string label;     // e.g. "1.5B", "170B"
  double psi_nominal;    // parameter count the paper quotes
  bool is_zero;          // ZeRO run vs Megatron/DDP baseline
  int gpus;
  int mp;
  std::int64_t layers;
  std::int64_t hidden;
  std::int64_t heads;
  std::int64_t batch_per_gpu;

  [[nodiscard]] JobConfig ToJob() const;
};

// Table 5: Figure 2 (throughput vs model size, ZeRO vs baseline).
const std::vector<PaperRun>& Figure2Runs();

// Table 6: Figure 3 (60B super-linear scalability, 64-400 GPUs).
const std::vector<PaperRun>& Figure3Runs();

// Table 10: Figure 4 (max throughput without MP, up to 13B).
const std::vector<PaperRun>& Figure4Runs();

// Table 8: Figure 7 (max cached memory, 40B and 100B).
const std::vector<PaperRun>& Figure7Runs();

// Table 9: Figure 8 (throughput under configs C1-C5, 60B and 170B).
const std::vector<PaperRun>& Figure8Runs();

// The Figure 6 base family (hidden 8192, MP 16) whose layer count the
// max-model-size search varies per config.
PaperRun Figure6BaseRun();

}  // namespace zero::sim
