// Event-true simulation of one training step (the schedule-walking
// counterpart of the closed-form cost model).
//
// Two engines per GPU, like CUDA streams plus a NIC:
//   - the compute engine runs layer forward/recompute/backward kernels
//     and the synchronous MP all-reduces between them;
//   - the communication engine runs asynchronous DP work — stage-2/3
//     gradient bucket reductions enqueued the moment a layer's backward
//     finishes (Sec 5.2's overlap), stage-3 parameter broadcasts
//     prefetched one layer ahead, Pa+cpu PCIe copies.
//
// The step ends when both engines drain; DP exposure is whatever the
// comm engine still owes after compute finishes — emergent, not assumed.
// The scheduler also emits a phase timeline for trace-style inspection.
#pragma once

#include <string>
#include <vector>

#include "sim/cost_model.hpp"

namespace zero::sim {

struct PhaseRecord {
  std::string name;     // e.g. "fwd L12", "bwd L12", "dp-reduce L12"
  double start = 0;     // seconds from step begin
  double end = 0;
  enum class Engine : unsigned char { kCompute, kComm, kPcie } engine =
      Engine::kCompute;
};

struct ScheduledStep {
  double total_s = 0;
  double compute_busy_s = 0;
  double mp_comm_s = 0;       // inside compute-engine time
  double dp_comm_busy_s = 0;  // comm-engine busy time
  double pcie_busy_s = 0;
  double exposed_dp_s = 0;    // comm tail after compute finished
  double exposed_pcie_s = 0;
  double tflops_per_gpu = 0;
  std::vector<PhaseRecord> timeline;  // truncated to first/last layers
};

ScheduledStep ScheduleStep(const ClusterSpec& cluster, const JobConfig& job);

}  // namespace zero::sim
