#include "sim/netsim_bridge.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace zero::sim {

NetTopology TopologyFor(const ClusterSpec& cluster, const JobConfig& job) {
  NetTopology topo;
  topo.gpus_per_node = cluster.gpus_per_node;
  topo.nodes =
      (job.gpus + cluster.gpus_per_node - 1) / cluster.gpus_per_node;
  topo.nvswitch_port_bw = cluster.intra_node_bw;
  topo.node_uplink_bw =
      cluster.inter_node_bw_per_gpu * cluster.gpus_per_node;
  topo.nic_bw = cluster.inter_node_bw_per_link;
  return topo;
}

ThroughputEstimate EstimateThroughputSimulatedNetwork(
    const ClusterSpec& cluster, const JobConfig& job) {
  ThroughputEstimate out;
  const auto& m = job.model;
  const int mp = job.mp;
  const int nd = job.dp();

  const NetTopology topo = TopologyFor(cluster, job);
  NetworkSimulator net(topo);

  // --- compute: identical to the analytic model ---
  const double flops_per_gpu =
      m.StepFlops(job.batch_per_gpu, job.activation_checkpointing) / mp;
  out.efficiency = Efficiency(cluster, job);
  out.compute_s = flops_per_gpu / (cluster.peak_flops * out.efficiency);

  // --- model-parallel communication: simulated rings on GPUs 0..mp-1 ---
  double mp_time = 0;
  if (mp > 1) {
    const std::vector<int> group = ContiguousGroup(0, mp);
    const double msg = 2.0 * static_cast<double>(job.batch_per_gpu) *
                       static_cast<double>(m.seq) *
                       static_cast<double>(m.hidden);
    const int per_block = job.activation_checkpointing ? 6 : 4;
    mp_time = static_cast<double>(m.layers) * per_block *
              net.RingAllReduce(group, msg);
    if (job.pa) {
      mp_time += static_cast<double>(m.layers) *
                 net.RingAllGather(group, msg);
    }
  }
  out.mp_comm_s = mp_time;

  // --- data-parallel communication: all Nd rings contend at once ---
  double dp_time = 0;
  if (nd > 1) {
    std::vector<std::vector<int>> rings;
    for (int c = 0; c < mp; ++c) {
      rings.push_back(StridedGroup(c, mp, nd));
    }
    const double grad_bytes = 2.0 * job.psi_local();  // fp16
    dp_time = net.ConcurrentRingAllReduce(rings, grad_bytes);
    if (job.stage == model::ZeroStage::kOsGP) {
      dp_time *= 1.5;  // Sec 7.2.2: 3 Psi instead of 2 Psi
    }
    // ZeRO++ compression shrinks the wire volume linearly; reuse the
    // analytic model's ratio so both models price it identically.
    dp_time *= DpCompressionScale(job);
  }
  double dp_overlap = cluster.dp_overlap;
  if (nd > 1) {
    // Same prefetch-depth split as the analytic model (cost_model.cpp);
    // 1.0 outside stage 3.
    dp_overlap *= DpOverlapCoefficient(job);
  }
  out.dp_comm_s = std::max(0.0, dp_time - dp_overlap * out.compute_s);

  // --- off-device transfers: the shared helper the analytic model
  // uses (cost_model.cpp) — the link does not contend with the network.
  out.offload_s = ExposedOffloadSeconds(cluster, job, out.compute_s);

  out.step_seconds =
      out.compute_s + out.mp_comm_s + out.dp_comm_s + out.offload_s;
  out.tflops_per_gpu = flops_per_gpu / out.step_seconds / 1e12;
  out.aggregate_pflops = out.tflops_per_gpu * job.gpus / 1e3;
  return out;
}

}  // namespace zero::sim
