// Feasibility searches over the memory model: the quantities the paper's
// Table 2 and Figures 6 and 8 report.
#pragma once

#include <optional>

#include "sim/cost_model.hpp"
#include "sim/memory_model.hpp"

namespace zero::sim {

// Largest per-GPU batch that fits (0 if even batch 1 does not).
std::int64_t MaxBatchPerGpu(const ClusterSpec& cluster, JobConfig job,
                            std::int64_t limit = 1024);

// Largest layer count (hence parameter count) of the job's model family
// (fixed hidden/heads/seq/vocab) that fits. Returns the layer count; the
// caller derives Psi via TransformerSpec.
std::int64_t MaxLayers(const ClusterSpec& cluster, JobConfig job,
                       std::int64_t limit = 4096);

// Best achievable throughput: max batch first (memory), then the cost
// model at that batch — the Figure 8 procedure. Returns nullopt when the
// job does not fit at batch 1.
std::optional<ThroughputEstimate> BestThroughput(const ClusterSpec& cluster,
                                                 JobConfig job);

// The paper's closed-form "max theoretical model size" (Table 2, left):
// parameters such that per-device *model states alone* fill the device:
//   psi = capacity * mp * nd / (per-param bytes under the stage).
double TheoreticalMaxParams(double capacity_bytes, model::ZeroStage stage,
                            int mp, int nd);

}  // namespace zero::sim
