// Feasibility searches over the memory model: the quantities the paper's
// Table 2 and Figures 6 and 8 report.
#pragma once

#include <optional>

#include "sim/cost_model.hpp"
#include "sim/memory_model.hpp"

namespace zero::sim {

// Largest per-GPU batch that fits (0 if even batch 1 does not).
std::int64_t MaxBatchPerGpu(const ClusterSpec& cluster, JobConfig job,
                            std::int64_t limit = 1024);

// Largest layer count (hence parameter count) of the job's model family
// (fixed hidden/heads/seq/vocab) that fits. Returns the layer count; the
// caller derives Psi via TransformerSpec.
std::int64_t MaxLayers(const ClusterSpec& cluster, JobConfig job,
                       std::int64_t limit = 4096);

// Best achievable throughput: max batch first (memory), then the cost
// model at that batch — the Figure 8 procedure. Returns nullopt when the
// job does not fit at batch 1.
std::optional<ThroughputEstimate> BestThroughput(const ClusterSpec& cluster,
                                                 JobConfig job);

// Smallest GPU count at which the job fits every tier it uses (device
// memory plus, with an offload tier, the per-GPU share of node DRAM /
// NVMe). Scans multiples of the MP degree: mp, 2*mp, 4*mp, ... then
// binary-searches. Returns 0 when the job does not fit even at `limit`.
// This is the "what fits on N GPUs with offload" question ZeRO-Infinity
// style planning asks.
int MinGpusToFit(const ClusterSpec& cluster, JobConfig job,
                 int limit = 1 << 20);

// The paper's closed-form "max theoretical model size" (Table 2, left):
// parameters such that per-device *model states alone* fill the device:
//   psi = capacity * mp * nd / (per-param bytes under the stage).
double TheoreticalMaxParams(double capacity_bytes, model::ZeroStage stage,
                            int mp, int nd);

}  // namespace zero::sim
