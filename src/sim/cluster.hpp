// Hardware model of the paper's evaluation cluster (Sec 10.1): 25 DGX-2
// nodes, 400 V100-32GB GPUs, NVSwitch inside a node, InfiniBand EDR
// (800 Gbps per node) between nodes.
//
// Calibration constants (peak flops, link bandwidths, efficiency-curve
// shape) are fields with paper-derived defaults so experiments can state
// and vary their assumptions; EXPERIMENTS.md records the calibration.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace zero::sim {

struct ClusterSpec {
  // --- device ---
  double peak_flops = 120e12;           // V100 fp16 tensor-core peak
  double device_memory = 32.0 * GB;     // advertised capacity
  double framework_reserve = 1.0 * GB;  // CUDA context + framework
  // --- topology ---
  int gpus_per_node = 16;               // DGX-2
  double intra_node_bw = 150e9;         // NVSwitch effective B/s per GPU
  double inter_node_bw_per_gpu = 6.25e9;  // 800 Gb/s per node / 16 GPUs
  double inter_node_bw_per_link = 12.5e9;  // one IB EDR link
  double pcie_bw = 4e9;                 // host<->device for Pa+cpu
  double nvme_bw = 3e9;                 // per-GPU NVMe streaming B/s
  // --- off-device capacity (per node, shared by its GPUs) ---
  double host_memory_per_node = 1.5e12;  // DGX-2 DRAM
  double nvme_per_node = 30e12;          // DGX-2 NVMe array

  // --- achievable-efficiency curve (fraction of peak) ---
  // eff = eff_max * t/(t + tokens_half) * w/(w + width_half), where t is
  // the per-GPU tokens per step (batch * seq: the GEMM M dimension) and
  // w = hidden/mp is the local GEMM width. The anchors: ~33% of peak
  // sustained at (batch=32, seq=1024, w=512) as in ZeRO-100B (Sec 10.2),
  // >40 TFlops at wide no-MP shards as in Fig 4, and throughput still
  // rising between batch 16 and 64 — the lever behind Fig 3's
  // super-linear scaling.
  double eff_max = 0.53;
  double tokens_half = 4096.0;
  double width_half = 220.0;

  // Fraction of backward compute that ZeRO's bucketized DP communication
  // hides behind (AMP-style overlap, Sec 5.2). The 2019 PyTorch-DDP
  // baseline (stage none, no MP) gets no overlap and reduces fp32
  // gradients — the behaviour behind Fig 4's <20 TFlops baseline.
  double dp_overlap = 0.8;
  // Pa+cpu PCIe copies are synchronous per-layer transfers on the
  // critical path (the C4 -> C5 throughput drop in Fig 8).
  double offload_overlap = 0.0;
  // The streaming optimizer-offload engine double-buffers its slice
  // transfers against backward and the host Adam update, so most of the
  // link time hides (core/offload_engine; the BENCH_offload gate holds
  // the runtime to >= 0.5).
  double optimizer_offload_overlap = 0.8;

  [[nodiscard]] double usable_memory() const {
    return device_memory - framework_reserve;
  }
  // Per-GPU model-parallel bandwidth for an MP group of `mp` ranks: full
  // NVSwitch while the group fits in one node, the (shared) IB link once
  // it spans nodes — the cliff Sec 10.2 attributes the baseline collapse
  // to (300 GB/s -> 12.5 GB/s per link).
  [[nodiscard]] double MpBandwidth(int mp) const {
    return mp <= gpus_per_node ? intra_node_bw : inter_node_bw_per_link;
  }
  // Per-GPU data-parallel bandwidth: DP always crosses nodes; each GPU
  // of a node shares the node's IB uplink.
  [[nodiscard]] double DpBandwidth() const { return inter_node_bw_per_gpu; }
};

}  // namespace zero::sim
