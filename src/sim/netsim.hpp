// Flow-based network simulator for the paper's cluster fabric.
//
// The cost model (cost_model.hpp) *assumes* the Sec 10.2 bandwidth
// cliff: NVSwitch inside a DGX-2 node, a shared InfiniBand uplink
// between nodes. This module derives it instead. A collective is lowered
// to its ring schedule — a sequence of synchronized steps, each a set of
// point-to-point transfers — and each step's duration is the most
// congested link's serialization time:
//
//   links: per-GPU NVSwitch port (in and out), per-node IB uplink /
//          downlink shared by every flow leaving / entering the node.
//
// With the group inside one node, ring steps ride NVSwitch ports and the
// collective runs at intra-node speed; once the group spans nodes, the
// two ring edges that cross the boundary serialize on the node uplink
// and the whole collective degrades to inter-node speed — the emergent
// 300 GB/s -> 12.5 GB/s collapse that breaks Megatron beyond 16-way MP,
// and the per-GPU DP bandwidth division when many rings share a node's
// uplink.
#pragma once

#include <cstdint>
#include <vector>

namespace zero::sim {

struct NetTopology {
  int nodes = 25;
  int gpus_per_node = 16;
  double nvswitch_port_bw = 150e9;  // B/s per GPU port, each direction
  double node_uplink_bw = 100e9;    // 800 Gb/s IB per node, each direction
  // A single cross-node flow rides one InfiniBand EDR NIC: even when the
  // node's aggregate uplink is idle, one ring edge cannot exceed this —
  // the paper's "12.5 GB/sec per link" (Sec 10.2).
  double nic_bw = 12.5e9;
  double per_step_latency = 5e-6;   // fabric hop latency per ring step

  [[nodiscard]] int total_gpus() const { return nodes * gpus_per_node; }
  [[nodiscard]] int NodeOf(int gpu) const { return gpu / gpus_per_node; }
};

struct Transfer {
  int src = 0;
  int dst = 0;
  double bytes = 0;
};

class NetworkSimulator {
 public:
  explicit NetworkSimulator(NetTopology topology);

  [[nodiscard]] const NetTopology& topology() const { return topology_; }

  // Duration of one synchronized step: every transfer progresses in
  // parallel; each link serializes the flows mapped onto it.
  [[nodiscard]] double StepTime(const std::vector<Transfer>& transfers) const;

  // Ring collectives over `members` (global GPU ids), message `bytes`.
  // Returned times include per-step latency.
  [[nodiscard]] double RingReduceScatter(const std::vector<int>& members,
                                         double bytes) const;
  [[nodiscard]] double RingAllGather(const std::vector<int>& members,
                                     double bytes) const;
  [[nodiscard]] double RingAllReduce(const std::vector<int>& members,
                                     double bytes) const;
  [[nodiscard]] double RingBroadcast(const std::vector<int>& members,
                                     double bytes) const;

  // `concurrent` identical ring all-reduces running at once (e.g. the Nd
  // data-parallel rings of an MP x DP grid, one per MP rank): returns
  // the completion time with all rings contending for the fabric.
  [[nodiscard]] double ConcurrentRingAllReduce(
      const std::vector<std::vector<int>>& rings, double bytes) const;

  // Effective bandwidth (bytes moved per rank / time) of an all-reduce
  // over `members` — the number to compare against link speeds.
  [[nodiscard]] double AllReduceBusBandwidth(const std::vector<int>& members,
                                             double bytes) const;

 private:
  // One ring step: every member sends a chunk to its successor.
  [[nodiscard]] std::vector<Transfer> RingStep(
      const std::vector<int>& members, double chunk_bytes) const;

  NetTopology topology_;
};

// Convenience: the contiguous member list for an MP group starting at
// `first_gpu`, and the strided list for a DP ring at mp offset `column`.
std::vector<int> ContiguousGroup(int first_gpu, int size);
std::vector<int> StridedGroup(int column, int stride, int count);

}  // namespace zero::sim
