// Bridge: the closed-form cost model with its communication terms
// replaced by the flow-based network simulator. Instead of assumed
// NVSwitch/IB bandwidths, MP all-reduce and DP ring times come from ring
// schedules laid onto the simulated fabric, including the contention of
// all Nd data-parallel rings running at once.
#pragma once

#include "sim/cost_model.hpp"
#include "sim/netsim.hpp"

namespace zero::sim {

// Derives a NetTopology sized for the job from the cluster constants.
NetTopology TopologyFor(const ClusterSpec& cluster, const JobConfig& job);

ThroughputEstimate EstimateThroughputSimulatedNetwork(
    const ClusterSpec& cluster, const JobConfig& job);

}  // namespace zero::sim
