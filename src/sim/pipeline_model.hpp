// Pipeline-parallelism comparator (Sec 2.1's related-work analysis).
//
// The paper argues ZeRO matches or beats pipeline parallelism's memory
// efficiency without its functionality/convergence restrictions. This
// module models the two PP flavors the paper names so the claim can be
// examined quantitatively:
//
//   G-Pipe:    parameters and activations are partitioned across P
//              stages, but hiding the pipeline bubble needs a micro-
//              batch count M proportional to P; bubble fraction
//              (P-1)/(M+P-1), and all M micro-batches' checkpoints are
//              resident at the pipeline flush.
//   PipeDream: 1F1B with weight stashing — the bubble disappears in
//              steady state, but each stage keeps up to P weight
//              *versions*, multiplying parameter memory back up, and
//              the update is no longer equivalent to synchronous SGD.
#pragma once

#include "sim/cluster.hpp"
#include "sim/job.hpp"

namespace zero::sim {

enum class PipelineScheme : unsigned char { kGpipe, kPipeDream };

struct PipelineConfig {
  model::TransformerSpec model;
  int stages = 8;          // pipeline depth P
  int micro_batches = 32;  // M (per pipeline, per step)
  std::int64_t micro_batch_size = 1;
  PipelineScheme scheme = PipelineScheme::kGpipe;
};

struct PipelineEstimate {
  double param_state_bytes = 0;   // params+grads+optimizer per device
  double activation_bytes = 0;    // per device
  double total_bytes = 0;
  double bubble_fraction = 0;     // idle fraction of the pipeline
  double weight_versions = 1;     // PipeDream staleness copies
  bool equivalent_to_sync_sgd = true;
};

PipelineEstimate EstimatePipeline(const ClusterSpec& cluster,
                                  const PipelineConfig& config);

}  // namespace zero::sim
