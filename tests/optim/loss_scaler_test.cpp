#include "optim/loss_scaler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zero::optim {
namespace {

TEST(LossScalerTest, BacksOffOnOverflowAndSkips) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 1024.0f;
  cfg.backoff_factor = 0.5f;
  DynamicLossScaler scaler(cfg);
  EXPECT_FALSE(scaler.Update(/*found_overflow=*/true));
  EXPECT_EQ(scaler.scale(), 512.0f);
  EXPECT_FALSE(scaler.Update(true));
  EXPECT_EQ(scaler.scale(), 256.0f);
  EXPECT_EQ(scaler.skipped_steps(), 2);
  EXPECT_EQ(scaler.good_steps(), 0);
}

TEST(LossScalerTest, GrowsAfterInterval) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 128.0f;
  cfg.growth_interval = 3;
  DynamicLossScaler scaler(cfg);
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_EQ(scaler.scale(), 128.0f);  // not yet
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_EQ(scaler.scale(), 256.0f);  // grew after 3 clean steps
}

TEST(LossScalerTest, OverflowResetsGrowthCounter) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 128.0f;
  cfg.growth_interval = 2;
  DynamicLossScaler scaler(cfg);
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_FALSE(scaler.Update(true));  // back to 64, counter reset
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_EQ(scaler.scale(), 64.0f);  // one clean step is not enough
  EXPECT_TRUE(scaler.Update(false));
  EXPECT_EQ(scaler.scale(), 128.0f);
}

TEST(LossScalerTest, RespectsMinAndMaxScale) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 2.0f;
  cfg.min_scale = 1.0f;
  cfg.max_scale = 4.0f;
  cfg.growth_interval = 1;
  DynamicLossScaler scaler(cfg);
  (void)scaler.Update(true);
  (void)scaler.Update(true);
  EXPECT_EQ(scaler.scale(), 1.0f);  // clamped at min
  (void)scaler.Update(false);
  (void)scaler.Update(false);
  (void)scaler.Update(false);
  EXPECT_EQ(scaler.scale(), 4.0f);  // clamped at max
}

TEST(LossScalerTest, RejectsBadConfig) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 0.5f;  // below min_scale
  EXPECT_THROW(DynamicLossScaler{cfg}, Error);
  DynamicLossScaler::Config bad2;
  bad2.growth_factor = 0.9f;
  EXPECT_THROW(DynamicLossScaler{bad2}, Error);
}

}  // namespace
}  // namespace zero::optim
