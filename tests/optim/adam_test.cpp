#include "optim/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace zero::optim {
namespace {

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, step 1 moves each coordinate by ~lr*sign(g).
  AdamConfig cfg;
  cfg.lr = 0.1f;
  std::vector<float> p{1.0f, -2.0f};
  std::vector<float> g{0.5f, -0.25f};
  std::vector<float> m(2, 0.0f), v(2, 0.0f);
  AdamUpdate(cfg, 1, p, g, m, v);
  EXPECT_NEAR(p[0], 1.0f - 0.1f, 1e-5f);
  EXPECT_NEAR(p[1], -2.0f + 0.1f, 1e-5f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  AdamConfig cfg;
  cfg.lr = 0.05f;
  std::vector<float> p{5.0f, -3.0f, 10.0f};
  std::vector<float> target{1.0f, 2.0f, -4.0f};
  std::vector<float> m(3, 0.0f), v(3, 0.0f);
  for (int t = 1; t <= 2000; ++t) {
    std::vector<float> g(3);
    for (int i = 0; i < 3; ++i) g[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(i)] - target[static_cast<std::size_t>(i)];
    AdamUpdate(cfg, t, p, g, m, v);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(p[static_cast<std::size_t>(i)], target[static_cast<std::size_t>(i)], 0.05f);
  }
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  AdamConfig cfg;
  cfg.lr = 0.01f;
  cfg.weight_decay = 0.1f;
  std::vector<float> p{4.0f};
  std::vector<float> g{0.0f};
  std::vector<float> m(1, 0.0f), v(1, 0.0f);
  for (int t = 1; t <= 100; ++t) AdamUpdate(cfg, t, p, g, m, v);
  EXPECT_LT(p[0], 4.0f);
}

TEST(MixedPrecisionAdamTest, MasterCopyPreservesPrecision) {
  // fp16 parameters alone lose small updates; the fp32 master copy must
  // accumulate them (the reason K includes a master copy, Sec 3.1).
  AdamConfig cfg;
  cfg.lr = 1e-4f;
  std::vector<float> init{1.0f};
  MixedPrecisionAdam opt(cfg, nullptr, init);
  std::vector<Half> p{Half(1.0f)};
  std::vector<Half> g{Half(1.0f)};
  float prev_master = 1.0f;
  for (int t = 0; t < 10; ++t) {
    opt.Step(p, g, 1.0f);
    EXPECT_LT(opt.master()[0], prev_master);
    prev_master = opt.master()[0];
  }
  // fp16 value tracks the rounded master.
  EXPECT_EQ(p[0].ToFloat(), Half(opt.master()[0]).ToFloat());
}

TEST(MixedPrecisionAdamTest, LossScaleUnscalesGradients) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  std::vector<float> init{0.0f};
  MixedPrecisionAdam scaled(cfg, nullptr, init);
  MixedPrecisionAdam unscaled(cfg, nullptr, init);
  std::vector<Half> p1{Half(0.0f)}, p2{Half(0.0f)};
  std::vector<Half> g_big{Half(1024.0f)};
  std::vector<Half> g_raw{Half(1.0f)};
  scaled.Step(p1, g_big, 1024.0f);
  unscaled.Step(p2, g_raw, 1.0f);
  EXPECT_EQ(p1[0].ToFloat(), p2[0].ToFloat());
}

TEST(MixedPrecisionAdamTest, StateLivesOnDevice) {
  alloc::DeviceMemory dev(1 << 20, "opt");
  alloc::CachingAllocator cache(dev);
  std::vector<float> init(1000, 0.5f);
  MixedPrecisionAdam opt(AdamConfig{}, &cache, init);
  // K = 12 bytes per parameter: master + m + v in fp32.
  EXPECT_GE(dev.Stats().in_use, 12u * 1000u);
  EXPECT_EQ(opt.numel(), 1000);
}

TEST(MixedPrecisionAdamTest, F32PathMatchesFunctionalAdam) {
  AdamConfig cfg;
  cfg.lr = 0.02f;
  Rng rng(5);
  std::vector<float> init(32);
  for (float& x : init) x = rng.NextGaussian();

  MixedPrecisionAdam opt(cfg, nullptr, init);
  std::vector<float> ref = init;
  std::vector<float> m(32, 0.0f), v(32, 0.0f);
  std::vector<float> out(32);

  for (int t = 1; t <= 5; ++t) {
    std::vector<float> g(32);
    for (float& x : g) x = rng.NextGaussian();
    opt.StepF32(out, g, 1.0f);
    AdamUpdate(cfg, t, ref, g, m, v);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)]) << "t=" << t;
    }
  }
}

TEST(MixedPrecisionAdamTest, RejectsMismatchedShards) {
  std::vector<float> init(8, 0.0f);
  MixedPrecisionAdam opt(AdamConfig{}, nullptr, init);
  std::vector<Half> p(4), g(8);
  EXPECT_THROW(opt.Step(p, g, 1.0f), Error);
}

}  // namespace
}  // namespace zero::optim
