// Merged cross-rank timeline: multi-rank Chrome export, clock-skew
// estimation from matched collective pairs, and the merged-timeline
// artifact contract (validated with the repo's strict JSON parser).
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace zero::obs {
namespace {

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisableTracing();
    SetTraceBufferCapacity(16384);
    ResetTrace();
  }
  void TearDown() override {
    DisableTracing();
    ResetTrace();
    SetThreadLogRank(-1);
  }
};

TraceEvent Ev(const char* name, int rank, std::uint64_t start,
              std::uint64_t dur) {
  TraceEvent e{};
  std::strncpy(e.name, name, TraceEvent::kNameCap - 1);
  e.rank = rank;
  e.start_ns = start;
  e.dur_ns = dur;
  return e;
}

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Three rank threads record; the per-rank exporter must map rank r to
// pid r+1 and the file must pass the strict validator.
TEST_F(TimelineTest, MultiRankTraceFileMapsRankToPid) {
  EnableTracing();
  std::vector<std::thread> ranks;
  for (int r = 0; r < 3; ++r) {
    ranks.emplace_back([r] {
      SetThreadLogRank(r);
      for (int i = 0; i < 5; ++i) {
        TRACE_SPAN("engine/step");
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  DisableTracing();

  const std::string path = testing::TempDir() + "zero_timeline_trace.json";
  ASSERT_TRUE(WriteChromeTraceFile(path));
  std::string error;
  ASSERT_TRUE(ValidateChromeTraceFile(path, &error)) << error;

  json::Value doc;
  ASSERT_TRUE(json::Parse(Slurp(path), &doc, &error)) << error;
  std::set<double> pids;
  for (const json::Value& ev : doc.Find("traceEvents")->as_array()) {
    if (ev.Find("ph")->as_string() == "X") {
      pids.insert(ev.Find("pid")->as_number());
    }
  }
  EXPECT_EQ(pids, (std::set<double>{1, 2, 3}));
}

// The merged timeline of the same multi-rank recording must pass the
// strict validator and carry the clock-skew map in otherData.
TEST_F(TimelineTest, MergedTimelineFilePassesStrictValidator) {
  EnableTracing();
  std::vector<std::thread> ranks;
  for (int r = 0; r < 3; ++r) {
    ranks.emplace_back([r] {
      SetThreadLogRank(r);
      for (int i = 0; i < 4; ++i) {
        TRACE_SPAN("comm/all_reduce");
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  DisableTracing();

  const std::string path = testing::TempDir() + "zero_merged_timeline.json";
  ASSERT_TRUE(WriteMergedTimelineFile(path));
  std::string error;
  ASSERT_TRUE(ValidateChromeTraceFile(path, &error)) << error;

  json::Value doc;
  ASSERT_TRUE(json::Parse(Slurp(path), &doc, &error)) << error;
  const json::Value* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  const json::Value* skews = other->Find("clockSkewNs");
  ASSERT_NE(skews, nullptr);
  ASSERT_TRUE(skews->is_object());
  // One numeric entry per tagged rank. (These free-running threads are
  // not synchronized, so the estimate reflects scheduler jitter; exact
  // recovery is asserted by the injected-offset test below.)
  for (const char* r : {"0", "1", "2"}) {
    const json::Value* s = skews->Find(r);
    ASSERT_NE(s, nullptr) << "missing skew for rank " << r;
    EXPECT_TRUE(s->is_number());
  }
}

// An artificial +750us offset injected into rank 1's clock must be
// recovered from matched symmetric-collective end pairs and corrected
// out of the merged timeline.
TEST_F(TimelineTest, SkewEstimationRecoversInjectedOffset) {
  constexpr std::int64_t kOffset = 750'000;  // 750us
  std::vector<ThreadEvents> threads(2);
  threads[0].tid = 0;
  threads[0].name = "rank 0";
  threads[1].tid = 1;
  threads[1].name = "rank 1";
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t start = 1'000'000 + 100'000 * k;
    threads[0].events.push_back(Ev("comm/all_reduce", 0, start, 40'000));
    threads[1].events.push_back(Ev(
        "comm/all_reduce", 1, start + static_cast<std::uint64_t>(kOffset),
        40'000));
  }
  // A name with unequal per-rank counts (subgroup collective) must be
  // skipped by the estimator, not matched index-for-index.
  threads[0].events.push_back(Ev("comm/all_gather", 0, 5'000'000, 10'000));
  // Rooted collectives never anchor the estimate.
  threads[0].events.push_back(Ev("comm/broadcast", 0, 6'000'000, 10'000));
  threads[1].events.push_back(Ev("comm/broadcast", 1, 9'000'000, 10'000));

  const std::vector<RankClock> clocks = EstimateClockSkew(threads);
  ASSERT_EQ(clocks.size(), 2u);
  EXPECT_EQ(clocks[0].rank, 0);
  EXPECT_EQ(clocks[0].skew_ns, 0);
  EXPECT_EQ(clocks[1].rank, 1);
  EXPECT_EQ(clocks[1].skew_ns, kOffset);
  EXPECT_EQ(clocks[1].matched, 4);

  const Timeline t = BuildTimeline(threads);
  EXPECT_EQ(t.SkewFor(1), kOffset);
  // Corrected: matched instances now end at the same true time.
  std::vector<const TimelineSpan*> reduces = t.Named("comm/all_reduce");
  ASSERT_EQ(reduces.size(), 8u);
  for (std::size_t i = 0; i + 1 < reduces.size(); i += 2) {
    EXPECT_EQ(reduces[i]->end_ns(), reduces[i + 1]->end_ns());
  }
}

// Per-lane drop counters must survive the merge and appear in the
// timeline export's otherData (satellite: truncation is never silent).
TEST_F(TimelineTest, DroppedCountsSurfaceInTimelineAndExport) {
  std::vector<ThreadEvents> threads(2);
  threads[0].tid = 3;
  threads[0].name = "rank 0";
  threads[0].dropped = 17;
  threads[0].events.push_back(Ev("engine/step", 0, 1'000, 500));
  threads[1].tid = 4;
  threads[1].name = "rank 1";
  threads[1].events.push_back(Ev("engine/step", 1, 1'000, 500));

  const Timeline t = BuildTimeline(threads);
  EXPECT_EQ(t.dropped_events, 17u);
  ASSERT_EQ(t.dropped_by_tid.size(), 1u);
  EXPECT_EQ(t.dropped_by_tid.at(3), 17u);

  const std::string out = TimelineChromeJson(t);
  std::string error;
  ASSERT_TRUE(ValidateChromeTrace(out, &error)) << error;
  json::Value doc;
  ASSERT_TRUE(json::Parse(out, &doc, &error)) << error;
  const json::Value* lanes = doc.Find("otherData")->Find("droppedByLane");
  ASSERT_NE(lanes, nullptr);
  ASSERT_NE(lanes->Find("3"), nullptr);
  EXPECT_EQ(lanes->Find("3")->as_number(), 17.0);
  EXPECT_EQ(lanes->Find("4"), nullptr);  // clean lanes stay out
}

// The per-rank exporter's droppedByLane metadata (satellite 1, trace
// half): a truncated ring is attributed to its lane in the artifact.
TEST_F(TimelineTest, ChromeTraceReportsDroppedByLane) {
  SetTraceBufferCapacity(64);
  EnableTracing();
  SetThreadLogRank(0);
  for (int i = 0; i < 100; ++i) {
    TRACE_SPAN("overflow/span");
  }
  DisableTracing();

  const std::string out = ChromeTraceJson(CollectEvents());
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &doc, &error)) << error;
  const json::Value* lanes = doc.Find("otherData")->Find("droppedByLane");
  ASSERT_NE(lanes, nullptr);
  ASSERT_TRUE(lanes->is_object());
  double total = 0;
  for (const auto& [lane, count] : lanes->as_object()) {
    total += count.as_number();
  }
  EXPECT_EQ(total, 36.0);  // 100 spans - 64 ring slots
}

}  // namespace
}  // namespace zero::obs
