// Step anatomy: span classification, the per-rank segment sweep, the
// cross-rank critical-path walk on a hand-built timeline with known
// answers, and an end-to-end straggler attribution on a real stage-3
// run with a seeded slow-rank fault.
#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/trainer.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace zero::obs {
namespace {

class CriticalPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisableTracing();
    SetTraceBufferCapacity(16384);
    ResetTrace();
  }
  void TearDown() override {
    DisableTracing();
    ResetTrace();
    SetThreadLogRank(-1);
  }
};

TraceEvent Ev(const char* name, int rank, std::uint64_t start,
              std::uint64_t dur) {
  TraceEvent e{};
  std::strncpy(e.name, name, TraceEvent::kNameCap - 1);
  e.rank = rank;
  e.start_ns = start;
  e.dur_ns = dur;
  return e;
}

TEST_F(CriticalPathTest, ClassifiesSpanNamesByPriority) {
  EXPECT_EQ(ClassifySpanName("comm/recv_wait"), SegClass::kStall);
  EXPECT_EQ(ClassifySpanName("comm/p2p_wait"), SegClass::kStall);
  EXPECT_EQ(ClassifySpanName("params/prefetch_wait"), SegClass::kStall);
  EXPECT_EQ(ClassifySpanName("grads/bucket_drain"), SegClass::kStall);
  EXPECT_EQ(ClassifySpanName("offload/slice_wait"), SegClass::kOffload);
  EXPECT_EQ(ClassifySpanName("optim/offload_step"), SegClass::kOffload);
  EXPECT_EQ(ClassifySpanName("comm/all_reduce"), SegClass::kComm);
  EXPECT_EQ(ClassifySpanName("grads/qgz_fold"), SegClass::kComm);
  EXPECT_EQ(ClassifySpanName("params/hpz_capture"), SegClass::kComm);
  EXPECT_EQ(ClassifySpanName("tensor/quantize"), SegClass::kComm);
  EXPECT_EQ(ClassifySpanName("tensor/dequantize"), SegClass::kComm);
  EXPECT_EQ(ClassifySpanName("engine/step"), SegClass::kCompute);
  EXPECT_EQ(ClassifySpanName("model/forward"), SegClass::kCompute);
}

// Two ranks, one step [0, 1000]ns, one matched all-reduce:
//
//   rank 0: all_reduce [100, 900] with recv_wait [150, 850] nested —
//           it arrives early and sits blocked on the slow peer.
//   rank 1: all_reduce [600, 900], fully busy — the actual straggler.
//
// Decomposition (rank 0): stall 700, comm 100 (the wait span must win
// the overlap), compute 200. Walk: rank 1 gates the collective (busy
// end 900 vs rank 0's arrival-adjusted 200), so the path is rank 1's
// [0, 900] plus rank 0's tail [900, 1000] -> straggler rank 1.
TEST_F(CriticalPathTest, WalkBlamesTheBusyRankNotTheWaiter) {
  std::vector<ThreadEvents> threads(2);
  threads[0].tid = 0;
  threads[0].name = "rank 0";
  threads[0].events = {
      Ev("engine/step", 0, 0, 1000),
      Ev("comm/all_reduce", 0, 100, 800),
      Ev("comm/recv_wait", 0, 150, 700),
  };
  threads[1].tid = 1;
  threads[1].name = "rank 1";
  threads[1].events = {
      Ev("engine/step", 1, 0, 1000),
      Ev("comm/all_reduce", 1, 600, 300),
  };

  const std::vector<StepAnatomy> steps = AnalyzeSteps(BuildTimeline(threads));
  ASSERT_EQ(steps.size(), 1u);
  const StepAnatomy& s = steps[0];
  ASSERT_EQ(s.ranks.size(), 2u);

  const RankStepAnatomy& r0 = s.ranks[0];
  EXPECT_EQ(r0.rank, 0);
  EXPECT_DOUBLE_EQ(r0.class_ns[static_cast<int>(SegClass::kStall)], 700);
  EXPECT_DOUBLE_EQ(r0.class_ns[static_cast<int>(SegClass::kComm)], 100);
  EXPECT_DOUBLE_EQ(r0.class_ns[static_cast<int>(SegClass::kCompute)], 200);
  EXPECT_DOUBLE_EQ(r0.busy_frac(), 0.2);

  const RankStepAnatomy& r1 = s.ranks[1];
  EXPECT_EQ(r1.rank, 1);
  EXPECT_DOUBLE_EQ(r1.class_ns[static_cast<int>(SegClass::kComm)], 300);
  EXPECT_DOUBLE_EQ(r1.class_ns[static_cast<int>(SegClass::kCompute)], 700);
  EXPECT_DOUBLE_EQ(r1.class_ns[static_cast<int>(SegClass::kStall)], 0);

  EXPECT_DOUBLE_EQ(r0.critical_ns, 100);
  EXPECT_DOUBLE_EQ(r1.critical_ns, 900);
  EXPECT_EQ(s.straggler_rank, 1);

  // The path tiles the step exactly: [0,600]+[600,900] on rank 1,
  // [900,1000] on rank 0.
  ASSERT_EQ(s.path.size(), 3u);
  EXPECT_EQ(s.path.front().begin_ns, 0u);
  EXPECT_EQ(s.path.back().end_ns, 1000u);
  for (std::size_t i = 0; i + 1 < s.path.size(); ++i) {
    EXPECT_EQ(s.path[i].end_ns, s.path[i + 1].begin_ns);
  }
  EXPECT_EQ(s.path[0].rank, 1);
  EXPECT_EQ(s.path[1].rank, 1);
  EXPECT_EQ(s.path[2].rank, 0);
}

TEST_F(CriticalPathTest, NoStepSpansMeansNoAnatomy) {
  std::vector<ThreadEvents> threads(1);
  threads[0].tid = 0;
  threads[0].events = {Ev("comm/all_reduce", 0, 0, 100)};
  EXPECT_TRUE(AnalyzeSteps(BuildTimeline(threads)).empty());
}

TEST_F(CriticalPathTest, SummarySkipsWarmupAndVotesPlurality) {
  std::vector<StepAnatomy> steps(3);
  for (int k = 0; k < 3; ++k) {
    steps[k].step = k;
    RankStepAnatomy ra;
    ra.rank = 0;
    ra.begin_ns = 0;
    ra.end_ns = 2'000'000;  // 2 ms
    ra.class_ns[static_cast<int>(SegClass::kCompute)] = 1'500'000;
    ra.class_ns[static_cast<int>(SegClass::kComm)] = 500'000;
    ra.critical_ns = 1'000'000;
    steps[k].ranks.push_back(ra);
  }
  steps[0].straggler_rank = 0;  // warm-up outlier, must be skipped
  steps[1].straggler_rank = 1;
  steps[2].straggler_rank = 1;

  const AnatomySummary sum = SummarizeAnatomy(steps, /*skip_first=*/1);
  EXPECT_EQ(sum.steps, 2);
  EXPECT_EQ(sum.straggler_rank, 1);
  EXPECT_EQ(sum.straggler_steps, 2);
  ASSERT_EQ(sum.ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(sum.ranks[0].step_ms, 2.0);
  EXPECT_DOUBLE_EQ(sum.ranks[0].compute_ms, 1.5);
  EXPECT_DOUBLE_EQ(sum.ranks[0].comm_ms, 0.5);
  EXPECT_DOUBLE_EQ(sum.ranks[0].critical_ms, 1.0);
}

// End to end: a stage-3 run with every collective on rank 1 slowed by
// 2 ms must land in the step report's anatomy section blaming rank 1.
TEST_F(CriticalPathTest, ReportAnatomyBlamesSeededSlowRank) {
  core::TrainOptions options;
  options.model.vocab = 48;
  options.model.seq = 16;
  options.model.hidden = 32;
  options.model.layers = 3;
  options.model.heads = 4;
  options.engine.stage = model::ZeroStage::kOsGP;
  options.cluster.dp_degree = 2;
  options.batch_per_rank = 2;
  options.steps = 3;
  options.engine.fault_spec = "slow@1:collective=2ms";
  options.engine.telemetry.enabled = true;  // no paths: stays in memory
  options.engine.telemetry.validate = false;
  options.engine.telemetry.trace_buffer_events = 65536;

  const core::TrainResult result = core::TrainGpt(options);
  ASSERT_FALSE(result.failed) << result.failure_message;
  ASSERT_TRUE(result.report.has_value());
  const StepReportInputs& in = result.report->inputs;
  EXPECT_GT(in.anatomy_steps, 0);
  EXPECT_EQ(in.straggler_rank, 1);
  EXPECT_EQ(in.straggler_steps, in.anatomy_steps);
  ASSERT_EQ(in.anatomy_ranks.size(), 2u);
  // The slowed rank shows the comm time; its peer shows the stall.
  EXPECT_GT(in.anatomy_ranks[1].comm_ms, in.anatomy_ranks[0].comm_ms);
  EXPECT_GT(in.anatomy_ranks[0].stall_ms, 0.0);
  EXPECT_GT(in.anatomy_ranks[1].critical_ms, in.anatomy_ranks[0].critical_ms);
}

}  // namespace
}  // namespace zero::obs
