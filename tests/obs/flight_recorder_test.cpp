// Flight recorder: arm/flush/validate on synthetic recordings, the
// snapshot ring bound, the trainer's fault abort cascade leaving a
// bundle in TrainResult, and per-attempt bundles through the
// RecoveryCoordinator.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/trainer.hpp"
#include "fault/recovery.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace zero::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisableFlightRecorder();
    DisableTracing();
    SetTraceBufferCapacity(16384);
    ResetTrace();
  }
  void TearDown() override {
    DisableFlightRecorder();
    DisableTracing();
    ResetTrace();
    SetThreadLogRank(-1);
  }

  static std::string UniqueDir(const std::string& leaf) {
    return testing::TempDir() + leaf;
  }
};

json::Value ReadManifest(const std::string& dir) {
  std::ifstream f(dir + "/manifest.json", std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  json::Value doc;
  std::string error;
  EXPECT_TRUE(json::Parse(ss.str(), &doc, &error)) << error;
  return doc;
}

TEST_F(FlightRecorderTest, DisarmedFlushReturnsEmpty) {
  EXPECT_FALSE(FlightRecorderEnabled());
  EXPECT_EQ(FlushFlightRecorder("nothing armed"), "");
}

// Arming turns tracing on; a flush of a two-rank recording leaves a
// bundle whose manifest lists both rank traces, the merged timeline,
// the skew map and the snapshots — and the bundle validates.
TEST_F(FlightRecorderTest, FlushWritesValidatingBundle) {
  FlightRecorderOptions opts;
  opts.dir = UniqueDir("zero_fr_bundle");
  EnableFlightRecorder(opts);
  EXPECT_TRUE(FlightRecorderEnabled());
  EXPECT_TRUE(TracingEnabled());
  EXPECT_EQ(FlightRecorderDir(), opts.dir);

  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([r] {
      SetThreadLogRank(r);
      for (int i = 0; i < 3; ++i) {
        TRACE_SPAN("engine/step");
      }
    });
  }
  for (std::thread& t : ranks) t.join();
  FlightRecorderStepSnapshot(7, "{\"loss\": 1.25}");

  const std::string bundle = FlushFlightRecorder("unit-test fault");
  ASSERT_EQ(bundle, opts.dir);
  std::string error;
  EXPECT_TRUE(ValidatePostmortemBundle(bundle, &error)) << error;

  const json::Value manifest = ReadManifest(bundle);
  EXPECT_EQ(manifest.Find("reason")->as_string(), "unit-test fault");
  EXPECT_EQ(manifest.Find("world_ranks")->as_number(), 2.0);
  ASSERT_EQ(manifest.Find("rank_traces")->as_array().size(), 2u);
  EXPECT_EQ(manifest.Find("timeline")->as_string(), "timeline.json");
  const json::Value* skew = manifest.Find("clock_skew_ns");
  ASSERT_NE(skew, nullptr);
  EXPECT_NE(skew->Find("0"), nullptr);
  EXPECT_NE(skew->Find("1"), nullptr);
  const json::Value* snaps = manifest.Find("snapshots");
  ASSERT_EQ(snaps->as_array().size(), 1u);
  EXPECT_EQ(snaps->as_array()[0].Find("step")->as_number(), 7.0);
  EXPECT_EQ(
      snaps->as_array()[0].Find("metrics")->Find("loss")->as_number(), 1.25);
}

TEST_F(FlightRecorderTest, SnapshotRingEvictsOldest) {
  FlightRecorderOptions opts;
  opts.dir = UniqueDir("zero_fr_ring");
  opts.max_snapshots = 2;
  EnableFlightRecorder(opts);
  SetThreadLogRank(0);
  { TRACE_SPAN("engine/step"); }
  SetThreadLogRank(-1);
  for (int s = 0; s < 5; ++s) {
    FlightRecorderStepSnapshot(s, "{\"step\": " + std::to_string(s) + "}");
  }
  const std::string bundle = FlushFlightRecorder("ring bound");
  ASSERT_FALSE(bundle.empty());
  const json::Value manifest = ReadManifest(bundle);
  const json::Value* snaps = manifest.Find("snapshots");
  ASSERT_EQ(snaps->as_array().size(), 2u);  // oldest three evicted
  EXPECT_EQ(snaps->as_array()[0].Find("step")->as_number(), 3.0);
  EXPECT_EQ(snaps->as_array()[1].Find("step")->as_number(), 4.0);
}

TEST_F(FlightRecorderTest, DisableClearsSnapshotsWithoutFlushing) {
  FlightRecorderOptions opts;
  opts.dir = UniqueDir("zero_fr_disable");
  EnableFlightRecorder(opts);
  FlightRecorderStepSnapshot(1, "{}");
  DisableFlightRecorder();
  EXPECT_FALSE(FlightRecorderEnabled());
  EXPECT_EQ(FlushFlightRecorder("after disable"), "");
}

// The trainer's abort cascade: a crash fault kills the run, the
// heartbeat detector unwinds the survivors, and TrainResult points at a
// validating bundle.
TEST_F(FlightRecorderTest, TrainerCrashLeavesValidBundle) {
  core::TrainOptions options;
  options.model.vocab = 48;
  options.model.seq = 16;
  options.model.hidden = 32;
  options.model.layers = 3;
  options.model.heads = 4;
  options.engine.stage = model::ZeroStage::kOsGP;
  options.cluster.dp_degree = 2;
  options.batch_per_rank = 2;
  options.steps = 4;
  options.engine.fault_spec = "crash@1:step#2";
  options.engine.comm_deadline_ms = 200;
  options.engine.telemetry.postmortem_dir = UniqueDir("zero_fr_trainer");

  const core::TrainResult result = core::TrainGpt(options);
  ASSERT_TRUE(result.failed);
  ASSERT_FALSE(result.postmortem_dir.empty());
  std::string error;
  EXPECT_TRUE(ValidatePostmortemBundle(result.postmortem_dir, &error))
      << error;
  const json::Value manifest = ReadManifest(result.postmortem_dir);
  EXPECT_NE(manifest.Find("reason")->as_string().find("rank 1"),
            std::string::npos);
  // The armed recorder is released after the flush.
  EXPECT_FALSE(FlightRecorderEnabled());
  EXPECT_FALSE(TracingEnabled());
}

// The recovery loop flushes one bundle per failed attempt under
// attempt-<k>/ and records it in that attempt's history entry.
TEST_F(FlightRecorderTest, RecoveryAttemptsGetPerAttemptBundles) {
  FlightRecorderOptions opts;
  opts.dir = UniqueDir("zero_fr_recovery");
  EnableFlightRecorder(opts);

  fault::RecoveryOptions ropts;
  ropts.world_size = 2;
  ropts.max_attempts = 3;
  fault::RecoveryCoordinator coordinator(ropts);
  const fault::RecoveryReport report =
      coordinator.Train([](comm::RankContext& ctx,
                           const fault::AttemptContext& at) {
        comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
        TRACE_SPAN("engine/step");
        if (at.index == 0 && ctx.rank == 1) {
          throw InjectedFaultError("injected attempt-0 fault");
        }
        std::vector<float> ones(8, 1.0f);
        dp.AllReduce(std::span<float>(ones));
      });

  ASSERT_TRUE(report.succeeded);
  ASSERT_EQ(report.history.size(), 2u);
  EXPECT_FALSE(report.history[0].ok);
  EXPECT_EQ(report.history[0].postmortem_dir, opts.dir + "/attempt-0");
  std::string error;
  EXPECT_TRUE(
      ValidatePostmortemBundle(report.history[0].postmortem_dir, &error))
      << error;
  EXPECT_TRUE(report.history[1].ok);
  EXPECT_TRUE(report.history[1].postmortem_dir.empty());
}

}  // namespace
}  // namespace zero::obs
