// Metrics registry: counters, gauges, histogram quantiles, name/type
// collisions, reset semantics, and the JSON snapshot contract.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace zero::obs {
namespace {

// The process-wide registry (obs::Metrics()) is shared with every other
// suite in the binary, so these tests use private registries except
// where the singleton itself is the subject.

TEST(MetricsTest, CounterAddAndReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instance.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  reg.ResetValues();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, CounterIsThreadSafe) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetAndReset) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.Set(1024.0);
  EXPECT_DOUBLE_EQ(g.value(), 1024.0);
  g.Set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
  reg.ResetValues();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsTest, HistogramSummaryStatistics) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  const Histogram::Summary s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  // Log2 buckets give coarse quantiles; demand the right neighborhood
  // rather than exact order statistics.
  EXPECT_GE(s.p50, 25.0);
  EXPECT_LE(s.p50, 75.0);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_LE(s.p99, 100.0);

  reg.ResetValues();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(MetricsTest, HistogramSingleObservationIsItsOwnQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.single");
  h.Observe(7.5);
  const Histogram::Summary s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

TEST(MetricsTest, NameCollisionAcrossKindsThrows) {
  MetricsRegistry reg;
  reg.counter("test.kind");
  EXPECT_NO_THROW(reg.counter("test.kind"));
  EXPECT_ANY_THROW(reg.gauge("test.kind"));
  EXPECT_ANY_THROW(reg.histogram("test.kind"));
}

TEST(MetricsTest, SnapshotJsonParsesAndCarriesValues) {
  MetricsRegistry reg;
  reg.counter("c.one").Add(3);
  reg.gauge("g.one").Set(0.5);
  Histogram& h = reg.histogram("h.one");
  h.Observe(10.0);
  h.Observe(20.0);

  const std::string text = reg.SnapshotJson();
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Parse(text, &doc, &error)) << error;

  const json::Value* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("c.one")->as_number(), 3.0);

  const json::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("g.one")->as_number(), 0.5);

  const json::Value* hist = doc.Find("histograms")->Find("h.one");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->as_number(), 30.0);
  EXPECT_DOUBLE_EQ(hist->Find("min")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(hist->Find("max")->as_number(), 20.0);
}

TEST(MetricsTest, VisitorsEnumerateRegisteredSeries) {
  MetricsRegistry reg;
  reg.counter("a");
  reg.counter("b");
  reg.gauge("g");
  reg.histogram("h");
  std::vector<std::string> counter_names;
  reg.VisitCounters([&](const std::string& name, const Counter&) {
    counter_names.push_back(name);
  });
  EXPECT_EQ(counter_names, (std::vector<std::string>{"a", "b"}));
  int gauges = 0, hists = 0;
  reg.VisitGauges([&](const std::string&, const Gauge&) { ++gauges; });
  reg.VisitHistograms([&](const std::string&, const Histogram&) { ++hists; });
  EXPECT_EQ(gauges, 1);
  EXPECT_EQ(hists, 1);
}

TEST(MetricsTest, GlobalRegistryIsAStableSingleton) {
  MetricsRegistry& a = Metrics();
  MetricsRegistry& b = Metrics();
  EXPECT_EQ(&a, &b);
  // Handles into the singleton stay valid across ResetValues (the
  // instrument-site pattern caches them in function-local statics).
  Counter& c = a.counter("metrics_test.global");
  c.Add(5);
  a.ResetValues();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace zero::obs
