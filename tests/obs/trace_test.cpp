// Trace recorder: concurrency, overflow, disabled-mode, and the Chrome
// export contract (validated with the repo's own strict JSON parser).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace zero::obs {
namespace {

// Every test owns the global recorder: start from a clean slate and
// leave tracing off for the suites that follow.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisableTracing();
    SetTraceBufferCapacity(16384);
    ResetTrace();
  }
  void TearDown() override {
    DisableTracing();
    ResetTrace();
    SetThreadLogRank(-1);
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  for (int i = 0; i < 100; ++i) {
    TRACE_SPAN("noop");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
  EXPECT_EQ(TraceDroppedCount(), 0u);
}

TEST_F(TraceTest, RecordsNestedSpansWithDurations) {
  EnableTracing();
  {
    TRACE_SPAN("outer");
    TRACE_SPAN("inner");
  }
  DisableTracing();

  std::vector<ThreadEvents> threads = CollectEvents();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 2u);
  // Scoped destruction records inner before outer.
  EXPECT_STREQ(threads[0].events[0].name, "inner");
  EXPECT_STREQ(threads[0].events[1].name, "outer");
  const TraceEvent& inner = threads[0].events[0];
  const TraceEvent& outer = threads[0].events[1];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST_F(TraceTest, ConcurrentThreadsProduceValidMonotonicChromeJson) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;

  EnableTracing();
  std::atomic<int> go{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &go] {
      SetThreadLogRank(t % 4);  // four "ranks", two threads each
      SetThreadTraceName("worker " + std::to_string(t));
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }  // maximize interleaving
      for (int i = 0; i < kSpansPerThread; ++i) {
        TRACE_SPAN("test/span");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  DisableTracing();

  EXPECT_EQ(TraceEventCount(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(TraceDroppedCount(), 0u);

  std::vector<ThreadEvents> threads = CollectEvents();
  ASSERT_EQ(threads.size(), static_cast<std::size_t>(kThreads));
  std::set<int> tids;
  for (const ThreadEvents& te : threads) {
    tids.insert(te.tid);
    ASSERT_EQ(te.events.size(), static_cast<std::size_t>(kSpansPerThread));
    // Per-thread event order is chronological.
    for (std::size_t i = 1; i < te.events.size(); ++i) {
      EXPECT_GE(te.events[i].start_ns, te.events[i - 1].start_ns);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));

  const std::string trace_json = ChromeTraceJson(threads);
  std::string error;
  ASSERT_TRUE(ValidateChromeTrace(trace_json, &error)) << error;

  // Independent structural check with the strict parser: pids cover the
  // four rank tags (rank r -> pid r+1) and thread names survive export.
  json::Value doc;
  ASSERT_TRUE(json::Parse(trace_json, &doc, &error)) << error;
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<double> x_pids;
  int thread_name_meta = 0;
  for (const json::Value& ev : events->as_array()) {
    const std::string& ph = ev.Find("ph")->as_string();
    if (ph == "X") x_pids.insert(ev.Find("pid")->as_number());
    if (ph == "M" && ev.Find("name")->as_string() == "thread_name") {
      ++thread_name_meta;
    }
  }
  EXPECT_EQ(x_pids, (std::set<double>{1, 2, 3, 4}));
  EXPECT_EQ(thread_name_meta, kThreads);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndNeverBlocks) {
  SetTraceBufferCapacity(64);  // minimum ring
  EnableTracing();
  constexpr int kSpans = 300;
  for (int i = 0; i < kSpans; ++i) {
    TRACE_SPAN("overflow/span");
  }
  DisableTracing();

  EXPECT_EQ(TraceEventCount(), 64u);
  EXPECT_EQ(TraceDroppedCount(), static_cast<std::uint64_t>(kSpans - 64));

  // The survivors are the *newest* 64, still in chronological order.
  std::vector<ThreadEvents> threads = CollectEvents();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 64u);
  EXPECT_EQ(threads[0].dropped, static_cast<std::uint64_t>(kSpans - 64));
  for (std::size_t i = 1; i < threads[0].events.size(); ++i) {
    EXPECT_GE(threads[0].events[i].start_ns,
              threads[0].events[i - 1].start_ns);
  }
  // A capped trace still exports valid Chrome JSON.
  std::string error;
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson(threads), &error)) << error;
}

TEST_F(TraceTest, ResetClearsEventsAndRegistrations) {
  EnableTracing();
  {
    TRACE_SPAN("before-reset");
  }
  EXPECT_EQ(TraceEventCount(), 1u);
  DisableTracing();
  ResetTrace();
  EXPECT_EQ(TraceEventCount(), 0u);
  EXPECT_EQ(TraceDroppedCount(), 0u);
  EXPECT_TRUE(CollectEvents().empty());

  // The calling thread re-registers transparently on its next span.
  EnableTracing();
  {
    TRACE_SPAN("after-reset");
  }
  DisableTracing();
  std::vector<ThreadEvents> threads = CollectEvents();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  EXPECT_STREQ(threads[0].events[0].name, "after-reset");
}

TEST_F(TraceTest, LongNamesTruncateSafely) {
  const std::string long_name(200, 'x');
  EnableTracing();
  {
    TraceSpan span(long_name.c_str());
  }
  DisableTracing();
  std::vector<ThreadEvents> threads = CollectEvents();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  EXPECT_EQ(std::string(threads[0].events[0].name),
            std::string(TraceEvent::kNameCap - 1, 'x'));
}

TEST_F(TraceTest, ValidatorRejectsMalformedTraces) {
  std::string error;
  EXPECT_FALSE(ValidateChromeTrace("not json", &error));
  EXPECT_FALSE(ValidateChromeTrace("{}", &error));  // no traceEvents
  EXPECT_FALSE(ValidateChromeTrace(
      R"({"traceEvents":[{"ph":"X","name":"a","pid":1,"tid":1}]})", &error));
  // "X" timestamps must be non-decreasing in file order.
  EXPECT_FALSE(ValidateChromeTrace(
      R"({"traceEvents":[
        {"ph":"X","name":"a","pid":1,"tid":1,"ts":5.0,"dur":1.0},
        {"ph":"X","name":"b","pid":1,"tid":1,"ts":2.0,"dur":1.0}]})",
      &error));
  EXPECT_TRUE(ValidateChromeTrace(
      R"({"traceEvents":[
        {"ph":"X","name":"a","pid":1,"tid":1,"ts":2.0,"dur":1.0},
        {"ph":"X","name":"b","pid":1,"tid":1,"ts":5.0,"dur":1.0}]})",
      &error))
      << error;
}

}  // namespace
}  // namespace zero::obs
